"""Master-seed RNG routing (repro.rng) and the primes entropy split."""

import random

import numpy as np
import pytest

from repro.mpint.primes import LimbRandom
from repro.rng import (
    JITTER_STREAM_OFFSET,
    STREAM_MULTIPLIER,
    derive_seed,
    jitter_seed,
    master_test_seed,
    np_rng,
    py_rng,
)


class TestDeriveSeed:
    def test_default_master_is_identity(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        assert master_test_seed() == 0
        assert derive_seed(42) == 42

    def test_master_shifts_every_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "3")
        assert derive_seed(42) == 3 * STREAM_MULTIPLIER + 42
        assert jitter_seed(5) == \
            3 * STREAM_MULTIPLIER + JITTER_STREAM_OFFSET + 5

    def test_streams_do_not_collide_across_masters(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "1")
        low = derive_seed(0)
        monkeypatch.setenv("REPRO_TEST_SEED", "2")
        assert derive_seed(0) - low == STREAM_MULTIPLIER
        assert STREAM_MULTIPLIER > JITTER_STREAM_OFFSET


class TestRoutedGenerators:
    def test_np_rng_matches_default_rng_at_master_zero(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        ours = np_rng(7).random(4)
        historical = np.random.default_rng(7).random(4)
        assert np.array_equal(ours, historical)

    def test_py_rng_matches_seeded_random(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        assert py_rng(11).random() == random.Random(11).random()

    def test_master_reseeds_routed_streams(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SEED", "0")
        base = np_rng(7).random(4)
        monkeypatch.setenv("REPRO_TEST_SEED", "5")
        assert not np.array_equal(np_rng(7).random(4), base)


class TestDatasetRouting:
    def test_generators_stable_under_default_master(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
        from repro.datasets.generators import synthetic_like
        a = synthetic_like(instances=20, features=4, seed=3)
        b = synthetic_like(instances=20, features=4, seed=3)
        assert np.array_equal(a.features, b.features)

    def test_generators_follow_the_master_seed(self, monkeypatch):
        from repro.datasets.generators import synthetic_like
        monkeypatch.setenv("REPRO_TEST_SEED", "0")
        a = synthetic_like(instances=20, features=4, seed=3)
        monkeypatch.setenv("REPRO_TEST_SEED", "9")
        b = synthetic_like(instances=20, features=4, seed=3)
        assert not np.array_equal(a.features, b.features)


class TestLimbRandomSplit:
    def test_reproducible_matches_historical_constructor(self):
        a = LimbRandom.reproducible(5, thread_index=2)
        b = LimbRandom(seed=5, thread_index=2)
        assert a.randbits(128) == b.randbits(128)
        assert not a.entropy_backed

    def test_entropy_mode_is_system_random(self):
        rng = LimbRandom.entropy()
        assert rng.entropy_backed
        assert isinstance(rng._rng, random.SystemRandom)

    def test_reproducible_requires_a_seed(self):
        with pytest.raises(ValueError, match="explicit seed"):
            LimbRandom.reproducible(None)

    def test_default_constructor_is_entropy_backed(self):
        assert LimbRandom().entropy_backed
