"""Fusion-planner edge cases: degenerate shapes, nested slices, key mixing.

The property sweep in ``test_property_fusion.py`` covers the bulk of the
operand space; these tests pin the boundaries it rarely lands on --
zero-width tensors, one-element expressions, slice-of-slice pushdown,
and the cross-key guard.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.keys import generate_paillier_keypair
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.tensor import planner
from repro.tensor.meta import KeyMismatchError, TensorMeta, key_fingerprint
from repro.tensor.cipher import CipherTensor
from repro.tensor.plain import PlainTensor


class CountingEngine:
    """Delegates to a real engine while counting launches."""

    def __init__(self, engine):
        self._engine = engine
        self.calls = {"add_batch": 0, "scalar_mul_batch": 0,
                      "sum_ciphertexts": 0}

    def add_batch(self, left, right):
        self.calls["add_batch"] += 1
        return self._engine.add_batch(left, right)

    def scalar_mul_batch(self, words, scalars):
        self.calls["scalar_mul_batch"] += 1
        return self._engine.scalar_mul_batch(words, scalars)

    def sum_ciphertexts(self, words):
        self.calls["sum_ciphertexts"] += 1
        return self._engine.sum_ciphertexts(words)

    def __getattr__(self, name):
        return getattr(self._engine, name)


def encrypt(engine, packer, values):
    return engine.encrypt_tensor(
        PlainTensor.encode(np.asarray(values, dtype=np.float64), packer))


class TestEmptyTensor:
    def test_sum_node_rejects_zero_words(self):
        with pytest.raises(ValueError, match="cannot sum an empty tensor"):
            planner.Sum(planner.Leaf([]))

    def test_empty_cipher_tensor_sum_raises(self, engine, flat_packer):
        meta = TensorMeta(
            key_fingerprint=key_fingerprint(engine.public_key),
            nominal_bits=engine.nominal_bits,
            physical_bits=engine.physical_bits,
            scheme=flat_packer.scheme, capacity=1, shape=(0,), count=0)
        empty = CipherTensor(meta, words=[], engine=engine)
        assert empty.num_words == 0
        with pytest.raises(ValueError, match="cannot sum an empty tensor"):
            empty.sum()

    def test_empty_add_flushes_to_nothing_for_free(self, engine,
                                                   flat_packer):
        meta = TensorMeta(
            key_fingerprint=key_fingerprint(engine.public_key),
            nominal_bits=engine.nominal_bits,
            physical_bits=engine.physical_bits,
            scheme=flat_packer.scheme, capacity=1, shape=(0,), count=0)
        counting = CountingEngine(engine)
        a = CipherTensor(meta, words=[], engine=counting)
        b = CipherTensor(meta, words=[], engine=counting)
        total = (a + b).materialize()
        assert list(total.words) == []
        assert counting.calls == {"add_batch": 0, "scalar_mul_batch": 0,
                                  "sum_ciphertexts": 0}

    def test_add_needs_at_least_one_operand(self):
        with pytest.raises(ValueError, match="at least one operand"):
            planner.Add([])


class TestSingleElementCoalescing:
    def test_single_child_add_coalesces_to_zero_launches(self, engine,
                                                         flat_packer):
        counting = CountingEngine(engine)
        node = planner.Add([planner.Leaf([11, 22, 33])])
        assert node.flush(counting) == [11, 22, 33]
        assert counting.calls["add_batch"] == 0
        assert counting.calls["scalar_mul_batch"] == 0

    def test_scalar_one_is_skipped(self, engine):
        counting = CountingEngine(engine)
        node = planner.Scale(planner.Leaf([5, 6]), 1)
        assert node.flush(counting) == [5, 6]
        assert counting.calls["scalar_mul_batch"] == 0

    def test_one_element_sum_is_one_launch(self, engine, flat_packer):
        counting = CountingEngine(engine)
        tensor = encrypt(engine, flat_packer, [0.5])
        lazy = CipherTensor(tensor.meta, words=tensor.words,
                            engine=counting).sum()
        value = lazy.materialize()
        assert value.meta.count == 1
        assert value.meta.summands == tensor.meta.summands
        assert counting.calls["sum_ciphertexts"] == 1
        decoded = engine.decrypt_tensor(value).decode()
        assert decoded == pytest.approx([0.5],
                                        abs=flat_packer.scheme
                                        .quantization_step)

    def test_sliced_sum_is_identity(self, engine, flat_packer):
        summed = encrypt(engine, flat_packer, [0.1, 0.2]).sum()
        assert summed[0:1]._node is summed._node
        with pytest.raises(IndexError, match="exactly one word"):
            summed._node.sliced(0, 2)


class TestSliceOfSlicePushdown:
    def test_nested_slices_compose(self, engine, flat_packer):
        values = np.linspace(-0.8, 0.8, 10)
        tensor = encrypt(engine, flat_packer, values)
        nested = tensor[2:8][1:4]
        direct = tensor[3:6]
        assert nested.meta.count == 3
        assert list(nested.words) == list(direct.words)
        decoded = engine.decrypt_tensor(nested).decode()
        assert np.allclose(decoded, values[3:6],
                           atol=flat_packer.scheme.quantization_step)

    def test_pushdown_through_add_and_scale_costs_only_the_slice(
            self, engine, flat_packer):
        """Slicing a lazy weighted sum before flushing must run the
        engine on the sliced width, not the full width."""
        values_a = np.linspace(-0.5, 0.5, 8)
        values_b = np.linspace(0.4, -0.4, 8)
        base_a = encrypt(engine, flat_packer, values_a)
        base_b = encrypt(engine, flat_packer, values_b)
        counting = CountingEngine(engine)
        a = CipherTensor(base_a.meta, words=base_a.words, engine=counting)
        b = CipherTensor(base_b.meta, words=base_b.words, engine=counting)

        expr = a + 2 * b
        window = expr[2:6][1:3]          # two logical values
        assert window.is_lazy
        flushed = window.materialize()

        assert counting.calls["add_batch"] == 1
        assert counting.calls["scalar_mul_batch"] == 1
        assert len(flushed.words) == 2
        full = (base_a + 2 * base_b).materialize()
        assert list(flushed.words) == list(full.words)[3:5]

    def test_slice_of_slice_out_of_range(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, [0.1, 0.2, 0.3, 0.4])
        inner = tensor[1:3]
        with pytest.raises(IndexError):
            inner.meta.sliced(1, 3)


class TestMixedFingerprintAdd:
    def test_cross_key_add_raises_key_mismatch(self, engine, flat_packer):
        other_keypair = generate_paillier_keypair(
            128, rng=LimbRandom(seed=2002))
        other_engine = CpuPaillierEngine(other_keypair, ledger=CostLedger(),
                                         rng=LimbRandom(seed=10))
        ours = encrypt(engine, flat_packer, [0.25, -0.25])
        theirs = encrypt(other_engine, flat_packer, [0.25, -0.25])
        assert ours.meta.key_fingerprint != theirs.meta.key_fingerprint
        with pytest.raises(KeyMismatchError, match="different keys"):
            _ = ours + theirs

    def test_key_mismatch_is_a_value_error(self):
        """The fuzzer's typed-rejection contract groups KeyMismatchError
        with FrameError under ValueError; pin the hierarchy."""
        assert issubclass(KeyMismatchError, ValueError)
