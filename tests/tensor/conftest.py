"""Fixtures for the encrypted-tensor tests: small keys, small packers."""

from __future__ import annotations

import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker


@pytest.fixture()
def scheme():
    """16 value bits, 3 overflow bits (8 parties): 19-bit slots."""
    return QuantizationScheme(alpha=1.0, r_bits=16, num_parties=8)


@pytest.fixture()
def packed_packer(scheme):
    """Four slots per word -- fits a 128-bit key's 127-bit plaintext."""
    return BatchPacker(scheme, plaintext_bits=127, capacity=4)


@pytest.fixture()
def flat_packer(scheme):
    """One value per word (the uncompressed path)."""
    return BatchPacker(scheme, plaintext_bits=127, capacity=1)


@pytest.fixture()
def engine(paillier_128):
    return CpuPaillierEngine(paillier_128, ledger=CostLedger(),
                             rng=LimbRandom(seed=9))
