"""Tests for the PlainTensor encode -> quantize -> pack codec."""

import numpy as np
import pytest

from repro.tensor.plain import PLAINTEXT_FINGERPRINT, PlainTensor, packer_for


class TestRoundtrip:
    def test_values_roundtrip_within_quantization(self, packed_packer):
        values = np.linspace(-0.95, 0.95, 11)
        plain = PlainTensor.encode(values, packed_packer)
        step = packed_packer.scheme.quantization_step
        assert np.allclose(plain.decode(), values, atol=step)

    def test_shape_preserved(self, packed_packer):
        values = np.linspace(-0.5, 0.5, 12).reshape(3, 4)
        plain = PlainTensor.encode(values, packed_packer)
        assert plain.meta.shape == (3, 4)
        assert plain.decode().shape == (3, 4)

    def test_word_count_matches_capacity(self, packed_packer):
        plain = PlainTensor.encode(np.zeros(10), packed_packer)
        assert len(plain.words) == 3  # ceil(10 / 4)
        assert plain.meta.packed

    def test_capacity_one_not_packed(self, flat_packer):
        plain = PlainTensor.encode(np.zeros(5), flat_packer)
        assert len(plain.words) == 5
        assert not plain.meta.packed

    def test_fingerprint_is_plaintext_sentinel(self, flat_packer):
        plain = PlainTensor.encode(np.zeros(2), flat_packer)
        assert plain.meta.key_fingerprint == PLAINTEXT_FINGERPRINT


class TestViews:
    def test_slot_values_match_scheme_encoding(self, packed_packer):
        values = np.array([-1.0, 0.0, 0.5, 1.0, 0.25])
        plain = PlainTensor.encode(values, packed_packer)
        expected = tuple(packed_packer.scheme.encode_array(values))
        assert plain.slot_values() == expected

    def test_packer_for_reconstructs_unpacking(self, packed_packer):
        values = np.linspace(-0.9, 0.9, 9)
        plain = PlainTensor.encode(values, packed_packer)
        rebuilt = packer_for(plain.meta)
        assert rebuilt.capacity == packed_packer.capacity
        assert rebuilt.unpack(plain.word_list(), 9) == \
            list(plain.slot_values())


class TestInvariants:
    def test_immutable(self, flat_packer):
        plain = PlainTensor.encode(np.zeros(2), flat_packer)
        with pytest.raises(AttributeError):
            plain.words = ()

    def test_word_count_validated(self, flat_packer):
        plain = PlainTensor.encode(np.zeros(3), flat_packer)
        with pytest.raises(ValueError):
            PlainTensor(plain.words[:1], plain.meta)
