"""Tests for CipherTensor: lazy ops, fusion planning, key safety."""

import numpy as np
import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.tensor.cipher import CipherTensor
from repro.tensor.meta import KeyMismatchError
from repro.tensor.plain import PlainTensor


def encrypt(engine, packer, values):
    return engine.encrypt_tensor(PlainTensor.encode(values, packer))


@pytest.fixture()
def other_engine(paillier_256):
    return CpuPaillierEngine(paillier_256, ledger=CostLedger(),
                             rng=LimbRandom(seed=10))


class TestRoundtrip:
    def test_encrypt_decrypt(self, engine, packed_packer):
        values = np.linspace(-0.9, 0.9, 10)
        tensor = encrypt(engine, packed_packer, values)
        assert tensor.meta.key_fingerprint == engine.fingerprint()
        assert not tensor.is_lazy
        decoded = engine.decrypt_tensor(tensor).decode()
        step = packed_packer.scheme.quantization_step
        assert np.allclose(decoded, values, atol=step)

    def test_shape_travels_with_tensor(self, engine, packed_packer):
        values = np.linspace(-0.5, 0.5, 12).reshape(4, 3)
        tensor = encrypt(engine, packed_packer, values)
        assert engine.decrypt_tensor(tensor).decode().shape == (4, 3)

    def test_decrypt_needs_no_caller_metadata(self, engine, flat_packer):
        # Aggregate two tensors, decrypt without passing count/summands.
        t1 = encrypt(engine, flat_packer, np.full(4, 0.25))
        t2 = encrypt(engine, flat_packer, np.full(4, 0.5))
        decoded = engine.decrypt_tensor(t1 + t2).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, 0.75, atol=2 * step)


class TestLazyOps:
    def test_add_is_lazy_until_read(self, engine, packed_packer):
        t1 = encrypt(engine, packed_packer, np.full(8, 0.1))
        t2 = encrypt(engine, packed_packer, np.full(8, 0.2))
        expr = t1 + t2
        assert expr.is_lazy
        assert expr.meta.summands == 2
        _ = expr.words
        assert not expr.is_lazy

    def test_scalar_mul(self, engine, flat_packer):
        values = np.array([-0.5, 0.0, 0.5])
        tensor = encrypt(engine, flat_packer, values)
        tripled = 3 * tensor
        assert tripled.meta.summands == 3
        decoded = engine.decrypt_tensor(tripled).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, 3 * values, atol=3 * step)

    def test_scalar_folding_single_launch(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(4))
        expr = 2 * (2 * tensor)
        assert expr.meta.summands == 4
        assert expr.planned_engine_calls() == 1  # folded to one *4

    def test_mul_rejects_non_int(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(2))
        with pytest.raises(TypeError):
            _ = tensor * 1.5
        with pytest.raises(TypeError):
            _ = tensor * True

    def test_sum_capacity_one(self, engine, flat_packer):
        values = np.array([0.1, 0.2, 0.3, -0.4])
        tensor = encrypt(engine, flat_packer, values)
        total = tensor.sum()
        assert total.meta.count == 1
        assert total.meta.summands == 4
        decoded = engine.decrypt_tensor(total).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, values.sum(), atol=4 * step)

    def test_sum_packed_raises(self, engine, packed_packer):
        tensor = encrypt(engine, packed_packer, np.zeros(8))
        with pytest.raises(ValueError):
            tensor.sum()


class TestFusionPlanning:
    def test_add_tree_is_logarithmic(self, engine, flat_packer):
        tensors = [encrypt(engine, flat_packer, np.full(4, 0.05))
                   for _ in range(8)]
        expr = tensors[0]
        for tensor in tensors[1:]:
            expr = expr + tensor
        # 8 leaves reduce level-wise: ceil(log2 8) = 3 launches, not 7.
        assert expr.planned_engine_calls() == 3

    def test_scalars_coalesce_into_one_launch(self, engine, flat_packer):
        t1 = encrypt(engine, flat_packer, np.full(4, 0.1))
        t2 = encrypt(engine, flat_packer, np.full(4, 0.1))
        expr = 2 * t1 + 3 * t2
        # One coalesced scalar_mul_batch + one add level.
        assert expr.planned_engine_calls() == 2
        decoded = engine.decrypt_tensor(expr).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, 0.5, atol=5 * step)
        assert expr.meta.summands == 5

    def test_materialized_plan_is_zero(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(4))
        assert tensor.planned_engine_calls() == 0


class TestSlicing:
    def test_slice_is_free_and_word_aligned(self, engine, packed_packer):
        values = np.linspace(-0.9, 0.9, 12)
        tensor = encrypt(engine, packed_packer, values)
        head = tensor[0:8]
        assert head.planned_engine_calls() == 0
        assert head.num_words == 2
        decoded = engine.decrypt_tensor(head).decode()
        step = packed_packer.scheme.quantization_step
        assert np.allclose(decoded, values[:8], atol=step)

    def test_misaligned_slice_raises(self, engine, packed_packer):
        tensor = encrypt(engine, packed_packer, np.zeros(12))
        with pytest.raises(IndexError):
            _ = tensor[2:6]

    def test_int_index_capacity_one(self, engine, flat_packer):
        values = np.array([0.1, -0.2, 0.3])
        tensor = encrypt(engine, flat_packer, values)
        one = tensor[1]
        assert len(one) == 1
        decoded = engine.decrypt_tensor(one).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, [-0.2], atol=step)

    def test_slice_pushdown_through_add(self, engine, flat_packer):
        t1 = encrypt(engine, flat_packer, np.full(6, 0.2))
        t2 = encrypt(engine, flat_packer, np.full(6, 0.3))
        sliced = (t1 + t2)[2:4]
        assert sliced.num_words == 2
        decoded = engine.decrypt_tensor(sliced).decode()
        step = flat_packer.scheme.quantization_step
        assert np.allclose(decoded, 0.5, atol=2 * step)


class TestKeySafety:
    def test_cross_key_add_raises(self, engine, other_engine, flat_packer):
        t1 = encrypt(engine, flat_packer, np.zeros(4))
        t2 = encrypt(other_engine, flat_packer, np.zeros(4))
        with pytest.raises(KeyMismatchError):
            _ = t1 + t2

    def test_cross_key_decrypt_raises(self, engine, other_engine,
                                      flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(4))
        with pytest.raises(KeyMismatchError):
            other_engine.decrypt_tensor(tensor)


class TestInvariants:
    def test_immutable(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(2))
        with pytest.raises(AttributeError):
            tensor.meta = None

    def test_words_xor_node_required(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(2))
        with pytest.raises(ValueError):
            CipherTensor(tensor.meta)

    def test_word_count_validated(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(3))
        with pytest.raises(ValueError):
            CipherTensor(tensor.meta, words=list(tensor.words)[:1])

    def test_lazy_without_engine_raises(self, engine, flat_packer):
        tensor = encrypt(engine, flat_packer, np.zeros(2))
        detached = CipherTensor(tensor.meta, words=list(tensor.words))
        expr = detached + detached
        with pytest.raises(RuntimeError):
            expr.materialize()
        # Passing an engine explicitly recovers.
        assert not expr.materialize(engine=engine).is_lazy
