"""Tests for TensorMeta: validation and the summand algebra."""

import pytest

from repro.quantization.encoding import QuantizationScheme
from repro.tensor.meta import KeyMismatchError, TensorMeta, key_fingerprint
from repro.tensor.plain import PLAINTEXT_FINGERPRINT


def make_meta(count=8, capacity=4, summands=1, shape=None,
              fingerprint=PLAINTEXT_FINGERPRINT, num_parties=8):
    scheme = QuantizationScheme(alpha=1.0, r_bits=16,
                                num_parties=num_parties)
    return TensorMeta(
        key_fingerprint=fingerprint, nominal_bits=128, physical_bits=128,
        scheme=scheme, capacity=capacity,
        shape=shape if shape is not None else (count,), count=count,
        summands=summands, packed=capacity > 1)


class TestValidation:
    def test_bad_fingerprint_length(self):
        with pytest.raises(ValueError):
            make_meta(fingerprint=b"\x00" * 8)

    def test_shape_count_mismatch(self):
        with pytest.raises(ValueError):
            make_meta(count=8, shape=(3, 3))

    def test_multidim_shape_accepted(self):
        meta = make_meta(count=12, shape=(3, 4))
        assert meta.num_words == 3

    def test_zero_summands_rejected(self):
        with pytest.raises(ValueError):
            make_meta(summands=0)

    def test_num_words_rounds_up(self):
        assert make_meta(count=9, capacity=4).num_words == 3
        assert make_meta(count=8, capacity=4).num_words == 2
        assert make_meta(count=0, capacity=4, shape=(0,)).num_words == 0

    def test_scheme_id_is_stable(self):
        assert make_meta().scheme_id == "eq9:a1:r16:p8"


class TestKeyFingerprint:
    def test_sixteen_bytes(self, paillier_128):
        assert len(key_fingerprint(paillier_128.public_key)) == 16

    def test_distinct_keys_distinct_fingerprints(self, paillier_128,
                                                 paillier_256):
        assert key_fingerprint(paillier_128.public_key) != \
            key_fingerprint(paillier_256.public_key)


class TestSummandAlgebra:
    def test_add_sums_summands(self):
        combined = make_meta(summands=2).combine_add(make_meta(summands=3))
        assert combined.summands == 5

    def test_add_cross_key_raises(self, paillier_128):
        other = make_meta(
            fingerprint=key_fingerprint(paillier_128.public_key))
        with pytest.raises(KeyMismatchError):
            make_meta().combine_add(other)

    def test_add_layout_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_meta(capacity=4).combine_add(make_meta(capacity=1))

    def test_add_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            make_meta(count=8).combine_add(make_meta(count=4))

    def test_scale_multiplies_summands(self):
        assert make_meta(summands=2).scaled(3).summands == 6

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_meta().scaled(0)

    def test_sum_needs_capacity_one(self):
        with pytest.raises(ValueError):
            make_meta(capacity=4).summed(2)
        summed = make_meta(count=6, capacity=1).summed(6)
        assert summed.count == 1
        assert summed.summands == 6


class TestSlicing:
    def test_word_aligned_slice(self):
        meta = make_meta(count=12, capacity=4)
        sliced = meta.sliced(4, 12)
        assert sliced.count == 8
        assert sliced.num_words == 2

    def test_ragged_tail_slice_allowed(self):
        meta = make_meta(count=10, capacity=4)
        assert meta.sliced(8, 10).count == 2

    def test_misaligned_start_raises(self):
        with pytest.raises(IndexError):
            make_meta(count=12, capacity=4).sliced(2, 8)

    def test_misaligned_stop_raises(self):
        with pytest.raises(IndexError):
            make_meta(count=12, capacity=4).sliced(0, 6)

    def test_capacity_one_any_slice(self):
        meta = make_meta(count=7, capacity=1)
        assert meta.sliced(3, 6).count == 3
