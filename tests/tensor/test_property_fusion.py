"""Property test: lazy-fused expressions decrypt identically to eager.

Paillier's homomorphic ops are modular multiplications/exponentiations,
so the fused level-wise reduction and the eager pair-at-a-time path must
produce *bit-identical* ciphertexts -- not merely close decodes.  The
sweep covers value counts, packing capacities, quantization schemes,
operand counts and scalar factors.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker
from repro.tensor.plain import PlainTensor


@st.composite
def fusion_cases(draw):
    count = draw(st.integers(min_value=1, max_value=18))
    capacity = draw(st.sampled_from([1, 2, 4]))
    r_bits = draw(st.sampled_from([10, 14]))
    operands = draw(st.integers(min_value=2, max_value=4))
    # Summands after fusion = sum of scalars; keep within the 16-party
    # overflow headroom (4 reserved bits).
    scalars = draw(st.lists(st.integers(min_value=1, max_value=3),
                            min_size=operands, max_size=operands))
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    return count, capacity, r_bits, scalars, seed


class TestFusedEqualsEager:
    @settings(max_examples=20, deadline=None)
    @given(case=fusion_cases())
    def test_weighted_sum_matches(self, paillier_128, case):
        count, capacity, r_bits, scalars, seed = case
        scheme = QuantizationScheme(alpha=1.0, r_bits=r_bits,
                                    num_parties=16)
        packer = BatchPacker(scheme, plaintext_bits=127, capacity=capacity)
        engine = CpuPaillierEngine(paillier_128, ledger=CostLedger(),
                                   rng=LimbRandom(seed=7))
        rng = np.random.default_rng(seed)
        arrays = [rng.uniform(-0.9, 0.9, count) for _ in scalars]
        tensors = [engine.encrypt_tensor(PlainTensor.encode(a, packer))
                   for a in arrays]

        # Eager: one engine call per op, left-to-right.
        eager = None
        for tensor, scalar in zip(tensors, scalars):
            words = list(tensor.words)
            if scalar != 1:
                words = engine.scalar_mul_batch(words,
                                                [scalar] * len(words))
            eager = words if eager is None else \
                engine.add_batch(eager, words)

        # Lazy: one fused expression, flushed by the planner.
        expr = scalars[0] * tensors[0]
        for tensor, scalar in zip(tensors[1:], scalars[1:]):
            expr = expr + scalar * tensor
        fused = expr.materialize()

        assert list(fused.words) == eager
        assert fused.meta.summands == sum(scalars)

        decoded = engine.decrypt_tensor(fused).decode()
        expected = sum(s * a for s, a in zip(scalars, arrays))
        tolerance = sum(scalars) * scheme.quantization_step
        assert np.allclose(decoded, expected, atol=tolerance)

    @settings(max_examples=10, deadline=None)
    @given(count=st.integers(min_value=1, max_value=12),
           seed=st.integers(min_value=0, max_value=2 ** 16))
    def test_sum_matches_eager_accumulation(self, paillier_128, count,
                                            seed):
        scheme = QuantizationScheme(alpha=1.0, r_bits=12, num_parties=16)
        packer = BatchPacker(scheme, plaintext_bits=127, capacity=1)
        engine = CpuPaillierEngine(paillier_128, ledger=CostLedger(),
                                   rng=LimbRandom(seed=7))
        values = np.random.default_rng(seed).uniform(-0.9, 0.9, count)
        tensor = engine.encrypt_tensor(PlainTensor.encode(values, packer))

        total = tensor.sum().materialize()
        eager = list(tensor.words)[0]
        for word in list(tensor.words)[1:]:
            eager = engine.add_batch([eager], [word])[0]

        assert list(total.words) == [eager]
        decoded = engine.decrypt_tensor(total).decode()
        assert np.allclose(decoded, values.sum(),
                           atol=count * scheme.quantization_step)
