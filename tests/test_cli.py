"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_arguments(self):
        args = build_parser().parse_args(
            ["train", "Homo LR", "RCV1", "--epochs", "2",
             "--key-bits", "2048"])
        assert args.model == "Homo LR"
        assert args.dataset == "RCV1"
        assert args.epochs == 2
        assert args.key_bits == 2048

    def test_train_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "SVM"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "FLBooster" in out
        assert "RTX 3090" in out

    def test_compress(self, capsys):
        assert main(["compress"]) == 0
        out = capsys.readouterr().out
        assert "32.0x" in out and "127.9x" in out

    def test_compress_single_key(self, capsys):
        assert main(["compress", "2048"]) == 0
        out = capsys.readouterr().out
        assert "64.0x" in out and "127.9x" not in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "[6, 28, 318]" in out

    def test_train_quick(self, capsys):
        assert main(["train", "Homo LR", "Synthetic",
                     "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "FATE" in out and "FLBooster" in out


class TestReport:
    def test_report_to_stdout(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table3_running_time.txt").write_text("TABLE3 CONTENT")
        (results / "custom_extra.txt").write_text("EXTRA CONTENT")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "TABLE3 CONTENT" in out
        assert "EXTRA CONTENT" in out
        assert "Table III" in out

    def test_report_to_file(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1_fate_breakdown.txt").write_text("FIG1")
        output = tmp_path / "REPORT.md"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(output)]) == 0
        assert "FIG1" in output.read_text()

    def test_missing_results_raise(self, tmp_path):
        import pytest as _pytest
        with _pytest.raises(FileNotFoundError):
            main(["report", "--results-dir", str(tmp_path / "nope")])


class TestFailoverCommand:
    def test_single_scenario_prints_result_json(self, capsys):
        import json

        assert main(["failover", "--rounds", "1",
                     "--after-record", "2"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kills"][0]["kind"] == "coordinator_crash"
        assert data["kills"][0]["lsn"] == 2
        assert data["wal_records"] == 7

    def test_failover_mode(self, capsys):
        import json

        assert main(["failover", "--rounds", "1", "--mode", "failover",
                     "--after-record", "3"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kills"][0]["kind"] == "failover"

    def test_sweep_reports_every_boundary(self, capsys):
        assert main(["failover", "--sweep", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "boundaries tested    7" in out
        assert "bit-identical" in out

    def test_sweep_both_modes(self, capsys):
        assert main(["failover", "--sweep", "--mode", "both",
                     "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("bit-identical") == 2


class TestFaultsDumpPlan:
    def test_dump_plan_round_trips(self, capsys):
        import json

        from repro.federation.faults import FaultPlan

        assert main(["faults", "--dump-plan", "--crashes", "1",
                     "--coordinator-crash", "4", "--failover", "9"]) == 0
        data = json.loads(capsys.readouterr().out)
        plan = FaultPlan.from_dict(data)
        assert [e.after_record for e in plan.coordinator_events()] == [4, 9]
        assert plan.to_dict() == data
