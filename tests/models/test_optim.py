"""Tests for the SGD / Adam optimizers."""

import numpy as np
import pytest

from repro.models.optim import AdamOptimizer, SgdOptimizer


def quadratic_gradient(w):
    return 2.0 * (w - 3.0)      # minimum at w == 3


class TestSgd:
    def test_step_direction(self):
        optimizer = SgdOptimizer(learning_rate=0.1)
        w = np.array([0.0])
        w_next = optimizer.step(w, quadratic_gradient(w))
        assert w_next[0] > w[0]

    def test_converges_on_quadratic(self):
        optimizer = SgdOptimizer(learning_rate=0.1)
        w = np.array([0.0])
        for _ in range(200):
            w = optimizer.step(w, quadratic_gradient(w))
        assert w[0] == pytest.approx(3.0, abs=1e-6)

    def test_does_not_mutate_inputs(self):
        optimizer = SgdOptimizer(learning_rate=0.1)
        w = np.array([1.0])
        gradient = np.array([2.0])
        optimizer.step(w, gradient)
        assert w[0] == 1.0 and gradient[0] == 2.0

    def test_momentum_accelerates(self):
        plain = SgdOptimizer(learning_rate=0.01)
        momentum = SgdOptimizer(learning_rate=0.01, momentum=0.9)
        w_plain = w_momentum = np.array([0.0])
        for _ in range(20):
            w_plain = plain.step(w_plain, quadratic_gradient(w_plain))
            w_momentum = momentum.step(w_momentum,
                                       quadratic_gradient(w_momentum))
        assert abs(w_momentum[0] - 3.0) < abs(w_plain[0] - 3.0)

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            SgdOptimizer(learning_rate=0.0)
        with pytest.raises(ValueError):
            SgdOptimizer(learning_rate=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        optimizer = AdamOptimizer(learning_rate=0.2)
        w = np.array([0.0])
        for _ in range(300):
            w = optimizer.step(w, quadratic_gradient(w))
        assert w[0] == pytest.approx(3.0, abs=1e-3)

    def test_first_step_magnitude_is_learning_rate(self):
        # With bias correction the first Adam step is ~lr * sign(grad).
        optimizer = AdamOptimizer(learning_rate=0.5)
        w = optimizer.step(np.array([0.0]), np.array([123.0]))
        assert w[0] == pytest.approx(-0.5, rel=1e-6)

    def test_per_coordinate_scaling(self):
        optimizer = AdamOptimizer(learning_rate=0.1)
        w = optimizer.step(np.zeros(2), np.array([100.0, 0.001]))
        # Both coordinates move ~lr despite wildly different gradients.
        assert abs(w[0]) == pytest.approx(abs(w[1]), rel=1e-3)

    def test_state_independent_instances(self):
        a = AdamOptimizer(learning_rate=0.1)
        b = AdamOptimizer(learning_rate=0.1)
        a.step(np.zeros(1), np.ones(1))
        w_b = b.step(np.zeros(1), np.ones(1))
        assert w_b[0] == pytest.approx(-0.1, rel=1e-6)

    def test_invalid_learning_rate_raises(self):
        with pytest.raises(ValueError):
            AdamOptimizer(learning_rate=-0.1)
