"""Tests for the shared model machinery (secure transfer, traces)."""

import numpy as np
import pytest

from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)
from repro.models.base import CONVERGENCE_TOLERANCE, FederatedModel, \
    TrainingTrace


def make_runtime(config=FLBOOSTER_SYSTEM):
    return FederationRuntime(config, num_clients=4, key_bits=256,
                             physical_key_bits=256)


class TestSecureTransfer:
    def test_roundtrip_preserves_shape(self):
        runtime = make_runtime()
        values = np.linspace(-0.9, 0.9, 24).reshape(6, 4)
        received = FederatedModel.secure_transfer(
            runtime, values, sender="a", receiver="b", tag="t")
        assert received.shape == (6, 4)
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(received, values, atol=step)

    def test_scale_extends_range(self):
        runtime = make_runtime()
        values = np.array([5.0, -3.0, 0.25])
        received = FederatedModel.secure_transfer(
            runtime, values, sender="a", receiver="b", tag="t", scale=8.0)
        step = 8.0 * runtime.plan.scheme.quantization_step
        assert np.allclose(received, values, atol=step)

    def test_without_scale_clips(self):
        runtime = make_runtime()
        values = np.array([5.0])
        received = FederatedModel.secure_transfer(
            runtime, values, sender="a", receiver="b", tag="t")
        assert received[0] == pytest.approx(1.0, abs=0.05)   # clipped

    def test_invalid_scale_raises(self):
        runtime = make_runtime()
        with pytest.raises(ValueError):
            FederatedModel.secure_transfer(runtime, np.zeros(2),
                                           sender="a", receiver="b",
                                           tag="t", scale=0.0)

    def test_charges_comm_and_he(self):
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        FederatedModel.secure_transfer(runtime, np.zeros(64),
                                       sender="a", receiver="b", tag="leg")
        assert ledger.count("comm.leg") == 1
        assert ledger.seconds("he.encrypt") > 0
        assert ledger.seconds("he.decrypt") > 0

    def test_quantization_error_lossless_under_fate(self):
        runtime = make_runtime(FATE_SYSTEM)
        values = np.array([0.123456789012, -0.98765432101])
        received = FederatedModel.secure_transfer(
            runtime, values, sender="a", receiver="b", tag="t")
        assert np.allclose(received, values, atol=1e-12)


class TestTrainingTrace:
    def test_cumulative_seconds(self):
        trace = TrainingTrace(system="s", model="m", dataset="d",
                              losses=[1.0, 0.5], epoch_seconds=[2.0, 3.0])
        assert trace.cumulative_seconds == [2.0, 5.0]

    def test_final_loss(self):
        trace = TrainingTrace(system="s", model="m", dataset="d",
                              losses=[1.0, 0.4])
        assert trace.final_loss == 0.4

    def test_final_loss_empty_is_nan(self):
        trace = TrainingTrace(system="s", model="m", dataset="d")
        assert np.isnan(trace.final_loss)

    def test_converged_at(self):
        trace = TrainingTrace(system="s", model="m", dataset="d",
                              losses=[1.0, 0.5, 0.5 - 1e-9, 0.4])
        assert trace.converged_at(tolerance=1e-6) == 2

    def test_not_converged(self):
        trace = TrainingTrace(system="s", model="m", dataset="d",
                              losses=[1.0, 0.5, 0.1])
        assert trace.converged_at(tolerance=1e-6) is None

    def test_paper_tolerance_constant(self):
        assert CONVERGENCE_TOLERANCE == 1e-6
