"""Tests for evaluation metrics and model persistence."""

import numpy as np
import pytest

from repro.datasets import synthetic_like
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.models import (
    HeteroLogisticRegression,
    HeteroNeuralNetwork,
    HeteroSecureBoost,
    HomoLogisticRegression,
)
from repro.models.evaluation import (
    binary_accuracy,
    load_model_state,
    roc_auc,
    save_model_state,
)


class TestBinaryAccuracy:
    def test_perfect(self):
        assert binary_accuracy(np.array([1.0, -1.0]),
                               np.array([1.0, 0.0])) == 1.0

    def test_inverted(self):
        assert binary_accuracy(np.array([-1.0, 1.0]),
                               np.array([1.0, 0.0])) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            binary_accuracy(np.zeros(2), np.zeros(3))


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        assert roc_auc(scores, labels) == 1.0

    def test_perfectly_wrong(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        assert roc_auc(scores, labels) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        labels = (rng.random(2000) > 0.5).astype(float)
        assert 0.45 < roc_auc(scores, labels) < 0.55

    def test_ties_average(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0.0, 1.0, 0.0, 1.0])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=60)
        labels = (rng.random(60) > 0.4).astype(float)
        positives = scores[labels == 1.0]
        negatives = scores[labels == 0.0]
        pairwise = np.mean(
            (positives[:, None] > negatives[None, :]).astype(float)
            + 0.5 * (positives[:, None] == negatives[None, :]))
        assert roc_auc(scores, labels) == pytest.approx(float(pairwise))

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.2]), np.array([1.0, 1.0]))

    def test_invariant_under_monotone_transform(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(size=100)
        labels = (rng.random(100) > 0.5).astype(float)
        assert roc_auc(scores, labels) == \
            pytest.approx(roc_auc(np.exp(scores), labels))


@pytest.fixture(scope="module")
def dataset():
    return synthetic_like(instances=128, features=16, seed=6)


def trained(model_cls, dataset, **kwargs):
    model = model_cls(dataset, seed=1, **kwargs)
    runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                key_bits=256, physical_key_bits=256)
    model.train(runtime, max_epochs=2)
    return model


class TestPersistence:
    def test_homo_lr_roundtrip(self, dataset, tmp_path):
        model = trained(HomoLogisticRegression, dataset, num_clients=4)
        path = tmp_path / "homo.json"
        save_model_state(model, path)
        fresh = HomoLogisticRegression(dataset, num_clients=4, seed=1)
        load_model_state(fresh, path)
        assert np.array_equal(fresh.weights, model.weights)
        assert fresh.loss() == pytest.approx(model.loss())

    def test_hetero_lr_roundtrip(self, dataset, tmp_path):
        model = trained(HeteroLogisticRegression, dataset)
        path = tmp_path / "hetero.json"
        save_model_state(model, path)
        fresh = HeteroLogisticRegression(dataset, seed=1)
        load_model_state(fresh, path)
        assert np.allclose(fresh.forward(), model.forward())

    def test_hetero_nn_roundtrip(self, dataset, tmp_path):
        model = trained(HeteroNeuralNetwork, dataset, batch_size=64)
        path = tmp_path / "nn.json"
        save_model_state(model, path)
        fresh = HeteroNeuralNetwork(dataset, batch_size=64, seed=1)
        load_model_state(fresh, path)
        assert np.allclose(fresh.forward(), model.forward())

    def test_sbt_scores_roundtrip(self, dataset, tmp_path):
        model = trained(HeteroSecureBoost, dataset, max_depth=2)
        path = tmp_path / "sbt.json"
        save_model_state(model, path)
        fresh = HeteroSecureBoost(dataset, max_depth=2, seed=1)
        load_model_state(fresh, path)
        assert np.allclose(fresh.scores, model.scores)
        assert fresh.loss() == pytest.approx(model.loss())

    def test_wrong_model_rejected(self, dataset, tmp_path):
        model = trained(HomoLogisticRegression, dataset, num_clients=4)
        path = tmp_path / "state.json"
        save_model_state(model, path)
        other = HeteroLogisticRegression(dataset, seed=1)
        with pytest.raises(ValueError):
            load_model_state(other, path)

    def test_auc_improves_with_training(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4, seed=1)
        before = roc_auc(dataset.features @ model.weights + 1e-9
                         * np.arange(dataset.num_instances),
                         dataset.labels)
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=256, physical_key_bits=256)
        model.train(runtime, max_epochs=5)
        after = roc_auc(dataset.features @ model.weights, dataset.labels)
        assert after > max(before, 0.6)
