"""Tests for multi-host vertical LR (FATE's multi-host setting)."""

import numpy as np
import pytest

from repro.datasets import synthetic_like
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.models import HeteroLogisticRegression


@pytest.fixture(scope="module")
def dataset():
    return synthetic_like(instances=192, features=30, seed=4)


def make_runtime():
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4, key_bits=256,
                             physical_key_bits=256)


class TestMultiHost:
    def test_three_parties_cover_features(self, dataset):
        model = HeteroLogisticRegression(dataset, num_hosts=2, seed=0)
        total = model.guest.num_features + \
            sum(host.num_features for host in model.hosts)
        assert total == dataset.num_features
        assert len(model.hosts) == 2

    def test_invalid_host_count_raises(self, dataset):
        with pytest.raises(ValueError):
            HeteroLogisticRegression(dataset, num_hosts=0)

    def test_training_converges(self, dataset):
        model = HeteroLogisticRegression(dataset, num_hosts=2,
                                         batch_size=48, seed=0)
        trace = model.train(make_runtime(), max_epochs=6)
        assert min(trace.losses) < trace.losses[0]
        assert model.accuracy() > 0.6

    def test_all_hosts_learn(self, dataset):
        model = HeteroLogisticRegression(dataset, num_hosts=3,
                                         batch_size=48, seed=0)
        model.train(make_runtime(), max_epochs=4)
        for weights in model.host_weights:
            assert np.any(weights != 0)

    def test_transfer_count_scales_with_hosts(self, dataset):
        batches = -(-dataset.num_instances // 48)
        for hosts in (1, 2):
            model = HeteroLogisticRegression(dataset, num_hosts=hosts,
                                             batch_size=48, seed=0)
            runtime = make_runtime()
            ledger = runtime.begin_epoch()
            model.run_epoch(runtime)
            assert ledger.count("comm.hetero_lr.forward") == \
                batches * hosts
            assert ledger.count("comm.hetero_lr.residual") == \
                batches * hosts

    def test_single_host_backwards_compatible(self, dataset):
        model = HeteroLogisticRegression(dataset, seed=0)
        assert model.host is model.hosts[0]
        assert len(model.host_weights) == 1
