"""Tests for the Homo NN extension model."""

import numpy as np
import pytest

from repro.datasets import synthetic_like, train_test_split
from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)
from repro.models import HomoNeuralNetwork


@pytest.fixture(scope="module")
def dataset():
    return synthetic_like(instances=192, features=24, seed=5)


def make_runtime(config=FLBOOSTER_SYSTEM):
    return FederationRuntime(config, num_clients=4, key_bits=256,
                             physical_key_bits=256)


class TestTraining:
    def test_loss_decreases(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, batch_size=48,
                                  seed=0)
        trace = model.train(make_runtime(), max_epochs=5)
        assert trace.losses[-1] < trace.losses[0]

    def test_beats_chance(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, batch_size=48,
                                  seed=0)
        model.train(make_runtime(), max_epochs=6)
        assert model.accuracy() > 0.7

    def test_full_parameter_vector_aggregated(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, seed=0)
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        # Each round packs the whole parameter vector.
        capacity = runtime.plan.packer.capacity
        words = -(-model.parameter_count // capacity)
        per_round_uploads = 4          # one per client
        assert ledger.count("comm.upload.homo_nn.delta") == \
            per_round_uploads * model.rounds_per_epoch

    def test_client_count_mismatch_raises(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, seed=0)
        with pytest.raises(ValueError):
            model.run_epoch(FederationRuntime(
                FLBOOSTER_SYSTEM, num_clients=2, key_bits=256,
                physical_key_bits=256))

    def test_invalid_rounds_raise(self, dataset):
        with pytest.raises(ValueError):
            HomoNeuralNetwork(dataset, rounds_per_epoch=0)


class TestFlattening:
    def test_roundtrip(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, seed=0)
        flat = model._flatten(model.params)
        assert len(flat) == model.parameter_count
        restored = model._unflatten(flat)
        for name, value in model.params.items():
            assert np.array_equal(restored[name], value)


class TestInference:
    def test_predicts_on_heldout(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.25, seed=1)
        model = HomoNeuralNetwork(train, num_clients=4, batch_size=48,
                                  seed=0)
        model.train(make_runtime(), max_epochs=6)
        scores = model.predict_scores(test.features)
        assert np.mean((scores > 0) == test.labels) > 0.6

    def test_feature_width_validated(self, dataset):
        model = HomoNeuralNetwork(dataset, num_clients=4, seed=0)
        with pytest.raises(ValueError):
            model.predict_scores(np.zeros((3, 5)))


class TestQuantizationRobustness:
    def test_fate_and_flbooster_agree(self, dataset):
        fate_model = HomoNeuralNetwork(dataset, num_clients=4,
                                       batch_size=48, seed=0)
        fate_trace = fate_model.train(make_runtime(FATE_SYSTEM),
                                      max_epochs=3)
        flb_model = HomoNeuralNetwork(dataset, num_clients=4,
                                      batch_size=48, seed=0)
        flb_trace = flb_model.train(make_runtime(FLBOOSTER_SYSTEM),
                                    max_epochs=3)
        assert flb_trace.final_loss == pytest.approx(
            fate_trace.final_loss, abs=0.15)
