"""Tests for losses, gradients and the Taylor linearization."""

import numpy as np
import pytest

from repro.models.losses import (
    gbdt_gradients,
    logistic_gradient,
    logistic_loss,
    sigmoid,
    taylor_gradient,
    taylor_residual,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetry(self):
        z = np.linspace(-5, 5, 11)
        assert np.allclose(sigmoid(z) + sigmoid(-z), 1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(out))


class TestLogisticLoss:
    def test_perfect_predictions_low_loss(self):
        z = np.array([10.0, -10.0])
        y = np.array([1.0, 0.0])
        assert logistic_loss(z, y) < 1e-4

    def test_chance_level(self):
        z = np.zeros(4)
        y = np.array([0.0, 1.0, 0.0, 1.0])
        assert logistic_loss(z, y) == pytest.approx(np.log(2))

    def test_l2_term(self):
        z = np.zeros(2)
        y = np.array([0.0, 1.0])
        w = np.array([2.0, 0.0])
        with_l2 = logistic_loss(z, y, weights=w, l2=0.1)
        assert with_l2 == pytest.approx(np.log(2) + 0.5 * 0.1 * 4.0)

    def test_extreme_logits_finite(self):
        assert np.isfinite(logistic_loss(np.array([1e5, -1e5]),
                                         np.array([0.0, 1.0])))


class TestLogisticGradient:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 5))
        y = (rng.random(40) > 0.5).astype(float)
        w = rng.normal(size=5) * 0.1
        analytic = logistic_gradient(X, X @ w, y, weights=w, l2=0.01)
        eps = 1e-6
        for j in range(5):
            w_plus, w_minus = w.copy(), w.copy()
            w_plus[j] += eps
            w_minus[j] -= eps
            numeric = (logistic_loss(X @ w_plus, y, w_plus, 0.01)
                       - logistic_loss(X @ w_minus, y, w_minus, 0.01)) \
                / (2 * eps)
            assert analytic[j] == pytest.approx(numeric, abs=1e-5)

    def test_zero_at_optimum_direction(self):
        X = np.array([[1.0], [1.0]])
        y = np.array([0.0, 1.0])
        gradient = logistic_gradient(X, X @ np.zeros(1), y)
        assert gradient[0] == pytest.approx(0.0)


class TestTaylorResidual:
    def test_linear_in_forward_sum(self):
        # The property vertical FL relies on: d(z1 + z2) splits additively.
        y = np.array([1.0, 0.0])
        z1 = np.array([0.3, -0.2])
        z2 = np.array([0.1, 0.4])
        combined = taylor_residual(z1 + z2, y)
        partial = 0.25 * z1 + taylor_residual(z2, y)
        assert np.allclose(combined, partial)

    def test_approximates_true_residual_near_zero(self):
        y = np.array([1.0, 0.0, 1.0])
        z = np.array([0.05, -0.08, 0.01])
        true_residual = sigmoid(z) - y
        assert np.allclose(taylor_residual(z, y), true_residual, atol=0.03)

    def test_taylor_gradient_shape_and_l2(self):
        X = np.ones((4, 3))
        d = np.full(4, 0.5)
        w = np.ones(3)
        gradient = taylor_gradient(X, d, weights=w, l2=0.1)
        assert gradient.shape == (3,)
        assert np.allclose(gradient, 0.5 + 0.1)


class TestGbdtGradients:
    def test_values(self):
        z = np.array([0.0])
        y = np.array([1.0])
        g, h = gbdt_gradients(z, y)
        assert g[0] == pytest.approx(-0.5)
        assert h[0] == pytest.approx(0.25)

    def test_hessian_positive(self):
        z = np.linspace(-10, 10, 21)
        _, h = gbdt_gradients(z, np.zeros(21))
        assert np.all(h > 0)

    def test_gradient_sign_tracks_error(self):
        z = np.array([2.0, -2.0])
        y = np.array([0.0, 1.0])
        g, _ = gbdt_gradients(z, y)
        assert g[0] > 0 and g[1] < 0
