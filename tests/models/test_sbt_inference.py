"""Tests for SecureBoost inference on unseen data."""

import numpy as np
import pytest

from repro.datasets import synthetic_like
from repro.datasets.partition import train_test_split, vertical_split
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.models import HeteroSecureBoost
from repro.models.evaluation import roc_auc


@pytest.fixture(scope="module")
def split_data():
    dataset = synthetic_like(instances=320, features=24, seed=8)
    return train_test_split(dataset, test_fraction=0.25, seed=8)


@pytest.fixture(scope="module")
def trained_model(split_data):
    train, _test = split_data
    model = HeteroSecureBoost(train, max_depth=3, num_bins=8, seed=2)
    runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                key_bits=256, physical_key_bits=256)
    model.train(runtime, max_epochs=6)
    return model


def split_columns(model, dataset):
    """Column-align a dataset to the model's guest/host partitions.

    The vertical split is deterministic per seed, so re-splitting the
    test half with the training seed yields matching blocks.
    """
    guest, host = vertical_split(dataset, num_parties=2, seed=model.seed)
    return guest.features, host.features


class TestRoutingConsistency:
    def test_training_rows_reproduce_training_scores(self, split_data,
                                                     trained_model):
        # Routing the training rows through the threshold-based path
        # must agree with the bin-index path used during fitting.
        scores = trained_model.predict_scores(
            trained_model.guest.features, trained_model.host.features)
        assert np.allclose(scores, trained_model.scores, atol=1e-9)

    def test_shape_validation(self, trained_model):
        with pytest.raises(ValueError):
            trained_model.predict_scores(
                np.zeros((3, trained_model.guest.num_features)),
                np.zeros((4, trained_model.host.num_features)))
        with pytest.raises(ValueError):
            trained_model.predict_scores(np.zeros((3, 1)),
                                         np.zeros((3, 1)))


class TestGeneralization:
    def test_heldout_auc_beats_chance(self, split_data, trained_model):
        _train, test = split_data
        guest_block, host_block = split_columns(trained_model, test)
        scores = trained_model.predict_scores(guest_block, host_block)
        assert roc_auc(scores, test.labels) > 0.7

    def test_binary_predictions(self, split_data, trained_model):
        # A short ensemble's raw scores are miscalibrated at the 0
        # threshold (ranking quality is the AUC test above), so the
        # accuracy bar here is only better-than-chance.
        _train, test = split_data
        guest_block, host_block = split_columns(trained_model, test)
        predictions = trained_model.predict(guest_block, host_block)
        assert set(np.unique(predictions)) <= {0.0, 1.0}
        assert np.mean(predictions == test.labels) > 0.5


class TestTrainTestSplit:
    def test_sizes(self):
        dataset = synthetic_like(instances=100, features=8, seed=1)
        train, test = train_test_split(dataset, test_fraction=0.3, seed=1)
        assert test.num_instances == 30
        assert train.num_instances == 70

    def test_disjoint_and_complete(self):
        dataset = synthetic_like(instances=60, features=4, seed=2)
        train, test = train_test_split(dataset, seed=2)
        combined = sorted(map(tuple, np.vstack([train.features,
                                                test.features])))
        assert combined == sorted(map(tuple, dataset.features))

    def test_metadata_preserved(self):
        dataset = synthetic_like(instances=50, features=4, seed=3)
        train, _test = train_test_split(dataset, seed=3)
        assert train.name == dataset.name
        assert train.paper_instances == dataset.paper_instances

    def test_invalid_fraction_raises(self):
        dataset = synthetic_like(instances=50, features=4, seed=4)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(dataset, test_fraction=1.0)
