"""Tests for the four benchmark FL models (convergence + accounting)."""

import numpy as np
import pytest

from repro.datasets import synthetic_like
from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)
from repro.models import (
    HeteroLogisticRegression,
    HeteroNeuralNetwork,
    HeteroSecureBoost,
    HomoLogisticRegression,
    MODEL_REGISTRY,
)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_like(instances=192, features=24, seed=3)


def make_runtime(config=FLBOOSTER_SYSTEM, clients=4):
    return FederationRuntime(config, num_clients=clients, key_bits=256,
                             physical_key_bits=256)


class TestRegistry:
    def test_paper_models_plus_extension(self):
        assert set(MODEL_REGISTRY) == {"Homo LR", "Hetero LR",
                                       "Hetero SBT", "Hetero NN",
                                       "Homo NN"}


class TestHomoLr:
    def test_loss_decreases(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4,
                                       batch_size=48, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=6)
        assert trace.losses[-1] < trace.losses[0]

    def test_beats_chance_accuracy(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4,
                                       batch_size=48, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=8)
        assert model.accuracy() > 0.6

    def test_client_count_mismatch_raises(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4)
        runtime = make_runtime(clients=2)
        with pytest.raises(ValueError):
            model.run_epoch(runtime)

    def test_charges_aggregation_rounds(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4,
                                       rounds_per_epoch=2, seed=0)
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        assert ledger.count("comm.upload.homo_lr.delta") == 8  # 2 rounds x 4

    def test_invalid_rounds_raise(self, dataset):
        with pytest.raises(ValueError):
            HomoLogisticRegression(dataset, rounds_per_epoch=0)


class TestHeteroLr:
    def test_loss_decreases(self, dataset):
        model = HeteroLogisticRegression(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=6)
        assert trace.losses[-1] < trace.losses[0] + 0.02
        assert min(trace.losses) < trace.losses[0]

    def test_both_parties_learn(self, dataset):
        model = HeteroLogisticRegression(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=4)
        assert np.any(model.guest_weights != 0)
        assert np.any(model.host_weights != 0)

    def test_two_transfers_per_batch(self, dataset):
        model = HeteroLogisticRegression(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        batches = -(-dataset.num_instances // 48)
        assert ledger.count("comm.hetero_lr.forward") == batches
        assert ledger.count("comm.hetero_lr.residual") == batches


class TestHeteroSbt:
    def test_loss_decreases_monotonically(self, dataset):
        model = HeteroSecureBoost(dataset, max_depth=3, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=5)
        assert all(later <= earlier + 1e-9 for earlier, later
                   in zip(trace.losses, trace.losses[1:]))

    def test_strong_accuracy(self, dataset):
        model = HeteroSecureBoost(dataset, max_depth=3, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=6)
        assert model.accuracy() > 0.8

    def test_one_tree_per_epoch(self, dataset):
        model = HeteroSecureBoost(dataset, max_depth=2, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=3)
        assert len(model.trees) == 3

    def test_gradient_broadcast_charged(self, dataset):
        model = HeteroSecureBoost(dataset, max_depth=2, seed=0)
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        assert ledger.count("comm.sbt.gradients") == 1
        assert ledger.count("comm.sbt.histograms") >= 1

    def test_uses_both_parties_features(self, dataset):
        model = HeteroSecureBoost(dataset, max_depth=3, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=6)
        parties = set()
        for tree in model.trees:
            stack = [tree.root]
            while stack:
                node = stack.pop()
                if not node.is_leaf:
                    parties.add(node.party)
                    stack.extend([node.left, node.right])
        assert parties <= {"guest", "host"} and parties


class TestHeteroNn:
    def test_loss_decreases(self, dataset):
        model = HeteroNeuralNetwork(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=6)
        assert trace.losses[-1] < trace.losses[0]

    def test_beats_chance_accuracy(self, dataset):
        model = HeteroNeuralNetwork(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        model.train(runtime, max_epochs=8)
        assert model.accuracy() > 0.6

    def test_forward_and_backward_transfers(self, dataset):
        model = HeteroNeuralNetwork(dataset, batch_size=48, seed=0)
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        batches = -(-dataset.num_instances // 48)
        assert ledger.count("comm.hetero_nn.forward") == batches
        assert ledger.count("comm.hetero_nn.backward") == batches


class TestTrainingLoop:
    def test_trace_records_epochs(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=3)
        assert len(trace.losses) == len(trace.epoch_seconds) == \
            len(trace.reports) <= 3
        assert all(seconds > 0 for seconds in trace.epoch_seconds)

    def test_cumulative_seconds_monotone(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=3)
        cumulative = trace.cumulative_seconds
        assert all(b > a for a, b in zip(cumulative, cumulative[1:]))

    def test_convergence_stops_early(self, dataset):
        model = HomoLogisticRegression(dataset, num_clients=4, seed=0)
        runtime = make_runtime()
        trace = model.train(runtime, max_epochs=50, tolerance=10.0)
        assert len(trace.losses) == 2    # tolerance hit after 2nd epoch

    def test_quantization_noise_visible_under_fate_vs_flbooster(self,
                                                                dataset):
        # FATE path is (near-)lossless; FLBooster quantizes at reduced
        # precision in scaled mode -- losses must differ but stay close.
        fate_model = HomoLogisticRegression(dataset, num_clients=4, seed=0)
        fate_trace = fate_model.train(make_runtime(FATE_SYSTEM),
                                      max_epochs=3)
        flb_model = HomoLogisticRegression(dataset, num_clients=4, seed=0)
        flb_trace = flb_model.train(make_runtime(FLBOOSTER_SYSTEM),
                                    max_epochs=3)
        assert flb_trace.final_loss == \
            pytest.approx(fate_trace.final_loss, abs=0.15)
