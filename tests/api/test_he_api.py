"""Tests for the Table I Paillier / RSA array APIs and FlBooster facade."""

import pytest

from repro.api import FlBooster, PaillierApi, RsaApi


@pytest.fixture(scope="module")
def fl():
    return FlBooster(seed=99)


@pytest.fixture(scope="module")
def paillier_keys(fl):
    return fl.paillier.key_gen(128)


@pytest.fixture(scope="module")
def rsa_keys(fl):
    return fl.rsa.key_gen(128)


class TestPaillierApi:
    def test_key_gen_order_matches_table1(self, paillier_keys):
        pri, pub = paillier_keys
        assert hasattr(pri, "lam") and hasattr(pub, "n")

    def test_encrypt_decrypt_array(self, fl, paillier_keys):
        pri, pub = paillier_keys
        values = [0, 1, 12345, 999999]
        assert fl.paillier.decrypt(pri, fl.paillier.encrypt(pub, values)) \
            == values

    def test_homomorphic_add(self, fl, paillier_keys):
        pri, pub = paillier_keys
        c1 = fl.paillier.encrypt(pub, [1, 2, 3])
        c2 = fl.paillier.encrypt(pub, [10, 20, 30])
        assert fl.paillier.decrypt(pri, fl.paillier.add(pub, c1, c2)) == \
            [11, 22, 33]

    def test_scalar_plaintext_accepted(self, fl, paillier_keys):
        pri, pub = paillier_keys
        assert fl.paillier.decrypt(pri, fl.paillier.encrypt(pub, 7)) == [7]

    def test_add_length_mismatch_raises(self, fl, paillier_keys):
        _, pub = paillier_keys
        with pytest.raises(ValueError):
            fl.paillier.add(pub, [1], [1, 2])

    def test_randomized_ciphertexts(self, fl, paillier_keys):
        _, pub = paillier_keys
        a = fl.paillier.encrypt(pub, [5])
        b = fl.paillier.encrypt(pub, [5])
        assert a != b


class TestRsaApi:
    def test_roundtrip(self, fl, rsa_keys):
        pri, pub = rsa_keys
        values = [0, 1, 999, 123456]
        assert fl.rsa.decrypt(pri, fl.rsa.encrypt(pub, values)) == values

    def test_homomorphic_mul(self, fl, rsa_keys):
        pri, pub = rsa_keys
        c1 = fl.rsa.encrypt(pub, [2, 3])
        c2 = fl.rsa.encrypt(pub, [5, 7])
        assert fl.rsa.decrypt(pri, fl.rsa.mul(pub, c1, c2)) == [10, 21]

    def test_out_of_range_raises(self, fl, rsa_keys):
        _, pub = rsa_keys
        with pytest.raises(ValueError):
            fl.rsa.encrypt(pub, [pub.n])

    def test_mul_length_mismatch_raises(self, fl, rsa_keys):
        _, pub = rsa_keys
        with pytest.raises(ValueError):
            fl.rsa.mul(pub, [1, 2], [1])


class TestFacade:
    def test_table1_passthroughs(self, fl):
        assert fl.add([1], [2]) == [3]
        assert fl.sub([5], [2]) == [3]
        assert fl.mul([5], [2]) == [10]
        assert fl.div([5], [2]) == [2]
        assert fl.mod([5], 3) == [2]
        assert fl.mod_inv([2], 5) == [3]
        assert fl.mod_mul([2], [3], 5) == [1]
        assert fl.mod_pow([2], [3], 5) == [3]

    def test_shared_device(self, fl):
        assert fl.ops.kernels is fl.kernels
        assert fl.paillier.kernels is fl.kernels
        assert fl.rsa.kernels is fl.kernels

    def test_device_accumulates_session_launches(self):
        session = FlBooster(seed=1)
        session.mod_mul([1, 2], [3, 4], 101)
        pri, pub = session.paillier.key_gen(64)
        session.paillier.encrypt(pub, [1, 2])
        assert len(session.kernels.device.launches) >= 3

    def test_separate_instances_isolated(self):
        a = FlBooster(seed=1)
        b = FlBooster(seed=1)
        a.mod_mul([1], [1], 3)
        assert len(b.kernels.device.launches) == 0
