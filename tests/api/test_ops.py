"""Tests for the Table I array-operation APIs."""

import pytest

from repro.api.ops import ArrayOps


@pytest.fixture()
def ops():
    return ArrayOps()


class TestFundamental:
    def test_add(self, ops):
        assert ops.add([1, 2], [3, 4]) == [4, 6]

    def test_sub(self, ops):
        assert ops.sub([10, 20], [3, 4]) == [7, 16]

    def test_mul(self, ops):
        assert ops.mul([2, 3], [4, 5]) == [8, 15]

    def test_div_floor(self, ops):
        assert ops.div([7, 20], [2, 6]) == [3, 3]

    def test_div_by_zero_raises(self, ops):
        with pytest.raises(ZeroDivisionError):
            ops.div([1], [0])

    def test_scalar_broadcast(self, ops):
        assert ops.add([1, 2, 3], 10) == [11, 12, 13]
        assert ops.mul(2, [1, 2, 3]) == [2, 4, 6]

    def test_length_mismatch_raises(self, ops):
        with pytest.raises(ValueError):
            ops.add([1, 2], [1, 2, 3])

    def test_multiprecision_values(self, ops):
        big = 1 << 2048
        assert ops.mul([big], [big]) == [big * big]


class TestModular:
    def test_mod(self, ops):
        assert ops.mod([10, 22], 7) == [3, 1]

    def test_mod_invalid_modulus_raises(self, ops):
        with pytest.raises(ValueError):
            ops.mod([1], 0)

    def test_mod_inv(self, ops):
        result = ops.mod_inv([3, 5], 7)
        assert [(x * y) % 7 for x, y in zip([3, 5], result)] == [1, 1]

    def test_mod_inv_noninvertible_raises(self, ops):
        with pytest.raises(ValueError):
            ops.mod_inv([2], 4)

    def test_mod_mul(self, ops):
        n = 101
        assert ops.mod_mul([10, 20], [30, 40], n) == \
            [(10 * 30) % n, (20 * 40) % n]

    def test_mod_pow(self, ops):
        n = 1009
        assert ops.mod_pow([2, 3], [10, 5], n) == \
            [pow(2, 10, n), pow(3, 5, n)]

    def test_mod_pow_broadcast_exponent(self, ops):
        n = 1009
        assert ops.mod_pow([2, 3, 4], 5, n) == [pow(b, 5, n)
                                                for b in (2, 3, 4)]

    def test_gpu_launches_recorded(self, ops):
        ops.mod_mul([1, 2, 3], [4, 5, 6], 1007)
        assert len(ops.kernels.device.launches) == 1
