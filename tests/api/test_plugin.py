"""Tests for the python-paillier-style plugin adapter."""

import pytest

from repro.api.plugin import (
    EncryptedNumber,
    generate_accelerated_keypair,
)


@pytest.fixture(scope="module")
def keypair():
    return generate_accelerated_keypair(
        key_bits=1024, alpha=1024.0, r_bits=40, max_summands=64,
        physical_key_bits=256, seed=71)


class TestScalarInterface:
    def test_roundtrip(self, keypair):
        public, private = keypair
        for value in (0.0, 3.25, -511.5, 1023.0):
            assert private.decrypt(public.encrypt(value)) == \
                pytest.approx(value, abs=1e-6)

    def test_addition(self, keypair):
        public, private = keypair
        total = public.encrypt(3.25) + public.encrypt(-1.25)
        assert private.decrypt(total) == pytest.approx(2.0, abs=1e-6)

    def test_add_plain(self, keypair):
        public, private = keypair
        assert private.decrypt(public.encrypt(10.0) + 5.5) == \
            pytest.approx(15.5, abs=1e-6)
        assert private.decrypt(2.5 + public.encrypt(1.0)) == \
            pytest.approx(3.5, abs=1e-6)

    def test_scalar_multiplication(self, keypair):
        public, private = keypair
        assert private.decrypt(public.encrypt(2.5) * 3) == \
            pytest.approx(7.5, abs=1e-5)
        assert private.decrypt(3 * public.encrypt(-2.0)) == \
            pytest.approx(-6.0, abs=1e-5)

    def test_float_scalar_rejected(self, keypair):
        public, _private = keypair
        with pytest.raises(ValueError):
            public.encrypt(1.0) * 0.5

    def test_long_sums_track_offsets(self, keypair):
        public, private = keypair
        numbers = [public.encrypt(float(i)) for i in range(10)]
        total = numbers[0]
        for number in numbers[1:]:
            total = total + number
        assert private.decrypt(total) == pytest.approx(45.0, abs=1e-5)

    def test_summand_overflow_guard(self, keypair):
        public, private = keypair
        total = public.encrypt(0.0)
        for _ in range(public.max_summands):
            total = total + public.encrypt(0.0)
        with pytest.raises(OverflowError):
            private.decrypt(total)

    def test_mixed_keys_rejected(self, keypair):
        public, _ = keypair
        other_public, _ = generate_accelerated_keypair(
            key_bits=1024, physical_key_bits=256, seed=99)
        with pytest.raises(ValueError):
            public.encrypt(1.0) + other_public.encrypt(1.0)


class TestBatchInterface:
    def test_encrypt_many_roundtrip(self, keypair):
        public, private = keypair
        values = [1.5, -2.25, 100.0, 0.0]
        numbers = public.encrypt_many(values)
        assert all(isinstance(n, EncryptedNumber) for n in numbers)
        assert private.decrypt_many(numbers) == \
            pytest.approx(values, abs=1e-5)

    def test_batch_is_single_launch_per_stage(self, keypair):
        public, _private = keypair
        device = public._engine.kernels.device
        before = len(device.launches)
        public.encrypt_many([1.0] * 64)
        launches = len(device.launches) - before
        assert launches <= 3          # g^m charge + r^n charge + final mul


class TestConfiguration:
    def test_precision_follows_r_bits(self):
        coarse_pub, coarse_pri = generate_accelerated_keypair(
            key_bits=1024, alpha=1024.0, r_bits=16,
            physical_key_bits=256, seed=72)
        value = 123.456789
        coarse_error = abs(coarse_pri.decrypt(coarse_pub.encrypt(value))
                           - value)
        fine_pub, fine_pri = generate_accelerated_keypair(
            key_bits=1024, alpha=1024.0, r_bits=48,
            physical_key_bits=256, seed=72)
        fine_error = abs(fine_pri.decrypt(fine_pub.encrypt(value)) - value)
        assert fine_error < coarse_error

    def test_oversized_slot_rejected(self):
        with pytest.raises(ValueError):
            generate_accelerated_keypair(key_bits=1024, r_bits=300,
                                         physical_key_bits=256, seed=73)
