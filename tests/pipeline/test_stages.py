"""Tests for the Fig. 4 staged pipelines."""

import numpy as np
import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.mpint.primes import LimbRandom
from repro.pipeline import (
    DecryptionPipeline,
    EncryptionPipeline,
    HomomorphicComputePipeline,
)
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker


@pytest.fixture()
def setup(paillier_256):
    engine = CpuPaillierEngine(paillier_256, nominal_bits=1024,
                               rng=LimbRandom(seed=3))
    scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=4)
    packer = BatchPacker(scheme,
                         plaintext_bits=engine.physical_plaintext_bits)
    return engine, packer


class TestEncryptionPipeline:
    def test_stage_names_match_fig4(self, setup):
        engine, packer = setup
        result = EncryptionPipeline(engine, packer).run(np.zeros(10))
        names = [stage.name for stage in result.stages]
        assert names == ["data_conversion", "encode_quantize", "pad_pack",
                         "gpu_compute", "return_conversion"]

    def test_produces_decryptable_ciphertexts(self, setup):
        engine, packer = setup
        values = np.linspace(-0.9, 0.9, 20)
        encrypted = EncryptionPipeline(engine, packer).run(values)
        decrypted = DecryptionPipeline(engine, packer).run(
            encrypted.values, count=20)
        assert np.allclose(decrypted.values, values,
                           atol=packer.scheme.quantization_step)

    def test_compute_stage_dominates(self, setup):
        engine, packer = setup
        result = EncryptionPipeline(engine, packer).run(np.zeros(64))
        assert result.stage_seconds("gpu_compute") > \
            0.5 * result.total_seconds

    def test_total_is_sum_of_stages(self, setup):
        engine, packer = setup
        result = EncryptionPipeline(engine, packer).run(np.zeros(8))
        assert result.total_seconds == pytest.approx(
            sum(stage.seconds for stage in result.stages))


class TestDecryptionPipeline:
    def test_stage_names_match_fig4(self, setup):
        engine, packer = setup
        encrypted = EncryptionPipeline(engine, packer).run(np.zeros(10))
        result = DecryptionPipeline(engine, packer).run(
            encrypted.values, count=10)
        names = [stage.name for stage in result.stages]
        assert names == ["data_conversion", "gpu_compute", "unpack",
                         "unquantize_decode", "return_conversion"]

    def test_aggregated_decode(self, setup):
        engine, packer = setup
        values = np.full(12, 0.25)
        words_a = packer.pack(packer.scheme.encode_array(values))
        words_b = packer.pack(packer.scheme.encode_array(values))
        cipher_a = engine.encrypt_batch(words_a)
        cipher_b = engine.encrypt_batch(words_b)
        summed = engine.add_batch(cipher_a, cipher_b)
        result = DecryptionPipeline(engine, packer).run(summed, count=12,
                                                        summands=2)
        assert np.allclose(result.values, 0.5,
                           atol=2 * packer.scheme.quantization_step)


class TestHomomorphicPipeline:
    def test_no_processing_stages(self, setup):
        # Sec. V-A: ciphertext in, ciphertext out -- no pack/encode steps.
        engine, packer = setup
        c = engine.encrypt_batch([1, 2, 3])
        result = HomomorphicComputePipeline(engine, packer).run_addition(
            c, c)
        names = [stage.name for stage in result.stages]
        assert "encode_quantize" not in names
        assert "pad_pack" not in names
        assert "gpu_compute" in names

    def test_addition_correct(self, setup):
        engine, packer = setup
        c1 = engine.encrypt_batch([10, 20])
        c2 = engine.encrypt_batch([1, 2])
        result = HomomorphicComputePipeline(engine, packer).run_addition(
            c1, c2)
        assert engine.decrypt_batch(result.values) == [11, 22]

    def test_stage_seconds_lookup_missing_is_zero(self, setup):
        engine, packer = setup
        c = engine.encrypt_batch([1])
        result = HomomorphicComputePipeline(engine, packer).run_addition(
            c, c)
        assert result.stage_seconds("nonexistent") == 0.0
