"""Tests for the stream-pipeline scheduler (paper Sec. V)."""

import pytest

from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.pipeline.scheduler import (
    StreamBatch,
    StreamScheduler,
    he_shaped_batches,
)


class TestStreamBatch:
    def test_serial_seconds(self):
        batch = StreamBatch(1.0, 2.0, 3.0)
        assert batch.serial_seconds == 6.0

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            StreamBatch(-1.0, 0.0, 0.0)


class TestMakespan:
    def test_empty(self):
        assert StreamScheduler().makespan([]) == 0.0

    def test_single_batch_is_serial(self):
        batch = StreamBatch(0.1, 1.0, 0.1)
        assert StreamScheduler(depth=8).makespan([batch]) == \
            pytest.approx(batch.serial_seconds)

    def test_depth_one_is_fully_serial(self):
        batches = he_shaped_batches(10)
        scheduler = StreamScheduler(depth=1)
        assert scheduler.makespan(batches) == \
            pytest.approx(scheduler.serial_makespan(batches))

    def test_pipelining_beats_serial(self):
        batches = he_shaped_batches(20)
        deep = StreamScheduler(depth=8)
        assert deep.makespan(batches) < 0.95 * deep.serial_makespan(batches)

    def test_compute_bound_limit(self):
        # With tiny transfers, the pipelined makespan approaches the sum
        # of compute times plus one pipeline fill.
        batches = he_shaped_batches(50, transfer_fraction=0.05)
        scheduler = StreamScheduler(depth=8)
        compute_total = sum(b.compute_seconds for b in batches)
        makespan = scheduler.makespan(batches)
        assert compute_total < makespan < 1.1 * compute_total

    def test_deeper_is_never_slower(self):
        batches = he_shaped_batches(30, transfer_fraction=0.5)
        spans = [StreamScheduler(depth=d).makespan(batches)
                 for d in (1, 2, 4, 8, 16)]
        assert all(later <= earlier + 1e-12
                   for earlier, later in zip(spans, spans[1:]))

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError):
            StreamScheduler(depth=0)


class TestOverlapEfficiency:
    def test_depth_one_hides_nothing(self):
        batches = he_shaped_batches(10)
        assert StreamScheduler(depth=1).overlap_efficiency(batches) == \
            pytest.approx(0.0, abs=1e-9)

    def test_no_transfer_is_trivially_hidden(self):
        batches = [StreamBatch(0.0, 1.0, 0.0)] * 3
        assert StreamScheduler(depth=4).overlap_efficiency(batches) == 1.0

    def test_justifies_cost_model_constants(self):
        # The managed profile's overlap constant (0.9) and depth (8) must
        # be reproduced by the simulation for HE-shaped workloads.
        depth = DEFAULT_PROFILE.pipeline_depth_managed
        batches = he_shaped_batches(64)
        efficiency = StreamScheduler(depth=depth).overlap_efficiency(batches)
        assert efficiency >= DEFAULT_PROFILE.transfer_overlap_managed

    def test_unmanaged_constant_matches_depth_one(self):
        batches = he_shaped_batches(64)
        efficiency = StreamScheduler(depth=1).overlap_efficiency(batches)
        assert efficiency == \
            pytest.approx(DEFAULT_PROFILE.transfer_overlap_unmanaged)


class TestHeShapedBatches:
    def test_count_and_shape(self):
        batches = he_shaped_batches(5, transfer_fraction=0.1,
                                    compute_seconds=2.0)
        assert len(batches) == 5
        assert batches[0].h2d_seconds == pytest.approx(0.2)
        assert batches[0].compute_seconds == 2.0

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            he_shaped_batches(-1)
