"""Smoke tests: the example scripts run to completion.

Each example's ``main()`` is imported and executed (output captured), so
a public-API break that only an example exercises still fails CI.  The
heavyweight drivers (`reproduce_paper`, `federated_training`) are
covered by the benchmark suite instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "secure_aggregation",
    "pipeline_inspection",
    "security_and_extensions",
    "tutorial_walkthrough",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100          # produced a real report

def test_quickstart_output_content(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "[2, 4, 6]" in out or "decrypt(c + c) = [34, 50, 84]" in out
    assert "SM utilization" in out
