"""Fusion acceptance: fewer simulated-GPU launches, identical results.

The lazy CipherTensor planner must make the Homo-LR-style aggregation
round strictly cheaper in kernel launches than the eager pair-at-a-time
path -- while producing bit-identical decrypted outputs (Paillier adds
are commutative modular multiplications).
"""

import numpy as np

from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime


def make_runtime(fused):
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=8,
                             key_bits=1024, physical_key_bits=256,
                             fused=fused)


def client_vectors(num_clients=8, length=24, seed=5):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.9, 0.9, length) for _ in range(num_clients)]


class TestFusedVsEager:
    def test_fused_uses_strictly_fewer_server_launches(self):
        vectors = client_vectors()
        results = {}
        server_launches = {}
        for mode in (True, False):
            runtime = make_runtime(fused=mode)
            runtime.begin_epoch()
            results[mode] = runtime.aggregator.aggregate(vectors)
            server_launches[mode] = len(
                runtime.server_engine.kernels.device.launches)
        # 8 uploads reduce in ceil(log2 8) = 3 fused add launches versus
        # 7 eager ones.
        assert server_launches[True] < server_launches[False]
        assert np.array_equal(results[True], results[False])

    def test_fused_epoch_records_fewer_ledger_launches(self):
        vectors = client_vectors()
        counts = {}
        for mode in (True, False):
            runtime = make_runtime(fused=mode)
            ledger = runtime.begin_epoch()
            runtime.aggregator.aggregate(vectors)
            counts[mode] = ledger.count("gpu.launch")
        assert counts[True] < counts[False]

    def test_fused_sum_is_exact_vs_plaintext(self):
        vectors = client_vectors()
        runtime = make_runtime(fused=True)
        total = runtime.aggregator.aggregate(vectors)
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(total, np.sum(vectors, axis=0),
                           atol=len(vectors) * step)
