"""Integration tests pinning the paper's headline result shapes.

These are the load-bearing invariants of the reproduction: if any of
them breaks, a benchmark table would report the wrong *conclusion*, not
just a different number.
"""

import pytest

from repro.baselines import FATE, FLBOOSTER, HAFLO, WITHOUT_BC, WITHOUT_GHE
from repro.experiments import (
    he_throughput,
    run_epoch_experiment,
    sm_utilization,
)

MODELS = ["Homo LR", "Hetero LR", "Hetero SBT", "Hetero NN"]


@pytest.fixture(scope="module")
def homo_reports():
    return {config.name: run_epoch_experiment(config, "Homo LR",
                                              "Synthetic", 1024)
            for config in (FATE, HAFLO, FLBOOSTER, WITHOUT_GHE, WITHOUT_BC)}


class TestTable3Shapes:
    """Who wins, by roughly what factor (Table III)."""

    def test_flbooster_beats_haflo_beats_fate(self, homo_reports):
        assert homo_reports["FLBooster"].epoch_seconds < \
            homo_reports["HAFLO"].epoch_seconds < \
            homo_reports["FATE"].epoch_seconds

    def test_flbooster_vs_haflo_order_of_magnitude(self, homo_reports):
        # Paper: 14.3x - 138x over HAFLO.
        ratio = homo_reports["HAFLO"].epoch_seconds / \
            homo_reports["FLBooster"].epoch_seconds
        assert 10 < ratio < 200

    def test_flbooster_vs_fate_two_orders(self, homo_reports):
        # Paper: 144x - 1229x over FATE across key sizes.
        ratio = homo_reports["FATE"].epoch_seconds / \
            homo_reports["FLBooster"].epoch_seconds
        assert 50 < ratio < 2000

    @pytest.mark.parametrize("model", MODELS)
    def test_ordering_holds_for_every_model(self, model):
        reports = {config.name: run_epoch_experiment(
            config, model, "Synthetic", 1024)
            for config in (FATE, HAFLO, FLBOOSTER)}
        assert reports["FLBooster"].epoch_seconds < \
            reports["HAFLO"].epoch_seconds < \
            reports["FATE"].epoch_seconds

    def test_acceleration_grows_with_key_size(self):
        ratios = {}
        for key_bits in (1024, 4096):
            fate = run_epoch_experiment(FATE, "Hetero LR", "Synthetic",
                                        key_bits)
            flb = run_epoch_experiment(FLBOOSTER, "Hetero LR", "Synthetic",
                                       key_bits)
            ratios[key_bits] = fate.epoch_seconds / flb.epoch_seconds
        assert ratios[4096] > ratios[1024]


class TestTable4Shapes:
    """HE throughput ordering and scaling (Table IV)."""

    def test_ordering_at_all_key_sizes(self):
        for key_bits in (1024, 2048, 4096):
            fate = he_throughput(FATE, key_bits, batch_size=512)
            haflo = he_throughput(HAFLO, key_bits, batch_size=512)
            flb = he_throughput(FLBOOSTER, key_bits, batch_size=512)
            assert fate < haflo < flb

    def test_cpu_to_gpu_gap_two_orders(self):
        fate = he_throughput(FATE, 1024, batch_size=512)
        haflo = he_throughput(HAFLO, 1024, batch_size=512)
        assert 50 < haflo / fate < 500     # paper: ~160x

    def test_throughput_falls_with_key_size(self):
        for config in (FATE, HAFLO, FLBOOSTER):
            t1 = he_throughput(config, 1024, batch_size=512)
            t2 = he_throughput(config, 2048, batch_size=512)
            t4 = he_throughput(config, 4096, batch_size=512)
            assert t1 > t2 > t4
            # Work grows ~8x per doubling; throughput drop is 4x-9x.
            assert 3.5 < t1 / t2 < 10


class TestFig6Shapes:
    """SM utilization (Fig. 6)."""

    def test_flbooster_utilization_higher(self):
        for key_bits in (1024, 2048, 4096):
            assert sm_utilization(FLBOOSTER, key_bits) > \
                3 * sm_utilization(HAFLO, key_bits)

    def test_utilization_degrades_with_key_size(self):
        flb = [sm_utilization(FLBOOSTER, k) for k in (1024, 2048, 4096)]
        assert flb[0] >= flb[1] >= flb[2]


class TestTable5Shapes:
    """Ablation ordering (Table V)."""

    def test_full_system_fastest(self, homo_reports):
        assert homo_reports["FLBooster"].epoch_seconds < \
            homo_reports["w/o GHE"].epoch_seconds
        assert homo_reports["FLBooster"].epoch_seconds < \
            homo_reports["w/o BC"].epoch_seconds

    def test_bc_matters_more_than_ghe(self, homo_reports):
        # Table V: removing BC hurts far more than removing the GPU.
        assert homo_reports["w/o BC"].epoch_seconds > \
            homo_reports["w/o GHE"].epoch_seconds


class TestTable6Shapes:
    """Component splits (Table VI, at 1024 bits on Homo LR)."""

    def test_fate_roughly_balanced(self, homo_reports):
        p = homo_reports["FATE"].component_percentages()
        assert 40 < p["HE operations"] < 65
        assert 35 < p["Communication"] < 60
        assert p["Others"] < 2

    def test_haflo_comm_dominated(self, homo_reports):
        # Paper: ~99% comm.  Scaled batches underfill the GPU slightly,
        # so the bound is a little looser here.
        p = homo_reports["HAFLO"].component_percentages()
        assert p["Communication"] > 90
        assert p["HE operations"] < 8

    def test_flbooster_balanced_shift(self, homo_reports):
        p = homo_reports["FLBooster"].component_percentages()
        assert p["Others"] > 5            # pipeline conversion appears
        assert p["HE operations"] < 15
        assert 50 < p["Communication"] < 95


class TestCommunicationVolume:
    """Fig. 7 consequences: wire volume shrinks by the packing capacity."""

    def test_flbooster_sends_fewer_bytes(self, homo_reports):
        assert homo_reports["FLBooster"].wire_bytes * 10 < \
            homo_reports["FATE"].wire_bytes

    def test_he_op_count_reduced_by_packing(self, homo_reports):
        assert homo_reports["FLBooster"].he_operations * 8 < \
            homo_reports["FATE"].he_operations
