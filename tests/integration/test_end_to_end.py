"""End-to-end integration: full training runs through the public API."""

import numpy as np
import pytest

from repro import FlBooster
from repro.baselines import FATE, FLBOOSTER
from repro.datasets import synthetic_like
from repro.experiments import run_training
from repro.federation.runtime import FederationRuntime
from repro.models import HomoLogisticRegression


class TestFullFidelityTraining:
    """Real 1024-bit keys end to end (the Table VII / Fig. 8 mode)."""

    @pytest.mark.slow
    def test_flbooster_matches_fate_loss_at_full_fidelity(self):
        dataset = synthetic_like(instances=128, features=16, seed=9)
        fate_model = HomoLogisticRegression(dataset, num_clients=4,
                                            batch_size=64, seed=1)
        fate_runtime = FederationRuntime(FATE, num_clients=4,
                                         key_bits=1024)
        fate_trace = fate_model.train(fate_runtime, max_epochs=3)

        flb_model = HomoLogisticRegression(dataset, num_clients=4,
                                           batch_size=64, seed=1)
        flb_runtime = FederationRuntime(FLBOOSTER, num_clients=4,
                                        key_bits=1024)
        flb_trace = flb_model.train(flb_runtime, max_epochs=3)

        # 29-30 quantization bits: convergence bias well under the
        # paper's 5% threshold (Table VII).
        bias = abs(fate_trace.final_loss - flb_trace.final_loss) / \
            fate_trace.final_loss
        assert bias < 0.05


class TestScaledTraining:
    def test_all_models_converge_under_flbooster(self):
        for model_name in ("Homo LR", "Hetero LR", "Hetero SBT",
                           "Hetero NN"):
            trace = run_training(FLBOOSTER, model_name, "Synthetic", 1024,
                                 max_epochs=4, physical_key_bits=512)
            assert min(trace.losses) <= trace.losses[0] + 1e-9, model_name
            assert all(np.isfinite(loss) for loss in trace.losses)

    def test_epoch_times_stable_across_epochs(self):
        trace = run_training(FLBOOSTER, "Hetero LR", "Synthetic", 1024,
                             max_epochs=3, physical_key_bits=256)
        seconds = trace.epoch_seconds
        assert max(seconds) < 2.0 * min(seconds)


class TestPublicApiQuickstart:
    def test_readme_quickstart_path(self):
        fl = FlBooster(seed=5)
        pri, pub = fl.paillier.key_gen(128)
        c = fl.paillier.encrypt(pub, [1, 2, 3])
        doubled = fl.paillier.add(pub, c, c)
        assert fl.paillier.decrypt(pri, doubled) == [2, 4, 6]

    def test_gradient_aggregation_example_path(self):
        runtime = FederationRuntime(FLBOOSTER, num_clients=4,
                                    key_bits=1024, physical_key_bits=512)
        rng = np.random.default_rng(0)
        gradients = [rng.uniform(-0.5, 0.5, 100) for _ in range(4)]
        mean = runtime.aggregator.average(gradients)
        expected = np.mean(gradients, axis=0)
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(mean, expected, atol=4 * step)
