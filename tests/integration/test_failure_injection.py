"""Failure-injection tests: what breaks when invariants are violated.

The reproduction's safety arguments (overflow bits, plaintext bounds,
slot budgets) each have a corresponding *demonstrated failure* here, so a
regression that silently relaxes a check will surface.
"""

import numpy as np
import pytest

from repro.baselines import FLBOOSTER
from repro.crypto.paillier import Paillier
from repro.federation.runtime import FederationRuntime
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker


class TestOverflowProtection:
    def test_aggregating_too_many_parties_rejected(self):
        runtime = FederationRuntime(FLBOOSTER, num_clients=4, key_bits=256,
                                    physical_key_bits=256)
        safe = runtime.plan.packer.max_safe_summands()
        with pytest.raises(OverflowError):
            runtime.aggregator.aggregate([np.zeros(4)] * (safe + 1))

    def test_decode_sum_rejects_excess_count(self):
        scheme = QuantizationScheme(num_parties=4)   # b = 2 -> max 4
        with pytest.raises(OverflowError):
            scheme.decode_sum(0, count=5)

    def test_slot_overflow_detected_by_construction_limits(self):
        scheme = QuantizationScheme(r_bits=30, num_parties=4)
        with pytest.raises(ValueError):
            BatchPacker(scheme, plaintext_bits=16)   # can't host one slot


class TestCiphertextTampering:
    def test_bit_flipped_ciphertext_decrypts_garbage(self, paillier_128,
                                                     rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c = Paillier.raw_encrypt(pub, 42, rng=rng)
        tampered = c ^ (1 << 10)
        # Paillier is malleable: tampering never errors, it corrupts.
        assert Paillier.raw_decrypt(pri, tampered) != 42

    def test_wrong_key_decrypts_garbage(self, paillier_128, paillier_256,
                                        rng):
        c = Paillier.raw_encrypt(paillier_128.public_key, 42, rng=rng)
        wrong = Paillier.raw_decrypt(paillier_256.private_key,
                                     c % paillier_256.public_key.n_squared)
        assert wrong != 42


class TestQuantizationDegradation:
    def test_out_of_bound_gradients_clip_not_crash(self):
        runtime = FederationRuntime(FLBOOSTER, num_clients=2, key_bits=256,
                                    physical_key_bits=256)
        huge = np.array([1e6, -1e6, 0.5])
        result = runtime.aggregator.aggregate([huge, np.zeros(3)])
        # Clipped to [-alpha, alpha]: the sum saturates instead of wrapping.
        assert abs(result[0] - 1.0) < 0.1
        assert abs(result[1] + 1.0) < 0.1

    def test_nan_inputs_raise_or_clip(self):
        runtime = FederationRuntime(FLBOOSTER, num_clients=2, key_bits=256,
                                    physical_key_bits=256)
        bad = np.array([np.nan, 0.0])
        with pytest.raises((ValueError, OverflowError)):
            runtime.aggregator.aggregate([bad, np.zeros(2)])


class TestEngineInputValidation:
    def test_plaintext_beyond_modulus_rejected(self):
        runtime = FederationRuntime(FLBOOSTER, num_clients=2, key_bits=256,
                                    physical_key_bits=256)
        n = runtime.client_engine.public_key.n
        with pytest.raises(ValueError):
            runtime.client_engine.encrypt_batch([n + 1])
