"""Acceptance: HomoLR survives a seeded fault plan via quorum + resume.

The plan injects one permanent crash, one straggler, 5% message loss and
two transient round-2 dropouts over 8 clients with quorum 6.  Round 2
deterministically falls below quorum (1 crash + 2 dropouts leave 5
survivors), the run checkpoints and resumes once -- dropouts do not
outlive the restart -- and completes with nonzero ``fault.*`` ledger
categories.  Everything is deterministic for a fixed seed.
"""

import numpy as np
import pytest

from repro.baselines import FLBOOSTER
from repro.experiments.harness import run_training_with_recovery
from repro.federation.faults import FaultPlan
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime


def acceptance_plan(seed=0):
    # HomoLR runs 2 aggregation rounds per epoch: epoch 0 = rounds 0-1,
    # epoch 1 = rounds 2-3.  The crash fires in epoch 0; both dropouts
    # fire at round 2, so epoch 1 aborts below quorum exactly once.
    return (FaultPlan(seed=seed)
            .with_message_loss(0.05)
            .crash("client-7", round_index=1)
            .straggler("client-0", round_index=0, delay_seconds=30.0)
            .dropout("client-5", round_index=2, rejoin_round=4)
            .dropout("client-6", round_index=2, rejoin_round=4))


def run_acceptance(checkpoint_path=None, seed=0):
    return run_training_with_recovery(
        FLBOOSTER, "Homo LR", "Synthetic", key_bits=1024, max_epochs=3,
        fault_plan=acceptance_plan(seed), min_quorum=6,
        physical_key_bits=256, num_clients=8, seed=seed,
        bc_capacity="physical", checkpoint_path=checkpoint_path)


class TestFaultToleranceAcceptance:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ckpt") / "acceptance.json"
        outcome = run_acceptance(checkpoint_path=path)
        return outcome, path

    def test_completes_via_quorum_and_resume(self, result):
        outcome, _ = result
        assert outcome.restarts == 1
        assert outcome.resumed_epochs == [1]
        assert len(outcome.failures) == 1
        assert "quorum" in outcome.failures[0].lower() or \
            "survivors" in outcome.failures[0]
        assert len(outcome.trace.losses) == 3
        assert np.isfinite(outcome.trace.final_loss)
        # Training still makes progress under faults.
        assert outcome.trace.final_loss < outcome.trace.losses[0]

    def test_fault_categories_nonzero(self, result):
        outcome, _ = result
        report = outcome.fault_report
        assert report.crashes >= 1
        assert report.stragglers >= 1
        assert report.straggler_seconds >= 30.0
        assert report.dropouts >= 2
        assert report.retransmissions > 0
        assert report.has_faults
        assert report.total_events > 0

    def test_checkpoint_persisted(self, result):
        outcome, path = result
        assert path.exists()
        assert outcome.checkpoint is not None
        assert outcome.checkpoint.epoch == 3
        assert outcome.checkpoint.restarts == 1

    def test_deterministic_for_fixed_seed(self, result):
        outcome, _ = result
        again = run_acceptance()
        assert again.trace.losses == outcome.trace.losses
        assert again.restarts == outcome.restarts
        assert again.resumed_epochs == outcome.resumed_epochs
        assert again.fault_report == outcome.fault_report


class TestPartialAggregateMatchesSurvivors:
    def test_round2_survivor_sum_decodes(self):
        """The quorum round's decode equals the 5 survivors' true sum."""
        runtime = FederationRuntime(
            FLBOOSTER_SYSTEM, num_clients=8, key_bits=256,
            physical_key_bits=256,
            fault_plan=(FaultPlan(seed=1).crash("client-7", 1)
                        .dropout("client-5", 2, rejoin_round=4)
                        .dropout("client-6", 2, rejoin_round=4)),
            min_quorum=5)
        rng = np.random.default_rng(42)
        vectors = [rng.uniform(-0.5, 0.5, size=10) for _ in range(8)]
        runtime.aggregator.round_cursor = 2
        decoded = runtime.aggregator.aggregate(vectors)
        survivors = sum(vectors[:5])
        step = runtime.aggregator.scheme.quantization_step
        assert np.allclose(decoded, survivors, atol=5 * step)
        assert runtime.aggregator.last_round.summands == 5
