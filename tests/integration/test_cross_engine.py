"""Cross-engine interoperability: CPU and GPU paths share one keyspace.

A ciphertext produced on either execution path must decrypt on the
other, and mixed-path homomorphic arithmetic must stay correct -- the
property that lets a FATE client talk to a FLBooster server mid-rollout.
"""

import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.gpu.kernels import GpuKernels
from repro.gpu.resource_manager import ResourceManager
from repro.mpint.primes import LimbRandom


@pytest.fixture()
def engine_pair(paillier_256):
    cpu = CpuPaillierEngine(paillier_256, nominal_bits=1024,
                            rng=LimbRandom(seed=61))
    gpu = GpuPaillierEngine(
        paillier_256,
        kernels=GpuKernels(resource_manager=ResourceManager(managed=True)),
        nominal_bits=1024, rng=LimbRandom(seed=62))
    return cpu, gpu


class TestInteroperability:
    def test_gpu_encrypts_cpu_decrypts(self, engine_pair):
        cpu, gpu = engine_pair
        values = [0, 7, 123456, 2 ** 40]
        assert cpu.decrypt_batch(gpu.encrypt_batch(values)) == values

    def test_cpu_encrypts_gpu_decrypts(self, engine_pair):
        cpu, gpu = engine_pair
        values = [1, 99, 2 ** 50 + 3]
        assert gpu.decrypt_batch(cpu.encrypt_batch(values)) == values

    def test_mixed_homomorphic_addition(self, engine_pair):
        cpu, gpu = engine_pair
        c_cpu = cpu.encrypt_batch([100, 200])
        c_gpu = gpu.encrypt_batch([11, 22])
        # Server-side addition on either engine.
        via_cpu = cpu.add_batch(c_cpu, c_gpu)
        via_gpu = gpu.add_batch(c_cpu, c_gpu)
        assert cpu.decrypt_batch(via_cpu) == [111, 222]
        assert gpu.decrypt_batch(via_gpu) == [111, 222]

    def test_mixed_scalar_mul(self, engine_pair):
        cpu, gpu = engine_pair
        c = cpu.encrypt_batch([9])
        scaled = gpu.scalar_mul_batch(c, [5])
        assert cpu.decrypt_batch(scaled) == [45]

    def test_sum_across_engines(self, engine_pair):
        cpu, gpu = engine_pair
        ciphertexts = cpu.encrypt_batch([1, 2]) + gpu.encrypt_batch([3, 4])
        total = gpu.sum_ciphertexts(ciphertexts)
        assert cpu.decrypt_batch([total]) == [10]

    def test_charging_stays_separate(self, engine_pair):
        cpu, gpu = engine_pair
        gpu.encrypt_batch([1, 2, 3])
        assert cpu.ledger.total_seconds == 0.0
        assert gpu.ledger.total_seconds > 0.0
