"""Engine mechanics: pragmas, baseline, discovery, budget, report."""

import json

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.engine import (
    TimeBudgetExceeded,
    discover_files,
    load_baseline,
    run_lint,
    write_baseline,
)

from tests.analysis.conftest import FIXTURES

LEAK = ("def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)\n")


def test_all_seven_rules_are_registered():
    assert sorted(rule.name for rule in ALL_RULES) == [
        "deprecated-api", "determinism", "kernel-budget",
        "ledger-category", "ledger-conservation", "plaintext-wire",
        "wal-discipline"]


def test_run_lint_over_a_directory(tmp_path):
    (tmp_path / "leak.py").write_text(LEAK)
    (tmp_path / "clean.py").write_text("x = 1\n")
    report = run_lint([tmp_path])
    assert report.files_scanned == 2
    assert [d.rule for d in report.findings] == ["plaintext-wire"]
    assert report.findings[0].line == 3


def test_rule_filter(tmp_path):
    (tmp_path / "leak.py").write_text(LEAK + "import gmpy2\n"
                                             "y = gmpy2.mpz(1)\n")
    only_taint = run_lint([tmp_path], rule_filter=["plaintext-wire"])
    assert {d.rule for d in only_taint.findings} == {"plaintext-wire"}
    assert only_taint.rules_run == ["plaintext-wire"]
    everything = run_lint([tmp_path])
    assert {d.rule for d in everything.findings} == \
        {"plaintext-wire", "deprecated-api"}


def test_unknown_rule_name_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([tmp_path], rule_filter=["no-such-rule"])


def test_pragma_counts_as_suppressed(tmp_path):
    (tmp_path / "ok.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)  # flcheck: allow[plaintext-wire]\n")
    report = run_lint([tmp_path])
    assert report.clean
    assert report.suppressed == 1


def test_pragma_allow_all(tmp_path):
    (tmp_path / "ok.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)  # flcheck: allow[all]\n")
    assert run_lint([tmp_path]).clean


def test_baseline_roundtrip(tmp_path):
    (tmp_path / "leak.py").write_text(LEAK)
    first = run_lint([tmp_path])
    assert not first.clean

    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)
    fingerprints = load_baseline(baseline_path)
    assert fingerprints == {d.fingerprint for d in first.findings}

    second = run_lint([tmp_path], baseline=fingerprints)
    assert second.clean
    assert second.baselined == len(first.findings)


def test_baseline_survives_line_churn(tmp_path):
    (tmp_path / "leak.py").write_text(LEAK)
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, run_lint([tmp_path]).findings)
    # Push the leak down ten lines; the fingerprint ignores line numbers.
    (tmp_path / "leak.py").write_text("\n" * 10 + LEAK)
    report = run_lint([tmp_path], baseline=load_baseline(baseline_path))
    assert report.clean and report.baselined == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == set()


def test_syntax_error_becomes_a_finding(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = run_lint([tmp_path])
    assert [d.rule for d in report.findings] == ["parse-error"]


def test_time_budget(tmp_path):
    for index in range(3):
        (tmp_path / f"module_{index}.py").write_text("x = 1\n")
    with pytest.raises(TimeBudgetExceeded):
        run_lint([tmp_path], max_seconds=0.0)
    report = run_lint([tmp_path], max_seconds=60.0)
    assert report.files_scanned == 3


def test_discovery_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "real.py").write_text("x = 1\n")
    assert [p.name for p in discover_files([tmp_path])] == ["real.py"]


def test_json_report_shape(tmp_path):
    (tmp_path / "leak.py").write_text(LEAK)
    payload = json.loads(run_lint([tmp_path]).to_json())
    assert payload["version"] == 1
    assert payload["clean"] is False
    (finding,) = payload["findings"]
    assert finding["rule"] == "plaintext-wire"
    assert finding["line"] == 3
    assert finding["path"].endswith("leak.py")


def test_fixture_corpus_paths_are_stable():
    report = run_lint([FIXTURES], rule_filter=["plaintext-wire"])
    assert all(d.path.startswith("fixtures/") or "fixtures" in d.path
               for d in report.findings)
