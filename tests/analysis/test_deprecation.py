"""The deprecated-api rule against its fixture corpus."""

from repro.analysis.deprecation import DeprecatedApiRule

from tests.analysis.conftest import fixture_unit, live_findings


def test_bad_corpus_findings():
    unit = fixture_unit("deprecated_bad.py")
    findings = live_findings(DeprecatedApiRule(), unit)
    messages = [d.message for d in findings]

    assert any("import of gmpy2" in m for m in messages)
    assert any("send_encrypted" in m and "import" in m for m in messages)
    assert any("encrypt_vector" in m and "re-introduction" in m
               for m in messages)
    assert any("decrypt_vector" in m and "re-introduction" in m
               for m in messages)
    assert any("gmpy2.powmod" in m for m in messages)
    # The call site flags both shims used on one line.
    call_hits = [d for d in findings if "call to removed" in d.message]
    assert {("encrypt_vector" in d.message or "send_encrypted" in d.message)
            for d in call_hits} == {True}
    assert len(call_hits) == 2


def test_findings_are_anchored():
    unit = fixture_unit("deprecated_bad.py")
    lines = unit.source.splitlines()
    for diag in live_findings(DeprecatedApiRule(), unit):
        assert 1 <= diag.line <= len(lines)
        anchored = lines[diag.line - 1]
        assert any(token in anchored
                   for token in ("gmpy2", "encrypt_vector",
                                 "decrypt_vector", "send_encrypted"))


def test_repro_modules_do_not_use_deprecated_apis():
    # The real crypto entry points must not re-grow the raw-list shims.
    import repro.crypto.cpu_engine as cpu
    from pathlib import Path

    from repro.analysis.engine import load_module
    unit = load_module(Path(cpu.__file__), "repro/crypto/cpu_engine.py")
    assert live_findings(DeprecatedApiRule(), unit) == []
