"""The kernel-budget rule, its static evaluator, and runtime validation."""

import pytest

from repro.analysis.kernel_budget import KernelBudgetRule
from repro.gpu.device import RTX_3090
from repro.gpu.kernels import (
    KERNEL_BUDGETS,
    GpuKernels,
    KernelBudget,
    validate_budgets,
)

from tests.analysis.conftest import fixture_unit, live_findings


def _messages(name):
    unit = fixture_unit(name)
    return [d.message for d in live_findings(KernelBudgetRule(), unit)]


def test_bad_corpus_flags_each_violation():
    messages = _messages("kernel_budget_bad.py")
    assert any("regs_per_thread_over" in m and "ceiling" in m
               for m in messages)
    assert any("block_not_warp_multiple" in m and "warp" in m
               for m in messages)
    assert any("block_too_wide" in m for m in messages)
    assert any("register_file_blown" in m and "65536" in m
               for m in messages)
    assert any("shared_memory_over" in m for m in messages)
    assert any("unanalyzable" in m and "UNKNOWN_TUNABLE" in m
               for m in messages)


def test_bad_corpus_anchors_are_inside_the_dict():
    unit = fixture_unit("kernel_budget_bad.py")
    findings = live_findings(KernelBudgetRule(), unit)
    start = unit.source.index("KERNEL_BUDGETS")
    first_dict_line = unit.source[:start].count("\n") + 1
    assert findings and all(d.line >= first_dict_line for d in findings)


def test_good_corpus_is_clean():
    assert _messages("kernel_budget_good.py") == []


def test_module_without_budgets_is_clean():
    assert _messages("determinism_good.py") == []


def test_shipped_budgets_pass_both_gates():
    # Statically: the real kernels.py must lint clean.
    import repro.gpu.kernels as kernels_module
    from pathlib import Path

    from repro.analysis.engine import load_module
    unit = load_module(Path(kernels_module.__file__),
                       "repro/gpu/kernels.py")
    assert live_findings(KernelBudgetRule(), unit) == []
    # And at runtime: constructing kernels revalidates.
    validate_budgets(RTX_3090)
    GpuKernels()


def test_runtime_validation_rejects_over_budget():
    bad = KernelBudget(registers_per_thread=300,
                       shared_memory_per_block=1 << 20,
                       block_size=100)
    problems = bad.violations(RTX_3090)
    assert len(problems) == 3
    with pytest.raises(ValueError, match="exceed device limits"):
        original = dict(KERNEL_BUDGETS)
        KERNEL_BUDGETS["bogus"] = bad
        try:
            validate_budgets(RTX_3090)
        finally:
            KERNEL_BUDGETS.clear()
            KERNEL_BUDGETS.update(original)


def test_declared_budgets_match_resource_model():
    # The declared register envelope covers the unmanaged worst case the
    # resource manager can produce for the 2-limbs-per-thread split.
    from repro.gpu.resource_manager import (
        BASE_REGISTERS_PER_THREAD,
        REGISTERS_PER_LIMB,
        UNMANAGED_BRANCH_REGISTER_FACTOR,
    )
    worst = UNMANAGED_BRANCH_REGISTER_FACTOR * (
        BASE_REGISTERS_PER_THREAD + REGISTERS_PER_LIMB * 2)
    for budget in KERNEL_BUDGETS.values():
        assert budget.registers_per_thread >= worst
