"""Suppression precedence: pragmas, baselines, and their interaction."""

import json

from repro.analysis.diagnostics import normalize_message
from repro.analysis.engine import (
    load_baseline,
    load_module,
    run_lint,
    write_baseline,
)

LEAK_LINE = "    channel.send(plain)"

RNG_LINE = "    return random.random()"


def _leak_module(sink_suffix=""):
    return ("import random\n"
            "def leak(channel, engine, c):\n"
            "    plain = engine.decrypt_tensor(c)\n"
            f"{LEAK_LINE}{sink_suffix}\n"
            "def entropy():\n"
            f"{RNG_LINE}\n")


# ---------------------------------------------------------------------------
# Pragma precedence.
# ---------------------------------------------------------------------------

def test_multi_rule_pragma_silences_each_listed_rule(tmp_path):
    (tmp_path / "mod.py").write_text(
        "import random\n"
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)"
        "  # flcheck: allow[plaintext-wire, determinism]\n")
    report = run_lint([tmp_path])
    assert report.clean
    assert report.suppressed == 1


def test_pragma_anchors_to_the_finding_line_only(tmp_path):
    # The pragma sits one line above the sink: it must NOT suppress.
    (tmp_path / "mod.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    # flcheck: allow[plaintext-wire]\n"
        "    channel.send(plain)\n")
    report = run_lint([tmp_path])
    assert [d.rule for d in report.findings] == ["plaintext-wire"]
    assert report.suppressed == 0


def test_pragma_for_the_wrong_rule_does_not_suppress(tmp_path):
    (tmp_path / "mod.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)  # flcheck: allow[determinism]\n")
    report = run_lint([tmp_path])
    assert [d.rule for d in report.findings] == ["plaintext-wire"]


def test_pragma_wins_over_baseline(tmp_path):
    """A pragma-silenced hit counts as suppressed, not baselined,
    even when the same fingerprint is also grandfathered."""
    (tmp_path / "mod.py").write_text(_leak_module())
    first = run_lint([tmp_path])
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, first.findings)

    (tmp_path / "mod.py").write_text(
        _leak_module(sink_suffix="  # flcheck: allow[plaintext-wire]"))
    report = run_lint([tmp_path], baseline=load_baseline(baseline_path))
    assert report.clean
    assert report.suppressed == 1          # the pragma took the leak
    assert report.baselined == 1           # the RNG hit stayed baselined


def test_baseline_does_not_cover_new_findings(tmp_path):
    (tmp_path / "mod.py").write_text(_leak_module())
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, run_lint([tmp_path]).findings)
    # A second, different leak appears: only it should surface.
    (tmp_path / "mod.py").write_text(
        _leak_module() +
        "def leak2(channel, engine, c):\n"
        "    other = engine.decrypt_share(c)\n"
        "    channel.broadcast(other)\n")
    report = run_lint([tmp_path], baseline=load_baseline(baseline_path))
    assert len(report.findings) == 1
    assert report.findings[0].symbol == "leak2"
    assert report.baselined == 2


def test_pragmas_parse_per_unit():
    source = ("x = 1  # flcheck: allow[rule-a, rule-b]\n"
              "y = 2  # flcheck: allow[all]\n")
    import ast
    from pathlib import Path

    from repro.analysis.engine import ModuleUnit, _parse_pragmas
    unit = ModuleUnit(path=Path("m.py"), display_path="m.py",
                      source=source, tree=ast.parse(source),
                      pragmas=_parse_pragmas(source))
    assert unit.allows("rule-a", 1) and unit.allows("rule-b", 1)
    assert not unit.allows("rule-c", 1)
    assert unit.allows("anything", 2)
    assert not unit.allows("rule-a", 3)


# ---------------------------------------------------------------------------
# Baseline fingerprints survive identifier churn (the churn fix).
# ---------------------------------------------------------------------------

def test_normalize_message_strips_identifiers_and_paths():
    assert normalize_message("decrypted value 'plain' flows into send()") \
        == "decrypted value '<id>' flows into send()"
    assert normalize_message('kind "shard_split" is rejected') == \
        "kind '<id>' is rejected"
    assert normalize_message(
        "reaches send() (path: forward -> relay -> send())") == \
        "reaches send() (path: <path>)"


def test_baseline_survives_variable_rename(tmp_path):
    """Renaming the tainted local must not resurrect a baselined leak."""
    (tmp_path / "mod.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)\n")
    baseline_path = tmp_path / "baseline.json"
    first = run_lint([tmp_path])
    assert "'plain'" in first.findings[0].message
    write_baseline(baseline_path, first.findings)

    (tmp_path / "mod.py").write_text(
        "def leak(channel, engine, c):\n"
        "    cleartext = engine.decrypt_tensor(c)\n"
        "    channel.send(cleartext)\n")
    report = run_lint([tmp_path], baseline=load_baseline(baseline_path))
    assert report.clean
    assert report.baselined == 1


def test_legacy_unnormalized_baseline_still_matches(tmp_path):
    """Baselines written before normalization load through the same
    normalizer, so their raw-identifier messages keep matching."""
    (tmp_path / "mod.py").write_text(
        "def leak(channel, engine, c):\n"
        "    plain = engine.decrypt_tensor(c)\n"
        "    channel.send(plain)\n")
    first = run_lint([tmp_path])
    legacy = {
        "version": 1,
        "findings": [{"rule": d.rule, "path": d.path,
                      "message": d.message}  # raw, un-normalized
                     for d in first.findings],
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(legacy))
    report = run_lint([tmp_path], baseline=load_baseline(baseline_path))
    assert report.clean and report.baselined == 1


# ---------------------------------------------------------------------------
# Atomic baseline writes.
# ---------------------------------------------------------------------------

def test_write_baseline_leaves_no_temporary_file(tmp_path):
    (tmp_path / "mod.py").write_text(_leak_module())
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, run_lint([tmp_path]).findings)
    assert baseline_path.exists()
    assert list(tmp_path.glob("*.tmp")) == []


def test_write_baseline_replaces_atomically(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text("{\"version\": 1, \"findings\": "
                             "[{\"rule\": \"old\", \"path\": \"p\", "
                             "\"message\": \"m\"}]}")
    write_baseline(baseline_path, [])
    payload = json.loads(baseline_path.read_text())
    assert payload == {"version": 1, "findings": []}


# ---------------------------------------------------------------------------
# --changed-only scoping.
# ---------------------------------------------------------------------------

HELPER = ("def relay(channel, payload):\n"
          "    channel.send(payload)\n")

# Import spelling must match the scanned display path ("pkg/helper.py"
# -> module "pkg.helper") for the cross-module edge to resolve, exactly
# as repo code imports through its ``repro.*`` paths.
CALLER = ("from pkg.helper import relay\n"
          "def forward(channel, engine, share):\n"
          "    plain = engine.decrypt_share(share)\n"
          "    relay(channel, plain)\n")


def _cross_file_corpus(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "helper.py").write_text(HELPER)
    (pkg / "caller.py").write_text(CALLER)
    return pkg


def test_changed_only_restricts_findings_to_changed_files(tmp_path):
    pkg = _cross_file_corpus(tmp_path)
    full = run_lint([pkg], rule_filter=["plaintext-wire"])
    assert {d.path for d in full.findings} == {"pkg/caller.py"}

    scoped = run_lint([pkg], rule_filter=["plaintext-wire"],
                      changed_paths={(pkg / "caller.py").resolve()})
    assert [d.path for d in scoped.findings] == ["pkg/caller.py"]
    assert scoped.files_scanned == 2  # the whole tree is still parsed


def test_changed_only_cross_file_flow_needs_the_full_graph(tmp_path):
    """Only the un-changed helper is selected: the caller's finding is
    out of scope, yet the graph spanned both files to derive it."""
    pkg = _cross_file_corpus(tmp_path)
    scoped = run_lint([pkg], rule_filter=["plaintext-wire"],
                      changed_paths={(pkg / "helper.py").resolve()})
    assert scoped.findings == []
    assert scoped.files_scanned == 2
