"""Interprocedural ``plaintext-wire``: summaries, paths, sanitizers."""

from tests.analysis.conftest import fixture_unit, marked_lines

from repro.analysis.ipa.project import Project
from repro.analysis.ipa.taint_summaries import TaintSummaries
from repro.analysis.taint import PlaintextWireRule


def _project(*names):
    return Project([fixture_unit(name) for name in names])


def _ipa_findings(*names):
    rule = PlaintextWireRule()
    return list(rule.check_project(_project(*names)))


def test_local_pass_provably_misses_the_corpus():
    """The flagged corpus is invisible to the per-module rule."""
    rule = PlaintextWireRule()
    unit = fixture_unit("ipa_taint_flagged.py")
    assert list(rule.check(unit)) == []


def test_ipa_pass_flags_exactly_the_marked_lines():
    unit = fixture_unit("ipa_taint_flagged.py")
    findings = _ipa_findings("ipa_taint_flagged.py")
    assert {diag.line for diag in findings} == marked_lines(unit)
    assert all(diag.rule == "plaintext-wire" for diag in findings)


def test_call_path_is_rendered_in_the_message():
    findings = _ipa_findings("ipa_taint_flagged.py")
    by_symbol = {diag.symbol: diag.message for diag in findings}
    assert "path: forward -> relay -> send()" in by_symbol["forward"]
    assert "path: forward_deep -> hop -> relay -> send()" in \
        by_symbol["forward_deep"]


def test_tainted_return_flow_names_its_producer():
    findings = _ipa_findings("ipa_taint_flagged.py")
    publish = [d for d in findings if d.symbol == "publish"]
    assert len(publish) == 1
    assert "returned decrypted by fetch()" in publish[0].message


def test_attribute_flow_is_grounded_through_the_call_site():
    findings = _ipa_findings("ipa_taint_flagged.py")
    flush = [d for d in findings if d.symbol == "flush"]
    assert len(flush) == 1
    assert "'self'" in flush[0].message or "self.buf" not in flush[0].message


def test_clean_twin_is_silent():
    assert _ipa_findings("ipa_taint_clean.py") == []


def test_sanitizer_wrapper_summary_is_clean():
    """``protect`` sanitizes by summary, not by name."""
    project = _project("ipa_taint_clean.py")
    analysis = TaintSummaries(PlaintextWireRule(), project)
    analysis.run()
    summary = analysis.summary_for("fixtures.ipa_taint_clean.protect")
    assert not summary.ret_always
    assert summary.ret_deps == frozenset()


def test_helper_summary_records_sink_param_and_path():
    project = _project("ipa_taint_flagged.py")
    analysis = TaintSummaries(PlaintextWireRule(), project)
    analysis.run()
    relay = analysis.summary_for("fixtures.ipa_taint_flagged.relay")
    assert relay.sink_flows_for(1) == [("send", ("relay",))]
    hop = analysis.summary_for("fixtures.ipa_taint_flagged.hop")
    assert hop.sink_flows_for(1) == [("send", ("hop", "relay"))]
    fetch = analysis.summary_for("fixtures.ipa_taint_flagged.fetch")
    assert fetch.ret_always


def test_both_corpora_in_one_project_do_not_cross_contaminate():
    findings = _ipa_findings("ipa_taint_clean.py", "ipa_taint_flagged.py")
    assert {diag.path for diag in findings} == \
        {"fixtures/ipa_taint_flagged.py"}
