"""`python -m repro lint`: exit codes, JSON output, baseline workflow."""

import json
from pathlib import Path

import repro
from repro.cli import main

from tests.analysis.conftest import FIXTURES

LEAK_FIXTURE = FIXTURES / "taint_bad_basic.py"
SRC_REPRO = Path(repro.__file__).resolve().parent


def test_shipped_codebase_is_flcheck_clean(capsys):
    # The acceptance gate: all seven rules, default paths, empty baseline.
    assert main(["lint", "--json", str(SRC_REPRO)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    assert payload["rules_run"] == sorted([
        "plaintext-wire", "determinism", "ledger-category",
        "deprecated-api", "kernel-budget", "wal-discipline",
        "ledger-conservation"])


def test_planted_leak_fails_lint(tmp_path, capsys):
    # Simulates the CI failure mode: a plaintext-leak fixture lands in
    # the scanned tree and the job must go red.
    planted = tmp_path / "src"
    planted.mkdir()
    (planted / "evil.py").write_text(LEAK_FIXTURE.read_text())
    assert main(["lint", str(planted)]) == 1
    out = capsys.readouterr().out
    assert "plaintext-wire" in out
    assert "evil.py" in out


def test_rule_filter_and_human_output(tmp_path, capsys):
    planted = tmp_path / "evil.py"
    planted.write_text(LEAK_FIXTURE.read_text())
    assert main(["lint", "--rule", "determinism", str(planted)]) == 0
    assert main(["lint", "--rule", "plaintext-wire", str(planted)]) == 1
    out = capsys.readouterr().out
    assert "finding(s)" in out


def test_unknown_rule_exits_2(capsys):
    assert main(["lint", "--rule", "bogus", str(SRC_REPRO)]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_update_baseline_then_clean(tmp_path, capsys):
    planted = tmp_path / "evil.py"
    planted.write_text(LEAK_FIXTURE.read_text())
    baseline = tmp_path / "baseline.json"
    assert main(["lint", "--baseline", str(baseline),
                 "--update-baseline", str(planted)]) == 0
    assert baseline.exists()
    # Grandfathered: same findings now exit clean.
    assert main(["lint", "--baseline", str(baseline),
                 str(planted)]) == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1
    assert payload["findings"]


def test_shipped_baseline_is_empty():
    committed = Path(__file__).resolve().parents[2] / \
        "flcheck-baseline.json"
    payload = json.loads(committed.read_text())
    assert payload == {"version": 1, "findings": []}


def test_max_seconds_budget_exit_code(capsys):
    assert main(["lint", "--max-seconds", "0", str(SRC_REPRO)]) == 2
    assert "budget" in capsys.readouterr().err
