"""``wal-discipline``: journal-then-act ordering, interprocedurally."""

from tests.analysis.conftest import fixture_unit, marked_lines

from repro.analysis.ipa.project import Project
from repro.analysis.ipa.wal_rule import JournalSummaries, WalDisciplineRule


def _findings(*names):
    rule = WalDisciplineRule()
    project = Project([fixture_unit(name) for name in names])
    return list(rule.check_project(project))


def test_bad_fixture_flags_exactly_the_marked_lines():
    unit = fixture_unit("wal_discipline_bad.py")
    findings = _findings("wal_discipline_bad.py")
    assert {diag.line for diag in findings} == marked_lines(unit)
    assert all(diag.rule == "wal-discipline" for diag in findings)


def test_good_fixture_is_silent():
    assert _findings("wal_discipline_good.py") == []


def test_act_before_append_is_the_fresh_apply_finding():
    findings = _findings("wal_discipline_bad.py")
    by_symbol = {diag.symbol: diag.message for diag in findings}
    assert "never journaled" in by_symbol["act_first"]
    assert "journal-then-act" in by_symbol["never_journaled"]


def test_rebalance_kind_fed_to_the_round_machine_is_named():
    findings = _findings("wal_discipline_bad.py")
    feed = [d for d in findings if d.symbol == "feed_rebalance"]
    assert len(feed) == 1
    assert "shard_split" in feed[0].message
    assert "InvalidTransitionError" in feed[0].message


def test_unjournaled_migrate_names_the_missing_journal():
    findings = _findings("wal_discipline_bad.py")
    orphan = [d for d in findings if d.symbol == "orphan_moves"]
    assert len(orphan) == 1
    assert "migrate_orphans" in orphan[0].message


def test_journal_effects_compose_across_helpers():
    """``split`` journals only through ``_log``; the summary sees it."""
    project = Project([fixture_unit("wal_discipline_good.py")])
    effects = JournalSummaries(project)
    effects.run()
    prefix = "fixtures.wal_discipline_good.Pool"
    assert effects.summary(f"{prefix}._log").journals
    assert effects.summary(f"{prefix}.split").journals
    # Recovery replays transitively: from_bytes -> cls(...) -> __init__.
    assert effects.summary(f"{prefix}.__init__").replays
    assert effects.summary(f"{prefix}.from_bytes").replays
    assert not effects.summary(f"{prefix}.migrate_orphans").journals


def test_replayed_records_may_be_applied():
    """The replay loop in ``__init__`` and ``tail`` raise no findings."""
    findings = _findings("wal_discipline_good.py")
    assert [d for d in findings if d.symbol in ("__init__", "tail")] == []
