"""SARIF 2.1.0 output: structural validation and the CLI flag.

The container ships no ``jsonschema``, so validation is a hand-rolled
walk of the SARIF 2.1.0 core constraints this repo relies on: required
properties, types, the version literal, 1-based regions, and
rules/results cross-references.  Stricter than nothing, looser than the
full schema -- but every constraint here is one GitHub code scanning
actually enforces on upload.
"""

import json

from repro.analysis import ALL_RULES
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.cli import main

from tests.analysis.conftest import FIXTURES


def validate_sarif(payload):
    """Assert the SARIF 2.1.0 core constraints; return the results."""
    assert isinstance(payload, dict)
    assert payload["version"] == "2.1.0"
    assert payload["$schema"].endswith("sarif-2.1.0.json")
    runs = payload["runs"]
    assert isinstance(runs, list) and runs
    all_results = []
    for run in runs:
        driver = run["tool"]["driver"]
        assert isinstance(driver["name"], str) and driver["name"]
        rules = driver.get("rules", [])
        rule_ids = []
        for rule in rules:
            assert isinstance(rule["id"], str) and rule["id"]
            assert isinstance(rule["shortDescription"]["text"], str)
            rule_ids.append(rule["id"])
        assert len(set(rule_ids)) == len(rule_ids)
        results = run["results"]
        assert isinstance(results, list)
        for result in results:
            assert isinstance(result["message"]["text"], str)
            assert result["message"]["text"]
            if "level" in result:
                assert result["level"] in ("none", "note", "warning",
                                           "error")
            if "ruleId" in result and rule_ids:
                assert result["ruleId"] in rule_ids
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                assert isinstance(index, int) and 0 <= index < len(rules)
                assert rules[index]["id"] == result["ruleId"]
            for location in result.get("locations", []):
                physical = location["physicalLocation"]
                uri = physical["artifactLocation"]["uri"]
                assert isinstance(uri, str) and not uri.startswith("/")
                region = physical["region"]
                assert isinstance(region["startLine"], int)
                assert region["startLine"] >= 1
                assert region.get("startColumn", 1) >= 1
            fingerprints = result.get("partialFingerprints", {})
            assert all(isinstance(v, str)
                       for v in fingerprints.values())
        all_results.extend(results)
    return all_results


def _report():
    return LintReport(
        findings=[
            Diagnostic(rule="plaintext-wire", path="repro/a.py", line=3,
                       col=4, message="decrypted value 'x' leaks",
                       symbol="leak"),
            Diagnostic(rule="wal-discipline", path="repro/b.py", line=9,
                       col=0, message="_apply() acts on a WalRecord "
                                      "never journaled"),
        ],
        files_scanned=2,
        rules_run=[rule.name for rule in ALL_RULES],
    )


def test_report_emits_valid_sarif():
    descriptions = {rule.name: rule.description for rule in ALL_RULES}
    payload = json.loads(_report().to_sarif(descriptions))
    results = validate_sarif(payload)
    assert len(results) == 2
    assert {r["ruleId"] for r in results} == \
        {"plaintext-wire", "wal-discipline"}


def test_sarif_columns_are_one_based():
    payload = json.loads(_report().to_sarif())
    region = payload["runs"][0]["results"][1]["locations"][0][
        "physicalLocation"]["region"]
    assert region["startColumn"] == 1  # ast col 0 -> SARIF column 1


def test_sarif_fingerprints_match_the_baseline_identity():
    payload = json.loads(_report().to_sarif())
    fingerprint = payload["runs"][0]["results"][0][
        "partialFingerprints"]["flcheck/v1"]
    # Normalized exactly like the baseline: the identifier is stripped.
    assert "'<id>'" in fingerprint
    assert fingerprint.startswith("plaintext-wire|repro/a.py|")


def test_sarif_symbol_becomes_a_logical_location():
    payload = json.loads(_report().to_sarif())
    locations = payload["runs"][0]["results"][0]["locations"][0]
    assert locations["logicalLocations"] == \
        [{"name": "leak", "kind": "function"}]


def test_empty_report_is_still_valid_sarif():
    payload = json.loads(LintReport(
        rules_run=[rule.name for rule in ALL_RULES]).to_sarif())
    assert validate_sarif(payload) == []
    rules = payload["runs"][0]["tool"]["driver"]["rules"]
    assert len(rules) == len(ALL_RULES)


def test_cli_writes_a_sarif_log_next_to_json_output(tmp_path, capsys):
    planted = tmp_path / "evil.py"
    planted.write_text((FIXTURES / "taint_bad_basic.py").read_text())
    sarif_path = tmp_path / "lint.sarif"
    exit_code = main(["lint", "--json", "--sarif", str(sarif_path),
                      str(planted)])
    assert exit_code == 1  # findings still gate the exit code
    payload = json.loads(sarif_path.read_text())
    results = validate_sarif(payload)
    assert results
    json_payload = json.loads(capsys.readouterr().out)
    assert len(results) == len(json_payload["findings"])
