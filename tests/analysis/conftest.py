"""Shared helpers for the flcheck test suite."""

from pathlib import Path

import pytest

from repro.analysis.engine import load_module

FIXTURES = Path(__file__).parent / "fixtures"


def fixture_unit(name):
    """Parse one corpus file into a ModuleUnit."""
    path = FIXTURES / name
    return load_module(path, f"fixtures/{name}")


def live_findings(rule, unit):
    """Diagnostics from ``rule`` minus pragma-suppressed ones."""
    return [diag for diag in rule.check(unit)
            if not unit.allows(diag.rule, diag.line)]


def marked_lines(unit, marker="# flagged"):
    """1-based lines of ``unit`` carrying an expectation marker."""
    return {lineno
            for lineno, text in enumerate(unit.source.splitlines(), start=1)
            if marker in text}


@pytest.fixture
def check_fixture():
    """(rule, fixture name) -> (unit, live findings)."""
    def run(rule, name):
        unit = fixture_unit(name)
        return unit, live_findings(rule, unit)
    return run
