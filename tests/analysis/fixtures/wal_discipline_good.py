"""Journal-then-act done right: every pattern the rule must accept."""


class WalRecord:
    def __init__(self, kind, payload=None):
        self.kind = kind
        self.payload = payload


class WriteAheadLog:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)
        return len(self.records)

    def records_since(self, lsn):
        return self.records[lsn:]


class Pool:
    def __init__(self, wal=None):
        self.wal = wal if wal is not None else WriteAheadLog()
        self.applied = []
        for record in self.wal.records:  # replaying a journal is fine
            self._apply(record)

    def _apply(self, record):
        self.applied.append(record.kind)

    def _log(self, kind, payload=None):
        record = WalRecord(kind, payload)
        lsn = self.wal.append(record)  # journal ...
        self._apply(record)  # ... then act
        return lsn

    def split(self, channel):
        self._log("shard_split")  # journaling through a helper
        self.migrate_orphans(channel)

    def migrate_orphans(self, channel):
        channel.rebind(self)

    @classmethod
    def from_bytes(cls, blob, wal):
        return cls(wal)  # replay happens in __init__


def recover(blob, wal, channel):
    heir = Pool.from_bytes(blob, wal)  # transitively replays
    heir.migrate_orphans(channel)
    return heir


def tail(log, machine, since):
    for record in log.records_since(since):
        machine.apply(record)  # journal-read records are durable
