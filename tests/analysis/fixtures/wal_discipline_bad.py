"""Every way to break journal-then-act; marked lines must be flagged."""

SHARD_SPLIT = "shard_split"


class WalRecord:
    def __init__(self, kind, payload=None):
        self.kind = kind
        self.payload = payload


class WriteAheadLog:
    def __init__(self):
        self.records = []

    def append(self, record):
        self.records.append(record)
        return len(self.records)


class RoundStateMachine:
    def apply(self, record):
        self.last = record.kind


class Pool:
    def __init__(self):
        self.wal = WriteAheadLog()
        self.machine = RoundStateMachine()
        self.applied = []

    def _apply(self, record):
        self.applied.append(record.kind)

    def act_first(self, kind):
        record = WalRecord(kind)
        self._apply(record)  # flagged -- acts before wal.append
        self.wal.append(record)

    def never_journaled(self, kind):
        record = WalRecord(kind)
        self._apply(record)  # flagged -- no journal at all

    def inline_record(self, kind):
        self._apply(WalRecord(kind))  # flagged -- constructed at the call

    def orphan_moves(self, channel):
        self.migrate_orphans(channel)  # flagged -- no journaled topology

    def migrate_orphans(self, channel):
        channel.rebind(self)

    def feed_rebalance(self):
        record = WalRecord(kind=SHARD_SPLIT)
        self.machine.apply(record)  # flagged -- rebalance kind rejected
