"""Conservation-respecting admission paths the rule must accept."""

CAT_COMM_ADMISSION_ACCEPT = "comm.admission.accept"
CAT_FAULT_SHED = "fault.shed"


def admission_category(verdict, tenant=None):
    return f"comm.admission.{verdict}.{tenant}"


class QueueStats:
    accepted: int = 0
    rejected_full: int = 0
    rejected_fenced: int = 0
    rejected_overload: int = 0
    rejected_quota: int = 0
    delivered: int = 0
    shed: int = 0
    failed: int = 0
    migrated_in: int = 0
    migrated_out: int = 0


class FuzzReport:
    accepted: int = 0
    rejected: int = 0


class Channel:
    def __init__(self, ledger):
        self.ledger = ledger
        self.stats = QueueStats()

    def _charge_accept(self, tenant=None):
        # The counter move lives in the caller; the neighbourhood
        # (callers' summaries) must reconcile the two.
        if tenant is not None:
            self.ledger.charge(admission_category("accept", tenant), 0.1)
        else:
            self.ledger.charge(CAT_COMM_ADMISSION_ACCEPT, 0.1)

    def _charge_reject(self, quota=False):
        self.ledger.charge(
            admission_category("quota" if quota else "reject"), 0.1)

    def submit(self, message, tenant=None):
        self._charge_accept(tenant)
        self.stats.accepted += 1

    def reject(self, reason):
        self._charge_reject(quota=reason == "quota")
        if reason == "quota":
            self.stats.rejected_quota += 1
        else:
            self.stats.rejected_overload += 1

    def drain(self, deadline):
        self.ledger.charge(CAT_FAULT_SHED, 0.0, count=1)
        self.stats.shed += 1
        self.stats.delivered += 1  # outflow side: no charge expected

    def migrate(self, other):
        # Migration counters have no admission category at all.
        self.stats.migrated_out += 1
        other.stats.migrated_in += 1


def fuzz_loop(report: FuzzReport):
    report.accepted += 1  # a fuzz verdict, not an admission event
    report.rejected += 1
