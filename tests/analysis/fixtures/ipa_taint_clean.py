"""Clean twin of ``ipa_taint_flagged``: every cross-call flow sanitized.

Same call shapes as the flagged corpus -- helpers, returns, attribute
round-trips -- but every decrypted value passes through an encrypt step
(directly or through a wrapper whose *summary* proves it sanitizes), so
the interprocedural pass must stay silent.
"""


def encrypt_tensor(value):
    return ("ciphertext", value)


def protect(value):
    # Not an ``encrypt*`` name: only its computed summary (clean return
    # for tainted input) tells the analysis this sanitizes.
    return encrypt_tensor(value)


def relay(channel, payload):
    channel.send(payload)


def forward(channel, engine, share):
    plain = engine.decrypt_share(share)
    relay(channel, protect(plain))  # sanitized before the helper


def fetch(engine, blob):
    return engine.decrypt(blob)


def publish(channel, engine, blob):
    channel.send(encrypt_tensor(fetch(engine, blob)))  # sanitized


class Accumulator:
    def __init__(self):
        self.buf = None

    def stash(self, value):
        self.buf = value

    def flush(self, channel):
        channel.send(self.buf)


def round_trip(channel, engine, share):
    acc = Accumulator()
    acc.stash(protect(engine.decrypt_share(share)))  # stores ciphertext
    acc.flush(channel)
