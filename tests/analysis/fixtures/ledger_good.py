"""Known-good corpus for the ledger-category rule."""

from repro.ledger import (
    CAT_HE_ENCRYPT,
    CAT_MODEL_COMPUTE,
    admission_category,
    comm_category,
    fault_category,
)


def registered_literal(ledger, seconds):
    ledger.charge("he.encrypt", seconds)             # in the registry


def open_family_literal(ledger, seconds):
    ledger.charge("model.sbt.histograms", seconds)   # open family


def registry_constant(ledger, seconds):
    ledger.charge(CAT_HE_ENCRYPT, seconds)           # constant


def validated_builders(ledger, kind, tag, seconds):
    ledger.charge(fault_category(kind), seconds)     # runtime-validated
    ledger.charge(comm_category(tag), seconds)


def tenant_prefixed_builder(ledger, verdict, tenant, seconds):
    ledger.charge(admission_category(verdict), seconds)
    ledger.charge(admission_category(verdict, tenant), seconds)
    ledger.charge(admission_category("quota", tenant="tenant-a"),
                  seconds)


def open_family_fstring(ledger, tag, seconds):
    ledger.charge(f"comm.{tag}", seconds)            # open-family prefix


def charge(ledger, category, seconds):
    ledger.charge(category, seconds)                 # forwarder parameter


def tag_function_constant(charge_model_compute, ledger, flops):
    charge_model_compute(ledger, flops, tag=CAT_MODEL_COMPUTE)


def _charging(engine, category, ops):
    class _Charger:
        def __exit__(self, *exc):
            engine.ledger.charge(category, ops)      # closure forwarder
    return _Charger()
