"""Known-good corpus for the determinism rule."""

import random

import numpy as np

from repro.rng import np_rng, py_rng


def seeded_random(seed):
    return random.Random(seed)               # seeded: fine anywhere


def seeded_numpy(seed):
    return np.random.default_rng(seed)       # seeded: fine


def routed_streams(stream):
    return np_rng(stream), py_rng(stream)    # the sanctioned route


def local_methods(rng):
    # Methods on an injected generator are not the global module.
    return rng.random() + rng.randint(0, 5)


def injected_clock(clock):
    return clock()                           # injected callables are fine
