"""Known-good corpus for the plaintext-wire rule: clean flows."""


def reencrypt_clears_taint(channel, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    plain = engine.encrypt_tensor(plain)     # sanitizer: taint cleared
    channel.send(plain)                      # clean
    return plain


def encrypt_inline(channel, engine, values):
    channel.send(engine.encrypt_tensor(values))   # clean
    return values


def decrypt_without_sink(engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    return plain.decode()                    # returning locally is fine


def untainted_send(channel, weights):
    channel.send(weights)                    # params start clean
    return weights


def pragma_suppressed(channel, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    channel.send(plain)  # flcheck: allow[plaintext-wire]
    return plain


def tuple_unpacking_precision(channel, engine, ciphertext, meta):
    plain, header = engine.decrypt_tensor(ciphertext), meta
    channel.send(header)                     # only 'plain' is tainted
    return plain


def reassignment_clears(channel, engine, ciphertext, zeros):
    value = engine.decrypt_tensor(ciphertext)
    value = zeros                            # strong update: untainted now
    channel.send(value)                      # clean
    return value
