"""Known-good corpus for the kernel-budget rule."""

BASE_REGISTERS = 16
REGISTERS_PER_LIMB = 10


def KernelBudget(**kwargs):
    return kwargs


KERNEL_BUDGETS = {
    "mod_mul": KernelBudget(
        registers_per_thread=4 * (BASE_REGISTERS + REGISTERS_PER_LIMB * 2),
        shared_memory_per_block=32 * 1024,
        block_size=256,
    ),
    "mod_pow": KernelBudget(
        registers_per_thread=144,
        shared_memory_per_block=48 * 1024,
        block_size=448,                      # 144 * 448 = 64512 <= 65536
    ),
}
