"""Known-bad corpus for the kernel-budget rule.

Shapes mirror ``repro/gpu/kernels.py``; values are chosen to violate one
device limit each.  ``KernelBudget`` is deliberately undefined here --
the rule matches the declaration shape, it never imports the module.
"""

SHARED_KIB = 1024


def KernelBudget(**kwargs):
    return kwargs


KERNEL_BUDGETS = {
    "regs_per_thread_over": KernelBudget(
        registers_per_thread=300,            # > 255 ceiling
        shared_memory_per_block=16 * 1024,
        block_size=128,
    ),
    "block_not_warp_multiple": KernelBudget(
        registers_per_thread=32,
        shared_memory_per_block=16 * 1024,
        block_size=100,                      # not a multiple of 32
    ),
    "block_too_wide": KernelBudget(
        registers_per_thread=32,
        shared_memory_per_block=16 * 1024,
        block_size=2048,                     # > 1024 and > threads/SM
    ),
    "register_file_blown": KernelBudget(
        registers_per_thread=128,
        shared_memory_per_block=16 * 1024,
        block_size=1024,                     # 128 * 1024 > 65536 regs/SM
    ),
    "shared_memory_over": KernelBudget(
        registers_per_thread=32,
        shared_memory_per_block=128 * SHARED_KIB,   # > 100 KiB/SM
        block_size=128,
    ),
    "unanalyzable": KernelBudget(
        registers_per_thread=UNKNOWN_TUNABLE,       # noqa: F821 -- the point
        shared_memory_per_block=16 * 1024,
        block_size=128,
    ),
}
