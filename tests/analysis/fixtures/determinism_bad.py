"""Known-bad corpus for the determinism rule."""

import datetime
import os
import random
import secrets
import time
import uuid

import numpy as np


def global_rng():
    return random.random()                   # flagged: global Mersenne


def argless_random():
    return random.Random()                   # flagged: self-seeds


def system_random():
    return random.SystemRandom()             # flagged: OS entropy


def argless_numpy():
    return np.random.default_rng()           # flagged: self-seeds


def legacy_numpy():
    return np.random.rand(3)                 # flagged: global numpy RNG


def wall_clock():
    return time.time()                       # flagged: wall-clock call


def clock_reference(run):
    return run(clock=time.monotonic)         # flagged: bare reference


def timestamp():
    return datetime.datetime.now()           # flagged: wall clock


def entropy_bytes():
    return os.urandom(16)                    # flagged: OS entropy


def token():
    return secrets.token_hex(8)              # flagged: OS entropy


def identifier():
    return uuid.uuid4()                      # flagged: OS entropy
