"""Known-bad corpus for the plaintext-wire rule: dataflow edge cases."""


def leak_tuple_unpacking(channel, engine, ciphertext):
    plain, count = engine.decrypt_tensor(ciphertext), 3
    channel.send(plain)                      # flagged: left element tainted
    return count


def leak_augmented_assignment(channel, engine, ciphertext):
    total = 0.0
    total += engine.decrypt_tensor(ciphertext)
    channel.send(total)                      # flagged: += propagates
    return total


def leak_ternary(channel, engine, ciphertext, fallback, ready):
    value = engine.decrypt_tensor(ciphertext) if ready else fallback
    channel.send(value)                      # flagged: either branch taints
    return value


def leak_comprehension(channel, engine, ciphertexts):
    plains = [engine.decrypt_tensor(c) for c in ciphertexts]
    channel.send(plains)                     # flagged: element source


def leak_comprehension_iter(channel, engine, ciphertext):
    rows = engine.decrypt_tensor(ciphertext)
    scaled = [row * 2 for row in rows]
    channel.send(scaled)                     # flagged: tainted iterable


def leak_through_fstring(channel, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    channel.send(f"result={plain}")          # flagged: stringified plaintext


def leak_loop_carried(channel, engine, ciphertexts):
    acc = 0.0
    for item in ciphertexts:
        channel.send(acc)                    # flagged on the second pass
        acc = acc + engine.decrypt_tensor(item)
    return acc
