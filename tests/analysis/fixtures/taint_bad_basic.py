"""Known-bad corpus for the plaintext-wire rule: direct leaks.

Parsed by the tests, never imported or executed.
"""


def leak_via_send(channel, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    channel.send(plain)                      # flagged


def leak_via_serialize(serialize_tensor, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    return serialize_tensor(plain)           # flagged


def leak_via_wal(wal, engine, ciphertext):
    decoded = engine.decrypt_tensor(ciphertext).decode()
    wal._log("commit", 0, result=decoded)    # flagged


def leak_via_broadcast(channel, np, engine, ciphertext):
    plain = engine.decrypt_tensor(ciphertext)
    reshaped = np.asarray(plain).ravel()
    channel.broadcast(list(reshaped), ["a"])  # flagged


def leak_plain_tensor(channel, PlainTensor, values, packer):
    plain = PlainTensor.encode(values, packer)
    channel.send(plain)                      # flagged
