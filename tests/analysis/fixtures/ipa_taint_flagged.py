"""Interprocedural plaintext leaks the per-module pass provably misses.

Every sink call here receives only parameters or attributes, so the
intraprocedural rule (which starts parameters clean and never follows
calls) finds nothing in this file; each marked line is reachable only
by composing per-function summaries across call edges.
"""


def relay(channel, payload):
    channel.send(payload)  # the sink lives inside the helper


def forward(channel, engine, share):
    plain = engine.decrypt_share(share)
    relay(channel, plain)  # flagged -- decrypt -> helper -> send


def hop(channel, value):
    relay(channel, value)


def forward_deep(channel, engine, share):
    plain = engine.decrypt_share(share)
    hop(channel, plain)  # flagged -- two-hop path through helpers


def forward_boxed(channel, engine, share):
    boxed = {"value": engine.decrypt_share(share)}
    relay(channel, boxed["value"])  # flagged -- container round-trip


def fetch(engine, blob):
    return engine.decrypt(blob)  # tainted-return summary


def publish(channel, engine, blob):
    plain = fetch(engine, blob)
    channel.send(plain)  # flagged -- taint arrives via a return value


class Accumulator:
    def __init__(self):
        self.buf = None

    def stash(self, value):
        self.buf = value  # parameter-dependent attribute write

    def flush(self, channel):
        channel.send(self.buf)  # flagged -- attribute holds plaintext


def round_trip(channel, engine, share):
    acc = Accumulator()
    acc.stash(engine.decrypt_share(share))  # grounds the attribute taint
    acc.flush(channel)
