"""Known-bad corpus for the ledger-category rule."""


def typo_suffix(ledger, seconds):
    ledger.charge("he.encrpyt", seconds)     # flagged: typo'd suffix


def unknown_family(ledger, seconds):
    ledger.charge("hardware.dma", seconds)   # flagged: unknown family


def bare_suffix(ledger, seconds):
    ledger.charge("encrypt", seconds)        # flagged: no family dot


def closed_family_fstring(ledger, kind, seconds):
    ledger.charge(f"fault.{kind}", seconds)  # flagged: closed family

def dynamic_name(ledger, category, seconds):
    ledger.charge(category, seconds)         # flagged: not a forwarder


def unknown_constant(ledger, seconds):
    CAT_HE_SQUARE = "he.square"
    ledger.charge(CAT_HE_SQUARE, seconds)    # flagged: not in registry


def unvalidated_builder(ledger, make_category, seconds):
    ledger.charge(make_category("x"), seconds)   # flagged: unknown call


def tag_function_literal(charge_model_compute, ledger, flops):
    charge_model_compute(ledger, flops, tag="mode.compute")  # flagged
