"""Charges and counters drifting apart; marked lines must be flagged."""

CAT_COMM_ADMISSION_REJECT = "comm.admission.reject"
CAT_FAULT_SHED = "fault.shed"


class QueueStats:
    accepted: int = 0
    rejected_full: int = 0
    rejected_fenced: int = 0
    rejected_overload: int = 0
    rejected_quota: int = 0
    delivered: int = 0
    shed: int = 0
    failed: int = 0
    migrated_in: int = 0
    migrated_out: int = 0


class Channel:
    def __init__(self, ledger):
        self.ledger = ledger
        self.stats = QueueStats()

    def charge_only_accept(self):
        self.ledger.charge("comm.admission.accept", 0.1)  # flagged

    def charge_only_reject(self):
        self.ledger.charge(CAT_COMM_ADMISSION_REJECT, 0.1)  # flagged

    def count_only_accept(self):
        self.stats.accepted += 1  # flagged -- ledger never hears of it

    def count_only_shed(self):
        self.stats.shed += 1  # flagged -- fault.shed never charged

    def shed_charge_without_counter(self):
        self.ledger.charge(CAT_FAULT_SHED, 0.0)  # flagged
        self.stats.delivered += 1  # wrong counter for a shed
