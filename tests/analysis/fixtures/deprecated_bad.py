"""Known-bad corpus for the deprecated-api rule.

Never imported (gmpy2 does not exist in the environment); only parsed.
"""

import gmpy2

from repro.federation import send_encrypted  # flagged: shim import


def encrypt_vector(values):                  # flagged: shim redefinition
    return values


def decrypt_vector(values):                  # flagged: shim redefinition
    return values


def call_the_shims(channel, values):
    send_encrypted(channel, encrypt_vector(values))   # flagged twice
    return values


def bigint_backend(a, b, n):
    return gmpy2.powmod(a, b, n)             # flagged: gmpy call
