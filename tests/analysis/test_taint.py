"""The plaintext-wire taint rule against its fixture corpus."""

import ast

from repro.analysis.engine import ModuleUnit
from repro.analysis.taint import PlaintextWireRule

from tests.analysis.conftest import fixture_unit, live_findings, marked_lines


def _unit_from(source):
    return ModuleUnit(path=None, display_path="<snippet>", source=source,
                      tree=ast.parse(source), pragmas={})


def _lines(source):
    rule = PlaintextWireRule()
    return sorted(d.line for d in rule.check(_unit_from(source)))


class TestBasicLeaks:
    def test_every_marked_line_is_flagged(self):
        unit = fixture_unit("taint_bad_basic.py")
        findings = live_findings(PlaintextWireRule(), unit)
        assert {d.line for d in findings} == marked_lines(unit)

    def test_diagnostics_carry_anchor_and_symbol(self):
        unit = fixture_unit("taint_bad_basic.py")
        findings = live_findings(PlaintextWireRule(), unit)
        by_symbol = {d.symbol: d for d in findings}
        assert "leak_via_send" in by_symbol
        diag = by_symbol["leak_via_send"]
        assert diag.rule == "plaintext-wire"
        assert diag.path == "fixtures/taint_bad_basic.py"
        source_line = unit.source.splitlines()[diag.line - 1]
        assert "channel.send(plain)" in source_line
        assert "'plain'" in diag.message
        assert "encrypt_tensor" in diag.message

    def test_sink_variety(self):
        unit = fixture_unit("taint_bad_basic.py")
        messages = " ".join(
            d.message for d in live_findings(PlaintextWireRule(), unit))
        for sink in ("send()", "serialize_tensor()", "_log()",
                     "broadcast()"):
            assert sink in messages


class TestEdgeCases:
    def test_every_marked_edge_case_is_flagged(self):
        unit = fixture_unit("taint_bad_edges.py")
        findings = live_findings(PlaintextWireRule(), unit)
        assert {d.line for d in findings} == marked_lines(unit)

    def test_tuple_unpacking_taints_only_the_bound_element(self):
        unit = fixture_unit("taint_good.py")
        findings = live_findings(PlaintextWireRule(), unit)
        assert findings == []

    def test_dict_values_propagate(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    payload = {'result': engine.decrypt_tensor(c)}\n"
            "    channel.send(payload)\n")
        assert lines == [3]

    def test_subscript_propagates(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    plain = engine.decrypt_tensor(c)\n"
            "    channel.send(plain[0])\n")
        assert lines == [3]

    def test_starred_argument_propagates(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    parts = [engine.decrypt_tensor(c)]\n"
            "    channel.send(*parts)\n")
        assert lines == [3]

    def test_walrus_binding(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    if (plain := engine.decrypt_tensor(c)) is not None:\n"
            "        channel.send(plain)\n")
        assert lines == [3]

    def test_with_binding(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    with engine.decrypt_tensor(c) as plain:\n"
            "        channel.send(plain)\n")
        assert lines == [3]


class TestSanitizers:
    def test_reencryption_clears_taint(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    plain = engine.decrypt_tensor(c)\n"
            "    safe = engine.encrypt_tensor(plain)\n"
            "    channel.send(safe)\n")
        assert lines == []

    def test_encrypt_wrapping_a_tainted_argument_is_clean(self):
        lines = _lines(
            "def f(channel, engine, c):\n"
            "    channel.send(engine.encrypt_tensor("
            "engine.decrypt_tensor(c)))\n")
        assert lines == []

    def test_good_corpus_is_clean(self):
        unit = fixture_unit("taint_good.py")
        assert live_findings(PlaintextWireRule(), unit) == []


class TestPragma:
    def test_pragma_suppresses_but_rule_still_fires(self):
        unit = fixture_unit("taint_good.py")
        raw = list(PlaintextWireRule().check(unit))
        suppressed = [d for d in raw if unit.allows(d.rule, d.line)]
        assert len(suppressed) == 1
        assert suppressed[0].symbol == "pragma_suppressed"

    def test_pragma_is_rule_scoped(self):
        source = (
            "def f(channel, engine, c):\n"
            "    plain = engine.decrypt_tensor(c)\n"
            "    channel.send(plain)  # flcheck: allow[determinism]\n")
        unit = _unit_from(source)
        unit.pragmas = {3: {"determinism"}}
        findings = live_findings(PlaintextWireRule(), unit)
        assert [d.line for d in findings] == [3]
