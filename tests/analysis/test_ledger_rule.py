"""The ledger-category rule against its fixture corpus and the registry."""

import pytest

from repro.analysis.ledger_rule import LedgerCategoryRule
from repro.ledger import (
    CostLedger,
    admission_category,
    comm_category,
    fault_category,
    is_known_category,
    validate_category,
)

from tests.analysis.conftest import fixture_unit, live_findings, marked_lines


def test_every_marked_line_is_flagged():
    unit = fixture_unit("ledger_bad.py")
    findings = live_findings(LedgerCategoryRule(), unit)
    assert {d.line for d in findings} == marked_lines(unit)


def test_good_corpus_is_clean():
    unit = fixture_unit("ledger_good.py")
    assert live_findings(LedgerCategoryRule(), unit) == []


def test_typo_message_names_the_category():
    unit = fixture_unit("ledger_bad.py")
    findings = live_findings(LedgerCategoryRule(), unit)
    typo = [d for d in findings if "he.encrpyt" in d.message]
    assert len(typo) == 1
    assert typo[0].symbol == "typo_suffix"


class TestRegistry:
    def test_closed_family_suffixes(self):
        assert is_known_category("he.encrypt")
        assert is_known_category("fault.giveup")
        assert not is_known_category("he.square")
        assert not is_known_category("he")
        assert not is_known_category("")

    def test_open_families_accept_any_suffix(self):
        assert is_known_category("comm.upload.gradients")
        assert is_known_category("model.sbt.histograms")
        assert not is_known_category("comm.")

    def test_validate_category_raises(self):
        assert validate_category("gpu.launch") == "gpu.launch"
        with pytest.raises(ValueError, match="unregistered"):
            validate_category("gpu.warp")

    def test_builders(self):
        assert fault_category("crash") == "fault.crash"
        assert comm_category("upload.x") == "comm.upload.x"
        with pytest.raises(ValueError):
            fault_category("meteor_strike")

    def test_tenant_fault_kinds_are_registered(self):
        assert fault_category("tenant_flood") == "fault.tenant_flood"
        assert fault_category("tenant_crash") == "fault.tenant_crash"

    def test_admission_builder(self):
        assert admission_category("accept") == "comm.admission.accept"
        assert (admission_category("quota", "tenant-a")
                == "comm.admission.quota.tenant-a")
        with pytest.raises(ValueError):
            admission_category("maybe")
        with pytest.raises(ValueError):
            admission_category("accept", "dotted.tenant")

    def test_strict_ledger_accepts_tenant_prefixed_admission(self):
        ledger = CostLedger(strict=True)
        # A bare validation probe, not an admission event: no queue
        # stats exist here for the conservation rule to reconcile.
        ledger.charge(  # flcheck: allow[ledger-conservation]
            "comm.admission.quota.tenant-a", 1.0)
        ledger.charge("fault.tenant_flood", 0.0, count=1)

    def test_strict_ledger_rejects_unknown_categories(self):
        ledger = CostLedger(strict=True)
        ledger.charge("he.encrypt", 1.0)
        with pytest.raises(ValueError, match="unregistered"):
            # The typo is the point of the test.
            ledger.charge(  # flcheck: allow[ledger-category]
                "he.encrpyt", 1.0)

    def test_default_ledger_stays_permissive(self):
        ledger = CostLedger()
        ledger.charge(  # flcheck: allow[ledger-category]
            "adhoc.notebook", 1.0)
        assert ledger.seconds("adhoc") == 1.0
