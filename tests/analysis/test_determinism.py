"""The determinism rule against its fixture corpus."""

import ast

from repro.analysis.determinism import DeterminismRule
from repro.analysis.engine import ModuleUnit

from tests.analysis.conftest import fixture_unit, live_findings, marked_lines


def _findings(source, display_path="repro/federation/snippet.py"):
    unit = ModuleUnit(path=None, display_path=display_path, source=source,
                      tree=ast.parse(source), pragmas={})
    return live_findings(DeterminismRule(), unit)


def test_every_marked_line_is_flagged():
    unit = fixture_unit("determinism_bad.py")
    findings = live_findings(DeterminismRule(), unit)
    assert {d.line for d in findings} == marked_lines(unit)


def test_one_finding_per_marked_line():
    unit = fixture_unit("determinism_bad.py")
    findings = live_findings(DeterminismRule(), unit)
    assert len(findings) == len(marked_lines(unit))


def test_good_corpus_is_clean():
    unit = fixture_unit("determinism_good.py")
    assert live_findings(DeterminismRule(), unit) == []


def test_import_alias_resolution():
    findings = _findings(
        "import random as rnd\n"
        "x = rnd.random()\n")
    assert [d.line for d in findings] == [2]
    assert "random.random" in findings[0].message


def test_from_import_resolution():
    findings = _findings(
        "from random import Random\n"
        "r = Random()\n")
    assert [d.line for d in findings] == [2]


def test_seeded_from_import_is_clean():
    assert _findings("from random import Random\n"
                     "r = Random(42)\n") == []


def test_unrelated_attribute_names_are_not_flagged():
    # A local object with a .random() method is not the random module.
    assert _findings("def f(rng):\n"
                     "    return rng.random()\n") == []


def test_whitelisted_paths_are_exempt():
    source = "import random\nx = random.random()\n"
    for exempt in ("repro/rng.py", "repro/mpint/primes.py",
                   "repro/testing/simulator.py",
                   "repro/analysis/engine.py"):
        assert _findings(source, display_path=exempt) == []
    assert len(_findings(source, "repro/models/base.py")) == 1


def test_clock_call_reported_once():
    findings = _findings("import time\nnow = time.monotonic()\n")
    assert len(findings) == 1
