"""The whole-program layer: symbol table, call graph, summary fixpoint.

Corpora are built inline (tmp_path) rather than from the fixtures
directory: framework behaviour -- resolution strategies, SCC ordering,
fixpoint convergence -- is easier to pin against five-line modules
written next to the assertion.
"""

import pytest

from repro.analysis.engine import load_module
from repro.analysis.ipa.dataflow import SummaryAnalysis
from repro.analysis.ipa.project import Project
from repro.analysis.ipa.symbols import module_name


def project_from(tmp_path, files):
    units = []
    for name, source in files.items():
        path = tmp_path / name
        path.write_text(source)
        units.append(load_module(path, name))
    return Project(units)


# ---------------------------------------------------------------------------
# Symbol table.
# ---------------------------------------------------------------------------

def test_module_name_mapping():
    assert module_name("repro/federation/shard.py") == \
        "repro.federation.shard"
    assert module_name("repro/analysis/__init__.py") == "repro.analysis"


def test_functions_methods_and_bindings(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class C:\n"
        "    def m(self): pass\n"
        "    @staticmethod\n"
        "    def s(x): pass\n"
        "    @classmethod\n"
        "    def k(cls): pass\n"
        "def f(): pass\n")})
    functions = project.symbols.functions
    assert functions["mod.C.m"].binding == "instance"
    assert functions["mod.C.m"].self_param == "self"
    assert functions["mod.C.s"].binding == "static"
    assert functions["mod.C.s"].self_param is None
    assert functions["mod.C.k"].binding == "class"
    assert functions["mod.f"].binding == "function"


def test_hierarchy_links_across_modules(tmp_path):
    project = project_from(tmp_path, {
        "base.py": "class Base:\n    def run(self): pass\n",
        "sub.py": ("from base import Base\n"
                   "class Sub(Base):\n"
                   "    def run(self): pass\n"),
    })
    symbols = project.symbols
    assert symbols.classes["sub.Sub"].bases == ["base.Base"]
    assert symbols.lookup_method("sub.Sub", "run") == "sub.Sub.run"
    # CHA: a base-typed receiver may dispatch into the override.
    assert symbols.override_targets("base.Base", "run") == \
        ["base.Base.run", "sub.Sub.run"]


def test_duck_candidates_refuse_builtin_method_names(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class A:\n"
        "    def split(self): pass\n"
        "    def ingest(self): pass\n")})
    # ``x.split()`` on an untyped receiver is almost always a str.
    assert project.symbols.duck_candidates("split") == []
    assert project.symbols.duck_candidates("ingest") == ["mod.A.ingest"]


# ---------------------------------------------------------------------------
# Call resolution.
# ---------------------------------------------------------------------------

def _edges(project, qualname):
    return set(project.callgraph.edges.get(qualname, ()))


def test_direct_and_imported_calls_resolve(tmp_path):
    project = project_from(tmp_path, {
        "helpers.py": "def helper(): pass\n",
        "main.py": ("from helpers import helper\n"
                    "def top():\n"
                    "    helper()\n"),
    })
    assert _edges(project, "main.top") == {"helpers.helper"}


def test_constructor_and_typed_receiver_calls(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class Engine:\n"
        "    def __init__(self): pass\n"
        "    def encrypt(self): pass\n"
        "def use():\n"
        "    e = Engine()\n"
        "    e.encrypt()\n")})
    assert _edges(project, "mod.use") == \
        {"mod.Engine.__init__", "mod.Engine.encrypt"}


def test_self_attribute_receiver_types(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class Wal:\n"
        "    def push(self): pass\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self.wal = Wal()\n"
        "    def log(self):\n"
        "        self.wal.push()\n")})
    assert "mod.Wal.push" in _edges(project, "mod.Pool.log")


def test_classmethod_cls_call_reaches_init(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class Pool:\n"
        "    def __init__(self): pass\n"
        "    @classmethod\n"
        "    def restore(cls):\n"
        "        return cls()\n")})
    assert _edges(project, "mod.Pool.restore") == {"mod.Pool.__init__"}


def test_conditional_construction_types_the_receiver(tmp_path):
    project = project_from(tmp_path, {"mod.py": (
        "class Wal:\n"
        "    def push(self): pass\n"
        "class Pool:\n"
        "    def __init__(self, wal=None):\n"
        "        self.wal = wal if wal is not None else Wal()\n"
        "    def log(self):\n"
        "        self.wal.push()\n")})
    assert "mod.Wal.push" in _edges(project, "mod.Pool.log")


# ---------------------------------------------------------------------------
# SCC condensation and the summary fixpoint.
# ---------------------------------------------------------------------------

RECURSIVE = (
    "def leaf(): pass\n"
    "def ping():\n"
    "    leaf()\n"
    "    pong()\n"
    "def pong():\n"
    "    ping()\n")


def test_sccs_are_callee_first(tmp_path):
    project = project_from(tmp_path, {"mod.py": RECURSIVE})
    components = project.callgraph.sccs()
    flat = [sorted(c) for c in components]
    assert ["mod.leaf"] in flat
    assert ["mod.ping", "mod.pong"] in flat
    # The mutually recursive pair pops after its callee.
    assert flat.index(["mod.leaf"]) < flat.index(["mod.ping", "mod.pong"])


class ReachesLeaf(SummaryAnalysis):
    """True for functions that (transitively) call ``leaf``."""

    def bottom(self, fn):
        return False

    def transfer(self, fn, get_summary):
        import ast

        from repro.analysis.ipa.callgraph import own_statements
        for node in own_statements(fn.node):
            if isinstance(node, ast.Call):
                for target in self._resolver.resolve_call(fn, node):
                    if target.endswith(".leaf") or get_summary(target):
                        return True
        return False


def test_fixpoint_converges_through_mutual_recursion(tmp_path):
    project = project_from(tmp_path, {"mod.py": RECURSIVE})
    analysis = ReachesLeaf(project.callgraph)
    analysis._resolver = project.resolver
    summaries = analysis.run()
    assert summaries["mod.ping"] is True
    assert summaries["mod.pong"] is True  # only through the cycle
    assert summaries["mod.leaf"] is False


def test_transfer_is_required():
    with pytest.raises(NotImplementedError):
        SummaryAnalysis.transfer(None, None, None)
