"""``ledger-conservation``: charges and flow counters move together."""

from tests.analysis.conftest import fixture_unit, marked_lines

from repro.analysis.ipa.ledger_flow import (
    FlowSummaries,
    LedgerConservationRule,
    tracked_classes,
)
from repro.analysis.ipa.project import Project


def _project(*names):
    return Project([fixture_unit(name) for name in names])


def _findings(*names):
    rule = LedgerConservationRule()
    return list(rule.check_project(_project(*names)))


def test_bad_fixture_flags_exactly_the_marked_lines():
    unit = fixture_unit("ledger_flow_bad.py")
    findings = _findings("ledger_flow_bad.py")
    assert {diag.line for diag in findings} == marked_lines(unit)
    assert all(diag.rule == "ledger-conservation" for diag in findings)


def test_good_fixture_is_silent():
    assert _findings("ledger_flow_good.py") == []


def test_charge_and_counter_may_live_in_different_functions():
    """``submit`` counts what ``_charge_accept`` charges: no finding."""
    findings = _findings("ledger_flow_good.py")
    assert [d for d in findings
            if d.symbol in ("_charge_accept", "_charge_reject")] == []


def test_conditional_verdict_charges_both_arms():
    """``"quota" if q else "reject"`` matches either rejection counter."""
    project = _project("ledger_flow_good.py")
    effects = FlowSummaries(project, tracked_classes(project))
    effects.run()
    summary = effects.summary(
        "fixtures.ledger_flow_good.Channel._charge_reject")
    assert summary.verdicts == frozenset({"quota", "reject"})


def test_outflow_counters_need_no_charge():
    """delivered / migrated_* sit outside the charge correspondence."""
    findings = _findings("ledger_flow_good.py")
    assert [d for d in findings if d.symbol == "migrate"] == []


def test_untracked_classes_are_out_of_scope():
    """``FuzzReport.accepted`` counts fuzz verdicts, not admissions."""
    project = _project("ledger_flow_good.py")
    tracked = tracked_classes(project)
    assert "fixtures.ledger_flow_good.QueueStats" in tracked
    assert "fixtures.ledger_flow_good.FuzzReport" not in tracked
    findings = _findings("ledger_flow_good.py")
    assert [d for d in findings if d.symbol == "fuzz_loop"] == []


def test_counter_without_charge_message_names_the_category():
    findings = _findings("ledger_flow_bad.py")
    shed = [d for d in findings if d.symbol == "count_only_shed"]
    assert len(shed) == 1
    assert "fault.shed" in shed[0].message
