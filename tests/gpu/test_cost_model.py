"""Tests for the calibrated hardware cost model (paper Eq. 10)."""

import pytest

from repro.gpu.cost_model import DEFAULT_PROFILE, HardwareProfile
from repro.gpu.resource_manager import ResourceManager


class TestWorkAccounting:
    def test_ciphertext_limbs(self):
        assert DEFAULT_PROFILE.ciphertext_limbs(1024) == 64
        assert DEFAULT_PROFILE.ciphertext_limbs(4096) == 256

    def test_ciphertext_bytes(self):
        assert DEFAULT_PROFILE.ciphertext_bytes(1024) == 256
        assert DEFAULT_PROFILE.ciphertext_bytes(2048) == 512

    def test_encrypt_decrypt_symmetric_order(self):
        enc = DEFAULT_PROFILE.words_per_encrypt(1024)
        dec = DEFAULT_PROFILE.words_per_decrypt(1024)
        assert 0.5 < enc / dec < 2.0

    def test_add_much_cheaper_than_encrypt(self):
        assert DEFAULT_PROFILE.words_per_homomorphic_add(1024) * 100 < \
            DEFAULT_PROFILE.words_per_encrypt(1024)

    def test_scalar_mul_between_add_and_encrypt(self):
        add = DEFAULT_PROFILE.words_per_homomorphic_add(1024)
        scalar = DEFAULT_PROFILE.words_per_scalar_mul(1024)
        enc = DEFAULT_PROFILE.words_per_encrypt(1024)
        assert add < scalar < enc

    def test_work_grows_cubically_with_key(self):
        # Exponent bits x2, CIOS words x4 => ~8x per key doubling.
        ratio = (DEFAULT_PROFILE.words_per_encrypt(2048)
                 / DEFAULT_PROFILE.words_per_encrypt(1024))
        assert 6.0 < ratio < 9.0


class TestCalibration:
    """The cost model must land on the paper's Table IV orders."""

    @pytest.mark.parametrize("key_bits,paper_low,paper_high", [
        (1024, 250, 550), (2048, 45, 100), (4096, 6, 20)])
    def test_fate_cpu_throughput(self, key_bits, paper_low, paper_high):
        words = DEFAULT_PROFILE.words_per_encrypt(key_bits)
        throughput = 1.0 / DEFAULT_PROFILE.cpu_seconds(1, words)
        assert paper_low < throughput < paper_high

    def test_haflo_gpu_throughput_at_1024(self):
        manager = ResourceManager(managed=False)
        plan = manager.plan(4096, DEFAULT_PROFILE.ciphertext_limbs(1024))
        words = DEFAULT_PROFILE.words_per_encrypt(1024)
        seconds = DEFAULT_PROFILE.gpu_seconds(
            4096, 4096 * words, 4096 * 4, 4096 * 256, plan, managed=False)
        throughput = 4096 / seconds
        assert 30_000 < throughput < 90_000        # paper: ~59k

    def test_flbooster_gpu_throughput_at_1024(self):
        manager = ResourceManager(managed=True)
        plan = manager.plan(4096, DEFAULT_PROFILE.ciphertext_limbs(1024))
        words = DEFAULT_PROFILE.words_per_encrypt(1024)
        seconds = DEFAULT_PROFILE.gpu_seconds(
            4096, 4096 * words, 4096 * 4, 4096 * 256, plan, managed=True)
        throughput = 4096 / seconds
        assert 250_000 < throughput < 600_000      # paper: ~400k


class TestTimeModel:
    def test_cpu_zero_ops(self):
        assert DEFAULT_PROFILE.cpu_seconds(0, 1000) == 0.0

    def test_cpu_linear_in_ops(self):
        one = DEFAULT_PROFILE.cpu_seconds(1, 10_000)
        ten = DEFAULT_PROFILE.cpu_seconds(10, 10_000)
        assert abs(ten - 10 * one) < 1e-12

    def test_gpu_zero_tasks(self):
        plan = ResourceManager().plan(1, 64)
        assert DEFAULT_PROFILE.gpu_seconds(0, 0, 0, 0, plan) == 0.0

    def test_gpu_small_batch_underfills(self):
        # Per-op cost of a tiny batch exceeds that of a saturated one.
        plan = ResourceManager().plan(8, 64)
        words = DEFAULT_PROFILE.words_per_encrypt(1024)
        small = DEFAULT_PROFILE.gpu_seconds(8, 8 * words, 32, 2048, plan) / 8
        big_plan = ResourceManager().plan(8192, 64)
        big = DEFAULT_PROFILE.gpu_seconds(
            8192, 8192 * words, 32768, 8192 * 256, big_plan) / 8192
        assert small > big

    def test_unmanaged_pays_full_transfer(self):
        profile = HardwareProfile()
        plan_u = ResourceManager(managed=False).plan(1024, 64)
        plan_m = ResourceManager(managed=True).plan(1024, 64)
        # Same bytes: unmanaged transfer term is 10x the managed one.
        only_transfer_u = (1 - profile.transfer_overlap_unmanaged)
        only_transfer_m = (1 - profile.transfer_overlap_managed)
        assert only_transfer_u > 5 * only_transfer_m
        assert plan_u is not plan_m

    def test_network_seconds(self):
        profile = HardwareProfile(network_bandwidth=1e6,
                                  network_latency=1e-3)
        assert abs(profile.network_seconds(1_000_000, messages=2)
                   - (0.002 + 1.0)) < 1e-9

    def test_wire_bytes_bloat(self):
        objects = DEFAULT_PROFILE.wire_bytes(256, packed=False)
        packed = DEFAULT_PROFILE.wire_bytes(256, packed=True)
        assert objects > 2 * packed / 1.05
        assert packed >= 256

    def test_eq10_acceleration_positive_and_large(self):
        plan = ResourceManager(managed=True).plan(4096, 64)
        ratio = DEFAULT_PROFILE.eq10_acceleration_ratio(4096, 1024, plan)
        assert ratio > 100       # GPU must beat CPU by orders of magnitude
