"""Tests for the device profiler."""

import pytest

from repro.gpu.device import KernelLaunch, SimulatedGpu
from repro.gpu.kernels import GpuKernels
from repro.gpu.profiler import profile_device


def launch(name, seconds, tasks=10, utilization=0.8):
    return KernelLaunch(name=name, tasks=tasks, threads_per_task=32,
                        word_multiplications=100, bytes_in=50,
                        bytes_out=50, sm_utilization=utilization,
                        seconds=seconds)


class TestProfile:
    def test_aggregates_by_kernel(self):
        device = SimulatedGpu()
        device.record_launch(launch("mod_pow", 2.0))
        device.record_launch(launch("mod_pow", 3.0))
        device.record_launch(launch("mod_mul", 1.0))
        profile = profile_device(device)
        assert profile.total_launches == 3
        assert profile.total_seconds == 6.0
        assert profile.kernels["mod_pow"].launches == 2
        assert profile.kernels["mod_pow"].seconds == 5.0
        assert profile.kernels["mod_pow"].tasks == 20

    def test_busiest_and_share(self):
        device = SimulatedGpu()
        device.record_launch(launch("mod_pow", 9.0))
        device.record_launch(launch("mod_mul", 1.0))
        profile = profile_device(device)
        assert profile.busiest_kernel() == "mod_pow"
        assert profile.time_share("mod_pow") == pytest.approx(0.9)
        assert profile.time_share("nonexistent") == 0.0

    def test_weighted_utilization(self):
        device = SimulatedGpu()
        device.record_launch(launch("k", 1.0, utilization=0.2))
        device.record_launch(launch("k", 3.0, utilization=0.6))
        profile = profile_device(device)
        assert profile.kernels["k"].mean_utilization == \
            pytest.approx((0.2 + 1.8) / 4.0)

    def test_empty_device(self):
        profile = profile_device(SimulatedGpu())
        assert profile.total_launches == 0
        with pytest.raises(ValueError):
            profile.busiest_kernel()

    def test_table_rows_sorted_by_time(self):
        device = SimulatedGpu()
        device.record_launch(launch("small", 1.0))
        device.record_launch(launch("big", 5.0))
        rows = profile_device(device).table_rows()
        assert rows[0][0] == "big"

    def test_real_workload_profile(self):
        kernels = GpuKernels()
        n = (1 << 255) | 5
        batch = 2048     # compute-dominated launches
        kernels.mod_pow_scalar_exponent([3] * batch, 1 << 2000, n)
        kernels.mod_mul([3] * batch, [5] * batch, n)
        profile = profile_device(kernels.device)
        # Exponentiation dominates a mixed workload.
        assert profile.busiest_kernel() == "mod_pow"
        assert profile.time_share("mod_pow") > 0.9
        assert profile.kernels["mod_mul"].seconds_per_task > 0
