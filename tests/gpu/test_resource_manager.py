"""Tests for the GPU resource manager (paper Sec. IV-A2, Fig. 6)."""

import pytest

from repro.gpu.device import RTX_3090
from repro.gpu.resource_manager import (
    COMMON_BLOCK_SIZES,
    MemoryTable,
    ResourceManager,
)


class TestBlockPlanning:
    def test_managed_plan_fits_device(self):
        manager = ResourceManager(managed=True)
        plan = manager.plan(tasks=1024, limbs=64)
        assert plan.block_size in COMMON_BLOCK_SIZES
        assert plan.resident_threads_per_sm <= RTX_3090.max_threads_per_sm
        assert 0 < plan.occupancy <= 1.0

    def test_unmanaged_uses_largest_block(self):
        manager = ResourceManager(managed=False)
        plan = manager.plan(tasks=1024, limbs=64)
        assert plan.block_size == COMMON_BLOCK_SIZES[-1]

    def test_branch_handling_register_gap(self):
        # Unmanaged divergence inflates register demand several-fold.
        managed = ResourceManager(managed=True).plan(1024, 64)
        unmanaged = ResourceManager(managed=False).plan(1024, 64)
        assert unmanaged.registers_per_thread > \
            2 * managed.registers_per_thread

    def test_managed_utilization_beats_unmanaged(self):
        for limbs in (64, 128, 256):
            managed = ResourceManager(managed=True).plan(1024, limbs)
            unmanaged = ResourceManager(managed=False).plan(1024, limbs)
            assert managed.sm_utilization > 2 * unmanaged.sm_utilization

    def test_utilization_degrades_with_key_size(self):
        # Fig. 6: "SM performance degrades due to the lack of resources".
        manager = ResourceManager(managed=True)
        utils = [manager.utilization_for_key_size(bits)
                 for bits in (1024, 2048, 4096)]
        assert utils[0] >= utils[1] >= utils[2]

    def test_launch_latency_managed_cheaper(self):
        managed = ResourceManager(managed=True).plan(16, 64)
        unmanaged = ResourceManager(managed=False).plan(16, 64)
        assert managed.launch_latency < unmanaged.launch_latency

    def test_limbs_per_thread_consistent(self):
        plan = ResourceManager(managed=True).plan(100, 256)
        assert plan.limbs_per_thread * plan.threads_per_task >= 256

    def test_invalid_inputs_raise(self):
        manager = ResourceManager()
        with pytest.raises(ValueError):
            manager.plan(0, 64)
        with pytest.raises(ValueError):
            manager.plan(10, 0)

    def test_plan_cache_returns_same_object(self):
        manager = ResourceManager()
        assert manager.plan(100, 64) is manager.plan(100, 64)


class TestMemoryTable:
    def test_allocate_and_free(self):
        table = MemoryTable(capacity=1000)
        address = table.allocate(100)
        table.free(address)
        assert table.misses == 1

    def test_reuse_marks_hit(self):
        table = MemoryTable(capacity=1000)
        address = table.allocate(100)
        table.free(address)
        again = table.allocate(80)
        assert again == address
        assert table.hits == 1

    def test_no_reuse_of_occupied(self):
        table = MemoryTable(capacity=1000)
        first = table.allocate(100)
        second = table.allocate(100)
        assert first != second
        assert table.misses == 2

    def test_too_small_slot_not_reused(self):
        table = MemoryTable(capacity=1000)
        address = table.allocate(50)
        table.free(address)
        big = table.allocate(100)
        assert big != address

    def test_exhaustion_raises(self):
        table = MemoryTable(capacity=100)
        table.allocate(80)
        with pytest.raises(MemoryError):
            table.allocate(50)

    def test_double_free_raises(self):
        table = MemoryTable(capacity=100)
        address = table.allocate(10)
        table.free(address)
        with pytest.raises(ValueError):
            table.free(address)

    def test_unknown_free_raises(self):
        with pytest.raises(ValueError):
            MemoryTable(capacity=100).free(12345)

    def test_nonpositive_allocation_raises(self):
        with pytest.raises(ValueError):
            MemoryTable(capacity=100).allocate(0)

    def test_bytes_reserved_tracks_arena(self):
        table = MemoryTable(capacity=1000)
        table.allocate(100)
        table.allocate(200)
        assert table.bytes_reserved == 300
