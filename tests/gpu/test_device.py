"""Tests for the simulated device and launch bookkeeping."""

from repro.gpu.device import RTX_3090, DeviceSpec, KernelLaunch, SimulatedGpu


def make_launch(seconds=1.0, utilization=0.5, tasks=10):
    return KernelLaunch(name="test", tasks=tasks, threads_per_task=32,
                        word_multiplications=1000, bytes_in=100,
                        bytes_out=200, sm_utilization=utilization,
                        seconds=seconds)


class TestDeviceSpec:
    def test_rtx3090_shape(self):
        assert RTX_3090.num_sms == 82
        assert RTX_3090.warp_size == 32
        assert RTX_3090.max_warps_per_sm == 1536 // 32

    def test_max_concurrent_threads(self):
        assert RTX_3090.max_concurrent_threads == 82 * 1536

    def test_custom_spec(self):
        spec = DeviceSpec(name="tiny", num_sms=2, max_threads_per_sm=64,
                          warp_size=32, registers_per_sm=1024,
                          shared_memory_per_sm=1024, global_memory=1 << 20,
                          core_clock_hz=1e9, pcie_bandwidth=1e9)
        assert spec.max_warps_per_sm == 2
        assert spec.max_concurrent_threads == 128


class TestSimulatedGpu:
    def test_records_launches(self):
        gpu = SimulatedGpu()
        gpu.record_launch(make_launch())
        gpu.record_launch(make_launch(seconds=2.0))
        assert len(gpu.launches) == 2
        assert gpu.total_seconds == 3.0

    def test_bytes_transferred(self):
        gpu = SimulatedGpu()
        gpu.record_launch(make_launch())
        assert gpu.total_bytes_transferred == 300

    def test_mean_utilization_time_weighted(self):
        gpu = SimulatedGpu()
        gpu.record_launch(make_launch(seconds=1.0, utilization=0.2))
        gpu.record_launch(make_launch(seconds=3.0, utilization=0.6))
        expected = (0.2 * 1.0 + 0.6 * 3.0) / 4.0
        assert abs(gpu.mean_sm_utilization() - expected) < 1e-12

    def test_mean_utilization_empty(self):
        assert SimulatedGpu().mean_sm_utilization() == 0.0

    def test_mean_utilization_zero_seconds_falls_back_to_average(self):
        gpu = SimulatedGpu()
        gpu.record_launch(make_launch(seconds=0.0, utilization=0.4))
        gpu.record_launch(make_launch(seconds=0.0, utilization=0.8))
        assert abs(gpu.mean_sm_utilization() - 0.6) < 1e-12

    def test_reset(self):
        gpu = SimulatedGpu()
        gpu.record_launch(make_launch())
        gpu.reset()
        assert not gpu.launches
        assert gpu.total_seconds == 0.0
