"""Tests for warp-parallel key generation (paper Sec. IV-A3)."""

import pytest

from repro.crypto.paillier import Paillier
from repro.gpu.keygen import ParallelKeyGenerator
from repro.mpint.primes import LimbRandom, is_probable_prime


class TestParallelPrimeSearch:
    def test_produces_probable_prime(self):
        generator = ParallelKeyGenerator(seed=1)
        prime, stats = generator.generate_prime(64)
        assert prime.bit_length() == 64
        assert is_probable_prime(prime)
        assert stats.candidates_tested >= 1
        assert stats.modelled_seconds > 0

    def test_deterministic_given_seed(self):
        a, _ = ParallelKeyGenerator(seed=2).generate_prime(48)
        b, _ = ParallelKeyGenerator(seed=2).generate_prime(48)
        assert a == b

    def test_seeds_differ(self):
        a, _ = ParallelKeyGenerator(seed=3).generate_prime(48)
        b, _ = ParallelKeyGenerator(seed=4).generate_prime(48)
        assert a != b

    def test_parallel_rounds_bound(self):
        generator = ParallelKeyGenerator(seed=5, threads=16)
        _prime, stats = generator.generate_prime(48)
        assert stats.parallel_rounds == \
            -(-stats.candidates_tested // 16)

    def test_more_threads_fewer_rounds(self):
        # Same search cost, more parallelism: the modelled sequential
        # depth shrinks (~expected; both searches are independent draws,
        # so compare round counts per candidate).
        narrow = ParallelKeyGenerator(seed=6, threads=4)
        wide = ParallelKeyGenerator(seed=6, threads=64)
        _, stats_narrow = narrow.generate_prime(48)
        _, stats_wide = wide.generate_prime(48)
        assert stats_wide.parallel_rounds <= stats_narrow.parallel_rounds

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            ParallelKeyGenerator(seed=1).generate_prime(8)
        with pytest.raises(ValueError):
            ParallelKeyGenerator(threads=0)

    def test_charges_device(self):
        generator = ParallelKeyGenerator(seed=7)
        generator.generate_prime(48)
        assert len(generator.kernels.device.launches) > 0


class TestParallelKeypair:
    def test_keypair_works_end_to_end(self):
        generator = ParallelKeyGenerator(seed=8)
        keypair, stats = generator.generate_paillier_keypair(96)
        pub, pri = keypair.public_key, keypair.private_key
        rng = LimbRandom(seed=9)
        c = Paillier.raw_encrypt(pub, 12345, rng=rng)
        assert Paillier.raw_decrypt(pri, c) == 12345
        assert stats.candidates_tested >= 2

    def test_distinct_primes(self):
        generator = ParallelKeyGenerator(seed=10)
        keypair, _ = generator.generate_paillier_keypair(96)
        assert keypair.private_key.p != keypair.private_key.q
