"""Tests for the batched simulated-GPU kernels."""

import random

import pytest

from repro.gpu.device import SimulatedGpu
from repro.gpu.kernels import GpuKernels
from repro.gpu.resource_manager import ResourceManager


@pytest.fixture()
def kernels():
    return GpuKernels(device=SimulatedGpu(),
                      resource_manager=ResourceManager(managed=True))


class TestModMul:
    def test_correct_results(self, kernels):
        n = 10007
        a = [1, 2, 3, 9999]
        b = [5, 6, 7, 9999]
        assert kernels.mod_mul(a, b, n) == [(x * y) % n
                                            for x, y in zip(a, b)]

    def test_records_one_launch(self, kernels):
        kernels.mod_mul([1, 2], [3, 4], 101)
        assert len(kernels.device.launches) == 1
        launch = kernels.device.launches[0]
        assert launch.name == "mod_mul"
        assert launch.tasks == 2
        assert launch.seconds > 0

    def test_length_mismatch_raises(self, kernels):
        with pytest.raises(ValueError):
            kernels.mod_mul([1], [2, 3], 7)

    def test_empty_batch_raises(self, kernels):
        with pytest.raises(ValueError):
            kernels.mod_mul([], [], 7)


class TestModPow:
    def test_correct_results(self, kernels):
        rng = random.Random(31)
        n = rng.getrandbits(128) | 1
        bases = [rng.randrange(n) for _ in range(10)]
        exps = [rng.getrandbits(40) for _ in range(10)]
        assert kernels.mod_pow(bases, exps, n) == \
            [pow(b, e, n) for b, e in zip(bases, exps)]

    def test_scalar_exponent_helper(self, kernels):
        n = 10007
        bases = [2, 3, 4]
        assert kernels.mod_pow_scalar_exponent(bases, 5, n) == \
            [pow(b, 5, n) for b in bases]

    def test_pow_costs_more_than_mul(self, kernels):
        # Large batches so compute dominates the fixed launch latency.
        n = (1 << 127) - 1
        batch = 8192
        kernels.mod_mul([3] * batch, [5] * batch, n, work_bits=2048)
        mul_seconds = kernels.device.launches[-1].seconds
        kernels.mod_pow([3] * batch, [7] * batch, n, work_bits=2048,
                        exponent_bits=1024)
        pow_seconds = kernels.device.launches[-1].seconds
        assert pow_seconds > 5 * mul_seconds


class TestWorkBitsOverride:
    def test_nominal_charging_exceeds_physical(self, kernels):
        n = (1 << 255) | 1   # a 256-bit modulus
        batch = 8192         # compute-dominated launches
        kernels.mod_pow([2] * batch, [3] * batch, n, exponent_bits=256)
        physical = kernels.device.launches[-1].seconds
        kernels.mod_pow([2] * batch, [3] * batch, n, work_bits=8192,
                        exponent_bits=4096)
        nominal = kernels.device.launches[-1].seconds
        assert nominal > 10 * physical

    def test_exponent_bits_override(self, kernels):
        n = (1 << 127) - 1
        kernels.mod_pow([2] * 16, [3] * 16, n)          # tiny exponents
        small = kernels.device.launches[-1].seconds
        kernels.mod_pow([2] * 16, [3] * 16, n, exponent_bits=2048)
        large = kernels.device.launches[-1].seconds
        assert large > 10 * small


class TestChargeOnly:
    def test_charge_mod_mul_records_without_computing(self, kernels):
        seconds = kernels.charge_mod_mul(tasks=100, modulus_bits=2048)
        assert seconds > 0
        assert kernels.device.launches[-1].tasks == 100

    def test_charge_mod_pow_matches_real_launch(self, kernels):
        n = (1 << 255) | 5
        kernels.mod_pow_scalar_exponent([3] * 50, 1 << 200, n,
                                        work_bits=256, exponent_bits=201)
        real = kernels.device.launches[-1].seconds
        charged = kernels.charge_mod_pow(tasks=50, modulus_bits=256,
                                         exponent_bits=201)
        assert abs(charged - real) / real < 0.05


class TestManagedVsUnmanaged:
    def test_managed_kernels_faster(self):
        managed = GpuKernels(resource_manager=ResourceManager(managed=True))
        unmanaged = GpuKernels(
            resource_manager=ResourceManager(managed=False))
        n = (1 << 255) | 5
        bases = [3] * 2048
        managed.mod_pow_scalar_exponent(bases, 12345, n, work_bits=2048,
                                        exponent_bits=1024)
        unmanaged.mod_pow_scalar_exponent(bases, 12345, n, work_bits=2048,
                                          exponent_bits=1024)
        assert unmanaged.device.total_seconds > \
            3 * managed.device.total_seconds


class TestLimbExecution:
    def test_limb_mode_matches_int_mode(self):
        import random
        rng = random.Random(41)
        n = rng.getrandbits(256) | (1 << 255) | 1
        a = [rng.randrange(n) for _ in range(8)]
        b = [rng.randrange(n) for _ in range(8)]
        int_kernels = GpuKernels(execute="int")
        limb_kernels = GpuKernels(execute="limb")
        assert limb_kernels.mod_mul(a, b, n) == int_kernels.mod_mul(a, b, n)

    def test_limb_mode_charging_identical(self):
        n = (1 << 255) | 5
        int_kernels = GpuKernels(execute="int")
        limb_kernels = GpuKernels(execute="limb")
        int_kernels.mod_mul([3] * 4, [5] * 4, n)
        limb_kernels.mod_mul([3] * 4, [5] * 4, n)
        assert int_kernels.device.launches[-1].seconds == \
            limb_kernels.device.launches[-1].seconds

    def test_limb_mode_even_modulus_falls_back(self):
        kernels = GpuKernels(execute="limb")
        assert kernels.mod_mul([3], [5], 16) == [15]

    def test_end_to_end_paillier_on_limb_kernels(self, paillier_128=None):
        from repro.crypto.gpu_engine import GpuPaillierEngine
        from repro.crypto.keys import generate_paillier_keypair
        from repro.mpint.primes import LimbRandom
        keypair = generate_paillier_keypair(64, rng=LimbRandom(seed=51))
        engine = GpuPaillierEngine(keypair,
                                   kernels=GpuKernels(execute="limb"),
                                   rng=LimbRandom(seed=52))
        values = [1, 2, 3]
        ciphertexts = engine.encrypt_batch(values)
        summed = engine.sum_ciphertexts(ciphertexts)
        assert engine.decrypt_batch([summed]) == [6]

    def test_invalid_mode_raises(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            GpuKernels(execute="cuda")


class TestMemoryTableIntegration:
    def test_repeated_launches_reuse_slots(self):
        kernels = GpuKernels(resource_manager=ResourceManager(managed=True))
        n = (1 << 255) | 5
        for _ in range(5):
            kernels.mod_mul([1] * 16, [2] * 16, n)
        table = kernels.resource_manager.memory
        # First launch misses twice (in + out buffers); the rest hit.
        assert table.misses == 2
        assert table.hits == 8

    def test_unmanaged_path_skips_table(self):
        kernels = GpuKernels(resource_manager=ResourceManager(managed=False))
        n = (1 << 255) | 5
        kernels.mod_mul([1] * 16, [2] * 16, n)
        table = kernels.resource_manager.memory
        assert table.hits == 0 and table.misses == 0
