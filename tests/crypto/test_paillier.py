"""Tests for the Paillier cryptosystem (paper Eqs. 3-5)."""

import pytest

from repro.crypto.paillier import Paillier
from repro.crypto.keys import generate_paillier_keypair
from repro.mpint.primes import LimbRandom


class TestRoundtrip:
    def test_encrypt_decrypt(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        for value in (0, 1, 42, pub.n - 1):
            c = Paillier.raw_encrypt(pub, value, rng=rng)
            assert Paillier.raw_decrypt(pri, c) == value

    def test_crt_matches_textbook(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        for value in (0, 7, 123456, pub.n // 2):
            c = Paillier.raw_encrypt(pub, value, rng=rng)
            assert Paillier.raw_decrypt(pri, c) == \
                Paillier.raw_decrypt_textbook(pri, c)

    def test_ciphertexts_randomized(self, paillier_128, rng):
        pub = paillier_128.public_key
        c1 = Paillier.raw_encrypt(pub, 5, rng=rng)
        c2 = Paillier.raw_encrypt(pub, 5, rng=rng)
        assert c1 != c2     # semantic security needs fresh randomizers

    def test_explicit_randomizer_deterministic(self, paillier_128):
        pub = paillier_128.public_key
        assert Paillier.raw_encrypt(pub, 9, r=12345) == \
            Paillier.raw_encrypt(pub, 9, r=12345)

    def test_plaintext_out_of_range_raises(self, paillier_128, rng):
        pub = paillier_128.public_key
        with pytest.raises(ValueError):
            Paillier.raw_encrypt(pub, pub.n, rng=rng)
        with pytest.raises(ValueError):
            Paillier.raw_encrypt(pub, -1, rng=rng)

    def test_non_unit_randomizer_raises(self, paillier_128):
        pub = paillier_128.public_key
        keypair = paillier_128
        with pytest.raises(ValueError):
            Paillier.raw_encrypt(pub, 1, r=keypair.private_key.p)

    def test_ciphertext_out_of_range_raises(self, paillier_128):
        with pytest.raises(ValueError):
            Paillier.raw_decrypt(paillier_128.private_key,
                                 paillier_128.public_key.n_squared)


class TestHomomorphism:
    def test_addition(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c1 = Paillier.raw_encrypt(pub, 111, rng=rng)
        c2 = Paillier.raw_encrypt(pub, 222, rng=rng)
        assert Paillier.raw_decrypt(pri, Paillier.raw_add(pub, c1, c2)) == 333

    def test_addition_wraps_modulo_n(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c1 = Paillier.raw_encrypt(pub, pub.n - 1, rng=rng)
        c2 = Paillier.raw_encrypt(pub, 2, rng=rng)
        assert Paillier.raw_decrypt(pri, Paillier.raw_add(pub, c1, c2)) == 1

    def test_add_plain(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c = Paillier.raw_encrypt(pub, 100, rng=rng)
        assert Paillier.raw_decrypt(
            pri, Paillier.raw_add_plain(pub, c, 23)) == 123

    def test_scalar_mul(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c = Paillier.raw_encrypt(pub, 7, rng=rng)
        assert Paillier.raw_decrypt(
            pri, Paillier.raw_scalar_mul(pub, c, 6)) == 42

    def test_scalar_mul_negative_raises(self, paillier_128, rng):
        pub = paillier_128.public_key
        c = Paillier.raw_encrypt(pub, 7, rng=rng)
        with pytest.raises(ValueError):
            Paillier.raw_scalar_mul(pub, c, -2)


class TestCiphertextWrapper:
    def test_operator_add(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c1 = Paillier.encrypt(pub, 10, rng=rng)
        c2 = Paillier.encrypt(pub, 20, rng=rng)
        assert Paillier.decrypt(pri, c1 + c2) == 30

    def test_operator_add_plain(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c = Paillier.encrypt(pub, 10, rng=rng)
        assert Paillier.decrypt(pri, c + 5) == 15
        assert Paillier.decrypt(pri, 5 + c) == 15

    def test_operator_scalar_mul(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        c = Paillier.encrypt(pub, 10, rng=rng)
        assert Paillier.decrypt(pri, c * 3) == 30
        assert Paillier.decrypt(pri, 3 * c) == 30

    def test_sum_builtin(self, paillier_128, rng):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        cs = [Paillier.encrypt(pub, v, rng=rng) for v in (1, 2, 3, 4)]
        total = cs[0]
        for c in cs[1:]:
            total = total + c
        assert Paillier.decrypt(pri, total) == 10

    def test_mixed_keys_raise(self, paillier_128, rng):
        other = generate_paillier_keypair(128, rng=LimbRandom(seed=77))
        c1 = Paillier.encrypt(paillier_128.public_key, 1, rng=rng)
        c2 = Paillier.encrypt(other.public_key, 1, rng=rng)
        with pytest.raises(ValueError):
            _ = c1 + c2

    def test_serialized_bytes(self, paillier_128, rng):
        c = Paillier.encrypt(paillier_128.public_key, 1, rng=rng)
        assert c.serialized_bytes() == \
            paillier_128.public_key.ciphertext_bytes()


class TestArbitraryGenerator:
    def test_random_g_still_works(self, rng):
        keypair = generate_paillier_keypair(64, rng=rng, generator=None)
        n = keypair.public_key.n
        # Rebuild with an explicit non-standard generator g = n + 1 + n^2/…
        from repro.crypto.keys import PaillierPublicKey, PaillierPrivateKey
        g = (n + 1) * (n + 1) % (n * n)   # also a valid generator
        pub = PaillierPublicKey(n=n, g=g, key_bits=64)
        pri = PaillierPrivateKey(p=keypair.private_key.p,
                                 q=keypair.private_key.q, public_key=pub)
        c = Paillier.raw_encrypt(pub, 99, rng=rng)
        assert Paillier.raw_decrypt(pri, c) == 99
