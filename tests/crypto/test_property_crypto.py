"""Property-based tests (hypothesis) for the cryptosystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.keys import generate_paillier_keypair, generate_rsa_keypair
from repro.crypto.paillier import Paillier
from repro.crypto.rsa import Rsa
from repro.mpint.primes import LimbRandom

# Session-fixed small keys: hypothesis drives the plaintexts, not keygen.
_PAILLIER = generate_paillier_keypair(128, rng=LimbRandom(seed=2001))
_RSA = generate_rsa_keypair(128, rng=LimbRandom(seed=2002))
_RNG = LimbRandom(seed=2003)

plaintexts = st.integers(min_value=0,
                         max_value=_PAILLIER.public_key.n - 1)
small_values = st.integers(min_value=0, max_value=1 << 40)
scalars = st.integers(min_value=0, max_value=1 << 16)


@settings(max_examples=30)
@given(plaintexts)
def test_paillier_roundtrip(message):
    c = Paillier.raw_encrypt(_PAILLIER.public_key, message, rng=_RNG)
    assert Paillier.raw_decrypt(_PAILLIER.private_key, c) == message


@settings(max_examples=30)
@given(small_values, small_values)
def test_paillier_additive_homomorphism(m1, m2):
    pub, pri = _PAILLIER.public_key, _PAILLIER.private_key
    c1 = Paillier.raw_encrypt(pub, m1, rng=_RNG)
    c2 = Paillier.raw_encrypt(pub, m2, rng=_RNG)
    assert Paillier.raw_decrypt(pri, Paillier.raw_add(pub, c1, c2)) == \
        (m1 + m2) % pub.n


@settings(max_examples=30)
@given(small_values, scalars)
def test_paillier_scalar_homomorphism(message, scalar):
    pub, pri = _PAILLIER.public_key, _PAILLIER.private_key
    c = Paillier.raw_encrypt(pub, message, rng=_RNG)
    assert Paillier.raw_decrypt(
        pri, Paillier.raw_scalar_mul(pub, c, scalar)) == \
        (message * scalar) % pub.n


@settings(max_examples=30)
@given(small_values, small_values)
def test_paillier_add_plain(message, plain):
    pub, pri = _PAILLIER.public_key, _PAILLIER.private_key
    c = Paillier.raw_encrypt(pub, message, rng=_RNG)
    assert Paillier.raw_decrypt(
        pri, Paillier.raw_add_plain(pub, c, plain)) == \
        (message + plain) % pub.n


@settings(max_examples=30)
@given(plaintexts)
def test_paillier_crt_equals_textbook(message):
    c = Paillier.raw_encrypt(_PAILLIER.public_key, message, rng=_RNG)
    assert Paillier.raw_decrypt(_PAILLIER.private_key, c) == \
        Paillier.raw_decrypt_textbook(_PAILLIER.private_key, c)


@settings(max_examples=30)
@given(st.integers(min_value=0, max_value=_RSA.public_key.n - 1))
def test_rsa_roundtrip(message):
    c = Rsa.raw_encrypt(_RSA.public_key, message)
    assert Rsa.raw_decrypt(_RSA.private_key, c) == message


@settings(max_examples=30)
@given(small_values, small_values)
def test_rsa_multiplicative_homomorphism(m1, m2):
    pub, pri = _RSA.public_key, _RSA.private_key
    c = Rsa.raw_mul(pub, Rsa.raw_encrypt(pub, m1),
                    Rsa.raw_encrypt(pub, m2))
    assert Rsa.raw_decrypt(pri, c) == (m1 * m2) % pub.n
