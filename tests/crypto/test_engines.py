"""Tests for the CPU and GPU Paillier engines."""

import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.gpu.kernels import GpuKernels
from repro.gpu.resource_manager import ResourceManager
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom


def make_engines(keypair, nominal_bits=1024):
    ledger_cpu, ledger_gpu = CostLedger(), CostLedger()
    cpu = CpuPaillierEngine(keypair, nominal_bits=nominal_bits,
                            ledger=ledger_cpu, rng=LimbRandom(seed=5))
    gpu = GpuPaillierEngine(
        keypair, kernels=GpuKernels(
            resource_manager=ResourceManager(managed=True)),
        nominal_bits=nominal_bits, ledger=ledger_gpu,
        rng=LimbRandom(seed=5))
    return cpu, gpu


class TestCorrectness:
    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_roundtrip(self, paillier_128, engine_index):
        engine = make_engines(paillier_128)[engine_index]
        values = [0, 1, 1000, paillier_128.public_key.n - 1]
        assert engine.decrypt_batch(engine.encrypt_batch(values)) == values

    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_homomorphic_add(self, paillier_128, engine_index):
        engine = make_engines(paillier_128)[engine_index]
        c1 = engine.encrypt_batch([1, 2, 3])
        c2 = engine.encrypt_batch([10, 20, 30])
        assert engine.decrypt_batch(engine.add_batch(c1, c2)) == [11, 22, 33]

    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_scalar_mul(self, paillier_128, engine_index):
        engine = make_engines(paillier_128)[engine_index]
        cs = engine.encrypt_batch([1, 2, 3])
        assert engine.decrypt_batch(
            engine.scalar_mul_batch(cs, [2, 3, 4])) == [2, 6, 12]

    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_sum_ciphertexts(self, paillier_128, engine_index):
        engine = make_engines(paillier_128)[engine_index]
        cs = engine.encrypt_batch(list(range(10)))
        assert engine.decrypt_batch([engine.sum_ciphertexts(cs)]) == [45]

    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_sum_odd_length(self, paillier_128, engine_index):
        # Odd batches exercise the leftover-passthrough of the pairwise
        # halving reduction.
        engine = make_engines(paillier_128)[engine_index]
        cs = engine.encrypt_batch(list(range(7)))
        assert engine.decrypt_batch([engine.sum_ciphertexts(cs)]) == [21]

    @pytest.mark.parametrize("engine_index", [0, 1],
                             ids=["cpu", "gpu"])
    def test_sum_single_element(self, paillier_128, engine_index):
        engine = make_engines(paillier_128)[engine_index]
        cs = engine.encrypt_batch([42])
        assert engine.decrypt_batch([engine.sum_ciphertexts(cs)]) == [42]

    def test_sum_single_element_is_free(self, paillier_128):
        _, gpu = make_engines(paillier_128)
        cs = gpu.encrypt_batch([42])
        before = len(gpu.kernels.device.launches)
        gpu.sum_ciphertexts(cs)
        # A one-element sum needs no additions, so no kernel launches.
        assert len(gpu.kernels.device.launches) == before

    def test_sum_empty_raises(self, paillier_128):
        cpu, _ = make_engines(paillier_128)
        with pytest.raises(ValueError):
            cpu.sum_ciphertexts([])

    def test_out_of_range_plaintext_raises(self, paillier_128):
        cpu, gpu = make_engines(paillier_128)
        with pytest.raises(ValueError):
            cpu.encrypt_batch([paillier_128.public_key.n])
        with pytest.raises(ValueError):
            gpu.encrypt_batch([-1])

    def test_mismatched_batches_raise(self, paillier_128):
        cpu, gpu = make_engines(paillier_128)
        with pytest.raises(ValueError):
            cpu.add_batch([1], [1, 2])
        with pytest.raises(ValueError):
            gpu.scalar_mul_batch([1, 2], [1])

    def test_negative_scalar_raises(self, paillier_128):
        _, gpu = make_engines(paillier_128)
        cs = gpu.encrypt_batch([1])
        with pytest.raises(ValueError):
            gpu.scalar_mul_batch(cs, [-1])

    def test_empty_gpu_batches_are_noops(self, paillier_128):
        _, gpu = make_engines(paillier_128)
        assert gpu.encrypt_batch([]) == []
        assert gpu.decrypt_batch([]) == []
        assert gpu.add_batch([], []) == []
        assert gpu.scalar_mul_batch([], []) == []


class TestCharging:
    def test_cpu_charges_per_op(self, paillier_128):
        cpu, _ = make_engines(paillier_128)
        cpu.encrypt_batch([1, 2, 3, 4])
        assert cpu.ledger.count("he.encrypt") == 4
        assert cpu.ledger.seconds("he.encrypt") > 0

    def test_gpu_charges_launches(self, paillier_128):
        _, gpu = make_engines(paillier_128)
        gpu.encrypt_batch([1, 2, 3, 4])
        assert gpu.ledger.count("he.encrypt") == 4
        assert gpu.ledger.seconds("he.encrypt") > 0
        assert len(gpu.kernels.device.launches) >= 2

    def test_gpu_batch_faster_than_cpu(self, paillier_128):
        cpu, gpu = make_engines(paillier_128)
        values = list(range(512))
        cpu.encrypt_batch(values)
        gpu.encrypt_batch(values)
        assert cpu.ledger.seconds("he.encrypt") > \
            20 * gpu.ledger.seconds("he.encrypt")

    def test_nominal_bits_scale_charges(self, paillier_128):
        cpu_small, _ = make_engines(paillier_128, nominal_bits=1024)
        cpu_large, _ = make_engines(paillier_128, nominal_bits=4096)
        cpu_small.encrypt_batch([1] * 16)
        cpu_large.encrypt_batch([1] * 16)
        assert cpu_large.ledger.seconds("he") > \
            10 * cpu_small.ledger.seconds("he")

    def test_report_counts(self, paillier_128):
        cpu, _ = make_engines(paillier_128)
        cs = cpu.encrypt_batch([1, 2])
        cpu.decrypt_batch(cs)
        cpu.add_batch(cs, cs)
        assert cpu.report.encryptions == 2
        assert cpu.report.decryptions == 2
        assert cpu.report.additions == 2
        assert cpu.report.total_operations == 6
        assert cpu.report.modelled_seconds > 0


class TestRandomizerPool:
    def test_pool_still_decrypts_correctly(self, paillier_128):
        engine = CpuPaillierEngine(paillier_128, nominal_bits=256,
                                   rng=LimbRandom(seed=6),
                                   randomizer_pool_size=4)
        values = list(range(20))
        assert engine.decrypt_batch(engine.encrypt_batch(values)) == values

    def test_pool_cycles(self, paillier_128):
        engine = CpuPaillierEngine(paillier_128, nominal_bits=256,
                                   rng=LimbRandom(seed=6),
                                   randomizer_pool_size=3)
        engine.encrypt_batch([0] * 7)
        assert len(engine._randomizer_pool) == 3

    def test_no_pool_is_fresh_each_time(self, paillier_128):
        engine = CpuPaillierEngine(paillier_128, nominal_bits=256,
                                   rng=LimbRandom(seed=6),
                                   randomizer_pool_size=0)
        c1 = engine.encrypt_batch([5])[0]
        c2 = engine.encrypt_batch([5])[0]
        assert c1 != c2

    def test_nominal_geometry_helpers(self, paillier_128):
        engine = CpuPaillierEngine(paillier_128, nominal_bits=2048)
        assert engine.physical_bits == 128
        assert engine.nominal_ciphertext_bytes() == 512
        assert engine.physical_plaintext_bits == 127
