"""Tests for the Damgard-Jurik generalized Paillier (paper ref. [21])."""

import pytest

from repro.crypto.damgard_jurik import (
    DamgardJurik,
    generate_damgard_jurik_keypair,
    packing_gain,
)
from repro.crypto.paillier import Paillier
from repro.mpint.primes import LimbRandom


@pytest.fixture(scope="module")
def dj_keys():
    rng = LimbRandom(seed=3001)
    return {s: generate_damgard_jurik_keypair(128, s=s, rng=rng)
            for s in (1, 2, 3)}


@pytest.fixture()
def dj_rng():
    return LimbRandom(seed=3002)


class TestRoundtrip:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_encrypt_decrypt(self, dj_keys, dj_rng, s):
        pub = dj_keys[s].public_key
        pri = dj_keys[s].private_key
        for message in (0, 1, 42, pub.plaintext_modulus - 1):
            c = DamgardJurik.raw_encrypt(pub, message, rng=dj_rng)
            assert DamgardJurik.raw_decrypt(pri, c) == message

    def test_large_plaintexts_beyond_paillier(self, dj_keys, dj_rng):
        # s = 3 hosts plaintexts Paillier's n could never hold.
        pub = dj_keys[3].public_key
        pri = dj_keys[3].private_key
        message = (1 << 300) % pub.plaintext_modulus
        assert message.bit_length() > pub.n.bit_length()
        c = DamgardJurik.raw_encrypt(pub, message, rng=dj_rng)
        assert DamgardJurik.raw_decrypt(pri, c) == message

    def test_out_of_range_raises(self, dj_keys, dj_rng):
        pub = dj_keys[2].public_key
        with pytest.raises(ValueError):
            DamgardJurik.raw_encrypt(pub, pub.plaintext_modulus,
                                     rng=dj_rng)
        with pytest.raises(ValueError):
            DamgardJurik.raw_decrypt(dj_keys[2].private_key,
                                     pub.ciphertext_modulus)

    def test_randomized(self, dj_keys, dj_rng):
        pub = dj_keys[2].public_key
        assert DamgardJurik.raw_encrypt(pub, 5, rng=dj_rng) != \
            DamgardJurik.raw_encrypt(pub, 5, rng=dj_rng)


class TestHomomorphism:
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_addition(self, dj_keys, dj_rng, s):
        pub, pri = dj_keys[s].public_key, dj_keys[s].private_key
        c1 = DamgardJurik.raw_encrypt(pub, 1111, rng=dj_rng)
        c2 = DamgardJurik.raw_encrypt(pub, 2222, rng=dj_rng)
        assert DamgardJurik.raw_decrypt(
            pri, DamgardJurik.raw_add(pub, c1, c2)) == 3333

    def test_scalar_mul(self, dj_keys, dj_rng):
        pub, pri = dj_keys[2].public_key, dj_keys[2].private_key
        c = DamgardJurik.raw_encrypt(pub, 11, rng=dj_rng)
        assert DamgardJurik.raw_decrypt(
            pri, DamgardJurik.raw_scalar_mul(pub, c, 9)) == 99

    def test_negative_scalar_raises(self, dj_keys, dj_rng):
        pub = dj_keys[2].public_key
        c = DamgardJurik.raw_encrypt(pub, 1, rng=dj_rng)
        with pytest.raises(ValueError):
            DamgardJurik.raw_scalar_mul(pub, c, -1)

    def test_addition_wraps_modulo_ns(self, dj_keys, dj_rng):
        pub, pri = dj_keys[2].public_key, dj_keys[2].private_key
        big = pub.plaintext_modulus - 1
        c1 = DamgardJurik.raw_encrypt(pub, big, rng=dj_rng)
        c2 = DamgardJurik.raw_encrypt(pub, 2, rng=dj_rng)
        assert DamgardJurik.raw_decrypt(
            pri, DamgardJurik.raw_add(pub, c1, c2)) == 1


class TestPaillierCompatibility:
    def test_s1_interoperates_with_paillier_decrypt(self, dj_rng):
        # At s = 1 the two schemes share keys and ciphertext space.
        rng = LimbRandom(seed=3003)
        dj = generate_damgard_jurik_keypair(128, s=1, rng=rng)
        from repro.crypto.keys import (PaillierPublicKey,
                                       PaillierPrivateKey)
        pub = PaillierPublicKey(n=dj.public_key.n, g=dj.public_key.n + 1,
                                key_bits=128)
        pri = PaillierPrivateKey(p=dj.private_key.p, q=dj.private_key.q,
                                 public_key=pub)
        c = DamgardJurik.raw_encrypt(dj.public_key, 777, rng=dj_rng)
        assert Paillier.raw_decrypt(pri, c) == 777


class TestGeometry:
    def test_key_gen_validation(self):
        with pytest.raises(ValueError):
            generate_damgard_jurik_keypair(128, s=0)

    def test_ciphertext_grows_linearly_in_s(self, dj_keys):
        sizes = [dj_keys[s].public_key.ciphertext_bytes() for s in (1, 2, 3)]
        assert sizes[1] == pytest.approx(1.5 * sizes[0], rel=0.05)
        assert sizes[2] == pytest.approx(2.0 * sizes[0], rel=0.05)

    def test_packing_gain_monotone(self):
        gains = [packing_gain(1024, s) for s in (1, 2, 4, 8)]
        assert gains[0] == pytest.approx(1.0)
        assert gains == sorted(gains)
        assert gains[-1] < 2.0     # asymptote is 2x

    def test_packing_gain_validation(self):
        with pytest.raises(ValueError):
            packing_gain(1024, 0)
