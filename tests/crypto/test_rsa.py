"""Tests for RSA with its multiplicative homomorphism (paper Table I)."""

import pytest

from repro.crypto.rsa import Rsa


class TestRoundtrip:
    def test_encrypt_decrypt(self, rsa_128):
        pub, pri = rsa_128.public_key, rsa_128.private_key
        for value in (0, 1, 42, pub.n - 1):
            assert Rsa.raw_decrypt(pri, Rsa.raw_encrypt(pub, value)) == value

    def test_deterministic(self, rsa_128):
        # Textbook RSA is deterministic by construction.
        pub = rsa_128.public_key
        assert Rsa.raw_encrypt(pub, 7) == Rsa.raw_encrypt(pub, 7)

    def test_out_of_range_raises(self, rsa_128):
        with pytest.raises(ValueError):
            Rsa.raw_encrypt(rsa_128.public_key, rsa_128.public_key.n)
        with pytest.raises(ValueError):
            Rsa.raw_decrypt(rsa_128.private_key, -1)


class TestHomomorphism:
    def test_multiplication(self, rsa_128):
        pub, pri = rsa_128.public_key, rsa_128.private_key
        c1 = Rsa.raw_encrypt(pub, 6)
        c2 = Rsa.raw_encrypt(pub, 7)
        assert Rsa.raw_decrypt(pri, Rsa.raw_mul(pub, c1, c2)) == 42

    def test_multiplication_wraps_modulo_n(self, rsa_128):
        pub, pri = rsa_128.public_key, rsa_128.private_key
        big = pub.n - 1
        c1 = Rsa.raw_encrypt(pub, big)
        c2 = Rsa.raw_encrypt(pub, big)
        assert Rsa.raw_decrypt(pri, Rsa.raw_mul(pub, c1, c2)) == \
            (big * big) % pub.n

    def test_chain_of_multiplications(self, rsa_128):
        pub, pri = rsa_128.public_key, rsa_128.private_key
        product_cipher = Rsa.raw_encrypt(pub, 1)
        expected = 1
        for value in (2, 3, 5, 7):
            product_cipher = Rsa.raw_mul(pub, product_cipher,
                                         Rsa.raw_encrypt(pub, value))
            expected *= value
        assert Rsa.raw_decrypt(pri, product_cipher) == expected


class TestWrapper:
    def test_operator_mul(self, rsa_128):
        pub, pri = rsa_128.public_key, rsa_128.private_key
        c = Rsa.encrypt(pub, 6) * Rsa.encrypt(pub, 9)
        assert Rsa.decrypt(pri, c) == 54

    def test_serialized_bytes(self, rsa_128):
        c = Rsa.encrypt(rsa_128.public_key, 1)
        assert c.serialized_bytes() == rsa_128.public_key.ciphertext_bytes()

    def test_mixed_keys_raise(self, rsa_128, rng):
        from repro.crypto.keys import generate_rsa_keypair
        other = generate_rsa_keypair(128, rng=rng)
        with pytest.raises(ValueError):
            _ = Rsa.encrypt(rsa_128.public_key, 2) * \
                Rsa.encrypt(other.public_key, 2)
