"""The vectorized limb-plane Paillier engine and its RNG routing.

Three concerns share this module:

- **Engine semantics** -- roundtrips, homomorphic ops, error paths, and
  bit-identity against the scalar CPU engine under a shared seed.
- **Obfuscator-pool routing** (the PR's determinism fix) -- every
  ``r^n`` pool draw must come from the engine's *routed* rng stream, so
  identically-seeded pools are identical, across engine kinds, with the
  conformance oracle passing pooled and unpooled alike.
- **Graceful degradation** -- without numpy the module imports, the
  engine class refuses construction, and ``vector-paillier`` is absent
  from the conformance registry (tier-1 otherwise unaffected).
"""

from __future__ import annotations

import importlib
import subprocess
import sys
import textwrap

import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.engine import HeEngine, RandomizerPool
from repro.mpint import limb_plane
from repro.mpint.primes import LimbRandom

from tests.conftest import seed_for

needs_numpy = pytest.mark.skipif(
    not limb_plane.HAVE_NUMPY, reason="limb-plane backend requires numpy")


def _vector_engine(keypair, **kwargs):
    from repro.crypto.vector_engine import VectorPaillierEngine
    kwargs.setdefault("nominal_bits", 256)
    kwargs.setdefault("rng", LimbRandom(seed=seed_for(9200)))
    return VectorPaillierEngine(keypair, **kwargs)


def _cpu_engine(keypair, **kwargs):
    kwargs.setdefault("nominal_bits", 256)
    kwargs.setdefault("rng", LimbRandom(seed=seed_for(9200)))
    return CpuPaillierEngine(keypair, **kwargs)


@needs_numpy
class TestVectorEngineSemantics:
    def test_roundtrip(self, paillier_128):
        engine = _vector_engine(paillier_128)
        values = list(range(40)) + [engine.public_key.n - 1]
        assert engine.decrypt_batch(engine.encrypt_batch(values)) == values

    def test_add_matches_plain_sum(self, paillier_128):
        engine = _vector_engine(paillier_128)
        a = engine.encrypt_batch([1, 2, 3])
        b = engine.encrypt_batch([10, 20, 30])
        assert engine.decrypt_batch(engine.add_batch(a, b)) == [11, 22, 33]

    def test_scalar_mul_matches_plain_product(self, paillier_128):
        engine = _vector_engine(paillier_128)
        c = engine.encrypt_batch([3, 5, 7])
        out = engine.scalar_mul_batch(c, [0, 1, 1000])
        assert engine.decrypt_batch(out) == [0, 5, 7000]

    def test_empty_batches(self, paillier_128):
        engine = _vector_engine(paillier_128)
        assert engine.encrypt_batch([]) == []
        assert engine.decrypt_batch([]) == []
        assert engine.add_batch([], []) == []
        assert engine.scalar_mul_batch([], []) == []

    def test_length_mismatch_raises(self, paillier_128):
        engine = _vector_engine(paillier_128)
        c = engine.encrypt_batch([1, 2])
        with pytest.raises(ValueError):
            engine.add_batch(c, c[:1])
        with pytest.raises(ValueError):
            engine.scalar_mul_batch(c, [1])

    def test_negative_scalar_raises(self, paillier_128):
        engine = _vector_engine(paillier_128)
        c = engine.encrypt_batch([1])
        with pytest.raises(ValueError):
            engine.scalar_mul_batch(c, [-1])

    def test_ciphertexts_bit_identical_to_cpu_engine(self, paillier_128):
        """Same keys, same seed, same draws: the whole op stream must be
        indistinguishable from the scalar engine's, bit for bit."""
        cpu = _cpu_engine(paillier_128, randomizer_pool_size=0)
        vec = _vector_engine(paillier_128, randomizer_pool_size=0)
        values = [0, 1, 17, 255, cpu.public_key.n - 1]
        c_cpu = cpu.encrypt_batch(values)
        c_vec = vec.encrypt_batch(values)
        assert c_cpu == c_vec
        assert cpu.add_batch(c_cpu, c_cpu) == vec.add_batch(c_vec, c_vec)
        scalars = [1, 3, 9, 27, 81]
        assert (cpu.scalar_mul_batch(c_cpu, scalars)
                == vec.scalar_mul_batch(c_vec, scalars))

    def test_non_binomial_generator_uses_fixed_base_table(self):
        """An explicit generator routes g^m through the window table;
        results must still match the scalar engine bit for bit."""
        from repro.crypto.keys import generate_paillier_keypair
        keypair = generate_paillier_keypair(
            128, rng=LimbRandom(seed=seed_for(9201)), generator=5)
        cpu = _cpu_engine(keypair, randomizer_pool_size=0)
        vec = _vector_engine(keypair, randomizer_pool_size=0)
        assert vec._encryptor.public_key.g == 5
        values = [0, 1, 12345]
        assert cpu.encrypt_batch(values) == vec.encrypt_batch(values)
        # And the table actually got built (binomial keys never do).
        assert vec._encryptor._fixed_base is not None

    def test_report_counters_accumulate(self, paillier_128):
        engine = _vector_engine(paillier_128)
        c = engine.encrypt_batch([1, 2, 3, 4])
        engine.add_batch(c, c)
        engine.scalar_mul_batch(c, [2, 2, 2, 2])
        engine.decrypt_batch(c)
        assert engine.report.encryptions == 4
        assert engine.report.additions == 4
        assert engine.report.scalar_muls == 4
        assert engine.report.decryptions == 4
        assert engine.report.modelled_seconds > 0


class TestRandomizerPoolRouting:
    """Satellite 4: pool draws come from the routed rng stream only."""

    def test_identically_seeded_pools_are_identical(self, paillier_128):
        snapshots = []
        for _ in range(2):
            engine = _cpu_engine(paillier_128,
                                 rng=LimbRandom(seed=seed_for(9210)),
                                 randomizer_pool_size=6)
            snapshots.append(engine.randomizer_pool_snapshot())
        assert snapshots[0] == snapshots[1]
        assert len(snapshots[0]) == 6

    @needs_numpy
    def test_cpu_and_vector_pools_agree(self, paillier_128):
        """The batched limb-plane refill must reproduce the scalar
        pow() refill exactly -- same draws, same powers."""
        cpu = _cpu_engine(paillier_128,
                          rng=LimbRandom(seed=seed_for(9211)),
                          randomizer_pool_size=5)
        vec = _vector_engine(paillier_128,
                             rng=LimbRandom(seed=seed_for(9211)),
                             randomizer_pool_size=5)
        assert cpu.randomizer_pool_snapshot() == \
            vec.randomizer_pool_snapshot()

    @needs_numpy
    def test_pooled_encrypt_streams_are_deterministic(self, paillier_128):
        streams = []
        for _ in range(2):
            engine = _vector_engine(paillier_128,
                                    rng=LimbRandom(seed=seed_for(9212)),
                                    randomizer_pool_size=4)
            streams.append(engine.encrypt_batch(list(range(10))))
        assert streams[0] == streams[1]

    def test_unpooled_engine_has_empty_snapshot(self, paillier_128):
        engine = _cpu_engine(paillier_128, randomizer_pool_size=0)
        assert engine.randomizer_pool_snapshot() == []

    def test_pool_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            RandomizerPool(0)

    def test_pool_take_before_fill_raises(self):
        pool = RandomizerPool(3)
        with pytest.raises(RuntimeError):
            pool.take(1)

    @pytest.mark.parametrize("pool_size", [0, 64])
    def test_cpu_conformance_passes_with_and_without_pool(
            self, pool_size):
        self._replay_roundtrip("cpu", pool_size)

    @needs_numpy
    @pytest.mark.parametrize("pool_size", [0, 64])
    def test_vector_conformance_passes_with_and_without_pool(
            self, pool_size):
        self._replay_roundtrip("vector", pool_size)

    @staticmethod
    def _replay_roundtrip(kind: str, pool_size: int) -> None:
        """Replay standard traces against a pool-configured engine.

        Pooling changes *which* randomizers an encryption uses only
        once the pool cycles; with pool >= total encrypts the stream
        matches the unpooled reference draw for draw, so the oracle
        must pass either way.
        """
        from repro.crypto.keys import generate_paillier_keypair
        from repro.testing.conformance import ConformancePair, replay
        from repro.testing.parties import HeEngineParty
        from repro.testing.reference import PaillierReference
        from repro.testing.trace import standard_traces
        for trace in standard_traces(key_bits=128)[:3]:
            keypair = generate_paillier_keypair(
                trace.key_bits, rng=LimbRandom(seed=trace.seed))
            kwargs = dict(rng=LimbRandom(seed=trace.seed + 1),
                          randomizer_pool_size=pool_size)
            if kind == "vector":
                from repro.crypto.vector_engine import VectorPaillierEngine
                engine = VectorPaillierEngine(keypair, **kwargs)
            else:
                engine = CpuPaillierEngine(keypair, **kwargs)
            reference = PaillierReference(keypair, seed=trace.seed + 1)
            result = replay(trace,
                            ConformancePair(party=HeEngineParty(engine),
                                            reference=reference),
                            engine_name=f"{kind}-pool{pool_size}")
            assert result.status == "ok"


class TestGracefulDegradation:
    """The numpy-optional contract, from both sides of the boundary."""

    def test_limb_plane_imports_without_numpy(self):
        """In a numpy-less interpreter the module must import, report
        HAVE_NUMPY=False, raise the documented error on use, and leave
        the conformance registry without a vector-paillier entry."""
        code = textwrap.dedent("""
            import sys

            class _BlockNumpy:
                # Simulate a numpy-free install faithfully: the module
                # is *absent*, not half-loaded, so "numpy" never shows
                # up in sys.modules.
                def find_spec(self, name, path=None, target=None):
                    if name == "numpy" or name.startswith("numpy."):
                        raise ModuleNotFoundError(
                            f"No module named {name!r} (blocked)")
                    return None

            sys.meta_path.insert(0, _BlockNumpy())
            from repro.mpint import limb_plane
            assert limb_plane.HAVE_NUMPY is False
            try:
                limb_plane.require_numpy()
            except RuntimeError as error:
                assert "numpy" in str(error)
            else:
                raise SystemExit("require_numpy did not raise")
            try:
                limb_plane.PlaneContext(2**64 + 13)
            except RuntimeError:
                pass
            else:
                raise SystemExit("PlaneContext built without numpy")
            print("degraded-ok")
        """)
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, check=False)
        assert proc.returncode == 0, proc.stderr
        assert "degraded-ok" in proc.stdout

    def test_vector_engine_deregisters_without_numpy(self, monkeypatch):
        """Reloading the engine module with HAVE_NUMPY forced off must
        remove the registration rather than leave a stale entry."""
        import repro.crypto.vector_engine as vector_engine
        if not limb_plane.HAVE_NUMPY:
            pytest.skip("needs a numpy build to exercise the flip")
        try:
            monkeypatch.setattr(limb_plane, "HAVE_NUMPY", False)
            importlib.reload(vector_engine)
            assert "vector-paillier" not in HeEngine.conformance_factories()
        finally:
            monkeypatch.undo()
            importlib.reload(vector_engine)
        assert "vector-paillier" in HeEngine.conformance_factories()

    @needs_numpy
    def test_registered_in_conformance_registry(self):
        from repro.testing.conformance import discovered_factories
        factories = discovered_factories()
        assert "vector-paillier" in factories
        assert factories["vector-paillier"].capabilities == frozenset(
            {"encrypt", "decrypt", "add", "scalar_mul"})

    def test_runtime_rejects_vector_backend_without_numpy(
            self, monkeypatch):
        from repro.federation.runtime import (
            FATE_SYSTEM,
            FederationRuntime,
        )
        import repro.mpint.limb_plane as lp
        monkeypatch.setattr(lp, "HAVE_NUMPY", False)
        with pytest.raises(RuntimeError, match="numpy"):
            FederationRuntime(FATE_SYSTEM, num_clients=2, key_bits=128,
                              he_backend="vector")

    def test_runtime_rejects_unknown_backend(self):
        from repro.federation.runtime import (
            FATE_SYSTEM,
            FederationRuntime,
        )
        with pytest.raises(ValueError, match="he_backend"):
            FederationRuntime(FATE_SYSTEM, num_clients=2, key_bits=128,
                              he_backend="simd")
