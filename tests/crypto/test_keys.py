"""Tests for key generation and derived constants."""

import math

import pytest

from repro.crypto.keys import (
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
    generate_rsa_keypair,
)
from repro.mpint.primes import LimbRandom, is_probable_prime


class TestPaillierKeyGen:
    def test_modulus_size(self, paillier_128):
        assert paillier_128.public_key.n.bit_length() == 128

    def test_primes_are_prime_and_equal_length(self, paillier_128):
        pri = paillier_128.private_key
        assert is_probable_prime(pri.p)
        assert is_probable_prime(pri.q)
        # The paper keeps p and q the same length as other large ints.
        assert pri.p.bit_length() == pri.q.bit_length() == 64

    def test_default_generator_is_n_plus_one(self, paillier_128):
        assert paillier_128.public_key.g == paillier_128.public_key.n + 1

    def test_lambda_is_lcm(self, paillier_128):
        pri = paillier_128.private_key
        assert pri.lam == math.lcm(pri.p - 1, pri.q - 1)

    def test_mu_inverts_l_of_g_lambda(self, paillier_128):
        pub, pri = paillier_128.public_key, paillier_128.private_key
        l_value = (pow(pub.g, pri.lam, pub.n_squared) - 1) // pub.n
        assert (l_value * pri.mu) % pub.n == 1

    def test_crt_constants_consistent(self, paillier_128):
        pri = paillier_128.private_key
        assert (pri.q * pri.q_inverse) % pri.p == 1

    def test_deterministic_given_seed(self):
        a = generate_paillier_keypair(64, rng=LimbRandom(seed=3))
        b = generate_paillier_keypair(64, rng=LimbRandom(seed=3))
        assert a.public_key.n == b.public_key.n

    def test_mismatched_primes_raise(self, paillier_128):
        pub = paillier_128.public_key
        with pytest.raises(ValueError):
            PaillierPrivateKey(p=3, q=5, public_key=pub)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generate_paillier_keypair(8)

    def test_iteration_order_matches_paper(self, paillier_128):
        # Paper API: key_gen(size) -> (pri_key, pub_key).
        pri, pub = paillier_128
        assert isinstance(pub, PaillierPublicKey)
        assert pri is paillier_128.private_key

    def test_ciphertext_bytes(self, paillier_128):
        assert paillier_128.public_key.ciphertext_bytes() == \
            -(-paillier_128.public_key.n_squared.bit_length() // 8)


class TestRsaKeyGen:
    def test_modulus_size(self, rsa_128):
        assert rsa_128.public_key.n.bit_length() == 128

    def test_ed_inverse_mod_phi(self, rsa_128):
        # d * e == 1 (mod phi) is what roundtrip correctness requires;
        # verify it through an actual exponentiation identity.
        pub, pri = rsa_128.public_key, rsa_128.private_key
        message = 0xABCDEF
        assert pow(pow(message, pub.e, pub.n), pri.d, pub.n) == message

    def test_default_public_exponent(self, rsa_128):
        assert rsa_128.public_key.e == 65537

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            generate_rsa_keypair(8)

    def test_deterministic_given_seed(self):
        a = generate_rsa_keypair(64, rng=LimbRandom(seed=4))
        b = generate_rsa_keypair(64, rng=LimbRandom(seed=4))
        assert a.public_key.n == b.public_key.n
