"""Tests for the symmetric-HE related-work module and its breaks."""

import pytest

from repro.crypto.symmetric_he import (
    AffineScheme,
    MaskingScheme,
    affine_known_plaintext_attack,
    known_plaintext_attack,
)


@pytest.fixture()
def masking():
    return MaskingScheme(key=b"shared-secret", num_parties=4, bits=32)


class TestMaskingScheme:
    def test_aggregation_cancels_masks(self, masking):
        vectors = [[10, 20], [1, 2], [100, 200], [5, 5]]
        ciphertexts = [masking.encrypt(vector, round_index=0, party=i)
                       for i, vector in enumerate(vectors)]
        totals = masking.aggregate_decrypt(ciphertexts, round_index=0)
        assert totals == [116, 227]

    def test_single_ciphertext_is_masked(self, masking):
        # One party's ciphertext alone reveals nothing directly.
        ciphertext = masking.encrypt([42], round_index=0, party=0)
        assert ciphertext != [42]

    def test_rounds_use_different_masks(self, masking):
        c0 = masking.encrypt([42], round_index=0, party=0)
        c1 = masking.encrypt([42], round_index=1, party=0)
        assert c0 != c1

    def test_out_of_ring_raises(self, masking):
        with pytest.raises(ValueError):
            masking.encrypt([1 << 32], round_index=0, party=0)

    def test_missing_party_raises(self, masking):
        ciphertexts = [masking.encrypt([1], 0, i) for i in range(3)]
        with pytest.raises(ValueError):
            masking.aggregate_decrypt(ciphertexts, round_index=0)

    def test_length_mismatch_raises(self, masking):
        ciphertexts = [masking.encrypt([1], 0, 0),
                       masking.encrypt([1, 2], 0, 1),
                       masking.encrypt([1], 0, 2),
                       masking.encrypt([1], 0, 3)]
        with pytest.raises(ValueError):
            masking.aggregate_decrypt(ciphertexts, round_index=0)


class TestKnownPlaintextBreak:
    def test_mask_reuse_is_fatal(self, masking):
        # Simulate the classic mistake: the same (round, party, index)
        # mask encrypts gradients in two different "rounds".
        secret_round = 7
        known_m, secret_m = 1234, 987654
        known_c = masking.encrypt([known_m], secret_round, party=2)[0]
        secret_c = masking.encrypt([secret_m], secret_round, party=2)[0]
        recovered = known_plaintext_attack(32, known_m, known_c, secret_c)
        assert recovered == secret_m

    def test_fresh_masks_resist_this_attack(self, masking):
        known_m, secret_m = 1234, 987654
        known_c = masking.encrypt([known_m], round_index=0, party=2)[0]
        secret_c = masking.encrypt([secret_m], round_index=1, party=2)[0]
        recovered = known_plaintext_attack(32, known_m, known_c, secret_c)
        assert recovered != secret_m


class TestAffineScheme:
    def test_roundtrip(self):
        scheme = AffineScheme(a=12345, b=999, n=(1 << 61) - 1)
        for value in (0, 1, 777777):
            assert scheme.decrypt(scheme.encrypt(value)) == value

    def test_additive_homomorphism(self):
        scheme = AffineScheme(a=12345, b=999, n=(1 << 61) - 1)
        c = scheme.add(scheme.encrypt(100), scheme.encrypt(23))
        assert scheme.decrypt(c) == 123

    def test_noninvertible_a_raises(self):
        with pytest.raises(ValueError):
            AffineScheme(a=10, b=1, n=100)

    def test_two_known_pairs_break_it_completely(self):
        modulus = (1 << 61) - 1
        scheme = AffineScheme(a=987654321, b=1122334455, n=modulus)
        pairs = [(11, scheme.encrypt(11)), (22, scheme.encrypt(22))]
        a, b = affine_known_plaintext_attack(pairs, modulus)
        assert (a, b) == (scheme.a, scheme.b)
        # With the key recovered, every ciphertext falls.
        target = scheme.encrypt(31337)
        assert ((target - b) * pow(a, -1, modulus)) % modulus == 31337

    def test_degenerate_pairs_raise(self):
        with pytest.raises(ValueError):
            affine_known_plaintext_attack([(5, 1), (5, 2)], 101)
        with pytest.raises(ValueError):
            affine_known_plaintext_attack([(5, 1)], 101)
