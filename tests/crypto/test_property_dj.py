"""Property-based tests for Damgard-Jurik."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.damgard_jurik import (
    DamgardJurik,
    generate_damgard_jurik_keypair,
)
from repro.mpint.primes import LimbRandom

_KEYS = {s: generate_damgard_jurik_keypair(96, s=s,
                                           rng=LimbRandom(seed=4001 + s))
         for s in (1, 2, 3)}
_RNG = LimbRandom(seed=4010)

degrees = st.sampled_from([1, 2, 3])


@settings(max_examples=40)
@given(degrees, st.integers(min_value=0, max_value=1 << 200))
def test_roundtrip(s, message):
    keypair = _KEYS[s]
    message %= keypair.public_key.plaintext_modulus
    c = DamgardJurik.raw_encrypt(keypair.public_key, message, rng=_RNG)
    assert DamgardJurik.raw_decrypt(keypair.private_key, c) == message


@settings(max_examples=40)
@given(degrees, st.integers(min_value=0, max_value=1 << 90),
       st.integers(min_value=0, max_value=1 << 90))
def test_additive_homomorphism(s, m1, m2):
    keypair = _KEYS[s]
    pub, pri = keypair.public_key, keypair.private_key
    c = DamgardJurik.raw_add(
        pub,
        DamgardJurik.raw_encrypt(pub, m1 % pub.plaintext_modulus,
                                 rng=_RNG),
        DamgardJurik.raw_encrypt(pub, m2 % pub.plaintext_modulus,
                                 rng=_RNG))
    assert DamgardJurik.raw_decrypt(pri, c) == \
        (m1 % pub.plaintext_modulus + m2 % pub.plaintext_modulus) \
        % pub.plaintext_modulus


@settings(max_examples=30)
@given(degrees, st.integers(min_value=0, max_value=1 << 60),
       st.integers(min_value=0, max_value=1 << 12))
def test_scalar_homomorphism(s, message, scalar):
    keypair = _KEYS[s]
    pub, pri = keypair.public_key, keypair.private_key
    c = DamgardJurik.raw_scalar_mul(
        pub, DamgardJurik.raw_encrypt(pub, message, rng=_RNG), scalar)
    assert DamgardJurik.raw_decrypt(pri, c) == \
        (message * scalar) % pub.plaintext_modulus
