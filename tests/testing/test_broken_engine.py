"""The acceptance-criteria demo: a deliberately broken engine is caught.

The broken engine is byte-for-byte the CPU Paillier path except for a
single flipped bit in the precomputed Montgomery constant ``N'`` used by
its scalar multiplications.  The corrupted results stay inside the ring
and decrypt without error -- the class of bug a round-trip test cannot
see -- yet the bit-identity oracle rejects it at the first scalar_mul,
with a ``(seed, trace)`` repro line in the failure message.
"""

from __future__ import annotations

import pytest

from repro.testing import ConformanceFailure, full_trace_suite, replay
from repro.testing.broken import (
    BrokenMontgomeryEngine,
    broken_conformance_factory,
    corrupt_context,
)

TRACES = {t.name: t for t in full_trace_suite()}
SCALAR_TRACES = [t for t in full_trace_suite()
                 if any(op.op in ("scalar_mul", "pack") for op in t.ops)]


@pytest.mark.parametrize("trace", SCALAR_TRACES,
                         ids=[t.name for t in SCALAR_TRACES])
def test_broken_engine_is_caught_on_every_scalar_trace(trace):
    pair = broken_conformance_factory(trace)
    with pytest.raises(ConformanceFailure) as exc_info:
        replay(trace, pair, engine_name="broken-montgomery")
    failure = exc_info.value
    assert failure.engine == "broken-montgomery"
    assert trace.ops[failure.op_index].op in ("scalar_mul", "pack")


def test_failure_message_carries_seed_and_trace_json():
    trace = TRACES["scalar_mix"]
    pair = broken_conformance_factory(trace)
    with pytest.raises(ConformanceFailure) as exc_info:
        replay(trace, pair, engine_name="broken-montgomery")
    message = str(exc_info.value)
    assert f"seed={trace.seed}" in message
    assert trace.to_json() in message
    # The embedded JSON is sufficient: it parses back to the same trace.
    from repro.testing import ConformanceTrace
    start = message.index("trace=") + len("trace=")
    assert ConformanceTrace.from_json(message[start:]) == trace


def test_broken_engine_passes_scalar_free_traces():
    """Scalar-free traces never touch the corrupted kernel -- the
    failure is attributed to the broken op, not smeared everywhere."""
    trace = TRACES["add_chain"]
    pair = broken_conformance_factory(trace)
    result = replay(trace, pair, engine_name="broken-montgomery")
    assert result.status == "ok"


def test_corruption_is_silent_without_the_oracle():
    """The defect the oracle exists for: broken scalar_mul output still
    decrypts without raising -- it is wrong, not invalid."""
    from repro.crypto.keys import generate_paillier_keypair
    from repro.mpint.primes import LimbRandom
    keypair = generate_paillier_keypair(128, rng=LimbRandom(seed=55))
    engine = BrokenMontgomeryEngine(keypair, rng=LimbRandom(seed=56))
    [cipher] = engine.encrypt_batch([21])
    [scaled] = engine.scalar_mul_batch([cipher], [2])
    decrypted = engine.decrypt_batch([scaled])  # no exception
    assert decrypted != [42]


def test_corrupt_context_flips_exactly_one_bit():
    from repro.mpint.montgomery import MontgomeryContext
    modulus = 0xF123456789ABCDEF1  # odd
    healthy = MontgomeryContext(modulus)
    broken = corrupt_context(modulus)
    assert healthy.n_prime ^ broken.n_prime == 1
