"""Wire-format fuzzer: typed rejection or exact round-trip, nothing else."""

from __future__ import annotations

import struct

import pytest

import repro.testing.fuzz as fuzz_module
from repro.federation.serialization import (
    FrameError,
    TENSOR_HEADER,
    deserialize_packed,
    deserialize_tensor,
    serialize_packed,
)
from repro.testing.fuzz import MUTATIONS, resolve_seed, run_fuzz


class TestSeedResolution:
    def test_int_seeds_pass_through(self):
        assert resolve_seed(42) == 42

    def test_string_seeds_hash_deterministically(self):
        assert resolve_seed("ci") == resolve_seed("ci")
        assert resolve_seed("ci") != resolve_seed("nightly")


class TestCampaign:
    def test_500_cases_zero_findings(self):
        """The acceptance criterion: a 500-case campaign finds neither
        crashes nor silent mis-decodes."""
        report = run_fuzz(cases=500, seed="ci")
        assert report.passed, report.summary()
        assert report.cases == 500
        assert report.rejected + report.accepted == 500

    def test_campaign_is_deterministic(self):
        a = run_fuzz(cases=120, seed=7)
        b = run_fuzz(cases=120, seed=7)
        assert a.rejected == b.rejected
        assert a.accepted == b.accepted
        assert a.by_mutation == b.by_mutation

    def test_every_mutation_strategy_is_exercised(self):
        report = run_fuzz(cases=400, seed=3)
        assert set(report.by_mutation) == set(MUTATIONS)

    def test_both_outcomes_occur(self):
        """A healthy campaign must both reject mutants and accept the
        genuinely-valid ones -- an all-reject campaign would mean the
        oracle's accept side is never tested."""
        report = run_fuzz(cases=300, seed=11)
        assert report.rejected > 0
        assert report.accepted > 0


class TestOracleSensitivity:
    """The harness itself must catch the two failure classes."""

    def test_decoder_crash_is_reported(self, monkeypatch):
        def explode(_blob):
            raise KeyError("internal state leak")
        monkeypatch.setattr(fuzz_module, "deserialize_packed", explode)
        monkeypatch.setattr(fuzz_module, "deserialize_tensor", explode)
        report = run_fuzz(cases=40, seed=1)
        assert not report.passed
        assert all(f.kind == "crash" for f in report.findings)
        assert "KeyError" in report.findings[0].detail

    def test_silent_misdecode_is_reported(self, monkeypatch):
        def lenient(_blob):
            return [1, 2, 3]  # "decodes" anything
        monkeypatch.setattr(fuzz_module, "deserialize_packed", lenient)
        monkeypatch.setattr(
            fuzz_module, "serialize_packed",
            lambda words, width: serialize_packed(words, max(width, 1)))
        report = run_fuzz(cases=60, seed=2)
        assert any(f.kind == "silent_misdecode" for f in report.findings)

    def test_finding_carries_repro_bytes(self, monkeypatch):
        def explode(_blob):
            raise RuntimeError("boom")
        monkeypatch.setattr(fuzz_module, "deserialize_tensor", explode)
        report = run_fuzz(cases=30, seed=5)
        finding = next(f for f in report.findings if f.kind == "crash")
        assert bytes.fromhex(finding.blob_hex)  # parses back to bytes
        assert str(finding.case_index) in str(finding)


class TestTypedRejections:
    """Spot checks that decoders reject hostile frames with FrameError."""

    def _valid_tensor_frame(self):
        from repro.quantization.encoding import QuantizationScheme
        from repro.tensor.cipher import CipherTensor
        from repro.tensor.meta import TensorMeta
        from repro.federation.serialization import serialize_tensor
        meta = TensorMeta(
            key_fingerprint=b"\x01" * 16, nominal_bits=1024,
            physical_bits=64,
            scheme=QuantizationScheme(alpha=1.0, r_bits=16,
                                      num_parties=2),
            capacity=1, shape=(3,), count=3)
        tensor = CipherTensor(meta, words=[11, 22, 33])
        return serialize_tensor(tensor, ciphertext_bytes=16)

    def test_truncated_packed_header(self):
        with pytest.raises(FrameError):
            deserialize_packed(b"FLBP\x00")

    def test_packed_length_lie(self):
        blob = bytearray(serialize_packed([5, 6], 8))
        blob[4:8] = struct.pack(">I", 7)  # claim 7 words, ship 2
        with pytest.raises(FrameError, match="truncated"):
            deserialize_packed(bytes(blob))

    def test_tensor_unknown_flag_bits(self):
        blob = bytearray(self._valid_tensor_frame())
        blob[5] |= 0x80
        with pytest.raises(FrameError, match="flag bits"):
            deserialize_tensor(bytes(blob))

    def test_tensor_nonzero_padding(self):
        blob = bytearray(self._valid_tensor_frame())
        blob[7] = 1
        with pytest.raises(FrameError, match="padding"):
            deserialize_tensor(bytes(blob))

    def test_tensor_version_lie(self):
        blob = bytearray(self._valid_tensor_frame())
        blob[4] = 9
        with pytest.raises(FrameError, match="version"):
            deserialize_tensor(bytes(blob))

    def test_tensor_header_lie_hits_typed_wrapper(self):
        blob = bytearray(self._valid_tensor_frame())
        blob[12:16] = struct.pack(">I", 0)  # summands = 0: meta invariant
        with pytest.raises(FrameError, match="header fields rejected"):
            deserialize_tensor(bytes(blob))

    def test_tensor_nan_alpha(self):
        blob = bytearray(self._valid_tensor_frame())
        blob[40:48] = struct.pack(">d", float("nan"))
        with pytest.raises(FrameError, match="alpha"):
            deserialize_tensor(bytes(blob))

    def test_header_size_matches_fuzzer_offsets(self):
        """The length-lie mutation hardcodes field offsets; pin them."""
        assert TENSOR_HEADER.size == 64
        assert struct.calcsize(">4sBBBx") == 8  # count starts at byte 8


class TestWalFuzzing:
    """The WAL joined the corpus: mutants must hit the same typed-
    rejection-or-byte-exact-replay oracle as the tensor formats."""

    def test_wal_corpus_format_is_exercised(self):
        report = run_fuzz(cases=400, seed=3)
        assert report.by_format.get("wal", 0) > 0
        assert set(report.by_format) == {"tensor", "tensor3", "packed",
                                         "wal"}

    def test_generated_wal_frames_replay_cleanly(self):
        import random

        from repro.federation.wal import replay_wal

        for seed in range(20):
            _fmt, blob, _width = fuzz_module._wal_frame(
                random.Random(seed))
            replayed = replay_wal(blob)
            assert not replayed.torn_tail
            assert replayed.consumed_bytes == len(blob)

    @pytest.mark.parametrize("mutation", ["crc_lie", "record_splice",
                                          "truncate", "bitflip"])
    def test_wal_mutations_never_confuse_the_oracle(self, mutation):
        import random

        for seed in range(40):
            rng = random.Random(seed * 31 + 7)
            _fmt, blob, _width = fuzz_module._wal_frame(rng)
            mutant = fuzz_module._mutate(rng, "wal", blob, mutation)
            finding = fuzz_module._classify("wal", mutant, blob, seed,
                                            mutation)
            assert finding is None, str(finding)

    def test_500_case_campaign_with_wal_still_clean(self):
        report = run_fuzz(cases=500, seed="wal-ci")
        assert report.passed, report.summary()
        assert report.by_format.get("wal", 0) > 50


class TestFlt3Fuzzing:
    """The codec-aware FLT3 frame joined the corpus with its own
    mutation strategies (codec-id lies, parameter corruption, sparse
    pattern lies)."""

    def test_generated_tensor3_frames_deserialize_cleanly(self):
        import random

        for seed in range(30):
            fmt, blob, _width = fuzz_module._tensor3_frame(
                random.Random(seed))
            assert fmt == "tensor3"
            tensor = deserialize_tensor(blob)
            assert tensor.meta.codec in ("dense", "interleave", "sparse")

    @pytest.mark.parametrize("mutation", ["codec_id_lie",
                                          "codec_param_corrupt",
                                          "sparse_index_lie"])
    def test_codec_mutations_never_confuse_the_oracle(self, mutation):
        import random

        for seed in range(60):
            rng = random.Random(seed * 17 + 3)
            _fmt, blob, _width = fuzz_module._tensor3_frame(rng)
            mutant = fuzz_module._mutate(rng, "tensor3", blob, mutation)
            finding = fuzz_module._classify("tensor3", mutant, blob,
                                            seed, mutation)
            assert finding is None, str(finding)

    def test_packing_corpus_draws_only_tensor_frames(self):
        report = run_fuzz(cases=200, seed=13, corpus="packing")
        assert set(report.by_format) <= {"tensor", "tensor3"}
        assert report.by_format.get("tensor3", 0) > 0

    def test_500_case_packing_campaign_clean(self):
        """The satellite's acceptance criterion for the new corpus."""
        report = run_fuzz(cases=500, seed="packing-ci", corpus="packing")
        assert report.passed, report.summary()

    def test_unknown_corpus_rejected(self):
        with pytest.raises(ValueError, match="corpus"):
            run_fuzz(cases=1, seed=0, corpus="bogus")
