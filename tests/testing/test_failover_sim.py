"""Durable-coordinator simulation: crash sweeps, failover, replay."""

import pytest

from repro.federation.faults import FaultPlan
from repro.testing.simulator import (
    CrashSweepReport,
    DurableFederationSimulator,
    DurableSimulationResult,
    FailoverFailure,
    FederationSimulator,
    SimulationFailure,
    SimulationSpec,
    crash_consistency_sweep,
    replay,
)


def durable_spec(**overrides):
    fields = dict(num_clients=3, rounds=2, vector_size=4, key_bits=256,
                  physical_key_bits=128, seed=11, durable=True)
    fields.update(overrides)
    return SimulationSpec(**fields)


class TestDurableRunEquivalence:
    def test_durable_run_matches_plain_run(self):
        spec = durable_spec()
        plain = FederationSimulator(
            SimulationSpec.from_dict(
                {**spec.to_dict(), "durable": False})).run()
        durable = DurableFederationSimulator(spec).run()
        assert durable.checksum() == plain.checksum()
        assert [r.survivors for r in durable.rounds] == \
            [r.survivors for r in plain.rounds]
        assert durable.kills == []
        # 3 clients, 2 rounds: (open + 3 uploads + quorum + commit +
        # close) per round.
        assert durable.wal_records == 14
        assert len(durable.digest_trail) == durable.wal_records

    def test_spec_durable_flag_round_trips(self):
        spec = durable_spec()
        assert SimulationSpec.from_json(spec.to_json()) == spec


class TestScheduledKills:
    def test_coordinator_crash_recovers_same_round(self):
        spec = durable_spec()
        reference = DurableFederationSimulator(spec).run()
        plan = FaultPlan(seed=spec.seed).coordinator_crash(
            0, after_record=4)
        killed = DurableFederationSimulator(SimulationSpec.from_dict(
            {**spec.to_dict(), "fault_plan": plan.to_dict()})).run()
        assert len(killed.kills) == 1
        kill = killed.kills[0]
        assert kill.kind == "coordinator_crash"
        assert kill.lsn == 4
        assert kill.incarnation == 1
        assert kill.recovered_digest == reference.digest_trail[4]
        assert killed.final_weights == reference.final_weights
        assert killed.checksum() == reference.checksum()

    def test_failover_hands_round_to_standby(self):
        spec = durable_spec()
        reference = DurableFederationSimulator(spec).run()
        plan = FaultPlan(seed=spec.seed).failover(0, after_record=2)
        sim = DurableFederationSimulator(SimulationSpec.from_dict(
            {**spec.to_dict(), "fault_plan": plan.to_dict()}))
        result = sim.run()
        assert result.kills[0].kind == "failover"
        assert sim.coordinator.name == "standby"
        assert result.final_weights == reference.final_weights
        # The takeover waited out the lease on the virtual clock.
        assert result.final_time > reference.final_time

    def test_failover_charges_the_ledger(self):
        plan = FaultPlan(seed=11).failover(0, after_record=1)
        sim = DurableFederationSimulator(SimulationSpec.from_dict(
            {**durable_spec().to_dict(), "fault_plan": plan.to_dict()}))
        sim.run()
        assert ("failover", "coordinator", 0) in \
            sim.runtime.injector.triggered

    def test_degraded_failover_matches_partial_quorum_run(self):
        """Mid-round takeover under a client crash lands on the PR 1
        partial-quorum Eq. 6 result, identical to the plain run."""
        base_plan = FaultPlan(seed=5).crash("client-1", round_index=0)
        plain_spec = SimulationSpec(num_clients=3, rounds=2,
                                    vector_size=4, physical_key_bits=128,
                                    seed=5, min_quorum=2,
                                    fault_plan=base_plan)
        plain = FederationSimulator(plain_spec).run()
        kill_plan = base_plan.failover(0, after_record=2)
        durable = DurableFederationSimulator(SimulationSpec.from_dict(
            {**plain_spec.to_dict(), "fault_plan": kill_plan.to_dict(),
             "durable": True})).run()
        assert durable.checksum() == plain.checksum()
        assert [r.summands for r in durable.rounds] == \
            [r.summands for r in plain.rounds]

    def test_unfired_kill_is_a_replayable_failure(self):
        plan = FaultPlan(seed=11).coordinator_crash(0, after_record=999)
        spec = SimulationSpec.from_dict(
            {**durable_spec(rounds=1).to_dict(),
             "fault_plan": plan.to_dict()})
        with pytest.raises(SimulationFailure, match="never fired"):
            DurableFederationSimulator(spec).run()


class TestCrashConsistencySweep:
    def test_sweep_covers_every_boundary(self):
        spec = durable_spec(rounds=1)
        report = crash_consistency_sweep(spec)
        assert isinstance(report, CrashSweepReport)
        assert report.wal_records == 7
        assert report.boundaries_tested == 7
        assert "bit-identical" in "\n".join(report.summary_lines())

    def test_sweep_in_failover_mode(self):
        report = crash_consistency_sweep(durable_spec(rounds=1),
                                         mode="failover",
                                         record_indices=[0, 3, 6])
        assert report.boundaries_tested == 3

    def test_out_of_range_boundary_rejected(self):
        with pytest.raises(ValueError, match="outside the log"):
            crash_consistency_sweep(durable_spec(rounds=1),
                                    record_indices=[99])

    def test_failure_embeds_replayable_spec(self):
        failure = FailoverFailure(durable_spec(), round_index=0,
                                  record_index=3, detail="digest")
        assert failure.record_index == 3
        message = str(failure)
        assert "trace=" in message
        trace = message.split("trace=", 1)[1].strip()
        assert SimulationSpec.from_json(trace) == durable_spec()


class TestReplayRouting:
    def test_durable_trace_replays_durably(self):
        plan = FaultPlan(seed=11).failover(0, after_record=2)
        spec = SimulationSpec.from_dict(
            {**durable_spec().to_dict(), "fault_plan": plan.to_dict()})
        first = DurableFederationSimulator(spec).run()
        again = replay(spec.to_json())
        assert isinstance(again, DurableSimulationResult)
        assert again.checksum() == first.checksum()
        assert [k.recovered_digest for k in again.kills] == \
            [k.recovered_digest for k in first.kills]

    def test_coordinator_events_force_durable_replay(self):
        plan = FaultPlan(seed=11).coordinator_crash(0, after_record=1)
        spec = SimulationSpec.from_dict(
            {**durable_spec().to_dict(), "durable": False,
             "fault_plan": plan.to_dict()})
        result = replay(spec.to_json())
        assert isinstance(result, DurableSimulationResult)
        assert len(result.kills) == 1

    def test_plain_trace_still_replays_plainly(self):
        spec = SimulationSpec(num_clients=3, rounds=1, vector_size=4,
                              physical_key_bits=128, seed=11)
        result = replay(spec.to_json())
        assert not isinstance(result, DurableSimulationResult)

    def test_result_to_dict_carries_kills(self):
        plan = FaultPlan(seed=11).coordinator_crash(1, after_record=9)
        spec = SimulationSpec.from_dict(
            {**durable_spec().to_dict(), "fault_plan": plan.to_dict()})
        data = DurableFederationSimulator(spec).run().to_dict()
        assert data["wal_records"] == 14
        assert data["kills"][0]["kind"] == "coordinator_crash"
        assert data["kills"][0]["lsn"] == 9


class TestHeartbeats:
    def test_primary_heartbeats_each_round(self):
        sim = DurableFederationSimulator(durable_spec())
        sim.run()
        ledger = sim.runtime.channel.ledger
        assert ledger.count("comm.coordinator.heartbeat") >= 1
