"""Trace format: construction, JSON round-trip, capability algebra."""

from __future__ import annotations

import pytest

from repro.testing.trace import (
    ConformanceTrace,
    OP_CAPABILITIES,
    SHADOW_SEMANTICS,
    TraceBuilder,
    TraceOp,
    ring_trace,
    standard_traces,
)


class TestTraceOp:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            TraceOp("transmogrify", "r0")

    def test_dict_roundtrip_preserves_tuples(self):
        op = TraceOp("scalar_mul", "r1", ("r0", (2, 3, 4)))
        rebuilt = TraceOp.from_dict(op.to_dict())
        assert rebuilt == op
        assert isinstance(rebuilt.args[1], tuple)


class TestTraceJson:
    def test_every_standard_trace_roundtrips(self):
        for trace in standard_traces():
            rebuilt = ConformanceTrace.from_json(trace.to_json())
            assert rebuilt == trace

    def test_ring_trace_roundtrips_with_requires(self):
        trace = ring_trace(4)
        rebuilt = ConformanceTrace.from_json(trace.to_json())
        assert rebuilt == trace
        assert "ring_decrypt" in rebuilt.requires

    def test_json_is_deterministic(self):
        trace = standard_traces()[0]
        assert trace.to_json() == trace.to_json()


class TestCapabilities:
    def test_roundtrip_needs_encrypt_and_decrypt(self):
        trace = (TraceBuilder("t", seed=1).encrypt("r0", [1])
                 .decrypt("out", "r0").build())
        assert trace.required_capabilities() == {"encrypt", "decrypt"}

    def test_ring_decrypt_supersedes_decrypt(self):
        trace = ring_trace(3)
        required = trace.required_capabilities()
        assert "ring_decrypt" in required
        assert "decrypt" not in required

    def test_masking_caps_run_ring_but_not_roundtrip(self):
        masking = frozenset({"encrypt", "add", "ring_decrypt"})
        assert ring_trace(3).runnable_on(masking)
        roundtrip = next(t for t in standard_traces()
                         if t.name == "roundtrip")
        assert not roundtrip.runnable_on(masking)

    def test_paillier_caps_run_all_standard_traces(self):
        paillier = frozenset({"encrypt", "decrypt", "add", "scalar_mul"})
        for trace in standard_traces():
            assert trace.runnable_on(paillier), trace.name

    def test_every_op_kind_has_capability_and_shadow_docs(self):
        assert set(OP_CAPABILITIES) == set(SHADOW_SEMANTICS)


class TestBuilder:
    def test_builder_produces_ordered_ops(self):
        trace = (TraceBuilder("t", seed=9, key_bits=64)
                 .encrypt("a", [1, 2])
                 .scalar_mul("b", "a", [3, 3])
                 .add("c", "a", "b")
                 .sum("d", "c")
                 .pack("e", "a", 16)
                 .decrypt("out", "c")
                 .build())
        assert [op.op for op in trace.ops] == [
            "encrypt", "scalar_mul", "add", "sum", "pack", "decrypt"]
        assert trace.key_bits == 64

    def test_standard_suite_names_are_unique(self):
        names = [t.name for t in standard_traces()]
        assert len(names) == len(set(names))

    def test_standard_suite_seeds_are_unique(self):
        seeds = [t.seed for t in standard_traces()]
        assert len(seeds) == len(set(seeds))
