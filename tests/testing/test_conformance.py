"""The differential oracle: every engine vs its pow() reference.

The parametrization below is the conformance suite the issue's tentpole
names: it enumerates :func:`repro.testing.conformance.conformance_matrix`
-- every (registered engine, runnable trace) combination -- so a newly
registered engine automatically gains the full trace suite.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    check_fused_vs_eager,
    conformance_matrix,
    discovered_factories,
    full_trace_suite,
    run_trace,
)

MATRIX = conformance_matrix()


def _matrix_id(entry):
    name, trace = entry
    return f"{name}-{trace.name}"


@pytest.mark.parametrize("entry", MATRIX, ids=[_matrix_id(e)
                                               for e in MATRIX])
def test_engine_matches_reference_bit_for_bit(entry):
    engine_name, trace = entry
    result = run_trace(engine_name, trace)
    assert result.status == "ok"
    assert result.ops_checked == len(trace.ops)


def test_all_four_builtin_engines_are_registered():
    assert set(discovered_factories()) >= {
        "cpu-paillier", "gpu-paillier", "damgard-jurik",
        "symmetric-masking"}


def test_every_engine_runs_at_least_two_traces():
    per_engine: dict = {}
    for name, _trace in MATRIX:
        per_engine[name] = per_engine.get(name, 0) + 1
    for name in discovered_factories():
        assert per_engine.get(name, 0) >= 2, name


def test_add_only_trace_is_shared_by_every_engine():
    engines_running = {name for name, trace in MATRIX
                       if trace.name == "add_only"}
    assert engines_running == set(discovered_factories())


def test_every_codec_is_diff_tested_on_every_engine():
    """Each registered packing codec contributes matrix rows, and its
    add-only variant reaches every engine (including the add-only
    symmetric masking path)."""
    from repro.quantization.codecs import registered_codecs

    engines = set(discovered_factories())
    for codec_id in registered_codecs():
        decrypting = {name for name, trace in MATRIX
                      if trace.name == f"codec_{codec_id}"}
        add_only = {name for name, trace in MATRIX
                    if trace.name == f"codec_{codec_id}_addonly"}
        assert add_only == engines, codec_id
        assert decrypting == {name for name in engines
                              if name != "symmetric-masking"}, codec_id


def test_codec_traces_json_roundtrip():
    """Codec traces carry big packed words; the repro currency (trace
    JSON) must survive them exactly."""
    from repro.testing.trace import ConformanceTrace, codec_trace_suite

    for trace in codec_trace_suite():
        rebuilt = ConformanceTrace.from_json(trace.to_json())
        assert rebuilt == trace


@pytest.mark.parametrize("engine_name",
                         sorted(discovered_factories()))
def test_fused_flush_matches_eager_flush(engine_name):
    factories = discovered_factories()
    traces = {t.name: t for t in full_trace_suite()}
    trace = (traces["add_only"] if engine_name == "symmetric-masking"
             else traces["roundtrip"])
    pair = factories[engine_name](trace)
    assert check_fused_vs_eager(pair, engine_name=engine_name) > 0


def test_references_are_not_tautological():
    """The reference must be an *independent* implementation: its
    decrypt path recovers plaintexts from ciphertexts the optimized
    engine produced, and vice versa."""
    factories = discovered_factories()
    traces = {t.name: t for t in full_trace_suite()}
    pair = factories["cpu-paillier"](traces["roundtrip"])
    engine_cipher = pair.party.encrypt([42, 7])
    assert pair.reference.decrypt(engine_cipher) == [42, 7]
    # Symmetric construction: reference ciphertexts decrypt on the engine.
    pair2 = factories["cpu-paillier"](traces["roundtrip"])
    ref_cipher = pair2.reference.encrypt([42, 7])
    assert pair2.party.decrypt(ref_cipher) == [42, 7]


def test_skipped_when_capabilities_insufficient():
    from repro.testing import replay
    traces = {t.name: t for t in full_trace_suite()}
    factories = discovered_factories()
    pair = factories["symmetric-masking"](traces["roundtrip"])
    result = replay(traces["roundtrip"], pair,
                    engine_name="symmetric-masking")
    assert result.status == "skipped"
