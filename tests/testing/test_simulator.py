"""Deterministic simulator: replayable runs, virtual time only."""

from __future__ import annotations

import json

import pytest

from repro.federation.faults import FaultPlan
from repro.testing.simulator import (
    EventQueue,
    FederationSimulator,
    SimulationFailure,
    SimulationSpec,
    VirtualClock,
    expect_quorum_failure,
    replay,
)

FAST = dict(key_bits=256, physical_key_bits=128, vector_size=6)


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.0)
        assert clock.now == 1.5

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)


class TestEventQueue:
    def test_orders_by_time_then_insertion(self):
        queue = EventQueue()
        queue.push(2.0, "b")
        queue.push(1.0, "a")
        queue.push(1.0, "a2")
        popped = [queue.pop().kind for _ in range(3)]
        assert popped == ["a", "a2", "b"]


class TestSpecJson:
    def test_roundtrip_with_fault_plan(self):
        spec = SimulationSpec(
            num_clients=5, rounds=2, seed=13, min_quorum=3,
            round_deadline_seconds=20.0,
            fault_plan=(FaultPlan(seed=3)
                        .crash("client-4", 1)
                        .dropout("client-2", 0, 1)
                        .straggler("client-1", 1, 9.0)
                        .with_message_loss(0.02)
                        .with_corruption(0.01)),
            **FAST)
        assert SimulationSpec.from_json(spec.to_json()) == spec

    def test_roundtrip_without_fault_plan(self):
        spec = SimulationSpec(seed=1, **FAST)
        assert SimulationSpec.from_json(spec.to_json()) == spec


class TestDeterminism:
    def test_same_spec_same_checksums(self):
        spec = SimulationSpec(num_clients=3, rounds=2, seed=21, **FAST)
        first = FederationSimulator(spec).run()
        second = FederationSimulator(spec).run()
        assert first.checksum() == second.checksum()
        assert first.final_time == second.final_time

    def test_replay_from_json_matches_original(self):
        spec = SimulationSpec(
            num_clients=4, rounds=3, seed=11, min_quorum=2,
            fault_plan=(FaultPlan(seed=5)
                        .dropout("client-1", 1, 2)
                        .with_message_loss(0.05)),
            **FAST)
        original = FederationSimulator(spec).run()
        replayed = replay(spec.to_json())
        assert replayed.checksum() == original.checksum()
        assert [r.summands for r in replayed.rounds] == \
            [r.summands for r in original.rounds]

    def test_different_seeds_diverge(self):
        base = dict(num_clients=3, rounds=2, **FAST)
        a = FederationSimulator(SimulationSpec(seed=1, **base)).run()
        b = FederationSimulator(SimulationSpec(seed=2, **base)).run()
        assert a.checksum() != b.checksum()

    def test_faults_shape_the_rounds(self):
        spec = SimulationSpec(
            num_clients=4, rounds=2, seed=9, min_quorum=2,
            fault_plan=FaultPlan(seed=1).dropout("client-0", 0, 1),
            **FAST)
        result = FederationSimulator(spec).run()
        assert result.rounds[0].summands == 3
        assert result.rounds[1].summands == 4

    def test_straggler_delay_appears_in_modelled_time(self):
        quiet = SimulationSpec(num_clients=3, rounds=1, seed=4, **FAST)
        slow = SimulationSpec(
            num_clients=3, rounds=1, seed=4,
            fault_plan=FaultPlan(seed=1).straggler("client-1", 0, 17.0),
            **FAST)
        fast_time = FederationSimulator(quiet).run().final_time
        slow_time = FederationSimulator(slow).run().final_time
        assert slow_time >= fast_time + 17.0


class TestFailureReport:
    def test_quorum_failure_carries_replayable_trace(self):
        spec = SimulationSpec(
            num_clients=3, rounds=2, seed=3, min_quorum=3,
            fault_plan=FaultPlan(seed=1).crash("client-0", 0), **FAST)
        failure = expect_quorum_failure(spec)
        message = str(failure)
        assert f"seed={spec.seed}" in message
        assert spec.to_json() in message

    def test_trace_in_message_replays_to_same_failure(self):
        spec = SimulationSpec(
            num_clients=3, rounds=2, seed=3, min_quorum=3,
            fault_plan=FaultPlan(seed=1).crash("client-0", 0), **FAST)
        failure = expect_quorum_failure(spec)
        message = str(failure)
        trace_json = message[message.index("trace=") + len("trace="):]
        with pytest.raises(SimulationFailure) as exc_info:
            replay(trace_json)
        assert exc_info.value.round_index == failure.round_index

    def test_result_dict_is_json_serializable(self):
        spec = SimulationSpec(num_clients=2, rounds=1, seed=6, **FAST)
        result = FederationSimulator(spec).run()
        blob = json.dumps(result.to_dict())
        assert json.loads(blob)["trace"]["seed"] == 6
