"""Tests for the dataset generators and federation partitioners."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_SCALES,
    avazu_like,
    horizontal_split,
    rcv1_like,
    synthetic_like,
    vertical_split,
)


class TestGenerators:
    def test_shapes(self):
        ds = rcv1_like(instances=100, features=50)
        assert ds.features.shape == (100, 50)
        assert ds.labels.shape == (100,)

    def test_labels_binary(self):
        for ds in (rcv1_like(instances=64, features=32),
                   avazu_like(instances=64, features=64, fields=8),
                   synthetic_like(instances=64, features=16)):
            assert set(np.unique(ds.labels)) <= {0.0, 1.0}

    def test_deterministic(self):
        a = synthetic_like(instances=32, features=8, seed=5)
        b = synthetic_like(instances=32, features=8, seed=5)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_seeds_differ(self):
        a = synthetic_like(instances=32, features=8, seed=5)
        b = synthetic_like(instances=32, features=8, seed=6)
        assert not np.array_equal(a.features, b.features)

    def test_sparsity_ordering(self):
        # Avazu sparsest, RCV1 sparse, Synthetic dense -- Table II.
        rcv1 = rcv1_like(instances=128, features=256)
        avazu = avazu_like(instances=128, features=256, fields=8)
        synthetic = synthetic_like(instances=128, features=32)
        assert avazu.density < rcv1.density < synthetic.density
        assert synthetic.density == 1.0

    def test_avazu_one_hot_per_field(self):
        ds = avazu_like(instances=50, features=64, fields=8)
        # Exactly one active feature per field per instance.
        assert np.allclose(ds.features.sum(axis=1), 8.0)

    def test_avazu_field_mismatch_raises(self):
        with pytest.raises(ValueError):
            avazu_like(instances=10, features=100, fields=7)

    def test_rcv1_rows_normalized(self):
        ds = rcv1_like(instances=50, features=100)
        norms = np.linalg.norm(ds.features, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_paper_scales_recorded(self):
        ds = rcv1_like(instances=100, features=50)
        assert (ds.paper_instances, ds.paper_features) == \
            PAPER_SCALES["RCV1"]
        assert ds.scale_factor() > 1000

    def test_labels_not_degenerate(self):
        for ds in (rcv1_like(instances=256, features=128),
                   avazu_like(instances=256, features=256, fields=8),
                   synthetic_like(instances=256, features=32)):
            positive_rate = ds.labels.mean()
            assert 0.15 < positive_rate < 0.85


class TestHorizontalSplit:
    def test_covers_all_instances(self):
        ds = synthetic_like(instances=100, features=8)
        parts = horizontal_split(ds, 4)
        assert sum(p.num_instances for p in parts) == 100

    def test_disjoint_shards(self):
        ds = synthetic_like(instances=64, features=4, seed=1)
        parts = horizontal_split(ds, 4, seed=2)
        rows = np.concatenate([p.features for p in parts])
        # Every original row appears exactly once.
        assert sorted(map(tuple, rows)) == \
            sorted(map(tuple, ds.features))

    def test_roughly_even(self):
        ds = synthetic_like(instances=103, features=4)
        sizes = [p.num_instances for p in horizontal_split(ds, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_each_client_keeps_labels(self):
        ds = synthetic_like(instances=40, features=4)
        for part in horizontal_split(ds, 2):
            assert part.labels.shape == (part.num_instances,)

    def test_too_many_clients_raise(self):
        ds = synthetic_like(instances=4, features=4)
        with pytest.raises(ValueError):
            horizontal_split(ds, 5)
        with pytest.raises(ValueError):
            horizontal_split(ds, 0)


class TestVerticalSplit:
    def test_covers_all_features(self):
        ds = synthetic_like(instances=32, features=21)
        parts = vertical_split(ds, num_parties=3)
        assert sum(p.num_features for p in parts) == 21

    def test_only_guest_has_labels(self):
        ds = synthetic_like(instances=32, features=8)
        guest, host = vertical_split(ds, num_parties=2)
        assert guest.has_labels and guest.labels is not None
        assert not host.has_labels and host.labels is None

    def test_same_instance_count(self):
        ds = synthetic_like(instances=32, features=8)
        for part in vertical_split(ds, num_parties=2):
            assert part.features.shape[0] == 32

    def test_guest_fraction(self):
        ds = synthetic_like(instances=32, features=100)
        guest, host = vertical_split(ds, num_parties=2,
                                     guest_fraction=0.25)
        assert guest.num_features == 25
        assert host.num_features == 75

    def test_invalid_arguments_raise(self):
        ds = synthetic_like(instances=8, features=4)
        with pytest.raises(ValueError):
            vertical_split(ds, num_parties=1)
        with pytest.raises(ValueError):
            vertical_split(ds, num_parties=5)
        with pytest.raises(ValueError):
            vertical_split(ds, num_parties=2, guest_fraction=1.5)
