"""Tests for the CSR sparse-matrix substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import rcv1_like
from repro.datasets.sparse import CsrMatrix


def random_sparse(rows, cols, density, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(rows, cols))
    dense[rng.random((rows, cols)) > density] = 0.0
    return dense


class TestConstruction:
    def test_roundtrip_dense(self):
        dense = random_sparse(20, 15, 0.2)
        assert np.array_equal(CsrMatrix.from_dense(dense).to_dense(), dense)

    def test_all_zero(self):
        sparse = CsrMatrix.from_dense(np.zeros((3, 4)))
        assert sparse.nnz == 0
        assert sparse.density == 0.0

    def test_nnz_and_density(self):
        dense = np.array([[1.0, 0.0], [0.0, 2.0]])
        sparse = CsrMatrix.from_dense(dense)
        assert sparse.nnz == 2
        assert sparse.density == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            CsrMatrix(data=np.ones(1), indices=np.zeros(1),
                      indptr=np.array([0, 1]), shape=(2, 2))
        with pytest.raises(ValueError):
            CsrMatrix(data=np.ones(1), indices=np.array([5]),
                      indptr=np.array([0, 1]), shape=(1, 2))
        with pytest.raises(ValueError):
            CsrMatrix.from_dense(np.zeros(3))

    def test_matvec_flops(self):
        sparse = CsrMatrix.from_dense(np.eye(5))
        assert sparse.matvec_flops() == 10


class TestKernels:
    def test_matvec_matches_dense(self):
        dense = random_sparse(30, 20, 0.15, seed=1)
        sparse = CsrMatrix.from_dense(dense)
        w = np.random.default_rng(2).normal(size=20)
        assert np.allclose(sparse.matvec(w), dense @ w)

    def test_matvec_with_empty_rows(self):
        dense = np.array([[0.0, 0.0], [1.0, 2.0], [0.0, 0.0]])
        sparse = CsrMatrix.from_dense(dense)
        assert np.allclose(sparse.matvec(np.array([1.0, 1.0])),
                           [0.0, 3.0, 0.0])

    def test_rmatvec_matches_dense(self):
        dense = random_sparse(30, 20, 0.15, seed=3)
        sparse = CsrMatrix.from_dense(dense)
        r = np.random.default_rng(4).normal(size=30)
        assert np.allclose(sparse.rmatvec(r), dense.T @ r)

    def test_shape_validation(self):
        sparse = CsrMatrix.from_dense(np.eye(3))
        with pytest.raises(ValueError):
            sparse.matvec(np.zeros(4))
        with pytest.raises(ValueError):
            sparse.rmatvec(np.zeros(4))

    def test_take_rows(self):
        dense = random_sparse(10, 6, 0.3, seed=5)
        sparse = CsrMatrix.from_dense(dense)
        subset = sparse.take_rows([7, 0, 3])
        assert np.array_equal(subset.to_dense(), dense[[7, 0, 3]])

    def test_take_rows_empty(self):
        sparse = CsrMatrix.from_dense(np.eye(3))
        subset = sparse.take_rows([])
        assert subset.shape == (0, 3)


class TestWithGenerators:
    def test_rcv1_like_is_genuinely_sparse(self):
        dataset = rcv1_like(instances=64, features=128, density=0.05)
        sparse = CsrMatrix.from_dense(dataset.features)
        assert sparse.density < 0.1
        w = np.random.default_rng(6).normal(size=128)
        assert np.allclose(sparse.matvec(w), dataset.features @ w)
        # Sparse flops are a small fraction of the dense cost.
        assert sparse.matvec_flops() < 0.2 * 2 * dataset.features.size


@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=12),
       st.integers(min_value=0, max_value=10_000))
def test_property_matvec_equivalence(rows, cols, seed):
    dense = random_sparse(rows, cols, 0.3, seed=seed)
    sparse = CsrMatrix.from_dense(dense)
    rng = np.random.default_rng(seed + 1)
    w = rng.normal(size=cols)
    r = rng.normal(size=rows)
    assert np.allclose(sparse.matvec(w), dense @ w)
    assert np.allclose(sparse.rmatvec(r), dense.T @ r)
    assert np.array_equal(sparse.to_dense(), dense)
