"""Property-based tests (hypothesis) for the packing-codec registry.

Satellite of the codec-layer issue: every registered codec must satisfy

1. pack -> unpack identity on random values and shapes,
2. homomorphic addition correctness up to ``max_safe_summands()``,
3. overflow detection exactly one summand past the limit,
4. cross-codec decode bit-identity: ``decode(encode(x))`` produces the
   same floats no matter which layout carried the encodings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization.codecs import InterleavedCodec, SparseCodec
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker

PLAINTEXT_BITS = 512

r_bits_strategy = st.integers(min_value=4, max_value=20)
parties_strategy = st.integers(min_value=2, max_value=16)
unit_floats = st.floats(min_value=-1.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)
value_lists = st.lists(unit_floats, min_size=1, max_size=50)


def _scheme(r_bits, parties):
    return QuantizationScheme(alpha=1.0, r_bits=r_bits,
                              num_parties=parties)


def _all_codecs(scheme, values):
    """One instance of every registered layout for this input."""
    return [
        BatchPacker(scheme, plaintext_bits=PLAINTEXT_BITS),
        InterleavedCodec(scheme, plaintext_bits=PLAINTEXT_BITS),
        SparseCodec.for_values(np.asarray(values), scheme,
                               plaintext_bits=PLAINTEXT_BITS),
    ]


# ----------------------------------------------------------------------
# 1. pack -> unpack identity.
# ----------------------------------------------------------------------

@settings(max_examples=40)
@given(value_lists, r_bits_strategy, parties_strategy)
def test_pack_unpack_identity_every_codec(values, r_bits, parties):
    scheme = _scheme(r_bits, parties)
    encoded = scheme.encode_array(np.array(values))
    for codec in _all_codecs(scheme, values):
        words = codec.pack(encoded)
        assert codec.unpack(words, len(encoded)) == encoded, codec.codec_id


# ----------------------------------------------------------------------
# 2. homomorphic-add correctness up to max_safe_summands().
# ----------------------------------------------------------------------

@settings(max_examples=30)
@given(st.integers(min_value=1, max_value=24),
       st.sampled_from([2, 4]),
       st.data())
def test_summed_words_decode_to_the_slotwise_sum(length, parties, data):
    """Slot-wise word sums decode exactly like encoding-level sums.

    ``parties`` in {2, 4} keeps ``2**b`` small enough to exercise the
    codec *at* its dense/sparse summand limit.
    """
    scheme = _scheme(16, parties)
    grads = [
        np.array(data.draw(st.lists(unit_floats, min_size=length,
                                    max_size=length)))
        for _ in range(parties)
    ]
    encoded = [scheme.encode_array(g) for g in grads]
    expected_slots = [sum(column) for column in zip(*encoded)]
    expected = scheme.decode_array(expected_slots, count=parties)
    codecs = [
        BatchPacker(scheme, plaintext_bits=PLAINTEXT_BITS),
        InterleavedCodec(scheme, plaintext_bits=PLAINTEXT_BITS),
        _sparse_for_union(scheme, encoded),
    ]
    for codec in codecs:
        assert parties <= codec.max_safe_summands()
        packed = [codec.pack(e) for e in encoded]
        summed = [sum(words) for words in zip(*packed)]
        decoded = codec.decode_words(summed, length, summands=parties)
        assert np.array_equal(decoded, expected), codec.codec_id


def _sparse_for_union(scheme, encoded):
    """Sparse codec over the union support with a width fitting every
    participant's offsets exactly (for_values only sees one gradient)."""
    e0 = scheme.encode(0.0)
    union = sorted({i for enc in encoded for i, e in enumerate(enc)
                    if e != e0})
    max_offset = max((abs(enc[i] - e0) for enc in encoded for i in union),
                     default=1)
    return SparseCodec(scheme, PLAINTEXT_BITS, indices=union,
                       value_bits=max(2, max_offset.bit_length() + 1))


# ----------------------------------------------------------------------
# 3. overflow detection exactly one summand past the limit.
# ----------------------------------------------------------------------

@settings(max_examples=20)
@given(st.integers(min_value=2, max_value=20),
       st.sampled_from([2, 4, 8]))
def test_overflow_raises_exactly_one_past_the_limit(length, parties):
    scheme = _scheme(16, parties)
    values = np.zeros(length)
    values[0] = 0.5
    codecs = _all_codecs(scheme, values)
    codecs[1] = InterleavedCodec(scheme, plaintext_bits=PLAINTEXT_BITS,
                                 guard_bits=scheme.overflow_bits)
    for codec in codecs:
        limit = codec.max_safe_summands()
        words = codec.pack_values(values)
        codec.decode_words(words, length, summands=min(limit, 2 ** 10))
        with pytest.raises(OverflowError):
            codec.decode_words(words, length, summands=limit + 1)


# ----------------------------------------------------------------------
# 4. cross-codec decode bit-identity.
# ----------------------------------------------------------------------

@settings(max_examples=40)
@given(value_lists, r_bits_strategy, parties_strategy)
def test_decode_is_bit_identical_across_codecs(values, r_bits, parties):
    """The layouts differ, the quantization grid does not: for any input
    the decoded floats agree to the last bit across every codec."""
    scheme = _scheme(r_bits, parties)
    arr = np.array(values)
    outputs = {}
    for codec in _all_codecs(scheme, arr):
        words = codec.pack_values(arr)
        outputs[codec.codec_id] = codec.decode_words(words, len(arr))
    baseline = outputs.pop("dense")
    for codec_id, decoded in outputs.items():
        assert np.array_equal(baseline, decoded), codec_id
