"""Unit tests for the packing-codec registry and the two new layouts."""

import numpy as np
import pytest

from repro.quantization.codecs import (
    DEFAULT_EXTRA_GUARD_BITS,
    MAX_GUARD_BITS,
    MAX_SPARSE_VALUE_BITS,
    InterleavedCodec,
    SparseCodec,
    build_codec,
    get_codec,
    register_codec,
    registered_codecs,
)
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker, CodecCapabilities
from repro.tensor.meta import TensorMeta

SCHEME = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=8)


def _meta(codec="dense", codec_params=(), count=8, capacity=4,
          scheme=SCHEME):
    return TensorMeta(
        key_fingerprint=b"\x00" * 16, nominal_bits=2048,
        physical_bits=2048, scheme=scheme, capacity=capacity,
        shape=(count,), count=count, packed=capacity > 1,
        codec=codec, codec_params=codec_params)


class TestRegistry:
    def test_builtin_codecs_are_registered(self):
        codecs = registered_codecs()
        assert codecs["dense"] is BatchPacker
        assert codecs["interleave"] is InterleavedCodec
        assert codecs["sparse"] is SparseCodec

    def test_unknown_codec_id_raises(self):
        with pytest.raises(ValueError, match="unknown packing codec"):
            get_codec("zstd")

    def test_reregistration_is_idempotent(self):
        assert register_codec(BatchPacker) is BatchPacker

    def test_conflicting_registration_raises(self):
        class Impostor:
            codec_id = "dense"

        with pytest.raises(ValueError, match="already registered"):
            register_codec(Impostor)

    def test_build_codec_dispatches_on_meta(self):
        assert isinstance(build_codec(_meta()), BatchPacker)
        guard = SCHEME.overflow_bits + 4
        assert isinstance(
            build_codec(_meta("interleave", (guard,))), InterleavedCodec)
        assert isinstance(
            build_codec(_meta("sparse", (8, 1, 5))), SparseCodec)


class TestDenseProtocol:
    def test_codec_identity(self):
        packer = BatchPacker(SCHEME, plaintext_bits=512)
        assert packer.codec_id == "dense"
        assert packer.codec_params() == ()

    def test_from_meta_rejects_stray_params(self):
        meta = _meta("interleave", (SCHEME.overflow_bits,))
        with pytest.raises(ValueError, match="no wire parameters"):
            BatchPacker.from_meta(meta)

    def test_describe(self):
        packer = BatchPacker(SCHEME, plaintext_bits=512)
        caps = packer.describe()
        assert caps == CodecCapabilities(
            slot_layout="dense-msb",
            summand_capacity=2 ** SCHEME.overflow_bits,
            add_safe=True, sliceable=True)


class TestInterleavedCodec:
    def test_default_guard_band(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=512)
        assert codec.guard_bits == (SCHEME.overflow_bits
                                    + DEFAULT_EXTRA_GUARD_BITS)
        assert codec.slot_bits == SCHEME.r_bits + codec.guard_bits
        assert codec.capacity == 512 // codec.slot_bits

    def test_guard_band_below_eq8_minimum_rejected(self):
        with pytest.raises(ValueError, match="cannot be below"):
            InterleavedCodec(SCHEME, plaintext_bits=512,
                             guard_bits=SCHEME.overflow_bits - 1)

    def test_absurd_guard_band_rejected(self):
        with pytest.raises(ValueError, match="unreasonable"):
            InterleavedCodec(SCHEME, plaintext_bits=8192,
                             guard_bits=MAX_GUARD_BITS + 1)

    def test_plaintext_too_small_for_one_slot(self):
        with pytest.raises(ValueError, match="cannot hold"):
            InterleavedCodec(SCHEME, plaintext_bits=8)

    def test_pack_unpack_roundtrip(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=256)
        encoded = SCHEME.encode_array(
            np.linspace(-1.0, 1.0, 23))
        assert codec.unpack(codec.pack(encoded), 23) == encoded

    def test_out_of_range_encoding_rejected(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=256)
        with pytest.raises(ValueError, match="value range"):
            codec.pack([1 << SCHEME.r_bits])

    def test_unpack_with_too_few_words(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=256)
        with pytest.raises(ValueError, match="need"):
            codec.unpack([], 5)

    def test_guard_band_raises_summand_capacity(self):
        dense = BatchPacker(SCHEME, plaintext_bits=512)
        wide = InterleavedCodec(SCHEME, plaintext_bits=512)
        assert wide.max_safe_summands() == 2 ** wide.guard_bits
        assert wide.max_safe_summands() > dense.max_safe_summands()

    def test_wire_roundtrip_via_meta(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=512, guard_bits=7)
        meta = _meta("interleave", codec.codec_params(),
                     capacity=codec.capacity)
        rebuilt = InterleavedCodec.from_meta(meta)
        assert rebuilt.guard_bits == 7
        assert rebuilt.capacity == codec.capacity
        assert rebuilt.codec_params() == codec.codec_params()

    def test_from_meta_wrong_param_count(self):
        with pytest.raises(ValueError, match="one parameter"):
            _meta("interleave", (4, 5))

    def test_from_meta_implausible_guard(self):
        with pytest.raises(ValueError, match="implausible guard"):
            _meta("interleave", (MAX_GUARD_BITS + 1,))

    def test_decode_words_overflow_one_past_guard(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=256,
                                 guard_bits=SCHEME.overflow_bits)
        limit = codec.max_safe_summands()
        words = codec.pack_values(np.zeros(4))
        summed = [w * limit for w in words]
        codec.decode_words(summed, 4, summands=limit)  # at the limit: fine
        with pytest.raises(OverflowError, match="guard band"):
            codec.decode_words(summed, 4, summands=limit + 1)

    def test_describe(self):
        codec = InterleavedCodec(SCHEME, plaintext_bits=256)
        caps = codec.describe()
        assert caps.slot_layout == "interleave-lsb"
        assert caps.sliceable is True
        assert caps.summand_capacity == codec.max_safe_summands()


class TestSparseCodec:
    def test_for_values_derives_pattern_and_width(self):
        values = np.zeros(100)
        values[[3, 41, 77]] = [0.5, -0.25, 0.125]
        codec = SparseCodec.for_values(values, SCHEME,
                                       plaintext_bits=2048)
        assert codec.indices == (3, 41, 77)
        assert codec.nnz == 3
        e0 = SCHEME.encode(0.0)
        max_offset = max(abs(SCHEME.encode(v) - e0)
                         for v in (0.5, -0.25, 0.125))
        assert codec.value_bits == max(2, max_offset.bit_length() + 1)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="value width"):
            SparseCodec(SCHEME, 2048, indices=(1,), value_bits=0)
        with pytest.raises(ValueError, match="value width"):
            SparseCodec(SCHEME, 2048, indices=(1,),
                        value_bits=MAX_SPARSE_VALUE_BITS + 1)
        with pytest.raises(ValueError, match="non-negative"):
            SparseCodec(SCHEME, 2048, indices=(-1, 2), value_bits=8)
        with pytest.raises(ValueError, match="strictly increasing"):
            SparseCodec(SCHEME, 2048, indices=(2, 2), value_bits=8)
        with pytest.raises(ValueError, match="strictly increasing"):
            SparseCodec(SCHEME, 2048, indices=(5, 2), value_bits=8)

    def test_pack_rejects_off_pattern_nonzero(self):
        values = np.zeros(10)
        values[4] = 0.5
        codec = SparseCodec.for_values(values, SCHEME, 2048)
        rogue = values.copy()
        rogue[7] = 0.25  # quantizes away from zero, not in the pattern
        with pytest.raises(ValueError, match="not in the sparse pattern"):
            codec.pack(SCHEME.encode_array(rogue))

    def test_pack_rejects_pattern_beyond_input(self):
        codec = SparseCodec(SCHEME, 2048, indices=(2, 9), value_bits=8)
        with pytest.raises(ValueError, match="beyond"):
            codec.pack(SCHEME.encode_array(np.zeros(5)))

    def test_empty_support_ships_one_zero_word(self):
        codec = SparseCodec.for_values(np.zeros(50), SCHEME, 2048)
        assert codec.nnz == 0
        assert codec.pack_values(np.zeros(50)) == [0]
        decoded = codec.decode_words([0], 50)
        assert np.array_equal(decoded, SCHEME.decode_array(
            [SCHEME.encode(0.0)] * 50))

    def test_unpack_reconstructs_full_length_vector(self):
        values = np.zeros(30)
        values[[0, 11, 29]] = [0.75, -0.5, 1.0]
        codec = SparseCodec.for_values(values, SCHEME, 2048)
        encoded = SCHEME.encode_array(values)
        assert codec.unpack(codec.pack(encoded), 30) == encoded

    def test_words_driven_by_pattern_not_count(self):
        values = np.zeros(10_000)
        values[:10] = 0.5
        codec = SparseCodec.for_values(values, SCHEME, 2048)
        assert codec.words_needed(10_000) == 1
        dense = BatchPacker(SCHEME, plaintext_bits=2048)
        assert dense.words_needed(10_000) > 50 * codec.words_needed(10_000)

    def test_decode_words_overflow_one_past(self):
        values = np.zeros(8)
        values[2] = 0.5
        codec = SparseCodec.for_values(values, SCHEME, 2048)
        limit = codec.max_safe_summands()
        words = codec.pack_values(values)
        with pytest.raises(OverflowError, match="summands exceed"):
            codec.decode_words(words, 8, summands=limit + 1)

    def test_wire_roundtrip_via_meta(self):
        values = np.zeros(16)
        values[[1, 6]] = [0.5, -0.5]
        codec = SparseCodec.for_values(values, SCHEME, 2048)
        meta = _meta("sparse", codec.codec_params(), count=16,
                     capacity=codec.capacity)
        rebuilt = SparseCodec.from_meta(meta)
        assert rebuilt.indices == codec.indices
        assert rebuilt.value_bits == codec.value_bits
        assert rebuilt.codec_params() == codec.codec_params()

    def test_from_meta_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="out of range"):
            _meta("sparse", (8, 3, 20), count=16)

    def test_from_meta_needs_value_width(self):
        with pytest.raises(ValueError, match="value width"):
            _meta("sparse", ())

    def test_describe_not_sliceable(self):
        codec = SparseCodec(SCHEME, 2048, indices=(1,), value_bits=8)
        caps = codec.describe()
        assert caps.slot_layout == "sparse-pairs"
        assert caps.sliceable is False


class TestMetaCodecAlgebra:
    def test_unknown_codec_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown packing codec"):
            _meta("zstd")

    def test_codec_params_coerced_to_int_tuple(self):
        meta = _meta("interleave", [np.int64(SCHEME.overflow_bits + 1)])
        assert meta.codec_params == (SCHEME.overflow_bits + 1,)
        assert all(type(p) is int for p in meta.codec_params)

    def test_summand_capacity_per_codec(self):
        b = SCHEME.overflow_bits
        assert _meta().summand_capacity() == 2 ** b
        assert _meta("interleave", (b + 8,)).summand_capacity() == 2 ** (b + 8)
        assert _meta("sparse", (8, 1)).summand_capacity() == 2 ** b

    def test_combine_add_rejects_codec_mismatch(self):
        dense = _meta()
        inter = _meta("interleave", (SCHEME.overflow_bits + 8,))
        with pytest.raises(ValueError, match="codec mismatch"):
            dense.combine_add(inter)

    def test_combine_add_rejects_pattern_mismatch(self):
        left = _meta("sparse", (8, 1, 5))
        right = _meta("sparse", (8, 2, 5))
        with pytest.raises(ValueError, match="parameter mismatch"):
            left.combine_add(right)

    def test_combine_add_same_pattern_adds_summands(self):
        left = _meta("sparse", (8, 1, 5))
        combined = left.combine_add(left)
        assert combined.summands == 2

    def test_sparse_meta_not_sliceable_or_summable(self):
        meta = _meta("sparse", (8, 1, 5))
        with pytest.raises(ValueError, match="not sliceable"):
            meta.sliced(0, 4)
        flat = _meta("sparse", (8, 1, 5), capacity=1)
        with pytest.raises(ValueError, match="sparse"):
            flat.summed(2)

    def test_num_words_consults_the_codec(self):
        sparse = _meta("sparse", (8, 1, 5), count=8, capacity=4)
        assert sparse.num_words == 1  # 2 stored values, 4 per word
        assert _meta(count=8, capacity=4).num_words == 2
