"""Property-based tests (hypothesis) for quantization and packing."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker

r_bits_strategy = st.integers(min_value=4, max_value=40)
parties_strategy = st.integers(min_value=2, max_value=32)
value_lists = st.lists(
    st.floats(min_value=-1.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)


@settings(max_examples=50)
@given(value_lists, r_bits_strategy)
def test_encode_decode_within_one_step(values, r_bits):
    scheme = QuantizationScheme(alpha=1.0, r_bits=r_bits)
    for value in values:
        decoded = scheme.decode(scheme.encode(value))
        assert abs(decoded - value) <= scheme.quantization_step + 1e-15


@settings(max_examples=50)
@given(value_lists, r_bits_strategy, parties_strategy)
def test_pack_unpack_roundtrip(values, r_bits, parties):
    scheme = QuantizationScheme(alpha=1.0, r_bits=r_bits,
                                num_parties=parties)
    packer = BatchPacker(scheme, plaintext_bits=max(512, scheme.slot_bits))
    encoded = scheme.encode_array(np.array(values))
    assert packer.unpack(packer.pack(encoded), len(encoded)) == encoded


unit_floats = st.floats(min_value=-1.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)


@settings(max_examples=40)
@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=2, max_value=4),
       st.data())
def test_packed_aggregation_matches_plain_sum(length, parties, data):
    vectors = [
        data.draw(st.lists(unit_floats, min_size=length, max_size=length))
        for _ in range(parties)
    ]
    scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=parties)
    packer = BatchPacker(scheme, plaintext_bits=512)
    arrays = [np.array(vector) for vector in vectors]
    packed = [packer.pack(scheme.encode_array(array)) for array in arrays]
    summed_words = [sum(words) for words in zip(*packed)]
    decoded = scheme.decode_array(
        packer.unpack(summed_words, len(vectors[0])), count=parties)
    expected = np.sum(arrays, axis=0)
    tolerance = parties * scheme.quantization_step + 1e-12
    assert np.all(np.abs(decoded - expected) <= tolerance)


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=10_000),
       st.sampled_from([1024, 2048, 4096]),
       parties_strategy)
def test_words_needed_consistent_with_ratio(n_values, key_bits, parties):
    scheme = QuantizationScheme(alpha=1.0, r_bits=30, num_parties=parties)
    packer = BatchPacker(scheme, plaintext_bits=key_bits - 1)
    words = packer.words_needed(n_values)
    assert (words - 1) * packer.capacity < n_values <= \
        words * packer.capacity
    assert packer.achieved_compression_ratio(n_values) == \
        n_values / words


@settings(max_examples=50)
@given(st.floats(min_value=0.01, max_value=100.0,
                 allow_nan=False, allow_infinity=False),
       st.floats(min_value=-1.0, max_value=1.0,
                 allow_nan=False, allow_infinity=False))
def test_alpha_scales_range(alpha, unit_value):
    scheme = QuantizationScheme(alpha=alpha, r_bits=20)
    value = unit_value * alpha
    decoded = scheme.decode(scheme.encode(value))
    assert abs(decoded - value) <= scheme.quantization_step + 1e-12
