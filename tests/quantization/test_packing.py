"""Tests for batch compression (paper Eqs. 9, 11-13)."""

import math
import random

import pytest

from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import (
    BatchPacker,
    compression_ratio,
    packing_capacity,
    plaintext_space_utilization,
)


@pytest.fixture()
def scheme():
    return QuantizationScheme(alpha=1.0, r_bits=14, num_parties=4)


@pytest.fixture()
def packer(scheme):
    return BatchPacker(scheme, plaintext_bits=255)


class TestCapacity:
    def test_paper_values(self):
        # Sec. IV-C: r + b = 32 packs 32 / 64 / 128 values.
        assert packing_capacity(1024, 30, 4) == 32
        assert packing_capacity(2048, 30, 4) == 64
        assert packing_capacity(4096, 30, 4) == 128

    def test_minimum_one(self):
        assert packing_capacity(16, 30, 4) == 1

    def test_derived_from_plaintext(self, scheme):
        packer = BatchPacker(scheme, plaintext_bits=255)
        assert packer.capacity == 255 // scheme.slot_bits

    def test_explicit_capacity_validated(self, scheme):
        with pytest.raises(ValueError):
            BatchPacker(scheme, plaintext_bits=64, capacity=100)
        with pytest.raises(ValueError):
            BatchPacker(scheme, plaintext_bits=255, capacity=0)

    def test_plaintext_too_small_raises(self, scheme):
        with pytest.raises(ValueError):
            BatchPacker(scheme, plaintext_bits=scheme.slot_bits - 1)


class TestPackUnpack:
    def test_roundtrip(self, packer):
        values = list(range(40))
        assert packer.unpack(packer.pack(values), 40) == values

    def test_word_count(self, packer):
        words = packer.pack(list(range(packer.capacity * 2 + 1)))
        assert len(words) == 3

    def test_partial_final_word_left_aligned(self, packer):
        words = packer.pack([1])
        # Slot 0 is the most significant: value 1 sits at the top slot.
        shift = packer.slot_bits * (packer.capacity - 1)
        assert words[0] >> shift == 1

    def test_empty(self, packer):
        assert packer.pack([]) == []
        assert packer.unpack([], 0) == []

    def test_unpack_too_few_words_raises(self, packer):
        with pytest.raises(ValueError):
            packer.unpack([], 5)

    def test_out_of_range_encoding_raises(self, packer, scheme):
        with pytest.raises(ValueError):
            packer.pack([1 << scheme.r_bits])
        with pytest.raises(ValueError):
            packer.pack([-1])

    def test_word_fits_plaintext(self, packer, scheme):
        values = [(1 << scheme.r_bits) - 1] * packer.capacity
        word = packer.pack(values)[0]
        assert word.bit_length() <= packer.plaintext_bits


class TestAggregationSafety:
    def test_slotwise_sums_exact(self, packer, scheme):
        rng = random.Random(7)
        bound = 1 << scheme.r_bits
        vectors = [[rng.randrange(bound) for _ in range(50)]
                   for _ in range(4)]   # 4 parties, b = 2 -> safe
        packed = [packer.pack(vector) for vector in vectors]
        summed = [sum(words) for words in zip(*packed)]
        expected = [sum(column) for column in zip(*vectors)]
        assert packer.unpack(summed, 50) == expected

    def test_max_safe_summands(self, packer, scheme):
        assert packer.max_safe_summands() == 2 ** scheme.overflow_bits

    def test_overflow_beyond_reserved_bits_corrupts(self, scheme):
        # Demonstrate WHY the overflow bits exist: summing more vectors
        # than 2^b with all-max values carries into the neighbour slot.
        # Slot 1 is below slot 0 in the Eq. 9 layout, so its overflow
        # carries upward into slot 0.
        packer = BatchPacker(scheme, plaintext_bits=255)
        max_value = (1 << scheme.r_bits) - 1
        words = [packer.pack([0, max_value])[0]
                 for _ in range(packer.max_safe_summands() + 1)]
        corrupted = packer.unpack([sum(words)], 2)
        assert corrupted[0] != 0        # the carry leaked into slot 0


class TestTheory:
    def test_compression_ratio_bounds(self):
        # Eq. 11: the ratio never exceeds k / (r + b).
        for n in (1, 10, 100, 5000):
            ratio = compression_ratio(n, 1024, 30, 4)
            assert ratio <= 1024 / 32 + 1e-9

    def test_compression_ratio_saturates(self):
        assert compression_ratio(32000, 1024, 30, 4) == \
            pytest.approx(32.0, rel=0.01)

    def test_psu_bounded_by_one(self):
        # Eq. 12.
        for n in (1, 31, 32, 33, 1000):
            assert plaintext_space_utilization(n, 1024, 30, 4) <= 1.0 + 1e-12

    def test_psu_full_at_capacity_multiples(self):
        assert plaintext_space_utilization(32, 1024, 30, 4) == \
            pytest.approx(1.0)

    def test_achieved_matches_formula(self, packer):
        n = 100
        assert packer.achieved_compression_ratio(n) == \
            pytest.approx(n / math.ceil(n / packer.capacity))

    def test_achieved_psu(self, packer):
        n = packer.capacity
        expected = n * packer.slot_bits / packer.plaintext_bits
        assert packer.achieved_psu(n) == pytest.approx(expected)

    def test_zero_values(self, packer):
        assert packer.achieved_compression_ratio(0) == 0.0
        assert packer.achieved_psu(0) == 0.0
        assert packer.words_needed(0) == 0

    def test_ratio_grows_with_key_size(self):
        # Fig. 7: compression ratio increases with the key size.
        ratios = [compression_ratio(10_000, k, 30, 4)
                  for k in (1024, 2048, 4096)]
        assert ratios[0] < ratios[1] < ratios[2]
