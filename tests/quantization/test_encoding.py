"""Tests for encoding-quantization (paper Eqs. 6-8)."""

import numpy as np
import pytest

from repro.quantization.encoding import (
    LegacyFloatEncoding,
    QuantizationScheme,
)


class TestSchemeConstruction:
    def test_overflow_bits_from_parties(self):
        assert QuantizationScheme(num_parties=2).overflow_bits == 1
        assert QuantizationScheme(num_parties=4).overflow_bits == 2
        assert QuantizationScheme(num_parties=5).overflow_bits == 3
        assert QuantizationScheme(num_parties=64).overflow_bits == 6

    def test_single_party_still_reserves_a_bit(self):
        assert QuantizationScheme(num_parties=1).overflow_bits == 1

    def test_slot_bits(self):
        scheme = QuantizationScheme(r_bits=30, num_parties=4)
        assert scheme.slot_bits == 32      # the paper's 30 + 2 layout

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            QuantizationScheme(alpha=0.0)
        with pytest.raises(ValueError):
            QuantizationScheme(r_bits=1)
        with pytest.raises(ValueError):
            QuantizationScheme(num_parties=0)


class TestEncodeDecode:
    def test_roundtrip_within_step(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=16)
        for value in (-1.0, -0.5, 0.0, 0.123, 0.999, 1.0):
            decoded = scheme.decode(scheme.encode(value))
            assert abs(decoded - value) <= scheme.quantization_step

    def test_bounds_map_to_extremes(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=8)
        assert scheme.encode(-1.0) == 0
        assert scheme.encode(1.0) == scheme.max_encoded

    def test_clipping_outside_alpha(self):
        scheme = QuantizationScheme(alpha=0.5, r_bits=8)
        assert scheme.encode(10.0) == scheme.max_encoded
        assert scheme.encode(-10.0) == 0

    def test_encoding_is_unsigned_r_bits(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=10)
        rng = np.random.default_rng(0)
        for value in rng.uniform(-1, 1, 200):
            encoded = scheme.encode(float(value))
            assert 0 <= encoded < (1 << 10)

    def test_more_bits_less_error(self):
        coarse = QuantizationScheme(alpha=1.0, r_bits=8)
        fine = QuantizationScheme(alpha=1.0, r_bits=24)
        value = 0.123456789
        assert abs(fine.decode(fine.encode(value)) - value) < \
            abs(coarse.decode(coarse.encode(value)) - value)

    def test_paper_default_quantization_negligible(self):
        # Sec. IV-B: with >= 30 bits the error is "small enough to be
        # negligible".
        scheme = QuantizationScheme(alpha=1.0, r_bits=30)
        assert scheme.quantization_step < 2e-9


class TestAggregation:
    def test_sum_decoding(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=20, num_parties=4)
        values = [0.5, -0.25, 0.1, -0.05]
        total = sum(scheme.encode(v) for v in values)
        decoded = scheme.decode_sum(total, count=len(values))
        assert abs(decoded - sum(values)) <= \
            len(values) * scheme.quantization_step

    def test_sum_count_exceeding_overflow_bits_raises(self):
        scheme = QuantizationScheme(num_parties=2)   # b = 1 -> max 2
        with pytest.raises(OverflowError):
            scheme.decode_sum(100, count=3)

    def test_sum_count_zero_raises(self):
        with pytest.raises(ValueError):
            QuantizationScheme().decode_sum(0, count=0)


class TestVectorInterface:
    def test_array_roundtrip(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=2)
        values = np.linspace(-1, 1, 64)
        decoded = scheme.decode_array(scheme.encode_array(values))
        assert np.allclose(decoded, values, atol=scheme.quantization_step)

    def test_array_matches_scalar_path(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=12)
        values = np.array([-0.9, -0.1, 0.0, 0.4, 0.77])
        assert scheme.encode_array(values) == \
            [scheme.encode(float(v)) for v in values]

    def test_encodings_are_python_ints(self):
        # numpy int64 would overflow at r > 62; must be arbitrary precision.
        scheme = QuantizationScheme(alpha=1.0, r_bits=50)
        encoded = scheme.encode_array(np.array([1.0]))
        assert type(encoded[0]) is int

    def test_decode_array_count_validation(self):
        with pytest.raises(ValueError):
            QuantizationScheme().decode_array([1], count=0)


class TestLegacyEncoding:
    def test_roundtrip(self):
        legacy = LegacyFloatEncoding()
        for value in (0.0, 1.5, -2.75, 1e-9, -123456.789):
            significand, exponent = legacy.encode(value)
            assert legacy.decode(significand, exponent) == \
                pytest.approx(value, rel=1e-12)

    def test_exponent_leaks_magnitude(self):
        legacy = LegacyFloatEncoding()
        # Same exponent class -> indistinguishable; different magnitude
        # classes -> the adversary separates them from plaintext data.
        assert legacy.leaked_bits(0.6) == legacy.leaked_bits(0.9)
        assert legacy.leaked_bits(0.6) != legacy.leaked_bits(600.0)

    def test_magnitude_interval_contains_value(self):
        legacy = LegacyFloatEncoding()
        for value in (0.3, 7.2, 1000.5):
            low, high = legacy.magnitude_interval(value)
            assert low <= abs(value) < high

    def test_secure_scheme_leaks_nothing_comparable(self):
        # The Eq. 6-8 encoding of any in-range value is a plain unsigned
        # integer with no plaintext side-channel: every output lies in the
        # same [0, 2^r) set regardless of magnitude.
        scheme = QuantizationScheme(alpha=1.0, r_bits=16)
        small = scheme.encode(1e-6)
        large = scheme.encode(0.999)
        assert 0 <= small < 2 ** 16
        assert 0 <= large < 2 ** 16
