"""Edge-case tests across the quantization layer."""

import numpy as np
import pytest

from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import (
    BatchPacker,
    compression_ratio,
    packing_capacity,
    plaintext_space_utilization,
)


class TestSchemeExtremes:
    def test_minimum_value_bits(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=2, num_parties=2)
        # Four levels only, but encode/decode still invert within a step.
        for value in (-1.0, -0.3, 0.3, 1.0):
            assert abs(scheme.decode(scheme.encode(value)) - value) <= \
                scheme.quantization_step

    def test_huge_value_bits(self):
        # Past ~52 bits the roundtrip is limited by float64 itself, not
        # the quantization step.
        scheme = QuantizationScheme(alpha=1.0, r_bits=200, num_parties=2)
        value = 0.123456789123456789
        assert scheme.decode(scheme.encode(value)) == \
            pytest.approx(value, abs=1e-15)

    def test_tiny_alpha(self):
        scheme = QuantizationScheme(alpha=1e-6, r_bits=20)
        value = 5e-7
        assert scheme.decode(scheme.encode(value)) == \
            pytest.approx(value, abs=scheme.quantization_step)

    def test_huge_alpha(self):
        scheme = QuantizationScheme(alpha=1e9, r_bits=40)
        value = -123456789.0
        assert scheme.decode(scheme.encode(value)) == \
            pytest.approx(value, abs=scheme.quantization_step)

    def test_many_parties(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=16,
                                    num_parties=1024)
        assert scheme.overflow_bits == 10
        total = sum(scheme.encode(0.001) for _ in range(1024))
        assert scheme.decode_sum(total, count=1024) == \
            pytest.approx(1.024, abs=1024 * scheme.quantization_step)

    def test_encode_array_empty(self):
        scheme = QuantizationScheme()
        assert scheme.encode_array(np.array([])) == []

    def test_boundary_rounding_stays_in_range(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=8)
        epsilon = np.nextafter(1.0, 2.0)
        assert 0 <= scheme.encode(epsilon) <= scheme.max_encoded
        assert 0 <= scheme.encode(-epsilon) <= scheme.max_encoded


class TestPackerExtremes:
    def test_capacity_one(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=2)
        packer = BatchPacker(scheme, plaintext_bits=scheme.slot_bits)
        assert packer.capacity == 1
        values = [1, 2, 3]
        assert packer.unpack(packer.pack(values), 3) == values

    def test_single_huge_word(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=30, num_parties=4)
        packer = BatchPacker(scheme, plaintext_bits=8191)
        assert packer.capacity == 8191 // 32
        values = list(range(packer.capacity))
        word = packer.pack(values)
        assert len(word) == 1
        assert packer.unpack(word, len(values)) == values

    def test_unpack_partial_word_subset(self):
        scheme = QuantizationScheme(alpha=1.0, r_bits=8, num_parties=2)
        packer = BatchPacker(scheme, plaintext_bits=255)
        words = packer.pack([5, 6, 7, 8])
        assert packer.unpack(words, 2) == [5, 6]

    def test_theory_degenerate_inputs(self):
        assert packing_capacity(8, 30, 4) == 1        # floor at 1
        assert compression_ratio(1, 1024, 30, 4) == 1.0
        assert plaintext_space_utilization(1, 1024, 30, 4) == \
            pytest.approx(32 / 1024)
