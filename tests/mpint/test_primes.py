"""Tests for the random generator and Miller-Rabin primality machinery."""

import pytest

from repro.mpint.primes import (
    LimbRandom,
    generate_distinct_primes,
    generate_prime,
    is_probable_prime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 7917, 104730, (1 << 61) - 3]
# Carmichael numbers fool Fermat tests; Miller-Rabin must reject them.
CARMICHAEL = [561, 1105, 1729, 2465, 2821, 6601, 8911]


class TestMillerRabin:
    @pytest.mark.parametrize("prime", KNOWN_PRIMES)
    def test_accepts_primes(self, prime):
        assert is_probable_prime(prime)

    @pytest.mark.parametrize("composite", KNOWN_COMPOSITES)
    def test_rejects_composites(self, composite):
        assert not is_probable_prime(composite)

    @pytest.mark.parametrize("carmichael", CARMICHAEL)
    def test_rejects_carmichael_numbers(self, carmichael):
        assert not is_probable_prime(carmichael)

    def test_rejects_below_two(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)

    def test_deterministic_with_seeded_rng(self):
        rng1 = LimbRandom(seed=5)
        rng2 = LimbRandom(seed=5)
        value = (1 << 127) - 1
        assert is_probable_prime(value, rng=rng1) == \
            is_probable_prime(value, rng=rng2)


class TestGeneratePrime:
    def test_exact_bit_length(self):
        rng = LimbRandom(seed=6)
        for bits in (16, 32, 64, 128):
            prime = generate_prime(bits, rng=rng)
            assert prime.bit_length() == bits
            assert is_probable_prime(prime)

    def test_too_few_bits_raises(self):
        with pytest.raises(ValueError):
            generate_prime(1)

    def test_distinct_primes(self):
        rng = LimbRandom(seed=7)
        primes = generate_distinct_primes(48, count=3, rng=rng)
        assert len(set(primes)) == 3
        assert all(is_probable_prime(p) for p in primes)

    def test_reproducible_with_seed(self):
        assert generate_prime(64, rng=LimbRandom(seed=8)) == \
            generate_prime(64, rng=LimbRandom(seed=8))


class TestLimbRandom:
    def test_per_thread_streams_differ(self):
        a = LimbRandom(seed=9, thread_index=0)
        b = LimbRandom(seed=9, thread_index=1)
        assert a.randbits(64) != b.randbits(64)

    def test_randbits_bounds(self):
        rng = LimbRandom(seed=10)
        for _ in range(50):
            assert rng.randbits(17) < (1 << 17)

    def test_randbits_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LimbRandom(seed=1).randbits(0)

    def test_randint_below(self):
        rng = LimbRandom(seed=11)
        for _ in range(50):
            assert 0 <= rng.randint_below(7) < 7

    def test_random_limbs_bit_length(self):
        rng = LimbRandom(seed=12)
        limbs = rng.random_limbs(100)
        from repro.mpint.limbs import to_int
        assert to_int(limbs).bit_length() == 100

    def test_random_unit_is_coprime(self):
        import math
        rng = LimbRandom(seed=13)
        modulus = 3 * 5 * 7 * 11 * 13
        for _ in range(30):
            unit = rng.random_unit(modulus)
            assert math.gcd(unit, modulus) == 1
