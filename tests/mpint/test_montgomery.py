"""Tests for Algorithm 1 / Algorithm 2 Montgomery multiplication."""

import random

import pytest

from repro.mpint.limbs import from_int, to_int
from repro.mpint.montgomery import (
    MontgomeryContext,
    cios_montgomery_multiply,
    cios_work_estimate,
    montgomery_multiply,
)


@pytest.fixture(scope="module")
def ctx_256():
    rng = random.Random(11)
    modulus = rng.getrandbits(256) | (1 << 255) | 1
    return MontgomeryContext(modulus)


class TestContext:
    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryContext(100)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MontgomeryContext(0)

    def test_r_exceeds_modulus(self, ctx_256):
        assert ctx_256.r > ctx_256.modulus

    def test_r_inverse_identity(self, ctx_256):
        assert (ctx_256.r * ctx_256.r_inverse) % ctx_256.modulus == 1

    def test_n_prime_identity(self, ctx_256):
        # N * N' == -1 (mod R), the Algorithm 1 precondition.
        assert (ctx_256.modulus * ctx_256.n_prime) % ctx_256.r == ctx_256.r - 1

    def test_n0_prime_identity(self, ctx_256):
        word = 1 << ctx_256.word_bits
        n0 = ctx_256.modulus % word
        assert (n0 * ctx_256.n0_prime) % word == word - 1

    def test_domain_roundtrip(self, ctx_256):
        value = 123456789
        assert ctx_256.from_montgomery(ctx_256.to_montgomery(value)) == value

    def test_one_is_montgomery_identity(self, ctx_256):
        x = ctx_256.to_montgomery(777)
        assert montgomery_multiply(x, ctx_256.one(), ctx_256) == x


class TestAlgorithm1:
    def test_matches_definition(self, ctx_256):
        rng = random.Random(12)
        n = ctx_256.modulus
        for _ in range(50):
            a, b = rng.randrange(n), rng.randrange(n)
            expected = (a * b * ctx_256.r_inverse) % n
            assert montgomery_multiply(a, b, ctx_256) == expected

    def test_product_in_domain_is_modmul(self, ctx_256):
        rng = random.Random(13)
        n = ctx_256.modulus
        for _ in range(20):
            a, b = rng.randrange(n), rng.randrange(n)
            mont = montgomery_multiply(ctx_256.to_montgomery(a),
                                       ctx_256.to_montgomery(b), ctx_256)
            assert ctx_256.from_montgomery(mont) == (a * b) % n

    def test_zero_operand(self, ctx_256):
        assert montgomery_multiply(0, 12345, ctx_256) == 0


class TestAlgorithm2Cios:
    def test_matches_algorithm1(self, ctx_256):
        rng = random.Random(14)
        n = ctx_256.modulus
        size = ctx_256.num_limbs
        for _ in range(40):
            a, b = rng.randrange(n), rng.randrange(n)
            expected = montgomery_multiply(a, b, ctx_256)
            got = cios_montgomery_multiply(from_int(a, size=size),
                                           from_int(b, size=size), ctx_256)
            assert to_int(got) == expected

    def test_various_modulus_sizes(self):
        rng = random.Random(15)
        for bits in (32, 64, 96, 128, 512):
            n = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
            ctx = MontgomeryContext(n)
            a, b = rng.randrange(n), rng.randrange(n)
            expected = (a * b * ctx.r_inverse) % n
            got = cios_montgomery_multiply(
                from_int(a, size=ctx.num_limbs),
                from_int(b, size=ctx.num_limbs), ctx)
            assert to_int(got) == expected

    def test_result_fits_modulus_limbs(self, ctx_256):
        got = cios_montgomery_multiply(
            from_int(ctx_256.modulus - 1, size=ctx_256.num_limbs),
            from_int(ctx_256.modulus - 1, size=ctx_256.num_limbs), ctx_256)
        assert len(got) == ctx_256.num_limbs
        assert to_int(got) < ctx_256.modulus

    def test_short_operands_padded(self, ctx_256):
        got = cios_montgomery_multiply([3], [5], ctx_256)
        assert to_int(got) == (15 * ctx_256.r_inverse) % ctx_256.modulus


class TestWorkEstimate:
    def test_quadratic_growth(self):
        # Doubling the limb count quadruples the dominant term.
        small = cios_work_estimate(32)
        large = cios_work_estimate(64)
        assert 3.5 < large / small < 4.5

    def test_known_value(self):
        assert cios_work_estimate(1) == 3
        assert cios_work_estimate(10) == 210
