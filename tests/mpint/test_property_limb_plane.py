"""Property-based equivalence: limb-plane kernels vs the scalar path.

Every batched numpy kernel in :mod:`repro.mpint.limb_plane` must be
*bit-identical* to its scalar counterpart -- ``cios_montgomery_multiply``,
``sliding_window_pow`` / builtin ``pow``, the scalar CRT decryption in
:meth:`repro.crypto.paillier.Paillier.raw_decrypt` -- across 1024-,
2048- and 4096-bit moduli, the batch shapes the engines actually use
(1, 7, 64), and the edge values ``0``, ``1`` and ``n - 1``.

Batches are drawn from seeded streams (hypothesis picks the stream, the
``REPRO_TEST_SEED``-routed master seed picks the values) so examples
stay cheap to generate while still exploring the space.  The CRT tests
reuse the committed golden primes -- generating fresh 1024-bit primes
per example would dominate the suite's runtime.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpint import limb_plane
from repro.mpint.modexp import sliding_window_pow
from repro.mpint.montgomery import MontgomeryContext, cios_montgomery_multiply
from repro.mpint.limbs import from_int, to_int

from tests.conftest import seed_for

pytestmark = pytest.mark.skipif(
    not limb_plane.HAVE_NUMPY, reason="limb-plane backend requires numpy")

GOLDEN_DIR = Path(__file__).parent / "golden"
MODULUS_BITS = (1024, 2048, 4096)
BATCH_SHAPES = (1, 7, 64)

#: Exponent widths per modulus size: full-width at 1024 bits, trimmed at
#: the big sizes to keep the suite's runtime bounded (the schedule is
#: identical code regardless of exponent width).
EXP_BITS = {1024: 1024, 2048: 256, 4096: 64}


def _modulus(bits: int) -> int:
    """Deterministic odd modulus of exact width from the routed seed."""
    rnd = random.Random(seed_for(9100 + bits))
    return rnd.getrandbits(bits) | (1 << (bits - 1)) | 1


def _values(seed: int, count: int, modulus: int, edges: bool) -> list:
    """A batch in ``[0, modulus)``; edge values lead when they fit."""
    rnd = random.Random(seed)
    values = [rnd.randrange(modulus) for _ in range(count)]
    if edges:
        for i, edge in enumerate((0, 1, modulus - 1)):
            if i < count:
                values[i] = edge
    return values


@settings(max_examples=8, deadline=None)
@given(bits=st.sampled_from(MODULUS_BITS),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       edges=st.booleans())
def test_batched_cios_matches_scalar_cios(bits, shape, seed, edges):
    modulus = _modulus(bits)
    ctx = MontgomeryContext(modulus)
    a_values = _values(seed, shape, modulus, edges)
    b_values = _values(seed ^ 0x5A5A5A5A, shape, modulus, edges)
    got = limb_plane.batched_cios_multiply(a_values, b_values, ctx)
    want = [to_int(cios_montgomery_multiply(
                from_int(a, size=ctx.num_limbs),
                from_int(b, size=ctx.num_limbs), ctx))
            for a, b in zip(a_values, b_values)]
    assert got == want


@settings(max_examples=6, deadline=None)
@given(bits=st.sampled_from(MODULUS_BITS),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1),
       edges=st.booleans())
def test_batched_pow_matches_scalar(bits, shape, seed, edges):
    modulus = _modulus(bits)
    ctx = MontgomeryContext(modulus)
    bases = _values(seed, shape, modulus, edges)
    exponent = random.Random(seed ^ 0xC3C3C3C3).getrandbits(EXP_BITS[bits])
    got = limb_plane.batched_pow(bases, exponent, modulus)
    assert got == [pow(base, exponent, modulus) for base in bases]
    # The scalar sliding-window kernel agrees too (spot-check one lane
    # rather than the whole batch -- it is the slow reference).
    assert got[0] == sliding_window_pow(bases[0], exponent, ctx)


@settings(max_examples=6, deadline=None)
@given(bits=st.sampled_from((1024, 2048)),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_pow_vary_matches_scalar(bits, shape, seed):
    modulus = _modulus(bits)
    plane = limb_plane.PlaneContext(modulus)
    bases = _values(seed, shape, modulus, edges=True)
    rnd = random.Random(seed ^ 0x0F0F0F0F)
    exponents = [rnd.getrandbits(EXP_BITS[2048]) for _ in range(shape)]
    # Edge exponents lead when the batch has room for them.
    for i, edge in enumerate((0, 1, 2)):
        if i < shape:
            exponents[i] = edge
    base_plane = limb_plane.ints_to_plane(bases, plane.num_limbs)
    got = limb_plane.plane_to_ints(plane.pow_vary(base_plane, exponents))
    assert got == [pow(b, e, modulus) for b, e in zip(bases, exponents)]


@settings(max_examples=5, deadline=None)
@given(bits=st.sampled_from((1024, 2048)),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixed_base_table_matches_pow(bits, shape, seed):
    modulus = _modulus(bits)
    plane = limb_plane.PlaneContext(modulus)
    rnd = random.Random(seed)
    base = 2 + rnd.randrange(modulus - 2)
    exp_bits = EXP_BITS[2048]
    table = limb_plane.FixedBaseTable(plane, base,
                                      max_exponent_bits=exp_bits)
    exponents = [rnd.getrandbits(exp_bits) for _ in range(shape)]
    for i, edge in enumerate((0, 1, (1 << exp_bits) - 1)):
        if i < shape:
            exponents[i] = edge
    got = table.pow_ints(exponents)
    assert got == [pow(base, e, modulus) for e in exponents]


def _golden_key(bits: int):
    from repro.crypto.keys import (
        PaillierKeypair,
        PaillierPrivateKey,
        PaillierPublicKey,
    )
    crt = json.loads(
        (GOLDEN_DIR / f"vectors_{bits}.json").read_text())["crt"]
    p, q = int(crt["p"]), int(crt["q"])
    n = p * q
    public = PaillierPublicKey(n=n, g=n + 1, key_bits=n.bit_length())
    private = PaillierPrivateKey(p=p, q=q, public_key=public)
    return PaillierKeypair(public_key=public, private_key=private)


@settings(max_examples=6, deadline=None)
@given(bits=st.sampled_from((1024, 2048)),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_crt_decrypt_matches_scalar(bits, shape, seed):
    from repro.crypto.paillier import Paillier
    from repro.crypto.vector_math import CrtDecryptor
    keypair = _golden_key(bits)
    n = keypair.public_key.n
    n_squared = keypair.public_key.n_squared
    plaintexts = _values(seed, shape, n, edges=True)
    rnd = random.Random(seed ^ 0x33CC33CC)
    ciphertexts = []
    for m in plaintexts:
        r = 0
        while r == 0:
            r = rnd.randrange(n)
        ciphertexts.append(((1 + m * n) * pow(r, n, n_squared)) % n_squared)
    decryptor = CrtDecryptor(keypair.private_key)
    got = decryptor.decrypt(ciphertexts)
    want = [Paillier.raw_decrypt(keypair.private_key, c)
            for c in ciphertexts]
    assert got == want
    assert got == plaintexts


@settings(max_examples=4, deadline=None)
@given(bits=st.sampled_from((1024, 2048)),
       shape=st.sampled_from(BATCH_SHAPES),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixed_base_encrypt_matches_pow(bits, shape, seed):
    """Encryption's g^m leg through the window table vs plain pow --
    with a non-binomial generator, the path real encryption takes."""
    from repro.crypto.vector_math import VectorEncryptor
    from repro.crypto.keys import PaillierPublicKey
    keypair = _golden_key(bits)
    n = keypair.public_key.n
    n_squared = keypair.public_key.n_squared
    rnd = random.Random(seed)
    g = 2 + rnd.randrange(n_squared - 2)
    public = PaillierPublicKey(n=n, g=g, key_bits=n.bit_length())
    encryptor = VectorEncryptor(public)
    plaintexts = _values(seed ^ 0x77777777, shape, n, edges=True)
    plane = encryptor.g_pow_plane(plaintexts)
    got = limb_plane.plane_to_ints(plane)
    assert got == [pow(g, m, n_squared) for m in plaintexts]


def test_edge_batch_exact():
    """The three edge values as a whole batch, all sizes, no sampling."""
    for bits in MODULUS_BITS:
        modulus = _modulus(bits)
        ctx = MontgomeryContext(modulus)
        values = [0, 1, modulus - 1]
        got = limb_plane.batched_cios_multiply(values, values, ctx)
        want = [to_int(cios_montgomery_multiply(
                    from_int(v, size=ctx.num_limbs),
                    from_int(v, size=ctx.num_limbs), ctx))
                for v in values]
        assert got == want
        assert limb_plane.batched_pow(values, 7, modulus) == \
            [pow(v, 7, modulus) for v in values]
