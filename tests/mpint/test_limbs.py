"""Tests for the limb (word-array) representation."""

import pytest

from repro.mpint.limbs import (
    WORD_BITS,
    WORD_MASK,
    LimbVector,
    from_int,
    limbs_for_bits,
    normalize,
    to_int,
)


class TestFromInt:
    def test_zero_is_single_zero_limb(self):
        assert from_int(0) == [0]

    def test_single_word_value(self):
        assert from_int(5) == [5]

    def test_word_boundary_splits(self):
        assert from_int(1 << WORD_BITS) == [0, 1]

    def test_mixed_words_little_endian(self):
        value = (7 << WORD_BITS) | 3
        assert from_int(value) == [3, 7]

    def test_size_pads_with_zeros(self):
        assert from_int(5, size=4) == [5, 0, 0, 0]

    def test_size_too_small_raises(self):
        with pytest.raises(OverflowError):
            from_int(1 << (2 * WORD_BITS), size=2)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            from_int(-1)

    def test_custom_word_bits(self):
        assert from_int(0x1234, word_bits=8) == [0x34, 0x12]


class TestToInt:
    def test_roundtrip_large(self):
        value = 0xDEADBEEF_CAFEBABE_12345678
        assert to_int(from_int(value)) == value

    def test_ignores_leading_zero_limbs(self):
        assert to_int([5, 0, 0]) == 5

    def test_masks_oversized_limbs(self):
        # to_int treats each limb modulo the word size.
        assert to_int([WORD_MASK + 1]) == 0


class TestNormalize:
    def test_propagates_single_carry(self):
        assert normalize([WORD_MASK + 3, 0]) == [2, 1]

    def test_extends_on_top_carry(self):
        assert normalize([0, WORD_MASK + 1]) == [0, 0, 1]

    def test_identity_on_canonical(self):
        limbs = [1, 2, 3]
        assert normalize(limbs) == limbs


class TestLimbsForBits:
    def test_exact_boundary(self):
        assert limbs_for_bits(WORD_BITS) == 1
        assert limbs_for_bits(WORD_BITS + 1) == 2

    def test_1024_bit_key(self):
        assert limbs_for_bits(1024) == 1024 // WORD_BITS

    def test_zero_bits_needs_one_limb(self):
        assert limbs_for_bits(0) == 1


class TestLimbVector:
    def test_roundtrip(self):
        vector = LimbVector.from_int(123456789)
        assert vector.to_int() == 123456789

    def test_equality_with_int(self):
        assert LimbVector.from_int(42) == 42

    def test_equality_ignores_padding(self):
        assert LimbVector.from_int(7, size=4) == LimbVector.from_int(7)

    def test_resized(self):
        vector = LimbVector.from_int(9).resized(8)
        assert len(vector) == 8
        assert vector.to_int() == 9

    def test_split_even(self):
        vector = LimbVector.from_int(1, size=8)
        parts = vector.split(4)
        assert len(parts) == 4
        assert all(len(part) == 2 for part in parts)
        assert parts[0] == [1, 0]

    def test_split_uneven_raises(self):
        with pytest.raises(ValueError):
            LimbVector.from_int(1, size=6).split(4)

    def test_empty_becomes_zero(self):
        assert LimbVector([]).to_int() == 0
