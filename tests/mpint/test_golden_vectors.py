"""Golden-vector tests for the multiprecision kernels.

The fixture files under ``tests/mpint/golden/`` were generated offline
with *plain Python* arithmetic only: moduli derived from a SHA-256
stream (top and bottom bits forced so ``bit_length == bits`` and the
modulus is odd), Montgomery products computed as
``a * b * R^-1 mod N`` via ``pow(R, -1, N)``, and modexp expectations
via the builtin three-argument ``pow``.  Nothing in the fixtures came
from the code under test, so a regression in the Montgomery or
sliding-window kernels cannot silently regenerate its own expectations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mpint import limb_plane
from repro.mpint.limbs import from_int, to_int
from repro.mpint.modexp import sliding_window_pow
from repro.mpint.montgomery import (
    MontgomeryContext,
    cios_montgomery_multiply,
    montgomery_multiply,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_BITS = (1024, 2048, 4096)
#: The fixed_base / crt sections exist only at these sizes.
EXTENDED_BITS = (1024, 2048)

needs_numpy = pytest.mark.skipif(
    not limb_plane.HAVE_NUMPY, reason="limb-plane backend requires numpy")


def load_vectors(bits: int) -> dict:
    path = GOLDEN_DIR / f"vectors_{bits}.json"
    return json.loads(path.read_text())


@pytest.fixture(scope="module", params=GOLDEN_BITS,
                ids=[f"{b}bit" for b in GOLDEN_BITS])
def vectors(request):
    return load_vectors(request.param)


@pytest.fixture(scope="module", params=EXTENDED_BITS,
                ids=[f"{b}bit" for b in EXTENDED_BITS])
def extended_vectors(request):
    return load_vectors(request.param)


class TestFixtureIntegrity:
    """The committed fixtures must agree with the context's own
    derivation of R -- otherwise every comparison below is vacuous."""

    def test_radix_matches_context(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        assert ctx.r == int(vectors["montgomery_radix"])

    def test_modulus_has_exact_width(self, vectors):
        modulus = int(vectors["modulus"])
        assert modulus.bit_length() == vectors["bits"]
        assert modulus % 2 == 1

    def test_case_counts(self, vectors):
        assert len(vectors["multiply"]) == 6
        assert len(vectors["modexp"]) == 3


class TestMontgomeryMultiply:
    def test_matches_golden_expectations(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for i, case in enumerate(vectors["multiply"]):
            a, b = int(case["a"]), int(case["b"])
            expected = int(case["expected"])
            assert montgomery_multiply(a, b, ctx) == expected, \
                f"multiply case {i} at {vectors['bits']} bits"

    def test_golden_values_agree_with_plain_pow(self, vectors):
        """Re-derive each expectation in-process from pow() alone, so a
        corrupted fixture file is caught rather than trusted."""
        modulus = int(vectors["modulus"])
        r_inv = pow(int(vectors["montgomery_radix"]), -1, modulus)
        for case in vectors["multiply"]:
            a, b = int(case["a"]), int(case["b"])
            assert (a * b * r_inv) % modulus == int(case["expected"])


class TestCiosMultiply:
    """The limb-level CIOS kernel against the same 1024-bit vectors."""

    def test_cios_matches_golden_at_1024_bits(self):
        vectors = load_vectors(1024)
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for case in vectors["multiply"]:
            a_limbs = from_int(int(case["a"]), size=ctx.num_limbs)
            b_limbs = from_int(int(case["b"]), size=ctx.num_limbs)
            out = cios_montgomery_multiply(a_limbs, b_limbs, ctx)
            assert to_int(out) == int(case["expected"])


class TestSlidingWindowModexp:
    def test_matches_golden_expectations(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for i, case in enumerate(vectors["modexp"]):
            base, exponent = int(case["base"]), int(case["exponent"])
            expected = int(case["expected"])
            assert sliding_window_pow(base, exponent, ctx) == expected, \
                f"modexp case {i} at {vectors['bits']} bits"
            assert pow(base, exponent, modulus) == expected

    def test_window_width_does_not_change_results(self):
        vectors = load_vectors(1024)
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        case = vectors["modexp"][0]
        base, exponent = int(case["base"]), int(case["exponent"])
        expected = int(case["expected"])
        for window_bits in (2, 4, 6):
            assert sliding_window_pow(base, exponent, ctx,
                                      window_bits=window_bits) == expected


def _crt_keypair(crt: dict):
    """Build a keypair from the committed CRT primes."""
    from repro.crypto.keys import (
        PaillierKeypair,
        PaillierPrivateKey,
        PaillierPublicKey,
    )
    p, q = int(crt["p"]), int(crt["q"])
    n = p * q
    public = PaillierPublicKey(n=n, g=n + 1, key_bits=n.bit_length())
    private = PaillierPrivateKey(p=p, q=q, public_key=public)
    return PaillierKeypair(public_key=public, private_key=private)


class TestFixedBaseGolden:
    """The committed fixed-base window vectors, replayed through both
    the scalar kernels and the limb-plane table."""

    def test_table_entries_match_plain_pow(self, extended_vectors):
        modulus = int(extended_vectors["modulus"])
        fb = extended_vectors["fixed_base"]
        base = int(fb["base"])
        for entry in fb["table_entries"]:
            exponent = entry["digit"] << (entry["window"] * fb["window_bits"])
            assert pow(base, exponent, modulus) == int(entry["expected"])

    def test_scalar_sliding_window_replays_powers(self, extended_vectors):
        modulus = int(extended_vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        fb = extended_vectors["fixed_base"]
        base = int(fb["base"])
        for case in fb["powers"]:
            assert sliding_window_pow(base, int(case["exponent"]),
                                      ctx) == int(case["expected"])

    @needs_numpy
    def test_limb_plane_table_replays_entries(self, extended_vectors):
        modulus = int(extended_vectors["modulus"])
        fb = extended_vectors["fixed_base"]
        plane = limb_plane.PlaneContext(modulus)
        table = limb_plane.FixedBaseTable(
            plane, int(fb["base"]),
            max_exponent_bits=extended_vectors["bits"],
            window_bits=fb["window_bits"])
        assert table.num_windows >= fb["num_windows"]
        for entry in fb["table_entries"]:
            got = table.table_entry(entry["window"], entry["digit"])
            assert got == int(entry["expected"])

    @needs_numpy
    def test_limb_plane_table_replays_powers(self, extended_vectors):
        modulus = int(extended_vectors["modulus"])
        fb = extended_vectors["fixed_base"]
        plane = limb_plane.PlaneContext(modulus)
        table = limb_plane.FixedBaseTable(
            plane, int(fb["base"]),
            max_exponent_bits=extended_vectors["bits"],
            window_bits=fb["window_bits"])
        exponents = [int(case["exponent"]) for case in fb["powers"]]
        expected = [int(case["expected"]) for case in fb["powers"]]
        assert table.pow_ints(exponents) == expected


class TestCrtGolden:
    """The committed CRT recombination vectors, replayed through the
    scalar private-key path and the limb-plane CRT decryptor."""

    def test_key_constants_match_fixture(self, extended_vectors):
        crt = extended_vectors["crt"]
        key = _crt_keypair(crt).private_key
        assert key.hp == int(crt["hp"])
        assert key.hq == int(crt["hq"])
        assert key.q_inverse == int(crt["q_inverse"])

    def test_ciphertexts_rederive_with_plain_pow(self, extended_vectors):
        crt = extended_vectors["crt"]
        n = int(crt["p"]) * int(crt["q"])
        n_squared = n * n
        for case in crt["cases"]:
            m, r = int(case["plaintext"]), int(case["randomizer"])
            c = ((1 + m * n) * pow(r, n, n_squared)) % n_squared
            assert c == int(case["ciphertext"])

    def test_scalar_crt_decrypt_replays_cases(self, extended_vectors):
        from repro.crypto.paillier import Paillier
        crt = extended_vectors["crt"]
        key = _crt_keypair(crt).private_key
        for case in crt["cases"]:
            ciphertext = int(case["ciphertext"])
            assert Paillier.raw_decrypt(key, ciphertext) == \
                int(case["plaintext"])
            assert Paillier.raw_decrypt_textbook(key, ciphertext) == \
                int(case["plaintext"])

    @needs_numpy
    def test_limb_plane_crt_decrypt_replays_cases(self, extended_vectors):
        from repro.crypto.vector_math import CrtDecryptor
        crt = extended_vectors["crt"]
        decryptor = CrtDecryptor(_crt_keypair(crt).private_key)
        ciphertexts = [int(case["ciphertext"]) for case in crt["cases"]]
        expected = [int(case["plaintext"]) for case in crt["cases"]]
        assert decryptor.decrypt(ciphertexts) == expected


@needs_numpy
class TestLimbPlaneCiosGolden:
    """The batched CIOS kernel against the same multiply vectors the
    scalar kernels replay -- all committed sizes, one batch per size."""

    def test_batched_cios_matches_golden(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        a_values = [int(case["a"]) for case in vectors["multiply"]]
        b_values = [int(case["b"]) for case in vectors["multiply"]]
        expected = [int(case["expected"]) for case in vectors["multiply"]]
        assert limb_plane.batched_cios_multiply(a_values, b_values,
                                                ctx) == expected

    def test_batched_pow_matches_golden(self, vectors):
        modulus = int(vectors["modulus"])
        for case in vectors["modexp"]:
            got = limb_plane.batched_pow([int(case["base"])],
                                         int(case["exponent"]), modulus)
            assert got == [int(case["expected"])]
