"""Golden-vector tests for the multiprecision kernels.

The fixture files under ``tests/mpint/golden/`` were generated offline
with *plain Python* arithmetic only: moduli derived from a SHA-256
stream (top and bottom bits forced so ``bit_length == bits`` and the
modulus is odd), Montgomery products computed as
``a * b * R^-1 mod N`` via ``pow(R, -1, N)``, and modexp expectations
via the builtin three-argument ``pow``.  Nothing in the fixtures came
from the code under test, so a regression in the Montgomery or
sliding-window kernels cannot silently regenerate its own expectations.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.mpint.limbs import from_int, to_int
from repro.mpint.modexp import sliding_window_pow
from repro.mpint.montgomery import (
    MontgomeryContext,
    cios_montgomery_multiply,
    montgomery_multiply,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_BITS = (1024, 2048, 4096)


def load_vectors(bits: int) -> dict:
    path = GOLDEN_DIR / f"vectors_{bits}.json"
    return json.loads(path.read_text())


@pytest.fixture(scope="module", params=GOLDEN_BITS,
                ids=[f"{b}bit" for b in GOLDEN_BITS])
def vectors(request):
    return load_vectors(request.param)


class TestFixtureIntegrity:
    """The committed fixtures must agree with the context's own
    derivation of R -- otherwise every comparison below is vacuous."""

    def test_radix_matches_context(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        assert ctx.r == int(vectors["montgomery_radix"])

    def test_modulus_has_exact_width(self, vectors):
        modulus = int(vectors["modulus"])
        assert modulus.bit_length() == vectors["bits"]
        assert modulus % 2 == 1

    def test_case_counts(self, vectors):
        assert len(vectors["multiply"]) == 6
        assert len(vectors["modexp"]) == 3


class TestMontgomeryMultiply:
    def test_matches_golden_expectations(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for i, case in enumerate(vectors["multiply"]):
            a, b = int(case["a"]), int(case["b"])
            expected = int(case["expected"])
            assert montgomery_multiply(a, b, ctx) == expected, \
                f"multiply case {i} at {vectors['bits']} bits"

    def test_golden_values_agree_with_plain_pow(self, vectors):
        """Re-derive each expectation in-process from pow() alone, so a
        corrupted fixture file is caught rather than trusted."""
        modulus = int(vectors["modulus"])
        r_inv = pow(int(vectors["montgomery_radix"]), -1, modulus)
        for case in vectors["multiply"]:
            a, b = int(case["a"]), int(case["b"])
            assert (a * b * r_inv) % modulus == int(case["expected"])


class TestCiosMultiply:
    """The limb-level CIOS kernel against the same 1024-bit vectors."""

    def test_cios_matches_golden_at_1024_bits(self):
        vectors = load_vectors(1024)
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for case in vectors["multiply"]:
            a_limbs = from_int(int(case["a"]), size=ctx.num_limbs)
            b_limbs = from_int(int(case["b"]), size=ctx.num_limbs)
            out = cios_montgomery_multiply(a_limbs, b_limbs, ctx)
            assert to_int(out) == int(case["expected"])


class TestSlidingWindowModexp:
    def test_matches_golden_expectations(self, vectors):
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        for i, case in enumerate(vectors["modexp"]):
            base, exponent = int(case["base"]), int(case["exponent"])
            expected = int(case["expected"])
            assert sliding_window_pow(base, exponent, ctx) == expected, \
                f"modexp case {i} at {vectors['bits']} bits"
            assert pow(base, exponent, modulus) == expected

    def test_window_width_does_not_change_results(self):
        vectors = load_vectors(1024)
        modulus = int(vectors["modulus"])
        ctx = MontgomeryContext(modulus)
        case = vectors["modexp"][0]
        base, exponent = int(case["base"]), int(case["exponent"])
        expected = int(case["expected"])
        for window_bits in (2, 4, 6):
            assert sliding_window_pow(base, exponent, ctx,
                                      window_bits=window_bits) == expected
