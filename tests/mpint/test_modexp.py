"""Tests for sliding-window modular exponentiation."""

import random

import pytest

from repro.mpint.modexp import (
    ModExpStats,
    mod_pow,
    modexp_multiplication_count,
    sliding_window_pow,
)
from repro.mpint.montgomery import MontgomeryContext


@pytest.fixture(scope="module")
def ctx():
    rng = random.Random(21)
    modulus = rng.getrandbits(192) | (1 << 191) | 1
    return MontgomeryContext(modulus)


class TestSlidingWindow:
    def test_matches_builtin_pow(self, ctx):
        rng = random.Random(22)
        n = ctx.modulus
        for _ in range(60):
            base = rng.randrange(n)
            exponent = rng.getrandbits(rng.randrange(1, 160))
            assert sliding_window_pow(base, exponent, ctx) == \
                pow(base, exponent, n)

    def test_exponent_zero(self, ctx):
        assert sliding_window_pow(12345, 0, ctx) == 1

    def test_exponent_one(self, ctx):
        assert sliding_window_pow(9, 1, ctx) == 9

    def test_base_zero(self, ctx):
        assert sliding_window_pow(0, 5, ctx) == 0

    def test_negative_exponent_raises(self, ctx):
        with pytest.raises(ValueError):
            sliding_window_pow(2, -1, ctx)

    def test_window_widths_agree(self, ctx):
        rng = random.Random(23)
        base = rng.randrange(ctx.modulus)
        exponent = rng.getrandbits(120)
        expected = pow(base, exponent, ctx.modulus)
        for width in (1, 2, 3, 4, 5, 6):
            assert sliding_window_pow(base, exponent, ctx,
                                      window_bits=width) == expected

    def test_stats_counted(self, ctx):
        stats = ModExpStats()
        sliding_window_pow(7, (1 << 100) - 1, ctx, stats=stats)
        assert stats.squarings > 0
        assert stats.multiplications > 0
        assert stats.total == (stats.squarings + stats.multiplications
                               + stats.precompute)

    def test_window_reduces_multiplications(self, ctx):
        exponent = int("1" * 200, 2)  # all-ones: worst case for square&mult
        narrow = ModExpStats()
        sliding_window_pow(3, exponent, ctx, window_bits=1, stats=narrow)
        wide = ModExpStats()
        sliding_window_pow(3, exponent, ctx, window_bits=5, stats=wide)
        assert wide.multiplications < narrow.multiplications


class TestModPow:
    def test_odd_modulus(self):
        assert mod_pow(7, 13, 1001) == pow(7, 13, 1001)

    def test_even_modulus_fallback(self):
        assert mod_pow(7, 13, 1000) == pow(7, 13, 1000)

    def test_modulus_one(self):
        assert mod_pow(5, 5, 1) == 0

    def test_nonpositive_modulus_raises(self):
        with pytest.raises(ValueError):
            mod_pow(2, 2, 0)


class TestMultiplicationCount:
    def test_log_scaling(self):
        # Complexity e -> log(e): count grows linearly in exponent bits.
        assert modexp_multiplication_count(2048) < \
            2.2 * modexp_multiplication_count(1024)

    def test_zero_bits(self):
        assert modexp_multiplication_count(0) == 0

    def test_matches_actual_schedule_roughly(self):
        rng = random.Random(24)
        modulus = rng.getrandbits(160) | (1 << 159) | 1
        ctx = MontgomeryContext(modulus)
        exponent = rng.getrandbits(512) | (1 << 511)
        stats = ModExpStats()
        sliding_window_pow(2, exponent, ctx, stats=stats)
        predicted = modexp_multiplication_count(512)
        assert 0.7 * predicted < stats.total < 1.3 * predicted
