"""Property-based tests (hypothesis) for the multi-precision substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpint.arith import limb_add, limb_divmod, limb_mul, limb_sub
from repro.mpint.limbs import from_int, normalize, to_int
from repro.mpint.modexp import sliding_window_pow
from repro.mpint.montgomery import (
    MontgomeryContext,
    cios_montgomery_multiply,
    montgomery_multiply,
)

nonneg = st.integers(min_value=0, max_value=1 << 256)
positive = st.integers(min_value=1, max_value=1 << 128)
odd_modulus = st.integers(min_value=3, max_value=1 << 128).map(lambda x: x | 1)


@given(nonneg)
def test_limb_roundtrip(value):
    assert to_int(from_int(value)) == value


@given(nonneg, st.integers(min_value=1, max_value=40))
def test_padding_preserves_value(value, extra):
    limbs = from_int(value)
    assert to_int(limbs + [0] * extra) == value


@given(nonneg)
def test_normalize_canonical_is_identity_value(value):
    assert to_int(normalize(from_int(value))) == value


@given(nonneg, nonneg)
def test_add_matches_python(a, b):
    total, carry = limb_add(from_int(a), from_int(b))
    size = max(len(from_int(a)), len(from_int(b)))
    assert to_int(total) + (carry << (32 * size)) == a + b


@given(nonneg, nonneg)
def test_sub_then_add_roundtrips(a, b):
    low, high = sorted((a, b))
    size = max(len(from_int(high)), 1)
    diff, borrow = limb_sub(from_int(high, size=size),
                            from_int(low, size=size))
    assert borrow == 0
    total, _ = limb_add(diff, from_int(low, size=size))
    assert to_int(total) == high


@given(nonneg, nonneg)
def test_mul_matches_python(a, b):
    assert to_int(limb_mul(from_int(a), from_int(b))) == a * b


@settings(max_examples=40)
@given(nonneg, positive)
def test_divmod_invariant(a, b):
    quotient, remainder = limb_divmod(from_int(a), from_int(b))
    q, r = to_int(quotient), to_int(remainder)
    assert a == q * b + r
    assert 0 <= r < b


@settings(max_examples=40)
@given(odd_modulus, nonneg, nonneg)
def test_montgomery_matches_definition(modulus, a, b):
    ctx = MontgomeryContext(modulus)
    a %= modulus
    b %= modulus
    assert montgomery_multiply(a, b, ctx) == \
        (a * b * ctx.r_inverse) % modulus


@settings(max_examples=25)
@given(odd_modulus, nonneg, nonneg)
def test_cios_matches_algorithm1(modulus, a, b):
    ctx = MontgomeryContext(modulus)
    a %= modulus
    b %= modulus
    got = cios_montgomery_multiply(from_int(a, size=ctx.num_limbs),
                                   from_int(b, size=ctx.num_limbs), ctx)
    assert to_int(got) == montgomery_multiply(a, b, ctx)


@settings(max_examples=30)
@given(odd_modulus, nonneg,
       st.integers(min_value=0, max_value=1 << 64))
def test_sliding_window_matches_pow(modulus, base, exponent)\
        :
    ctx = MontgomeryContext(modulus)
    assert sliding_window_pow(base, exponent, ctx) == \
        pow(base, exponent, modulus)
