"""Tests for limb-level arithmetic against Python's big integers."""

import random

import pytest

from repro.mpint.arith import (
    limb_add,
    limb_compare,
    limb_divmod,
    limb_mod,
    limb_mul,
    limb_sub,
)
from repro.mpint.limbs import WORD_MASK, from_int, to_int


class TestLimbAdd:
    def test_simple(self):
        total, carry = limb_add([1], [2])
        assert to_int(total) == 3 and carry == 0

    def test_carry_propagation(self):
        total, carry = limb_add([WORD_MASK], [1])
        assert total == [0] and carry == 1

    def test_carry_chain_through_all_limbs(self):
        total, carry = limb_add([WORD_MASK, WORD_MASK], [1])
        assert total == [0, 0] and carry == 1

    def test_unequal_lengths(self):
        total, carry = limb_add([1], [0, 1])
        assert to_int(total) == 1 + (1 << 32) and carry == 0

    def test_randomized_against_python(self):
        rng = random.Random(1)
        for _ in range(100):
            a, b = rng.getrandbits(200), rng.getrandbits(150)
            total, carry = limb_add(from_int(a), from_int(b))
            size = max(len(from_int(a)), len(from_int(b)))
            assert to_int(total) + (carry << (32 * size)) == a + b


class TestLimbSub:
    def test_simple(self):
        diff, borrow = limb_sub([5], [3])
        assert to_int(diff) == 2 and borrow == 0

    def test_borrow_wraps(self):
        diff, borrow = limb_sub([0], [1])
        assert diff == [WORD_MASK] and borrow == 1

    def test_recover_by_addition(self):
        # The Sec. IV-A1 overflow-recovery identity: (a - b wrapped) + b == a.
        a, b = 3, 10
        diff, borrow = limb_sub(from_int(a), from_int(b))
        assert borrow == 1
        recovered, _carry = limb_add(diff, from_int(b))
        assert to_int(recovered) == a

    def test_randomized_against_python(self):
        rng = random.Random(2)
        for _ in range(100):
            a, b = sorted((rng.getrandbits(180), rng.getrandbits(180)))
            diff, borrow = limb_sub(from_int(b, size=6), from_int(a, size=6))
            assert borrow == 0
            assert to_int(diff) == b - a


class TestLimbMul:
    def test_simple(self):
        assert to_int(limb_mul([3], [4])) == 12

    def test_result_length(self):
        product = limb_mul([1, 1], [1, 1, 1])
        assert len(product) == 5

    def test_zero_operand(self):
        assert to_int(limb_mul(from_int(0), from_int(12345))) == 0

    def test_randomized_against_python(self):
        rng = random.Random(3)
        for _ in range(100):
            a, b = rng.getrandbits(300), rng.getrandbits(250)
            assert to_int(limb_mul(from_int(a), from_int(b))) == a * b


class TestLimbCompare:
    def test_equal(self):
        assert limb_compare([1, 2], [1, 2]) == 0

    def test_less_and_greater(self):
        assert limb_compare([1], [2]) == -1
        assert limb_compare([2], [1]) == 1

    def test_high_limb_dominates(self):
        assert limb_compare([WORD_MASK, 1], [0, 2]) == -1

    def test_padding_irrelevant(self):
        assert limb_compare([5, 0, 0], [5]) == 0


class TestLimbDivmod:
    def test_simple(self):
        quotient, remainder = limb_divmod(from_int(17), from_int(5))
        assert to_int(quotient) == 3 and to_int(remainder) == 2

    def test_divide_by_larger(self):
        quotient, remainder = limb_divmod(from_int(3), from_int(10))
        assert to_int(quotient) == 0 and to_int(remainder) == 3

    def test_exact_division(self):
        quotient, remainder = limb_divmod(from_int(100), from_int(10))
        assert to_int(quotient) == 10 and to_int(remainder) == 0

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionError):
            limb_divmod(from_int(1), from_int(0))

    def test_randomized_against_python(self):
        rng = random.Random(4)
        for _ in range(60):
            a = rng.getrandbits(250)
            b = rng.getrandbits(120) + 1
            quotient, remainder = limb_divmod(from_int(a), from_int(b))
            assert to_int(quotient) == a // b
            assert to_int(remainder) == a % b

    def test_mod_wrapper(self):
        assert to_int(limb_mod(from_int(1000), from_int(7))) == 1000 % 7
