"""Tests for Karatsuba, Knuth Algorithm D and Barrett reduction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpint.advanced import (
    BarrettContext,
    barrett_mod_mul,
    barrett_reduce,
    karatsuba_mul,
    knuth_divmod,
)
from repro.mpint.limbs import from_int, to_int

nonneg = st.integers(min_value=0, max_value=1 << 512)
positive = st.integers(min_value=1, max_value=1 << 256)


class TestKaratsuba:
    def test_small_values(self):
        assert to_int(karatsuba_mul([3], [4])) == 12

    def test_crosses_cutoff(self):
        rng = random.Random(1)
        a = rng.getrandbits(32 * 40)       # 40 limbs: recursion kicks in
        b = rng.getrandbits(32 * 40)
        assert to_int(karatsuba_mul(from_int(a), from_int(b))) == a * b

    def test_asymmetric_operands(self):
        rng = random.Random(2)
        a = rng.getrandbits(32 * 50)
        b = rng.getrandbits(32 * 3)
        assert to_int(karatsuba_mul(from_int(a), from_int(b))) == a * b

    def test_zero(self):
        assert to_int(karatsuba_mul(from_int(0), from_int(12345))) == 0

    @settings(max_examples=40)
    @given(nonneg, nonneg)
    def test_property_matches_python(self, a, b):
        assert to_int(karatsuba_mul(from_int(a), from_int(b))) == a * b


class TestKnuthDivision:
    def test_single_limb_divisor(self):
        q, r = knuth_divmod(from_int(1000003), from_int(7))
        assert to_int(q) == 1000003 // 7
        assert to_int(r) == 1000003 % 7

    def test_multi_limb(self):
        rng = random.Random(3)
        a = rng.getrandbits(512)
        b = rng.getrandbits(200) | 1
        q, r = knuth_divmod(from_int(a), from_int(b))
        assert to_int(q) == a // b
        assert to_int(r) == a % b

    def test_dividend_smaller(self):
        q, r = knuth_divmod(from_int(5), from_int(1 << 100))
        assert to_int(q) == 0 and to_int(r) == 5

    def test_exact_division(self):
        b = (1 << 128) + 12345
        q, r = knuth_divmod(from_int(b * 77), from_int(b))
        assert to_int(q) == 77 and to_int(r) == 0

    def test_zero_divisor_raises(self):
        with pytest.raises(ZeroDivisionError):
            knuth_divmod(from_int(1), from_int(0))

    def test_addback_branch(self):
        # Crafted case known to exercise Knuth's rare D6 add-back:
        # top limbs of u just below q_hat * v.
        base = 1 << 32
        u = [0, 0, base - 1, base - 1]
        v = [base - 1, 0, 1]
        a = to_int(u)
        b = to_int(v)
        q, r = knuth_divmod(u, v)
        assert to_int(q) == a // b
        assert to_int(r) == a % b

    @settings(max_examples=60)
    @given(nonneg, positive)
    def test_property_invariant(self, a, b):
        q, r = knuth_divmod(from_int(a), from_int(b))
        q_value, r_value = to_int(q), to_int(r)
        assert a == q_value * b + r_value
        assert 0 <= r_value < b


class TestBarrett:
    def test_reduce_matches_mod(self):
        rng = random.Random(4)
        n = rng.getrandbits(256) | (1 << 255)
        ctx = BarrettContext(n)
        for _ in range(50):
            value = rng.randrange(n * n)
            assert barrett_reduce(value, ctx) == value % n

    def test_mod_mul(self):
        ctx = BarrettContext(1000003)
        assert barrett_mod_mul(999999, 999998, ctx) == \
            (999999 * 999998) % 1000003

    def test_works_for_even_modulus(self):
        # Unlike Montgomery, Barrett has no odd-modulus restriction.
        ctx = BarrettContext(1 << 64)
        assert barrett_reduce(12345678901234567890123, ctx) == \
            12345678901234567890123 % (1 << 64)

    def test_precondition_violation_raises(self):
        ctx = BarrettContext(101)
        with pytest.raises(ValueError):
            barrett_reduce(101 * 101, ctx)
        with pytest.raises(ValueError):
            barrett_reduce(-1, ctx)

    def test_invalid_modulus_raises(self):
        with pytest.raises(ValueError):
            BarrettContext(0)

    @settings(max_examples=50)
    @given(positive, nonneg, nonneg)
    def test_property_mod_mul(self, n, a, b):
        ctx = BarrettContext(n)
        assert barrett_mod_mul(a, b, ctx) == (a * b) % n

    def test_agrees_with_montgomery(self):
        from repro.mpint.montgomery import (MontgomeryContext,
                                            montgomery_multiply)
        rng = random.Random(5)
        n = rng.getrandbits(192) | (1 << 191) | 1
        barrett = BarrettContext(n)
        montgomery = MontgomeryContext(n)
        for _ in range(20):
            a, b = rng.randrange(n), rng.randrange(n)
            via_barrett = barrett_mod_mul(a, b, barrett)
            mont = montgomery_multiply(montgomery.to_montgomery(a),
                                       montgomery.to_montgomery(b),
                                       montgomery)
            assert via_barrett == montgomery.from_montgomery(mont)
