"""Tests for the report aggregator module."""

import pytest

from repro.experiments.report import SECTION_ORDER, build_report


@pytest.fixture()
def results(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    return directory


class TestBuildReport:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "absent")

    def test_known_sections_get_headings(self, results):
        (results / "table4_throughput.txt").write_text("THROUGHPUT DATA")
        report = build_report(results)
        assert "## Table IV — HE throughput" in report
        assert "THROUGHPUT DATA" in report

    def test_ordering_follows_paper(self, results):
        (results / "table7_convergence_bias.txt").write_text("T7")
        (results / "fig1_fate_breakdown.txt").write_text("F1")
        report = build_report(results)
        assert report.index("F1") < report.index("T7")

    def test_unknown_files_appended(self, results):
        (results / "zz_custom.txt").write_text("CUSTOM")
        report = build_report(results)
        assert "## zz_custom" in report
        assert "CUSTOM" in report

    def test_chart_files_inline_without_heading(self, results):
        (results / "fig8_convergence.txt").write_text("TABLE8")
        (results / "fig8_convergence_chart.txt").write_text("CHART8")
        report = build_report(results)
        # The chart follows the table under the same heading.
        assert report.count("## Fig. 8 — convergence") == 1
        assert report.index("TABLE8") < report.index("CHART8")

    def test_output_file_written(self, results, tmp_path):
        (results / "fig1_fate_breakdown.txt").write_text("F1")
        output = tmp_path / "R.md"
        returned = build_report(results, output_path=output)
        assert output.read_text() == returned

    def test_empty_results_dir_still_builds(self, results):
        report = build_report(results)
        assert report.startswith("# Reproduction report")

    def test_section_order_covers_all_paper_artifacts(self):
        stems = [stem for stem, _ in SECTION_ORDER]
        for required in ("fig1_fate_breakdown", "table3_running_time",
                         "table4_throughput", "fig6_sm_utilization",
                         "table5_ablation", "fig7_compression_ratio",
                         "table6_component_time", "fig8_convergence",
                         "table7_convergence_bias",
                         "theory_acceleration"):
            assert required in stems
