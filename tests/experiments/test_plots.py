"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plots import MARKERS, ascii_chart


class TestAsciiChart:
    def test_contains_markers_and_legend(self):
        chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        assert "o" in chart and "x" in chart
        assert "legend: o a   x b" in chart

    def test_title_and_labels(self):
        chart = ascii_chart({"s": [(0, 0), (1, 1)]}, title="T",
                            x_label="epochs", y_label="loss")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "loss"
        assert any("epochs" in line for line in lines)

    def test_extremes_placed_at_corners(self):
        chart = ascii_chart({"s": [(0, 0), (10, 5)]}, width=20, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        # Max y lands in the top plot row, min y in the bottom one.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_axis_ticks_present(self):
        chart = ascii_chart({"s": [(1, 2.5), (9, 7.5)]})
        assert "7.5" in chart and "2.5" in chart

    def test_log_x(self):
        chart = ascii_chart({"s": [(10, 0), (100, 1), (1000, 2)]},
                            log_x=True, width=21, height=5)
        rows = [line.split("|", 1)[1] for line in chart.splitlines()
                if "|" in line]
        columns = sorted(row.index("o") for row in rows if "o" in row)
        # Log spacing: the three points are evenly spread.
        assert columns[1] - columns[0] == pytest.approx(
            columns[2] - columns[1], abs=1)

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 1)]}, log_x=True)

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart({"s": [(0, 3), (1, 3), (2, 3)]})
        assert "o" in chart

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": []})

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 0)]}, width=2, height=2)

    def test_many_series_cycle_markers(self):
        series = {f"s{i}": [(i, i)] for i in range(len(MARKERS) + 2)}
        chart = ascii_chart(series)
        assert "legend" in chart
