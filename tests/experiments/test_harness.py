"""Tests for the experiment harness."""

import pytest

from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments import (
    SCALED_DATASET_SPECS,
    build_model,
    format_table,
    he_throughput,
    physical_key_for,
    run_epoch_experiment,
    run_training,
    scaled_dataset,
    sm_utilization,
)


class TestDatasets:
    def test_all_three_build(self):
        for name in SCALED_DATASET_SPECS:
            ds = scaled_dataset(name)
            assert ds.num_instances == SCALED_DATASET_SPECS[name]["instances"]

    def test_cache_returns_same_object(self):
        assert scaled_dataset("RCV1") is scaled_dataset("RCV1")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            scaled_dataset("MNIST")

    def test_feature_ordering_matches_paper(self):
        # Avazu > RCV1 > Synthetic in feature dimension (Table II).
        assert scaled_dataset("Avazu").num_features > \
            scaled_dataset("RCV1").num_features > \
            scaled_dataset("Synthetic").num_features


class TestModelFactory:
    @pytest.mark.parametrize("name", ["Homo LR", "Hetero LR",
                                      "Hetero SBT", "Hetero NN"])
    def test_builds_each_model(self, name):
        model = build_model(name, scaled_dataset("Synthetic"))
        assert model.name == name

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("Linear SVM", scaled_dataset("Synthetic"))


class TestPhysicalKeyScaling:
    def test_quarter_with_floor(self):
        assert physical_key_for(1024) == 256
        assert physical_key_for(2048) == 512
        assert physical_key_for(4096) == 1024
        assert physical_key_for(512) == 256


class TestMeasurement:
    def test_epoch_report_fields(self):
        report = run_epoch_experiment(FLBOOSTER, "Hetero LR", "Synthetic",
                                      1024)
        assert report.system == "FLBooster"
        assert report.epoch_seconds > 0
        assert report.he_operations > 0
        assert report.wire_bytes > 0

    def test_throughput_positive_and_ordered(self):
        fate = he_throughput(FATE, 1024, batch_size=512)
        flb = he_throughput(FLBOOSTER, 1024, batch_size=512)
        assert 0 < fate < flb

    def test_throughput_operations(self):
        for op in ("encrypt", "decrypt", "add"):
            assert he_throughput(FLBOOSTER, 1024, batch_size=256,
                                 operation=op) > 0
        with pytest.raises(KeyError):
            he_throughput(FLBOOSTER, 1024, operation="divide")

    def test_sm_utilization_ordering(self):
        assert sm_utilization(FLBOOSTER, 1024) > sm_utilization(HAFLO, 1024)

    def test_run_training_trace(self):
        trace = run_training(FLBOOSTER, "Hetero SBT", "Synthetic", 1024,
                             max_epochs=2, physical_key_bits=256)
        assert len(trace.losses) <= 2
        assert trace.system == "FLBooster"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text
