"""Tests for paper-scale extrapolation."""

import pytest

from repro.baselines import FATE
from repro.experiments import run_epoch_experiment, scaled_dataset
from repro.experiments.extrapolate import (
    extrapolate_report,
    extrapolation_factors,
)
from repro.federation.metrics import EpochReport


class TestFactors:
    def test_homo_lr_scales_with_features(self):
        dataset = scaled_dataset("RCV1")
        factors = extrapolation_factors("Homo LR", dataset)
        assert factors.he_comm == pytest.approx(
            dataset.paper_features / dataset.num_features)

    def test_hetero_lr_scales_with_instances(self):
        dataset = scaled_dataset("RCV1")
        factors = extrapolation_factors("Hetero LR", dataset)
        assert factors.he_comm == pytest.approx(
            dataset.paper_instances / dataset.num_instances)

    def test_compute_scales_with_product(self):
        dataset = scaled_dataset("Synthetic")
        factors = extrapolation_factors("Hetero NN", dataset)
        assert factors.compute == pytest.approx(
            (dataset.paper_instances / dataset.num_instances)
            * (dataset.paper_features / dataset.num_features))

    def test_sbt_between_instance_and_feature_ratio(self):
        dataset = scaled_dataset("RCV1")
        factors = extrapolation_factors("Hetero SBT", dataset)
        instances_ratio = dataset.paper_instances / dataset.num_instances
        features_ratio = dataset.paper_features / dataset.num_features
        assert min(instances_ratio, features_ratio) * 0.5 < \
            factors.he_comm < max(instances_ratio, features_ratio) * 2

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            extrapolation_factors("SVM", scaled_dataset("RCV1"))


class TestApply:
    def test_extrapolated_dominates_scaled(self):
        report = run_epoch_experiment(FATE, "Homo LR", "RCV1", 1024)
        estimate = extrapolate_report(report, scaled_dataset("RCV1"))
        assert estimate > 10 * report.epoch_seconds

    def test_paper_order_of_magnitude(self):
        # Paper Table III: FATE Homo LR RCV1 @1024 = 10,009.9 s.
        report = run_epoch_experiment(FATE, "Homo LR", "RCV1", 1024)
        estimate = extrapolate_report(report, scaled_dataset("RCV1"))
        assert 500 < estimate < 200_000

    def test_component_weighting(self):
        dataset = scaled_dataset("Synthetic")
        report = EpochReport(
            system="s", model="Homo LR", dataset="Synthetic",
            key_bits=1024, epoch_seconds=3.0,
            component_seconds={"HE operations": 1.0, "Communication": 1.0,
                               "Others": 1.0})
        factors = extrapolation_factors("Homo LR", dataset)
        expected = factors.he_comm * 2.0 + factors.compute * 1.0
        assert extrapolate_report(report, dataset) == pytest.approx(expected)
