"""Additional harness coverage: ops, caching, Homo NN path."""

import pytest

from repro.baselines import FATE, FLBOOSTER
from repro.experiments import (
    build_model,
    he_throughput,
    run_epoch_experiment,
    scaled_dataset,
)


class TestThroughputOperations:
    def test_decrypt_slower_equal_encrypt_order(self):
        encrypt = he_throughput(FLBOOSTER, 1024, batch_size=512,
                                operation="encrypt")
        decrypt = he_throughput(FLBOOSTER, 1024, batch_size=512,
                                operation="decrypt")
        # Same exponent lengths: within 3x of each other.
        assert encrypt / 3 < decrypt < encrypt * 3

    def test_add_much_faster(self):
        encrypt = he_throughput(FLBOOSTER, 1024, batch_size=512,
                                operation="encrypt")
        add = he_throughput(FLBOOSTER, 1024, batch_size=512,
                            operation="add")
        assert add > 20 * encrypt

    def test_cpu_add_also_fast(self):
        encrypt = he_throughput(FATE, 1024, batch_size=128,
                                operation="encrypt")
        add = he_throughput(FATE, 1024, batch_size=128, operation="add")
        assert add > 2 * encrypt


class TestEpochCache:
    def test_cache_hits_return_same_report(self):
        first = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic",
                                     1024)
        second = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic",
                                      1024)
        assert first is second

    def test_cache_bypass(self):
        cached = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic",
                                      1024)
        fresh = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic",
                                     1024, use_cache=False)
        assert fresh is not cached
        # Deterministic: same modelled time either way.
        assert fresh.epoch_seconds == pytest.approx(cached.epoch_seconds)

    def test_different_keys_are_different_cells(self):
        a = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic", 1024)
        b = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic", 2048)
        assert a is not b
        assert a.key_bits != b.key_bits


class TestHomoNnPath:
    def test_build_model(self):
        model = build_model("Homo NN", scaled_dataset("Synthetic"))
        assert model.name == "Homo NN"

    def test_epoch_experiment_runs(self):
        report = run_epoch_experiment(FLBOOSTER, "Homo NN", "Synthetic",
                                      1024)
        assert report.epoch_seconds > 0
        assert report.he_operations > 0

    def test_homo_nn_heavier_than_homo_lr(self):
        # The NN aggregates w1+b1+w2+b2 (> features weights), so its
        # payload and epoch exceed Homo LR's under the same config.
        nn = run_epoch_experiment(FLBOOSTER, "Homo NN", "Synthetic", 1024)
        lr = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic", 1024)
        assert nn.wire_bytes > lr.wire_bytes
