"""Checkpoint/resume: snapshot format, identity checks, recovery runs."""

import json

import numpy as np
import pytest

from repro.baselines import FLBOOSTER
from repro.experiments.harness import (
    CHECKPOINT_VERSION,
    TrainingCheckpoint,
    run_training,
    run_training_with_recovery,
)
from repro.federation.faults import FaultPlan


def make_checkpoint(**overrides):
    fields = dict(
        system="FLBooster", model="Homo LR", dataset="Synthetic",
        key_bits=256, seed=0, epoch=2, rounds_completed=4,
        losses=[0.7, 0.5], epoch_seconds=[1.5, 1.4],
        model_state={"weights": [[0.1, -0.2], [0.3, 0.4]]},
        restarts=1)
    fields.update(overrides)
    return TrainingCheckpoint(**fields)


class TestCheckpointRoundtrip:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        original = make_checkpoint()
        original.save(path)
        restored = TrainingCheckpoint.load(path)
        assert restored == original
        # Atomic write leaves no temporary behind.
        assert not path.with_suffix(path.suffix + ".tmp").exists()

    def test_state_arrays_restore_shape_and_dtype(self):
        arrays = make_checkpoint().state_arrays()
        assert arrays["weights"].shape == (2, 2)
        assert arrays["weights"].dtype == np.float64
        assert arrays["weights"][0, 1] == -0.2

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "stale.json"
        payload = json.loads(json.dumps({
            "version": CHECKPOINT_VERSION + 1, "system": "FLBooster",
            "model": "Homo LR", "dataset": "Synthetic", "key_bits": 256,
            "seed": 0, "epoch": 0, "rounds_completed": 0, "losses": [],
            "epoch_seconds": [], "model_state": {}, "restarts": 0}))
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            TrainingCheckpoint.load(path)

    def test_matches_checks_run_identity(self):
        checkpoint = make_checkpoint()
        assert checkpoint.matches("FLBooster", "Homo LR", "Synthetic",
                                  256, 0)
        assert not checkpoint.matches("FATE", "Homo LR", "Synthetic",
                                      256, 0)
        assert not checkpoint.matches("FLBooster", "Homo LR", "Synthetic",
                                      256, 1)


class TestFaultFreeRecovery:
    def test_trace_matches_plain_training(self):
        kwargs = dict(model_name="Homo LR", dataset_name="Synthetic",
                      key_bits=256, max_epochs=2, physical_key_bits=256,
                      num_clients=4, seed=0, bc_capacity="physical")
        plain = run_training(FLBOOSTER, **kwargs)
        recovered = run_training_with_recovery(FLBOOSTER, **kwargs)
        assert recovered.restarts == 0
        assert recovered.failures == []
        assert recovered.trace.losses == plain.losses
        assert recovered.trace.epoch_seconds == plain.epoch_seconds
        assert not recovered.fault_report.has_faults

    def test_checkpoint_written_per_epoch(self, tmp_path):
        path = tmp_path / "run.json"
        result = run_training_with_recovery(
            FLBOOSTER, "Homo LR", "Synthetic", key_bits=256, max_epochs=2,
            physical_key_bits=256, num_clients=4, seed=0,
            bc_capacity="physical", checkpoint_path=path)
        assert path.exists()
        saved = TrainingCheckpoint.load(path)
        assert saved == result.checkpoint
        assert saved.epoch == len(result.trace.losses)
        assert saved.losses == result.trace.losses


class TestResumeFromDisk:
    def test_resume_continues_from_saved_epoch(self, tmp_path):
        path = tmp_path / "run.json"
        kwargs = dict(model_name="Homo LR", dataset_name="Synthetic",
                      key_bits=256, physical_key_bits=256, num_clients=4,
                      seed=0, bc_capacity="physical", checkpoint_path=path)
        first = run_training_with_recovery(FLBOOSTER, max_epochs=1,
                                           **kwargs)
        assert len(first.trace.losses) == 1

        resumed = run_training_with_recovery(FLBOOSTER, max_epochs=3,
                                             **kwargs)
        # Epoch 0 came from the checkpoint: its loss is identical and the
        # continuation runs the remaining epochs only.
        assert resumed.trace.losses[0] == first.trace.losses[0]
        assert len(resumed.trace.losses) >= 2
        assert resumed.checkpoint.epoch == len(resumed.trace.losses)

    def test_mismatched_checkpoint_ignored(self, tmp_path):
        path = tmp_path / "run.json"
        make_checkpoint(system="FATE", epoch=5,
                        losses=[9.9] * 5, epoch_seconds=[1.0] * 5).save(path)
        result = run_training_with_recovery(
            FLBOOSTER, "Homo LR", "Synthetic", key_bits=256, max_epochs=1,
            physical_key_bits=256, num_clients=4, seed=0,
            bc_capacity="physical", checkpoint_path=path)
        # Fresh run: the alien checkpoint's trace is not inherited.
        assert len(result.trace.losses) == 1
        assert result.trace.losses[0] != 9.9


class TestRecoveryUnderFaults:
    def test_max_restarts_reraises(self):
        # Every client crashed: no incarnation can reach quorum.
        plan = FaultPlan(seed=0)
        for index in range(4):
            plan = plan.crash(f"client-{index}", round_index=0)
        from repro.federation.faults import QuorumError
        with pytest.raises(QuorumError):
            run_training_with_recovery(
                FLBOOSTER, "Homo LR", "Synthetic", key_bits=256,
                max_epochs=2, fault_plan=plan, min_quorum=2,
                physical_key_bits=256, num_clients=4, seed=0,
                bc_capacity="physical", max_restarts=2)

    def test_crash_tolerated_via_quorum_without_restart(self):
        plan = FaultPlan(seed=0).crash("client-3", round_index=0)
        result = run_training_with_recovery(
            FLBOOSTER, "Homo LR", "Synthetic", key_bits=256, max_epochs=2,
            fault_plan=plan, min_quorum=3, physical_key_bits=256,
            num_clients=4, seed=0, bc_capacity="physical")
        assert result.restarts == 0
        assert result.fault_report.crashes >= 1
        assert np.isfinite(result.trace.final_loss)


class TestAtomicSave:
    def test_save_overwrites_stale_tmp(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        stale = path.with_suffix(path.suffix + ".tmp")
        stale.write_text("{ garbage from a crashed save")
        checkpoint = make_checkpoint()
        checkpoint.save(path)
        assert not stale.exists()
        assert TrainingCheckpoint.load(path) == checkpoint

    def test_save_never_exposes_partial_file(self, tmp_path):
        # The checkpoint appears atomically: either absent or complete.
        path = tmp_path / "run.ckpt.json"
        first = make_checkpoint(epoch=1)
        first.save(path)
        second = make_checkpoint(epoch=2, losses=[0.7, 0.5, 0.4],
                                 epoch_seconds=[1.5, 1.4, 1.3])
        second.save(path)
        assert TrainingCheckpoint.load(path) == second
        assert list(tmp_path.iterdir()) == [path]

    def test_resume_cleans_stale_tmp_before_loading(self, tmp_path):
        path = tmp_path / "run.json"
        kwargs = dict(model_name="Homo LR", dataset_name="Synthetic",
                      key_bits=256, physical_key_bits=256, num_clients=4,
                      seed=0, bc_capacity="physical", checkpoint_path=path)
        first = run_training_with_recovery(FLBOOSTER, max_epochs=1,
                                           **kwargs)
        stale = path.with_suffix(path.suffix + ".tmp")
        stale.write_text("interrupted half-written snapshot")
        resumed = run_training_with_recovery(FLBOOSTER, max_epochs=2,
                                             **kwargs)
        assert not stale.exists()
        assert resumed.trace.losses[0] == first.trace.losses[0]


class TestResumeComposedWithQuorum:
    """Checkpoint/resume on top of PR 1 partial-quorum aggregation:
    the resumed run must follow the same Eq. 6 offset-corrected
    trajectory as an uninterrupted run under the identical crash plan."""

    def quorum_kwargs(self, **extra):
        plan = FaultPlan(seed=0).crash("client-3", round_index=0)
        kwargs = dict(model_name="Homo LR", dataset_name="Synthetic",
                      key_bits=256, physical_key_bits=256, num_clients=4,
                      seed=0, bc_capacity="physical", fault_plan=plan,
                      min_quorum=3)
        kwargs.update(extra)
        return kwargs

    def test_resume_matches_uninterrupted_partial_quorum_run(
            self, tmp_path):
        path = tmp_path / "quorum.json"
        first = run_training_with_recovery(
            FLBOOSTER, max_epochs=1,
            **self.quorum_kwargs(checkpoint_path=path))
        assert first.fault_report.crashes >= 1
        assert first.checkpoint.rounds_completed > 0

        resumed = run_training_with_recovery(
            FLBOOSTER, max_epochs=3,
            **self.quorum_kwargs(checkpoint_path=path))
        straight = run_training_with_recovery(
            FLBOOSTER, max_epochs=3, **self.quorum_kwargs())
        # Epoch 0 is inherited from the checkpoint verbatim; later
        # epochs rerun the partial-quorum (3/4 survivors) aggregation
        # from the saved round cursor.  Resume is deterministic but not
        # a verbatim replay, so the continued trajectory tracks the
        # uninterrupted run to quantization-offset tolerance (Eq. 6
        # correction keeps both on the survivors' sum).
        assert resumed.trace.losses[0] == straight.trace.losses[0]
        assert len(resumed.trace.losses) == len(straight.trace.losses)
        assert np.allclose(resumed.trace.losses, straight.trace.losses,
                           atol=2e-2)
        assert resumed.restarts == 0
        assert np.isfinite(resumed.trace.final_loss)

    def test_resumed_round_cursor_advances_past_checkpoint(self, tmp_path):
        path = tmp_path / "quorum.json"
        first = run_training_with_recovery(
            FLBOOSTER, max_epochs=1,
            **self.quorum_kwargs(checkpoint_path=path))
        resumed = run_training_with_recovery(
            FLBOOSTER, max_epochs=2,
            **self.quorum_kwargs(checkpoint_path=path))
        assert resumed.checkpoint.rounds_completed > \
            first.checkpoint.rounds_completed

    def test_eq6_offset_holds_on_post_resume_round(self):
        """A runtime rebuilt at a saved round cursor (the resume path)
        still decodes the survivors' sum exactly -- the Eq. 6 offset
        correction composes with recovery."""
        from repro.federation.runtime import (
            FLBOOSTER_SYSTEM,
            FederationRuntime,
        )

        plan = FaultPlan(seed=0).crash("client-3", round_index=2)
        rng = np.random.default_rng(3)
        vectors = [rng.uniform(-0.5, 0.5, size=6) for _ in range(4)]

        runtime = FederationRuntime(
            FLBOOSTER_SYSTEM, num_clients=4, key_bits=256,
            physical_key_bits=256, fault_plan=plan, min_quorum=3)
        # Resume drops the aggregator at the checkpointed round cursor;
        # round 2 is the first post-resume round and the crash fires.
        runtime.aggregator.round_cursor = 2
        decoded = runtime.aggregator.aggregate(vectors)
        surviving = sum(vectors[:3])
        step = runtime.aggregator.scheme.quantization_step
        assert runtime.aggregator.last_round.summands == 3
        assert np.allclose(decoded, surviving, atol=4 * step)
        assert not np.allclose(decoded, sum(vectors), atol=4 * step)
