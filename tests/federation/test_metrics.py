"""Tests for epoch reports and compute charging."""

import pytest

from repro.federation.metrics import (
    EpochReport,
    charge_model_compute,
    charge_pipeline_stage,
    flop_seconds,
)
from repro.ledger import CostLedger


class TestFlopCharging:
    def test_flop_seconds_linear(self):
        assert flop_seconds(5e9) == pytest.approx(1.0)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            flop_seconds(-1)

    def test_charge_model_compute_goes_to_others(self):
        ledger = CostLedger()
        charge_model_compute(ledger, 1e9, tag="model.test")
        assert ledger.by_component()["Others"] > 0
        assert ledger.by_component()["HE operations"] == 0

    def test_charge_pipeline_stage(self):
        ledger = CostLedger()
        charge_pipeline_stage(ledger, 100, tag="pipeline.encode_pack")
        assert ledger.count("pipeline.encode_pack") == 100
        assert ledger.seconds("pipeline") > 0

    def test_pipeline_negative_raises(self):
        with pytest.raises(ValueError):
            charge_pipeline_stage(CostLedger(), -1, tag="pipeline.x")


class TestEpochReport:
    def make_ledger(self):
        ledger = CostLedger()
        ledger.charge("he.encrypt", 2.0, count=20)
        ledger.charge("comm.upload", 1.0, count=2, payload_bytes=500)
        ledger.charge("model.compute", 1.0)
        return ledger

    def test_from_ledger(self):
        report = EpochReport.from_ledger(
            self.make_ledger(), system="FATE", model="Homo LR",
            dataset="RCV1", key_bits=1024, loss=0.5)
        assert report.epoch_seconds == 4.0
        assert report.he_operations == 20
        assert report.ciphertexts_sent == 2
        assert report.wire_bytes == 500
        assert report.loss == 0.5

    def test_component_properties(self):
        report = EpochReport.from_ledger(
            self.make_ledger(), system="s", model="m", dataset="d",
            key_bits=1024)
        assert report.he_seconds == 2.0
        assert report.comm_seconds == 1.0
        assert report.other_seconds == 1.0

    def test_percentages(self):
        report = EpochReport.from_ledger(
            self.make_ledger(), system="s", model="m", dataset="d",
            key_bits=1024)
        percentages = report.component_percentages()
        assert percentages["HE operations"] == pytest.approx(50.0)
        assert sum(percentages.values()) == pytest.approx(100.0)

    def test_empty_report(self):
        report = EpochReport(system="s", model="m", dataset="d",
                             key_bits=1024, epoch_seconds=0.0)
        assert report.component_percentages() == {}
