"""Tests for the fault model: plans, injector, retry policy."""

import pytest

from repro.federation.faults import (
    DEFAULT_RETRY_POLICY,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    QuorumError,
    RetryPolicy,
)
from repro.ledger import CostLedger


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", "client-0", 0)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", "client-0", -1)

    def test_dropout_needs_rejoin(self):
        with pytest.raises(ValueError):
            FaultEvent("dropout", "client-0", 2)
        with pytest.raises(ValueError):
            FaultEvent("dropout", "client-0", 2, rejoin_round=2)

    def test_straggler_needs_delay(self):
        with pytest.raises(ValueError):
            FaultEvent("straggler", "client-0", 1)


class TestFaultPlan:
    def test_fluent_builders_are_pure(self):
        base = FaultPlan(seed=3)
        derived = base.crash("client-1", 0).with_message_loss(0.1)
        assert base.events == ()
        assert base.loss_probability == 0.0
        assert len(derived.events) == 1
        assert derived.loss_probability == 0.1
        assert derived.seed == 3

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_probability=1.0)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_probability=-0.1)

    def test_events_for_filters_by_party(self):
        plan = (FaultPlan().crash("a", 0).crash("b", 1)
                .straggler("a", 2, 5.0))
        assert len(plan.events_for("a")) == 2
        assert len(plan.events_for("b")) == 1
        assert plan.events_for("c") == []


class TestFaultInjector:
    def test_crash_is_permanent(self):
        plan = FaultPlan().crash("client-2", round_index=3)
        injector = FaultInjector(plan)
        assert injector.is_alive("client-2", 2)
        assert not injector.is_alive("client-2", 3)
        assert not injector.is_alive("client-2", 100)
        assert injector.is_alive("client-1", 100)

    def test_crash_survives_incarnations(self):
        plan = FaultPlan().crash("client-0", 0)
        assert not FaultInjector(plan, incarnation=4).is_alive("client-0", 5)

    def test_dropout_window_and_rejoin(self):
        plan = FaultPlan().dropout("client-1", 2, rejoin_round=4)
        injector = FaultInjector(plan)
        assert injector.is_alive("client-1", 1)
        assert not injector.is_alive("client-1", 2)
        assert not injector.is_alive("client-1", 3)
        assert injector.is_alive("client-1", 4)

    def test_dropout_does_not_outlive_restart(self):
        plan = FaultPlan().dropout("client-1", 2, rejoin_round=4)
        resumed = FaultInjector(plan, incarnation=1)
        assert resumed.is_alive("client-1", 2)

    def test_straggler_delay_is_round_scoped(self):
        plan = FaultPlan().straggler("client-0", 1, delay_seconds=7.5)
        injector = FaultInjector(plan)
        assert injector.straggler_delay("client-0", 1) == 7.5
        assert injector.straggler_delay("client-0", 2) == 0.0

    def test_events_charge_fault_categories(self):
        ledger = CostLedger()
        plan = FaultPlan().crash("client-0", 0)
        injector = FaultInjector(plan, ledger=ledger)
        injector.is_alive("client-0", 0)
        injector.charge_straggler("client-1", 0, 3.0)
        injector.charge_lost_update("client-2", 0, wasted_bytes=100)
        assert ledger.count("fault.crash") == 1
        assert ledger.seconds("fault.straggler") == 3.0
        assert ledger.payload_bytes("fault.lost_update") == 100
        assert injector.triggered_counts() == {
            "crash": 1, "straggler": 1, "lost_update": 1}

    def test_loss_draws_deterministic_per_seed(self):
        plan = FaultPlan(seed=11).with_message_loss(0.4)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        assert [a.should_drop_message() for _ in range(50)] == \
               [b.should_drop_message() for _ in range(50)]

    def test_incarnation_salts_the_draws(self):
        plan = FaultPlan(seed=11).with_message_loss(0.4)
        base = FaultInjector(plan)
        resumed = FaultInjector(plan, incarnation=1)
        assert [base.should_drop_message() for _ in range(64)] != \
               [resumed.should_drop_message() for _ in range(64)]

    def test_zero_probabilities_never_fire(self):
        injector = FaultInjector(FaultPlan())
        assert not any(injector.should_drop_message() for _ in range(100))
        assert not any(injector.should_corrupt() for _ in range(100))

    def test_corrupt_payload_flips_one_bit(self):
        injector = FaultInjector(FaultPlan(seed=5))
        payload = [12345678901234567890, 42]
        tampered = injector.corrupt_payload(payload)
        assert tampered != payload
        assert payload == [12345678901234567890, 42]  # original untouched
        differing = [i for i in range(2) if tampered[i] != payload[i]]
        assert len(differing) == 1
        xor = tampered[differing[0]] ^ payload[differing[0]]
        assert xor & (xor - 1) == 0  # exactly one bit

    def test_corrupt_passthrough_for_non_ciphertext(self):
        injector = FaultInjector(FaultPlan())
        assert injector.corrupt_payload({"x": 1}) == {"x": 1}

    def test_negative_incarnation_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(FaultPlan(), incarnation=-1)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_retries=10, base_delay=0.1,
                             backoff_factor=2.0, max_delay=0.5)
        delays = [policy.backoff_seconds(i) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_bounded_fraction(self):
        import random
        policy = RetryPolicy(max_retries=3, base_delay=1.0, jitter=0.25)
        rng = random.Random(0)
        for _ in range(100):
            delay = policy.backoff_seconds(0, rng=rng)
            assert 1.0 <= delay < 1.25

    def test_exhausted_by_retries(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.exhausted(2, 0.0)
        assert policy.exhausted(3, 0.0)

    def test_exhausted_by_time_budget(self):
        policy = RetryPolicy(max_retries=100, time_budget=1.0)
        assert not policy.exhausted(1, 0.5)
        assert policy.exhausted(1, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(time_budget=0.0)

    def test_default_policy_has_backoff(self):
        assert DEFAULT_RETRY_POLICY.base_delay > 0
        assert DEFAULT_RETRY_POLICY.jitter > 0


class TestQuorumError:
    def test_message_names_survivors(self):
        error = QuorumError(3, ["client-0", "client-2"], 3, 4)
        assert "round 3" in str(error)
        assert "client-2" in str(error)
        assert error.required == 3
        assert error.survivors == ["client-0", "client-2"]


class TestCoordinatorFaultEvents:
    def test_coordinator_kinds_need_after_record(self):
        with pytest.raises(ValueError, match="after_record"):
            FaultEvent("coordinator_crash", "coordinator", 0)
        with pytest.raises(ValueError, match="after_record"):
            FaultEvent("failover", "coordinator", 0, after_record=-1)

    def test_builders_set_record_boundary(self):
        plan = (FaultPlan(seed=3)
                .coordinator_crash(0, after_record=4)
                .failover(1, after_record=9))
        kinds = [e.kind for e in plan.coordinator_events()]
        assert kinds == ["coordinator_crash", "failover"]
        assert [e.after_record for e in plan.coordinator_events()] == [4, 9]

    def test_coordinator_events_sorted_by_record(self):
        plan = (FaultPlan()
                .failover(1, after_record=9)
                .crash("client-0", round_index=0)
                .coordinator_crash(0, after_record=2))
        events = plan.coordinator_events()
        assert [e.after_record for e in events] == [2, 9]
        assert all(e.party == "coordinator" for e in events)

    def test_round_trip_preserves_after_record(self):
        plan = (FaultPlan(seed=5)
                .crash("client-1", round_index=0)
                .coordinator_crash(0, after_record=3)
                .failover(1, after_record=11))
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        assert [e.after_record for e in rebuilt.coordinator_events()] == \
            [3, 11]

    def test_charges_land_in_fault_categories(self):
        ledger = CostLedger()
        injector = FaultInjector(FaultPlan(seed=1), ledger)
        injector.charge_coordinator_crash(0)
        injector.charge_failover(1)
        assert ledger.count("fault.coordinator_crash") == 1
        assert ledger.count("fault.failover") == 1
        assert ("coordinator_crash", "coordinator", 0) in injector.triggered
        assert ("failover", "coordinator", 1) in injector.triggered


class TestShardFaultEvents:
    def test_shard_crash_needs_after_record(self):
        with pytest.raises(ValueError, match="after_record"):
            FaultEvent("shard_crash", "shard-0", 0)
        # queue_overload has no WAL boundary -- whole-round semantics.
        FaultEvent("queue_overload", "shard-0", 0)

    def test_builders_and_shard_events(self):
        plan = (FaultPlan(seed=3)
                .shard_crash("shard-1", 0, after_record=4)
                .queue_overload("shard-0", 2)
                .failover(1, after_record=9))
        events = plan.shard_events()
        assert [(e.kind, e.party) for e in events] \
            == [("shard_crash", "shard-1"), ("queue_overload", "shard-0")]
        assert plan.shard_events()[0].after_record == 4

    def test_round_trip_preserves_shard_kinds(self):
        plan = (FaultPlan(seed=5)
                .shard_crash("shard-2", 1, after_record=7)
                .queue_overload("shard-0", 0)
                .crash("client-1", round_index=0))
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        kinds = [(e.kind, e.party, e.after_record)
                 for e in rebuilt.shard_events()]
        assert kinds == [("shard_crash", "shard-2", 7),
                         ("queue_overload", "shard-0", None)]

    def test_overload_query_is_pure_and_charge_is_explicit(self):
        ledger = CostLedger()
        plan = FaultPlan(seed=1).queue_overload("shard-0", 2)
        injector = FaultInjector(plan, ledger)
        assert injector.queue_overloaded("shard-0", 2)
        assert not injector.queue_overloaded("shard-0", 1)
        assert not injector.queue_overloaded("shard-1", 2)
        assert ledger.count("fault.queue_overload") == 0  # query free
        injector.charge_queue_overload("shard-0", 2)
        injector.charge_shard_crash("shard-1", 0)
        assert ledger.count("fault.queue_overload") == 1
        assert ledger.count("fault.shard_crash") == 1
        assert ("queue_overload", "shard-0", 2) in injector.triggered
        assert ("shard_crash", "shard-1", 0) in injector.triggered
