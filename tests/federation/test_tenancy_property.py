"""Property tests for the weighted-fair scheduler and quota buckets.

The fairness bound under test is the classic WFQ guarantee
(:func:`repro.federation.tenancy.weighted_fair_order`): in any service
prefix of length ``L``, a tenant holding at least ``floor(L * w / W)``
backlogged entries is served at least ``floor(L * w / W) - 1`` times --
no tenant can be starved beyond its weight, however the other backlogs
are shaped.  The token-bucket property is the quota guarantee: over any
schedule of acquisitions and clock advances, admitted tokens never
exceed ``burst + rate * elapsed``.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.eventloop import VirtualClock
from repro.federation.tenancy import TokenBucket, weighted_fair_order

TENANT_IDS = ["tenant-a", "tenant-b", "tenant-c", "tenant-d"]


@st.composite
def backlog_scenarios(draw):
    """A few tenants with random backlogs and positive weights."""
    count = draw(st.integers(min_value=1, max_value=len(TENANT_IDS)))
    tenants = TENANT_IDS[:count]
    backlogs = {t: draw(st.integers(min_value=0, max_value=24))
                for t in tenants}
    weights = {t: draw(st.floats(min_value=0.25, max_value=8.0,
                                 allow_nan=False, allow_infinity=False))
               for t in tenants}
    return backlogs, weights


@settings(max_examples=200)
@given(backlog_scenarios())
def test_order_is_a_permutation_of_the_backlogs(scenario):
    backlogs, weights = scenario
    order = weighted_fair_order(backlogs, weights)
    assert len(order) == sum(backlogs.values())
    for tenant, backlog in backlogs.items():
        assert order.count(tenant) == backlog


@settings(max_examples=200)
@given(backlog_scenarios())
def test_no_tenant_starved_beyond_its_weight(scenario):
    backlogs, weights = scenario
    order = weighted_fair_order(backlogs, weights)
    total_weight = sum(weights[t] for t in backlogs if backlogs[t] > 0)
    served = {t: 0 for t in backlogs}
    for position, tenant in enumerate(order, start=1):
        served[tenant] += 1
        for other, backlog in backlogs.items():
            entitled = math.floor(
                position * weights[other] / total_weight)
            if backlog >= entitled:
                assert served[other] >= entitled - 1, (
                    f"{other} served {served[other]} times in a prefix "
                    f"of {position} despite entitlement {entitled}")


@settings(max_examples=200)
@given(backlog_scenarios())
def test_order_is_deterministic(scenario):
    backlogs, weights = scenario
    assert (weighted_fair_order(backlogs, weights)
            == weighted_fair_order(dict(reversed(backlogs.items())),
                                   weights))


@st.composite
def bucket_schedules(draw):
    """A bucket spec plus an interleaving of acquires and time steps."""
    rate = draw(st.floats(min_value=0.1, max_value=50.0,
                          allow_nan=False, allow_infinity=False))
    burst = draw(st.integers(min_value=1, max_value=12))
    steps = draw(st.lists(
        st.one_of(
            st.just(("acquire", 0.0)),
            st.tuples(st.just("advance"),
                      st.floats(min_value=0.0, max_value=5.0,
                                allow_nan=False, allow_infinity=False))),
        min_size=1, max_size=60))
    return rate, burst, steps


@settings(max_examples=200)
@given(bucket_schedules())
def test_bucket_never_over_grants(schedule):
    rate, burst, steps = schedule
    clock = VirtualClock()
    bucket = TokenBucket(clock, rate=rate, burst=burst)
    admitted = 0
    elapsed = 0.0
    for action, seconds in steps:
        if action == "advance":
            clock.advance(seconds)
            elapsed += seconds
        elif bucket.try_acquire():
            admitted += 1
        # The quota guarantee, with float slack on the refill product.
        assert admitted <= burst + rate * elapsed + 1e-6
        assert bucket.tokens <= burst


@settings(max_examples=200)
@given(bucket_schedules())
def test_retry_after_is_sufficient(schedule):
    """Waiting out retry_after always makes the next acquire succeed."""
    rate, burst, steps = schedule
    clock = VirtualClock()
    bucket = TokenBucket(clock, rate=rate, burst=burst)
    for action, seconds in steps:
        if action == "advance":
            clock.advance(seconds)
        elif not bucket.try_acquire():
            hint = bucket.retry_after()
            assert hint > 0
            clock.advance(hint + 1e-9)
            assert bucket.try_acquire()
