"""Durable coordinator: state machine, exactly-once, lease failover."""

import numpy as np
import pytest

from repro.federation.coordinator import (
    CoordinatorKilled,
    DurableCoordinator,
    InvalidTransitionError,
    LeaseError,
    LeaseManager,
    RoundStateMachine,
    StaleIncarnationError,
    recover_coordinator,
)
from repro.federation.faults import QuorumError
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.wal import (
    DECRYPT_COMMITTED,
    QUORUM_REACHED,
    ROUND_CLOSE,
    ROUND_OPEN,
    UPLOAD_ACCEPTED,
    WalRecord,
    WriteAheadLog,
)


def make_runtime(num_clients=3, seed=11, **kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("physical_key_bits", 128)
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             seed=seed, **kwargs)


def client_vectors(num_clients, length=5, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 0.5, size=length)
            for _ in range(num_clients)]


def open_record(round_index=0, clients=2, quorum=2, incarnation=0):
    return WalRecord(ROUND_OPEN, round_index, incarnation=incarnation,
                     payload={"tag": "gradients", "num_clients": clients,
                              "quorum": quorum})


def upload_record(client, round_index=0, incarnation=0, frame="aa"):
    return WalRecord(UPLOAD_ACCEPTED, round_index,
                     incarnation=incarnation,
                     payload={"client": client,
                              "dedupe_key": f"r{round_index}:{client}",
                              "frame": frame})


class TestRoundStateMachine:
    def test_legal_lifecycle(self):
        machine = RoundStateMachine()
        assert machine.apply(open_record())
        assert machine.apply(upload_record("client-0"))
        assert machine.apply(upload_record("client-1"))
        assert machine.apply(WalRecord(
            QUORUM_REACHED, 0,
            payload={"survivors": ["client-0", "client-1"],
                     "summands": 2}))
        assert machine.apply(WalRecord(
            DECRYPT_COMMITTED, 0, payload={"result": [1.0, 2.0]}))
        assert machine.apply(WalRecord(ROUND_CLOSE, 0))
        assert machine.round.closed
        assert 0 in machine.closed_rounds

    def test_duplicate_upload_is_exactly_once(self):
        machine = RoundStateMachine()
        machine.apply(open_record())
        assert machine.apply(upload_record("client-0"))
        before = machine.digest()
        assert machine.apply(upload_record("client-0")) is False
        assert machine.digest() == before
        assert machine.round.survivors == ["client-0"]

    def test_upload_without_open_rejected(self):
        with pytest.raises(InvalidTransitionError, match="no round open"):
            RoundStateMachine().apply(upload_record("client-0"))

    def test_open_while_open_rejected(self):
        machine = RoundStateMachine()
        machine.apply(open_record(0))
        with pytest.raises(InvalidTransitionError, match="still open"):
            machine.apply(open_record(1))

    def test_reopen_of_closed_round_rejected(self):
        machine = RoundStateMachine()
        machine.apply(open_record(0))
        machine.apply(WalRecord(ROUND_CLOSE, 0,
                                payload={"aborted": "quorum"}))
        with pytest.raises(InvalidTransitionError, match="already closed"):
            machine.apply(open_record(0))

    def test_commit_before_quorum_rejected(self):
        machine = RoundStateMachine()
        machine.apply(open_record())
        with pytest.raises(InvalidTransitionError,
                           match="before quorum_reached"):
            machine.apply(WalRecord(DECRYPT_COMMITTED, 0,
                                    payload={"result": [0.0]}))

    def test_quorum_survivor_mismatch_rejected(self):
        machine = RoundStateMachine()
        machine.apply(open_record())
        machine.apply(upload_record("client-0"))
        with pytest.raises(InvalidTransitionError, match="survivors"):
            machine.apply(WalRecord(
                QUORUM_REACHED, 0,
                payload={"survivors": ["client-1"], "summands": 1}))

    def test_wrong_round_index_rejected(self):
        machine = RoundStateMachine()
        machine.apply(open_record(0))
        with pytest.raises(InvalidTransitionError, match="names round"):
            machine.apply(upload_record("client-0", round_index=2))

    def test_stale_incarnation_fenced_on_replay(self):
        machine = RoundStateMachine()
        machine.apply(open_record(incarnation=2))
        with pytest.raises(StaleIncarnationError):
            machine.apply(upload_record("client-0", incarnation=1))

    def test_digest_depends_on_applied_prefix(self):
        a, b = RoundStateMachine(), RoundStateMachine()
        a.apply(open_record())
        b.apply(open_record())
        assert a.digest() == b.digest()
        a.apply(upload_record("client-0"))
        assert a.digest() != b.digest()


class TestLeaseManager:
    def clock(self):
        state = {"now": 0.0}
        return state, (lambda: state["now"])

    def test_acquire_heartbeat_fence(self):
        state, clock = self.clock()
        manager = LeaseManager(timeout_seconds=10.0, clock=clock)
        lease = manager.acquire("primary")
        assert lease.incarnation == 0
        manager.heartbeat("primary", 0)
        with pytest.raises(StaleIncarnationError):
            manager.fence(0, holder="intruder")

    def test_live_lease_blocks_other_holder(self):
        state, clock = self.clock()
        manager = LeaseManager(timeout_seconds=10.0, clock=clock)
        manager.acquire("primary")
        with pytest.raises(LeaseError):
            manager.acquire("standby")

    def test_expired_lease_can_be_taken_with_bumped_incarnation(self):
        state, clock = self.clock()
        manager = LeaseManager(timeout_seconds=10.0, clock=clock)
        manager.acquire("primary")
        state["now"] = 11.0
        assert manager.expired()
        lease = manager.acquire("standby")
        assert lease.incarnation == 1
        with pytest.raises(StaleIncarnationError):
            manager.heartbeat("primary", 0)

    def test_heartbeat_charges_channel(self):
        runtime = make_runtime()
        manager = LeaseManager(timeout_seconds=10.0, clock=lambda: 0.0)
        manager.acquire("primary")
        before = runtime.channel.ledger.count("comm")
        manager.heartbeat("primary", 0, channel=runtime.channel)
        assert runtime.channel.ledger.count("comm") == before + 1
        assert runtime.channel.ledger.payload_bytes(
            "comm.coordinator.heartbeat") > 0

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            LeaseManager(timeout_seconds=0.0)


class TestDurableRound:
    def test_round_matches_plain_aggregate(self):
        vectors = client_vectors(3)
        plain = make_runtime().aggregator.aggregate(vectors)
        durable_runtime = make_runtime()
        coordinator = durable_runtime.durable_coordinator()
        durable = coordinator.run_round(vectors)
        assert np.array_equal(durable, plain)
        # One clean 3-client round journals open, 3 uploads, quorum,
        # commit, close.
        assert len(coordinator.wal) == 7

    def test_duplicate_upload_not_journaled(self):
        runtime = make_runtime()
        coordinator = runtime.durable_coordinator()
        vectors = client_vectors(3)
        coordinator._log(
            "round_open", 0,
            tag="gradients", num_clients=3, quorum=3)
        tensor = runtime.aggregator.encrypt_tensor(vectors[0])
        assert coordinator.accept_upload(0, "client-0", tensor)
        length = len(coordinator.wal)
        assert coordinator.accept_upload(0, "client-0", tensor) is False
        assert len(coordinator.wal) == length

    @pytest.mark.parametrize("kill_lsn", range(7))
    def test_kill_at_every_boundary_recovers_bit_identical(self,
                                                           kill_lsn):
        vectors = client_vectors(3)
        reference = make_runtime().durable_coordinator()
        expected = reference.run_round(vectors)

        runtime = make_runtime()
        coordinator = runtime.durable_coordinator()
        coordinator.kill_after_lsn = kill_lsn
        with pytest.raises(CoordinatorKilled) as info:
            coordinator.run_round(vectors)
        assert info.value.lsn == kill_lsn

        successor = recover_coordinator(runtime.aggregator,
                                        coordinator.wal.image())
        assert successor.machine.digest() == \
            reference.digest_trail[kill_lsn]
        assert successor.incarnation == 1
        recovered = successor.run_round(vectors)
        assert np.array_equal(recovered, expected)

    def test_recovery_reuses_logged_ciphertexts_verbatim(self):
        vectors = client_vectors(3)
        runtime = make_runtime()
        coordinator = runtime.durable_coordinator()
        coordinator.kill_after_lsn = 3  # open + 3 uploads journaled
        with pytest.raises(CoordinatorKilled):
            coordinator.run_round(vectors)
        logged = coordinator.machine.round.upload_frames.copy()
        successor = recover_coordinator(runtime.aggregator,
                                        coordinator.wal.image())
        assert successor.machine.round.upload_frames == logged
        successor.run_round(vectors)
        # The pre-crash frames are still byte-identical in the log.
        for record in successor.wal.records:
            if record.kind == "upload_accepted":
                client = record.payload["client"]
                assert record.payload["frame"] == logged[client]

    def test_quorum_failure_closes_round_and_raises(self):
        from repro.federation.faults import FaultPlan

        plan = FaultPlan(seed=0).crash("client-2", 0)
        runtime = make_runtime(fault_plan=plan, min_quorum=3)
        coordinator = runtime.durable_coordinator()
        with pytest.raises(QuorumError):
            coordinator.run_round(client_vectors(3))
        assert coordinator.machine.round.closed
        assert coordinator.machine.round.aborted == "quorum"
        assert runtime.aggregator.round_cursor == 1

    def test_fenced_coordinator_cannot_write(self):
        runtime = make_runtime()
        manager = LeaseManager(timeout_seconds=10.0, clock=lambda: 0.0)
        lease = manager.acquire("coordinator")
        coordinator = runtime.durable_coordinator(lease_manager=manager)
        assert coordinator.incarnation == lease.incarnation
        # A successor bumps the lease; the deposed primary is fenced.
        manager.lease.expires_at = -1.0
        manager.acquire("standby")
        with pytest.raises(StaleIncarnationError):
            coordinator.run_round(client_vectors(3))

    def test_successor_below_log_incarnation_rejected(self):
        log = WriteAheadLog()
        log.append(open_record(incarnation=3))
        with pytest.raises(StaleIncarnationError):
            DurableCoordinator(make_runtime().aggregator, wal=log,
                               incarnation=1)


class TestStandbyFailover:
    def test_hot_standby_takeover_mid_round(self):
        vectors = client_vectors(3)
        expected = make_runtime().durable_coordinator().run_round(vectors)

        runtime = make_runtime()
        clock = {"now": 0.0}
        manager = LeaseManager(timeout_seconds=5.0,
                               clock=lambda: clock["now"])
        manager.acquire("coordinator")
        primary = runtime.durable_coordinator(lease_manager=manager)
        standby = runtime.standby_coordinator(manager)
        primary.kill_after_lsn = 2
        with pytest.raises(CoordinatorKilled):
            primary.run_round(vectors)
        standby.tail(primary.wal.image())

        # Takeover before the lease lapses is illegal...
        with pytest.raises(LeaseError):
            standby.take_over(primary.wal.image())
        # ...after it lapses the standby resumes the round.
        clock["now"] = 6.0
        successor = standby.take_over(primary.wal.image())
        assert successor.incarnation == 1
        recovered = successor.run_round(vectors)
        assert np.array_equal(recovered, expected)
        # The deposed primary can no longer write.
        with pytest.raises(StaleIncarnationError):
            primary.run_round(vectors, round_index=1)

    def test_duplicated_upload_after_failover_applied_once(self):
        vectors = client_vectors(3)
        runtime = make_runtime()
        clock = {"now": 0.0}
        manager = LeaseManager(timeout_seconds=5.0,
                               clock=lambda: clock["now"])
        manager.acquire("coordinator")
        primary = runtime.durable_coordinator(lease_manager=manager)
        standby = runtime.standby_coordinator(manager)
        primary.kill_after_lsn = 2  # open + client-0 + client-1 logged
        with pytest.raises(CoordinatorKilled):
            primary.run_round(vectors)
        clock["now"] = 6.0
        successor = standby.take_over(primary.wal.image())

        # client-0 retransmits its upload to the new primary: dropped.
        tensor = runtime.aggregator.encrypt_tensor(vectors[0])
        assert successor.accept_upload(0, "client-0", tensor) is False
        assert successor.machine.round.survivors.count("client-0") == 1

        result = successor.run_round(vectors)
        summed = sum(vectors)
        step = runtime.aggregator.scheme.quantization_step
        assert np.allclose(result, summed, atol=3 * step)
        assert runtime.aggregator.last_round.summands == 3

    def test_stale_standby_diverges_loudly(self):
        runtime = make_runtime()
        clock = {"now": 100.0}
        manager = LeaseManager(timeout_seconds=5.0,
                               clock=lambda: clock["now"])
        standby = runtime.standby_coordinator(manager)
        log = WriteAheadLog()
        log.append(open_record(clients=3, quorum=3))
        # Tail one image, then take over from a *different* image whose
        # extra records the shadow never saw -- tail() inside take_over
        # catches up, so this succeeds; the digest check is exercised
        # by equality.
        standby.tail(log.image())
        log.append(upload_record("client-0"))
        successor = standby.take_over(log.image())
        assert successor.machine.digest() == standby.machine.digest()
