"""Tests for the cost ledger."""

import pytest

from repro.ledger import (
    COMPONENT_COMM,
    COMPONENT_HE,
    COMPONENT_OTHERS,
    CostLedger,
)


class TestCharging:
    def test_accumulates(self):
        ledger = CostLedger()
        ledger.charge("he.encrypt", 1.0, count=10)
        ledger.charge("he.encrypt", 2.0, count=5)
        assert ledger.seconds("he.encrypt") == 3.0
        assert ledger.count("he.encrypt") == 15

    def test_prefix_matching(self):
        ledger = CostLedger()
        ledger.charge("he.encrypt", 1.0)
        ledger.charge("he.decrypt", 2.0)
        ledger.charge("comm.upload", 4.0)
        assert ledger.seconds("he") == 3.0
        assert ledger.seconds("") == 7.0
        assert ledger.total_seconds == 7.0

    def test_negative_seconds_raise(self):
        with pytest.raises(ValueError):
            CostLedger().charge("x", -1.0)

    def test_payload_bytes(self):
        ledger = CostLedger()
        ledger.charge("comm.up", 0.1, payload_bytes=100)
        ledger.charge("comm.down", 0.1, payload_bytes=50)
        assert ledger.payload_bytes("comm") == 150


class TestComponents:
    def test_three_way_split(self):
        ledger = CostLedger()
        ledger.charge("he.encrypt", 5.0)
        ledger.charge("comm.upload", 3.0)
        ledger.charge("model.compute", 2.0)
        groups = ledger.by_component()
        assert groups[COMPONENT_HE] == 5.0
        assert groups[COMPONENT_COMM] == 3.0
        assert groups[COMPONENT_OTHERS] == 2.0

    def test_percentages_sum_to_100(self):
        ledger = CostLedger()
        ledger.charge("he.x", 1.0)
        ledger.charge("comm.y", 1.0)
        ledger.charge("pipeline.z", 2.0)
        assert sum(ledger.component_percentages().values()) == \
            pytest.approx(100.0)

    def test_empty_percentages_zero(self):
        assert all(v == 0.0
                   for v in CostLedger().component_percentages().values())


class TestLifecycle:
    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.charge("he.x", 1.0, count=1)
        b.charge("he.x", 2.0, count=2)
        b.charge("comm.y", 1.0)
        a.merge(b)
        assert a.seconds("he.x") == 3.0
        assert a.count("he.x") == 3
        assert a.seconds("comm.y") == 1.0

    def test_reset(self):
        ledger = CostLedger()
        ledger.charge("he.x", 1.0)
        ledger.reset()
        assert ledger.total_seconds == 0.0
        assert len(ledger) == 0

    def test_snapshot_immutable_view(self):
        ledger = CostLedger()
        ledger.charge("he.x", 1.0, count=2, payload_bytes=3)
        snap = ledger.snapshot()
        assert snap["he.x"] == (1.0, 2, 3)

    def test_iteration_sorted(self):
        ledger = CostLedger()
        ledger.charge("z.last", 1.0)
        ledger.charge("a.first", 1.0)
        names = [category for category, _entry in ledger]
        assert names == sorted(names)
