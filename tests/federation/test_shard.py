"""Sharded aggregation: planning, leaf/root rounds, accounting."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.federation.faults import FaultPlan, QuorumError
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import (
    ShardedAggregationService,
    cohort_sample,
    default_num_shards,
    plan_shards,
    segment_partials,
)


def make_runtime(num_clients=6, seed=11, **kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("physical_key_bits", 128)
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             seed=seed, **kwargs)


def client_vectors(num_clients, length=5, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 0.5, size=length)
            for _ in range(num_clients)]


def fake_partial(summands):
    return SimpleNamespace(meta=SimpleNamespace(summands=summands))


class TestPlanning:
    def test_default_num_shards_is_sqrt(self):
        assert default_num_shards(1) == 1
        assert default_num_shards(4) == 2
        assert default_num_shards(100) == 10
        assert default_num_shards(101) == 11
        with pytest.raises(ValueError):
            default_num_shards(0)

    def test_cohort_sample_deterministic_per_seed_and_round(self):
        first = cohort_sample(100, 20, seed=7, round_index=3)
        again = cohort_sample(100, 20, seed=7, round_index=3)
        other_round = cohort_sample(100, 20, seed=7, round_index=4)
        assert first == again
        assert first != other_round
        assert len(first) == 20
        assert first == sorted(set(first))
        assert all(0 <= i < 100 for i in first)

    def test_cohort_sample_validation(self):
        with pytest.raises(ValueError):
            cohort_sample(5, 6, seed=0, round_index=0)
        with pytest.raises(ValueError):
            cohort_sample(5, 0, seed=0, round_index=0)

    def test_plan_shards_partitions_the_cohort(self):
        cohort = list(range(10))
        groups = plan_shards(cohort, num_shards=3)
        assert [i for group in groups for i in group] == cohort
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_plan_shards_respects_summand_capacity(self):
        groups = plan_shards(list(range(10)), num_shards=1,
                             max_summands=3)
        assert all(len(g) <= 3 for g in groups)
        assert [i for group in groups for i in group] == list(range(10))

    def test_plan_shards_validation(self):
        with pytest.raises(ValueError):
            plan_shards([])
        with pytest.raises(ValueError):
            plan_shards([1, 2], num_shards=0)
        with pytest.raises(ValueError):
            plan_shards([1, 2], max_summands=0)

    def test_segment_partials_under_capacity(self):
        partials = [fake_partial(3), fake_partial(2), fake_partial(4),
                    fake_partial(1)]
        segments = segment_partials(partials, max_summands=5)
        assert [[p.meta.summands for p in seg] for seg in segments] \
            == [[3, 2], [4, 1]]

    def test_segment_partials_rejects_oversized_partial(self):
        with pytest.raises(OverflowError):
            segment_partials([fake_partial(6)], max_summands=5)


class TestShardedRound:
    def test_sharded_sum_bit_identical_to_flat(self):
        vectors = client_vectors(6)
        flat = make_runtime(num_clients=6)
        expected = flat.aggregator.aggregate(vectors, round_index=0)

        sharded = make_runtime(num_clients=6)
        service = ShardedAggregationService(sharded.aggregator, seed=11)
        result = service.run_round(vectors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))

    def test_report_accounts_for_every_cohort_member(self):
        runtime = make_runtime(num_clients=6)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        service.run_round(client_vectors(6), round_index=0)
        report = service.last_round
        dropped = [name for name, _ in report.dropped]
        assert sorted(report.survivors + dropped) \
            == sorted(report.cohort)
        assert report.summands == 6
        assert not report.partial

    def test_cohort_sampling_uses_a_subset(self):
        runtime = make_runtime(num_clients=8, min_quorum=2)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        service.run_round(client_vectors(8), round_index=0,
                          cohort_size=4)
        report = service.last_round
        assert len(report.cohort) == 4
        assert report.summands == 4

    def test_offline_parties_degrade_into_partial_aggregation(self):
        plan = FaultPlan(seed=0).crash("client-1", round_index=0)
        runtime = make_runtime(num_clients=6, fault_plan=plan,
                               min_quorum=3)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        vectors = client_vectors(6)
        result = service.run_round(vectors, round_index=0)
        report = service.last_round
        assert ("client-1", "offline") in report.dropped
        assert report.summands == 5
        # The partial sum is exactly the survivors' flat sum.
        twin = make_runtime(num_clients=6)
        survivors = [v for i, v in enumerate(vectors) if i != 1]
        expected = twin.aggregator.aggregate(survivors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))

    def test_quorum_failure_below_min_quorum(self):
        plan = FaultPlan(seed=0)
        for i in range(4):
            plan = plan.crash(f"client-{i}", round_index=0)
        runtime = make_runtime(num_clients=6, fault_plan=plan,
                               min_quorum=3)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        with pytest.raises(QuorumError):
            service.run_round(client_vectors(6), round_index=0)
        assert service.last_round.summands == 2

    def test_queue_overload_rejects_one_shard_without_silent_loss(self):
        plan = FaultPlan(seed=0).queue_overload("shard-0", 0)
        runtime = make_runtime(num_clients=6, fault_plan=plan,
                               min_quorum=2)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        vectors = client_vectors(6)
        result = service.run_round(vectors, round_index=0)
        report = service.last_round
        rejected = [name for name, why in report.dropped
                    if why == "rejected"]
        assert rejected == report.shard_groups["shard-0"]
        ledger = runtime.ledger
        assert ledger.count("fault.queue_overload") == 1
        assert ledger.count("comm.admission.reject") == len(rejected)
        # Accepted uploads all made it into the aggregate.
        survivors = [v for i, v in enumerate(vectors)
                     if f"client-{i}" not in rejected]
        twin = make_runtime(num_clients=6)
        expected = twin.aggregator.aggregate(survivors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))
        # Next round the overload is gone and everyone is back.
        service.run_round(vectors, round_index=1)
        assert service.last_round.summands == 6

    def test_backpressure_drains_and_retries_under_tiny_queue(self):
        runtime = make_runtime(num_clients=6)
        service = ShardedAggregationService(runtime.aggregator, seed=11,
                                            num_shards=1,
                                            queue_capacity=2)
        result = service.run_round(client_vectors(6), round_index=0)
        report = service.last_round
        assert report.summands == 6
        assert report.dropped == []
        stats = service.async_channel.stats["shard-0"]
        assert stats.peak_depth <= 2
        assert stats.accepted == stats.delivered == 6
        assert np.asarray(result).shape == (5,)

    def test_round_cursor_and_last_round_mirror_flat_aggregator(self):
        runtime = make_runtime(num_clients=4)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        service.run_round(client_vectors(4))
        assert runtime.aggregator.round_cursor == 1
        last = runtime.aggregator.last_round
        assert last.round_index == 0
        assert last.summands == 4
        assert sorted(last.survivors) \
            == [f"client-{i}" for i in range(4)]

    def test_input_validation(self):
        runtime = make_runtime(num_clients=2)
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        with pytest.raises(ValueError):
            service.run_round([])
        with pytest.raises(ValueError):
            service.run_round([np.zeros(3), np.zeros(4)])
        with pytest.raises(ValueError):
            service.run_round(client_vectors(2), min_quorum=5)
