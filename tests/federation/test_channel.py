"""Tests for the byte-counting communication channel."""

import pytest

from repro.federation.channel import Channel, Message
from repro.gpu.cost_model import HardwareProfile
from repro.ledger import CostLedger


def make_channel(trace=False, **profile_kwargs):
    profile = HardwareProfile(**profile_kwargs)
    return Channel(profile=profile, ledger=CostLedger(), trace=trace)


class TestSend:
    def test_returns_payload(self):
        channel = make_channel()
        payload = [1, 2, 3]
        assert channel.send(Message(sender="a", receiver="b", tag="t",
                                    payload=payload)) is payload

    def test_charges_ledger(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="upload",
                             payload=None, ciphertext_count=10,
                             ciphertext_bytes=256))
        assert channel.ledger.seconds("comm.upload") > 0
        assert channel.ledger.count("comm.upload") == 1

    def test_wire_bytes_object_bloat(self):
        channel = make_channel(serialization_bloat_objects=2.0,
                               serialization_bloat_packed=1.0)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, ciphertext_count=4,
                             ciphertext_bytes=100, packed=False))
        assert channel.stats.wire_bytes == 800

    def test_wire_bytes_packed(self):
        channel = make_channel(serialization_bloat_objects=2.0,
                               serialization_bloat_packed=1.0)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, ciphertext_count=4,
                             ciphertext_bytes=100, packed=True))
        assert channel.stats.wire_bytes == 400

    def test_plaintext_bytes_counted(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, plaintext_bytes=123))
        assert channel.stats.wire_bytes == 123

    def test_latency_charged_even_for_empty(self):
        channel = make_channel(network_latency=0.5)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None))
        assert channel.ledger.seconds("comm") >= 0.5

    def test_stats_accumulate(self):
        channel = make_channel()
        for _ in range(3):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, ciphertext_count=2,
                                 ciphertext_bytes=10))
        assert channel.stats.messages == 3
        assert channel.stats.ciphertexts == 6

    def test_trace_keeps_messages(self):
        channel = make_channel(trace=True)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload="x"))
        assert len(channel.log) == 1
        assert channel.log[0].payload == "x"

    def test_no_trace_by_default(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload="x"))
        assert channel.log == []

    def test_message_ids_monotonic(self):
        m1 = Message(sender="a", receiver="b", tag="t", payload=None)
        m2 = Message(sender="a", receiver="b", tag="t", payload=None)
        assert m2.message_id > m1.message_id


class TestBroadcast:
    def test_charges_per_receiver(self):
        channel = make_channel()
        channel.broadcast(Message(sender="server", receiver="*", tag="down",
                                  payload=None, ciphertext_count=1,
                                  ciphertext_bytes=100),
                          receivers=["c1", "c2", "c3"])
        assert channel.stats.messages == 3
        assert channel.ledger.count("comm.down") == 3


class TestFailureInjection:
    def test_no_drops_by_default(self):
        channel = make_channel()
        for _ in range(20):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=10))
        assert channel.stats.retransmissions == 0

    def test_drops_charge_retransmissions(self):
        from repro.federation.channel import Channel
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.5, max_retries=50, seed=3)
        for _ in range(50):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=100))
        assert channel.stats.retransmissions > 0
        # Wire bytes include the retransmitted copies.
        assert channel.stats.wire_bytes > 50 * 100

    def test_exhausted_retries_raise(self):
        from repro.federation.channel import Channel, ChannelError
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.95, max_retries=1, seed=1)
        with pytest.raises(ChannelError):
            for _ in range(100):
                channel.send(Message(sender="a", receiver="b", tag="t",
                                     payload=None, plaintext_bytes=1))

    def test_delivery_still_returns_payload(self):
        from repro.federation.channel import Channel
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.3, max_retries=100, seed=2)
        payload = {"ok": True}
        for _ in range(20):
            assert channel.send(Message(sender="a", receiver="b", tag="t",
                                        payload=payload)) is payload

    def test_invalid_parameters_raise(self):
        from repro.federation.channel import Channel
        with pytest.raises(ValueError):
            Channel(drop_probability=1.0)
        with pytest.raises(ValueError):
            Channel(max_retries=-1)

    def test_training_survives_lossy_channel(self):
        import numpy as np
        from repro.federation.channel import Channel
        from repro.federation.runtime import (FLBOOSTER_SYSTEM,
                                              FederationRuntime)
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=256, physical_key_bits=256)
        lossy = Channel(profile=runtime.profile, ledger=runtime.ledger,
                        drop_probability=0.2, max_retries=50, seed=4)
        runtime.channel = lossy
        runtime.aggregator.channel = lossy
        result = runtime.aggregator.aggregate([np.full(8, 0.1)] * 4)
        assert np.all(np.isfinite(result))
        assert lossy.stats.retransmissions >= 0
