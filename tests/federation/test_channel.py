"""Tests for the byte-counting communication channel."""

import pytest

from repro.federation.channel import (
    Channel,
    ChannelError,
    Message,
    payload_checksum,
)
from repro.federation.faults import FaultInjector, FaultPlan, RetryPolicy
from repro.gpu.cost_model import HardwareProfile
from repro.ledger import CostLedger


def make_channel(trace=False, **profile_kwargs):
    profile = HardwareProfile(**profile_kwargs)
    return Channel(profile=profile, ledger=CostLedger(), trace=trace)


class TestSend:
    def test_returns_payload(self):
        channel = make_channel()
        payload = [1, 2, 3]
        assert channel.send(Message(sender="a", receiver="b", tag="t",
                                    payload=payload)) is payload

    def test_charges_ledger(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="upload",
                             payload=None, ciphertext_count=10,
                             ciphertext_bytes=256))
        assert channel.ledger.seconds("comm.upload") > 0
        assert channel.ledger.count("comm.upload") == 1

    def test_wire_bytes_object_bloat(self):
        channel = make_channel(serialization_bloat_objects=2.0,
                               serialization_bloat_packed=1.0)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, ciphertext_count=4,
                             ciphertext_bytes=100, packed=False))
        assert channel.stats.wire_bytes == 800

    def test_wire_bytes_packed(self):
        channel = make_channel(serialization_bloat_objects=2.0,
                               serialization_bloat_packed=1.0)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, ciphertext_count=4,
                             ciphertext_bytes=100, packed=True))
        assert channel.stats.wire_bytes == 400

    def test_plaintext_bytes_counted(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, plaintext_bytes=123))
        assert channel.stats.wire_bytes == 123

    def test_latency_charged_even_for_empty(self):
        channel = make_channel(network_latency=0.5)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None))
        assert channel.ledger.seconds("comm") >= 0.5

    def test_stats_accumulate(self):
        channel = make_channel()
        for _ in range(3):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, ciphertext_count=2,
                                 ciphertext_bytes=10))
        assert channel.stats.messages == 3
        assert channel.stats.ciphertexts == 6

    def test_trace_keeps_messages(self):
        channel = make_channel(trace=True)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload="x"))
        assert len(channel.log) == 1
        assert channel.log[0].payload == "x"

    def test_no_trace_by_default(self):
        channel = make_channel()
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload="x"))
        assert channel.log == []

    def test_message_ids_monotonic(self):
        m1 = Message(sender="a", receiver="b", tag="t", payload=None)
        m2 = Message(sender="a", receiver="b", tag="t", payload=None)
        assert m2.message_id > m1.message_id


class TestBroadcast:
    def test_charges_per_receiver(self):
        channel = make_channel()
        channel.broadcast(Message(sender="server", receiver="*", tag="down",
                                  payload=None, ciphertext_count=1,
                                  ciphertext_bytes=100),
                          receivers=["c1", "c2", "c3"])
        assert channel.stats.messages == 3
        assert channel.ledger.count("comm.down") == 3

    def test_failed_receivers_charged_like_send(self):
        """Regression: a failing broadcast must charge every receiver's
        failed attempts exactly as per-receiver ``send`` calls would,
        attempt the *whole* receiver list, and aggregate the failures
        into one error instead of aborting at the first."""
        def doomed_channel():
            return Channel(profile=HardwareProfile(), ledger=CostLedger(),
                           drop_probability=0.99, seed=5,
                           retry_policy=RetryPolicy(max_retries=0))

        receivers = ["c1", "c2", "c3"]
        message = Message(sender="s", receiver="*", tag="down",
                          payload=None, plaintext_bytes=32)
        broadcaster = doomed_channel()
        with pytest.raises(ChannelError) as excinfo:
            broadcaster.broadcast(message, receivers=receivers)
        error = excinfo.value

        # Every receiver was attempted and charged, none skipped.
        assert broadcaster.stats.failed_messages == len(receivers)
        assert broadcaster.ledger.count("fault.giveup") == len(receivers)
        assert error.attempts == len(receivers)
        assert error.wasted_bytes == 32 * len(receivers)

        # Byte-for-byte the same ledger story as individual sends.
        individual = doomed_channel()
        for receiver in receivers:
            with pytest.raises(ChannelError):
                individual.send(Message(
                    sender="s", receiver=receiver, tag="down",
                    payload=None, plaintext_bytes=32))
        for category in ("comm.down", "fault.giveup"):
            assert broadcaster.ledger.count(category) \
                == individual.ledger.count(category)
            assert broadcaster.ledger.payload_bytes(category) \
                == individual.ledger.payload_bytes(category)


class TestFailureInjection:
    def test_no_drops_by_default(self):
        channel = make_channel()
        for _ in range(20):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=10))
        assert channel.stats.retransmissions == 0

    def test_drops_charge_retransmissions(self):
        from repro.federation.channel import Channel
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.5, max_retries=50, seed=3)
        for _ in range(50):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=100))
        assert channel.stats.retransmissions > 0
        # Wire bytes include the retransmitted copies.
        assert channel.stats.wire_bytes > 50 * 100

    def test_exhausted_retries_raise(self):
        from repro.federation.channel import Channel, ChannelError
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.95, max_retries=1, seed=1)
        with pytest.raises(ChannelError):
            for _ in range(100):
                channel.send(Message(sender="a", receiver="b", tag="t",
                                     payload=None, plaintext_bytes=1))

    def test_delivery_still_returns_payload(self):
        from repro.federation.channel import Channel
        from repro.gpu.cost_model import HardwareProfile
        from repro.ledger import CostLedger
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.3, max_retries=100, seed=2)
        payload = {"ok": True}
        for _ in range(20):
            assert channel.send(Message(sender="a", receiver="b", tag="t",
                                        payload=payload)) is payload

    def test_invalid_parameters_raise(self):
        from repro.federation.channel import Channel
        with pytest.raises(ValueError):
            Channel(drop_probability=1.0)
        with pytest.raises(ValueError):
            Channel(max_retries=-1)

    def test_training_survives_lossy_channel(self):
        import numpy as np
        from repro.federation.channel import Channel
        from repro.federation.runtime import (FLBOOSTER_SYSTEM,
                                              FederationRuntime)
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=256, physical_key_bits=256)
        lossy = Channel(profile=runtime.profile, ledger=runtime.ledger,
                        drop_probability=0.2, max_retries=50, seed=4)
        runtime.channel = lossy
        runtime.aggregator.channel = lossy
        result = runtime.aggregator.aggregate([np.full(8, 0.1)] * 4)
        assert np.all(np.isfinite(result))
        assert lossy.stats.retransmissions >= 0


class TestChecksum:
    def test_deterministic_across_payload_shapes(self):
        import numpy as np
        payloads = [None, 0, 12345678901234567890, -3, 0.5, "hello",
                    b"bytes", [1, 2, 3], (1, [2, "x"]), {"a": 1, "b": [2]},
                    np.arange(6).reshape(2, 3)]
        for payload in payloads:
            assert payload_checksum(payload) == payload_checksum(payload)

    def test_distinguishes_close_payloads(self):
        assert payload_checksum([1, 2, 3]) != payload_checksum([1, 2, 4])
        assert payload_checksum([1 << 200]) != \
            payload_checksum([(1 << 200) ^ 1])

    def test_message_computes_checksum_on_construction(self):
        message = Message(sender="a", receiver="b", tag="t",
                          payload=[10, 20])
        assert message.checksum == payload_checksum([10, 20])


class TestFailureAccounting:
    """Dropped attempts must be charged before ChannelError is raised."""

    def make_lossy(self, drop, retries, seed, policy=None):
        return Channel(profile=HardwareProfile(), ledger=CostLedger(),
                       drop_probability=drop, max_retries=retries,
                       seed=seed, retry_policy=policy)

    def test_channel_error_carries_diagnostics(self):
        channel = self.make_lossy(0.95, 1, 1)
        with pytest.raises(ChannelError) as excinfo:
            for _ in range(200):
                channel.send(Message(sender="a", receiver="b", tag="grad",
                                     payload=None, plaintext_bytes=50))
        error = excinfo.value
        assert error.tag == "grad"
        assert error.attempts == 2  # first attempt + one retry
        assert error.wasted_bytes == 2 * 50

    def test_exhausted_transfer_charges_ledger(self):
        channel = self.make_lossy(0.95, 1, 1)
        sends = 0
        with pytest.raises(ChannelError):
            for _ in range(200):
                channel.send(Message(sender="a", receiver="b", tag="grad",
                                     payload=None, plaintext_bytes=50))
                sends += 1
        # Every attempt (including the abandoned transfer's) is charged.
        assert channel.ledger.payload_bytes("comm.grad") == \
            channel.stats.wire_bytes
        assert channel.ledger.count("fault.giveup") == 1
        assert channel.ledger.payload_bytes("fault.giveup") == 100
        assert channel.stats.failed_messages == 1
        # Sends that succeeded are still counted normally.
        assert channel.stats.messages == sends

    def test_backoff_charged_as_modelled_time(self):
        policy = RetryPolicy(max_retries=10, base_delay=0.5,
                             backoff_factor=2.0, max_delay=4.0)
        channel = self.make_lossy(0.5, 10, 3, policy=policy)
        for _ in range(30):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=10))
        assert channel.stats.retransmissions > 0
        assert channel.stats.backoff_seconds > 0
        assert channel.ledger.seconds("fault.retransmit") == \
            pytest.approx(channel.stats.backoff_seconds)
        assert channel.ledger.count("fault.retransmit") == \
            channel.stats.retransmissions

    def test_time_budget_abandons_transfer(self):
        policy = RetryPolicy(max_retries=1000, base_delay=1.0,
                             backoff_factor=1.0, max_delay=1.0,
                             time_budget=2.5)
        channel = self.make_lossy(0.9, 1000, 7, policy=policy)
        with pytest.raises(ChannelError) as excinfo:
            for _ in range(500):
                channel.send(Message(sender="a", receiver="b", tag="t",
                                     payload=None, plaintext_bytes=1))
        assert excinfo.value.attempts < 1000


class TestRetransmissionAccountingProperty:
    """Seeded-loss property: stats and ledger stay mutually consistent."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("drop", [0.0, 0.2, 0.5])
    def test_send_invariants(self, seed, drop):
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=drop, max_retries=200,
                          seed=seed)
        per_message = 64
        for _ in range(40):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None,
                                 plaintext_bytes=per_message))
        stats = channel.stats
        assert stats.messages == 40
        # Total attempts = deliveries + retransmissions.
        assert stats.wire_bytes == per_message * (stats.messages
                                                  + stats.retransmissions)
        assert channel.ledger.payload_bytes("comm.t") == stats.wire_bytes
        assert channel.ledger.count("comm.t") == 40
        if drop == 0.0:
            assert stats.retransmissions == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_broadcast_invariants(self, seed):
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.3, max_retries=200,
                          seed=seed)
        receivers = [f"c{i}" for i in range(6)]
        per_message = 32
        for _ in range(10):
            channel.broadcast(Message(sender="s", receiver="*", tag="down",
                                      payload=None,
                                      plaintext_bytes=per_message),
                              receivers=receivers)
        stats = channel.stats
        assert stats.messages == 60
        assert stats.wire_bytes == per_message * (stats.messages
                                                  + stats.retransmissions)
        assert channel.ledger.payload_bytes("comm.down") == stats.wire_bytes
        assert channel.ledger.count("comm.down") == 60

    @pytest.mark.parametrize("seed", range(3))
    def test_invariants_hold_across_failures(self, seed):
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          drop_probability=0.6, max_retries=2, seed=seed)
        per_message = 16
        attempted = 0
        for _ in range(60):
            attempted += 1
            try:
                channel.send(Message(sender="a", receiver="b", tag="t",
                                     payload=None,
                                     plaintext_bytes=per_message))
            except ChannelError:
                pass
        stats = channel.stats
        assert stats.messages + stats.failed_messages == attempted
        assert stats.wire_bytes == per_message * (
            stats.messages + stats.retransmissions + stats.failed_messages)
        assert channel.ledger.payload_bytes("comm.t") == stats.wire_bytes


class TestCorruptionDetection:
    def test_corrupted_payload_detected_and_retransmitted(self):
        plan = FaultPlan(seed=9).with_corruption(0.5)
        injector = FaultInjector(plan)
        ledger = CostLedger()
        channel = Channel(profile=HardwareProfile(), ledger=ledger,
                          max_retries=100, injector=injector)
        payload = [123456789, 987654321]
        for _ in range(30):
            delivered = channel.send(Message(
                sender="a", receiver="b", tag="t", payload=payload,
                ciphertext_count=2, ciphertext_bytes=64))
            # Detected corruption is retried; delivery is always intact.
            assert delivered == payload
        assert channel.stats.corrupted > 0
        assert ledger.count("fault.corrupt") == channel.stats.corrupted
        assert channel.stats.retransmissions >= channel.stats.corrupted

    def test_injector_loss_feeds_channel(self):
        plan = FaultPlan(seed=4).with_message_loss(0.4)
        channel = Channel(profile=HardwareProfile(), ledger=CostLedger(),
                          max_retries=100,
                          injector=FaultInjector(plan))
        for _ in range(40):
            channel.send(Message(sender="a", receiver="b", tag="t",
                                 payload=None, plaintext_bytes=8))
        assert channel.stats.retransmissions > 0


class TestJitterSeeding:
    """Backoff jitter draws from its own REPRO_TEST_SEED-derived stream."""

    def payload_message(self):
        return Message(sender="a", receiver="b", tag="t", payload=None,
                       ciphertext_count=1, ciphertext_bytes=64)

    def lossy_channel(self, jitter):
        return Channel(ledger=CostLedger(), drop_probability=0.4, seed=3,
                       retry_policy=RetryPolicy(max_retries=8,
                                                base_delay=0.5,
                                                jitter=jitter))

    def test_jitter_never_perturbs_loss_draws(self):
        plain = self.lossy_channel(jitter=0.0)
        jittered = self.lossy_channel(jitter=0.9)
        for _ in range(20):
            plain.send(self.payload_message())
            jittered.send(self.payload_message())
        assert plain.stats.retransmissions == jittered.stats.retransmissions
        assert jittered.stats.backoff_seconds > plain.stats.backoff_seconds

    def test_master_seed_reroutes_jitter_only(self, monkeypatch):
        from repro.federation.faults import jitter_seed

        def backoffs(master):
            monkeypatch.setenv("REPRO_TEST_SEED", master)
            channel = self.lossy_channel(jitter=0.9)
            for _ in range(20):
                channel.send(self.payload_message())
            return channel.stats

        base = backoffs("0")
        shifted = backoffs("12345")
        assert base.retransmissions == shifted.retransmissions
        assert base.backoff_seconds != shifted.backoff_seconds
        monkeypatch.setenv("REPRO_TEST_SEED", "12345")
        assert jitter_seed(3) == 12345 * 1_000_003 + 7919 + 3

    def test_jitter_stream_distinct_per_channel_seed(self):
        from repro.federation.faults import jitter_seed

        assert jitter_seed(0) != jitter_seed(1)
