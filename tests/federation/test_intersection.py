"""Tests for RSA blind-signature private set intersection."""

import pytest

from repro.federation.intersection import (
    IntersectionResult,
    RsaIntersection,
    _fingerprint,
    _hash_to_group,
)


@pytest.fixture()
def psi():
    return RsaIntersection(key_bits=256, seed=5)


class TestCorrectness:
    def test_finds_exact_intersection(self, psi):
        guest = [f"user-{i}" for i in range(30)]
        host = [f"user-{i}" for i in range(20, 50)]
        result = psi.run(guest, host)
        assert sorted(result.common_ids) == \
            sorted(f"user-{i}" for i in range(20, 30))

    def test_disjoint_sets(self, psi):
        result = psi.run(["a", "b"], ["c", "d"])
        assert result.common_ids == []
        assert result.intersection_size == 0

    def test_identical_sets(self, psi):
        ids = ["x", "y", "z"]
        result = psi.run(ids, list(reversed(ids)))
        assert sorted(result.common_ids) == sorted(ids)

    def test_preserves_guest_order(self, psi):
        guest = ["c", "a", "b"]
        result = psi.run(guest, ["a", "b", "c"])
        assert result.common_ids == ["c", "a", "b"]

    def test_sizes_reported(self, psi):
        result = psi.run(["a", "b", "c"], ["b"])
        assert result.guest_set_size == 3
        assert result.host_set_size == 1
        assert isinstance(result, IntersectionResult)

    def test_deterministic_given_seed(self):
        guest, host = ["u1", "u2", "u3"], ["u2", "u3", "u4"]
        a = RsaIntersection(key_bits=256, seed=9).run(guest, host)
        b = RsaIntersection(key_bits=256, seed=9).run(guest, host)
        assert a.common_ids == b.common_ids


class TestPrivacyMechanics:
    def test_blinded_values_differ_from_hashes(self, psi):
        # What the host sees is not the bare ID hash: blinding works.
        channel = psi.channel
        channel.trace = True
        psi.run(["alice"], ["alice"])
        blinded_msg = next(message for message in channel.log
                           if message.tag == "psi.blinded")
        key_msg = next(message for message in channel.log
                       if message.tag == "psi.public_key")
        _e, n = key_msg.payload
        assert blinded_msg.payload[0] != _hash_to_group("alice", n)

    def test_host_fingerprints_hide_ids(self):
        # Fingerprints are 32-byte hashes, not invertible values.
        assert len(_fingerprint(123456789)) == 32

    def test_blinding_is_randomized_across_runs(self):
        a = RsaIntersection(key_bits=256, seed=1)
        b = RsaIntersection(key_bits=256, seed=2)
        a.channel.trace = True
        b.channel.trace = True
        a.run(["alice"], [])
        b.run(["alice"], [])
        blinded_a = next(m for m in a.channel.log
                         if m.tag == "psi.blinded").payload
        blinded_b = next(m for m in b.channel.log
                         if m.tag == "psi.blinded").payload
        # Different keys and blinds: transcripts are unlinkable.
        assert blinded_a != blinded_b


class TestAccounting:
    def test_charges_comm_and_signing(self, psi):
        psi.run([f"g{i}" for i in range(10)], [f"h{i}" for i in range(8)])
        ledger = psi.channel.ledger
        assert ledger.count("comm.psi.blinded") == 1
        assert ledger.count("comm.psi.signed") == 1
        assert ledger.count("comm.psi.host_fingerprints") == 1
        assert ledger.seconds("he.psi_sign") > 0

    def test_modelled_seconds_positive(self, psi):
        result = psi.run(["a"], ["a"])
        assert result.modelled_seconds > 0

    def test_cost_scales_with_set_size(self):
        small = RsaIntersection(key_bits=256, seed=3).run(
            [f"u{i}" for i in range(5)], [f"u{i}" for i in range(5)])
        large = RsaIntersection(key_bits=256, seed=3).run(
            [f"u{i}" for i in range(50)], [f"u{i}" for i in range(50)])
        assert large.modelled_seconds > 2 * small.modelled_seconds
