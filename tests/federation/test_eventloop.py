"""Event loop: clock, admission control, shedding, circuit breaking."""

import pytest

from repro.federation.channel import Channel, ChannelError, Message
from repro.federation.eventloop import (
    ADMISSION_BYTES,
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    AdmissionRejected,
    AsyncChannel,
    CircuitBreaker,
    VirtualClock,
)
from repro.ledger import (
    CAT_COMM_ADMISSION_ACCEPT,
    CAT_COMM_ADMISSION_REJECT,
    CAT_FAULT_CIRCUIT_OPEN,
    CAT_FAULT_SHED,
)


def upload(sender="client-0", receiver="shard-0", payload_bytes=64):
    return Message(sender=sender, receiver=receiver, tag="upload.test",
                   payload=f"payload-{sender}",
                   plaintext_bytes=payload_bytes)


class FailingChannel(Channel):
    """A channel whose every transfer exhausts its retry budget."""

    def send(self, message):
        raise ChannelError("transfer failed", tag=message.tag,
                           attempts=1, wasted_bytes=10)


class TestVirtualClock:
    def test_monotonic_advance(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(2.5) == 2.5
        assert clock.advance(0.0) == 2.5

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_charges_once(self):
        clock = VirtualClock()
        opens = []
        breaker = CircuitBreaker(clock, failure_threshold=3,
                                 cooldown_seconds=60.0,
                                 charge_open=lambda: opens.append(1))
        assert breaker.state == BREAKER_CLOSED
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow()
        assert len(opens) == 1
        # Further failures while open do not re-charge.
        breaker.record_failure()
        assert len(opens) == 1

    def test_half_open_after_cooldown_then_closes_on_success(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=1,
                                 cooldown_seconds=10.0)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = VirtualClock()
        breaker = CircuitBreaker(clock, failure_threshold=2,
                                 cooldown_seconds=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == BREAKER_HALF_OPEN
        assert breaker.record_failure() is True
        assert breaker.state == BREAKER_OPEN
        assert breaker.open_count == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(VirtualClock(), failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(VirtualClock(), cooldown_seconds=0.0)


class TestAdmission:
    def test_accept_charges_control_plane(self):
        loop = AsyncChannel(Channel(), VirtualClock())
        loop.submit("shard-0", upload())
        ledger = loop.ledger
        assert ledger.count(CAT_COMM_ADMISSION_ACCEPT) == 1
        assert ledger.payload_bytes(CAT_COMM_ADMISSION_ACCEPT) \
            == ADMISSION_BYTES
        assert loop.stats["shard-0"].accepted == 1
        assert loop.queue_depth("shard-0") == 1

    def test_queue_full_rejects_with_typed_retryable_error(self):
        loop = AsyncChannel(Channel(), VirtualClock(), queue_capacity=2)
        loop.submit("shard-0", upload("client-0"))
        loop.submit("shard-0", upload("client-1"))
        with pytest.raises(AdmissionRejected) as excinfo:
            loop.submit("shard-0", upload("client-2"))
        rejection = excinfo.value
        assert rejection.shard == "shard-0"
        assert rejection.reason == "queue_full"
        assert rejection.retryable
        assert rejection.retry_after_seconds > 0
        assert loop.ledger.count(CAT_COMM_ADMISSION_REJECT) == 1
        assert loop.stats["shard-0"].rejected_full == 1

    def test_overload_predicate_rejects(self):
        loop = AsyncChannel(Channel(), VirtualClock(),
                            overloaded=lambda shard: shard == "shard-1")
        loop.submit("shard-0", upload(receiver="shard-0"))
        with pytest.raises(AdmissionRejected) as excinfo:
            loop.submit("shard-1", upload(receiver="shard-1"))
        assert excinfo.value.reason == "overload"
        assert loop.stats["shard-1"].rejected_overload == 1

    def test_open_breaker_fences_the_shard(self):
        clock = VirtualClock()
        loop = AsyncChannel(Channel(), clock)
        breaker = loop.register_shard("shard-0", failure_threshold=1,
                                      cooldown_seconds=30.0)
        breaker.record_failure()
        with pytest.raises(AdmissionRejected) as excinfo:
            loop.submit("shard-0", upload())
        assert excinfo.value.reason == "circuit_open"
        assert excinfo.value.retry_after_seconds == pytest.approx(30.0)
        assert loop.ledger.count(CAT_FAULT_CIRCUIT_OPEN) == 1

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            AdmissionRejected("shard-0", "nonsense")


class TestDrain:
    def test_fifo_delivery_advances_clock(self):
        clock = VirtualClock()
        loop = AsyncChannel(Channel(), clock,
                            drain_seconds_per_message=0.25)
        loop.submit("shard-0", upload("client-0"))
        loop.submit("shard-0", upload("client-1"))
        outcome = loop.drain("shard-0")
        assert [s for s, _ in outcome.delivered] \
            == ["client-0", "client-1"]
        assert clock.now == pytest.approx(0.5)
        assert loop.queue_depth("shard-0") == 0

    def test_past_deadline_entries_are_shed_and_charged(self):
        clock = VirtualClock()
        loop = AsyncChannel(Channel(), clock)
        loop.submit("shard-0", upload("client-0"))
        loop.submit("shard-0", upload("client-1", payload_bytes=128),
                    arrival_delay=100.0)
        outcome = loop.drain("shard-0", deadline=clock.now + 1.0)
        assert [s for s, _ in outcome.delivered] == ["client-0"]
        assert outcome.shed == [("client-1", "deadline")]
        ledger = loop.ledger
        assert ledger.count(CAT_FAULT_SHED) == 1
        assert ledger.payload_bytes(CAT_FAULT_SHED) == 128
        assert loop.stats["shard-0"].shed == 1

    def test_transfer_failures_returned_not_raised(self):
        loop = AsyncChannel(FailingChannel(), VirtualClock())
        loop.submit("shard-0", upload("client-0"))
        loop.submit("shard-0", upload("client-1"))
        outcome = loop.drain("shard-0")
        assert outcome.delivered == []
        assert [s for s, _ in outcome.failed] == ["client-0", "client-1"]
        assert loop.stats["shard-0"].failed == 2

    def test_queue_memory_bounded_and_nothing_lost(self):
        """The accounting invariant: every submission is delivered,
        shed, or rejected -- and the queue never grows past capacity."""
        clock = VirtualClock()
        capacity = 4
        loop = AsyncChannel(Channel(), clock, queue_capacity=capacity)
        submitted = 24
        rejected = 0
        for i in range(submitted):
            delay = 50.0 if i % 3 == 0 else 0.0
            try:
                loop.submit("shard-0", upload(f"client-{i}"),
                            arrival_delay=delay)
            except AdmissionRejected:
                rejected += 1
                loop.drain("shard-0", deadline=clock.now + 1.0)
        loop.drain("shard-0", deadline=clock.now + 1.0)
        stats = loop.stats["shard-0"]
        assert stats.peak_depth <= capacity
        assert stats.accepted == stats.delivered + stats.shed
        assert stats.accepted + rejected == submitted
        assert loop.ledger.count(CAT_COMM_ADMISSION_REJECT) == rejected
        assert loop.ledger.count(CAT_FAULT_SHED) == stats.shed
