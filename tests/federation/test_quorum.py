"""Quorum-based partial aggregation: k-of-n rounds decode exactly."""

import numpy as np
import pytest

from repro.federation.faults import FaultInjector, FaultPlan, QuorumError
from repro.tensor.cipher import CipherTensor
from repro.federation.parties import (
    AggregatorParty,
    Mailbox,
    SecureAveragingJob,
)
from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)


def make_runtime(num_clients=8, **kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("physical_key_bits", 256)
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             **kwargs)


def client_vectors(num_clients, length=6, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 0.5, size=length) for _ in range(num_clients)]


class TestPartialSumDecode:
    """Satellite: k-of-n aggregation matches the true k-client sum."""

    @pytest.mark.parametrize("bc_capacity", ["nominal", "physical"])
    def test_partial_sum_within_quantization_error(self, bc_capacity):
        plan = (FaultPlan(seed=0).crash("client-5", 0)
                .crash("client-6", 0).crash("client-7", 0))
        runtime = make_runtime(num_clients=8, bc_capacity=bc_capacity,
                               fault_plan=plan, min_quorum=5)
        vectors = client_vectors(8)
        decoded = runtime.aggregator.aggregate(vectors)
        surviving = sum(vectors[:5])
        step = runtime.aggregator.scheme.quantization_step
        # 5 quantized summands: at most 5 half-steps of rounding error.
        # A wrong Eq. 6 offset (K instead of k) would be off by ~3 * alpha.
        assert np.allclose(decoded, surviving, atol=5 * step)
        report = runtime.aggregator.last_round
        assert report.partial
        assert report.summands == 5
        assert report.survivors == [f"client-{i}" for i in range(5)]
        assert sorted(name for name, _ in report.dropped) == \
            ["client-5", "client-6", "client-7"]
        assert all(reason == "offline" for _, reason in report.dropped)

    def test_full_round_is_not_partial(self):
        runtime = make_runtime(num_clients=4)
        vectors = client_vectors(4)
        decoded = runtime.aggregator.aggregate(vectors)
        step = runtime.aggregator.scheme.quantization_step
        assert np.allclose(decoded, sum(vectors), atol=4 * step)
        assert not runtime.aggregator.last_round.partial
        assert runtime.aggregator.last_round.summands == 4

    def test_average_divides_by_survivors(self):
        plan = FaultPlan().crash("client-3", 0)
        runtime = make_runtime(num_clients=4, fault_plan=plan, min_quorum=3)
        vectors = client_vectors(4)
        averaged = runtime.aggregator.average(vectors)
        step = runtime.aggregator.scheme.quantization_step
        assert np.allclose(averaged, sum(vectors[:3]) / 3, atol=3 * step)

    def test_quorum_error_when_too_few_survive(self):
        plan = (FaultPlan().crash("client-2", 0).crash("client-3", 0))
        runtime = make_runtime(num_clients=4, fault_plan=plan, min_quorum=3)
        with pytest.raises(QuorumError) as excinfo:
            runtime.aggregator.aggregate(client_vectors(4))
        error = excinfo.value
        assert error.required == 3
        assert error.survivors == ["client-0", "client-1"]

    def test_impossible_quorum_rejected(self):
        runtime = make_runtime(num_clients=4)
        with pytest.raises(ValueError):
            runtime.aggregator.aggregate(client_vectors(4), min_quorum=5)
        with pytest.raises(ValueError):
            runtime.aggregator.aggregate(client_vectors(4), min_quorum=0)

    def test_deadline_excludes_slow_straggler(self):
        plan = FaultPlan().straggler("client-1", 0, delay_seconds=60.0)
        runtime = make_runtime(num_clients=4, fault_plan=plan, min_quorum=3,
                               round_deadline_seconds=10.0)
        vectors = client_vectors(4)
        decoded = runtime.aggregator.aggregate(vectors)
        step = runtime.aggregator.scheme.quantization_step
        expected = vectors[0] + vectors[2] + vectors[3]
        assert np.allclose(decoded, expected, atol=3 * step)
        assert ("client-1", "deadline") in runtime.aggregator.last_round.dropped
        assert runtime.ledger.count("fault.deadline") == 1

    def test_tolerated_straggler_charges_delay(self):
        plan = FaultPlan().straggler("client-1", 0, delay_seconds=5.0)
        runtime = make_runtime(num_clients=4, fault_plan=plan,
                               round_deadline_seconds=10.0)
        runtime.aggregator.aggregate(client_vectors(4))
        assert runtime.ledger.seconds("fault.straggler") == 5.0
        assert runtime.aggregator.last_round.summands == 4

    def test_round_cursor_advances_and_lines_up_events(self):
        plan = FaultPlan().crash("client-3", 1)
        runtime = make_runtime(num_clients=4, fault_plan=plan, min_quorum=3)
        vectors = client_vectors(4)
        runtime.aggregator.aggregate(vectors)  # round 0: all alive
        assert runtime.aggregator.last_round.summands == 4
        runtime.aggregator.aggregate(vectors)  # round 1: crash fires
        assert runtime.aggregator.last_round.summands == 3
        assert runtime.aggregator.round_cursor == 2


class TestCiphertextValidation:
    def test_out_of_range_ciphertext_rejected(self):
        runtime = make_runtime(num_clients=2)
        bound = runtime.server_engine.public_key.n_squared
        with pytest.raises(ValueError):
            runtime.aggregator.validate_ciphertexts([0, bound])
        with pytest.raises(ValueError):
            runtime.aggregator.validate_ciphertexts([-1])
        with pytest.raises(ValueError):
            runtime.aggregator.validate_ciphertexts(["junk"])
        runtime.aggregator.validate_ciphertexts([0, bound - 1])  # in range


class TestMailboxSenders:
    def test_deliver_remembers_sender(self):
        mailbox = Mailbox()
        mailbox.deliver("update", [1], sender="client-0")
        mailbox.deliver("update", [2], sender="client-2")
        assert mailbox.senders("update") == ["client-0", "client-2"]
        sender, payload = mailbox.collect_with_sender("update")
        assert (sender, payload) == ("client-0", [1])
        assert mailbox.senders("update") == ["client-2"]


class TestAggregatorPartyDiagnostics:
    """Satellite: a short round names exactly the missing clients."""

    def test_missing_clients_named(self):
        runtime = make_runtime(num_clients=3)
        server = AggregatorParty("arbiter", runtime)
        ciphertexts = runtime.aggregator.encrypt_tensor(
            np.zeros(4), charged=False)
        server.mailbox.deliver("update", ciphertexts, sender="client-1")
        expected = ["client-0", "client-1", "client-2"]
        with pytest.raises(LookupError) as excinfo:
            server.aggregate_updates(3, expected_clients=expected)
        message = str(excinfo.value)
        assert "client-0" in message
        assert "client-2" in message
        assert "client-1" not in message.split("missing:")[1]

    def test_quorum_accepts_partial_mailbox(self):
        runtime = make_runtime(num_clients=3)
        server = AggregatorParty("arbiter", runtime)
        for name in ("client-0", "client-2"):
            server.mailbox.deliver(
                "update",
                runtime.aggregator.encrypt_tensor(np.ones(4),
                                                  charged=False),
                sender=name)
        total = server.aggregate_updates(3, min_quorum=2)
        assert isinstance(total, CipherTensor)
        # Partial sums carry the actual summand count in their metadata.
        assert total.meta.summands == 2


class TestSecureAveragingJobQuorum:
    def test_job_matches_library_partial_average(self):
        plan = FaultPlan().crash("client-4", 0).crash("client-5", 0)
        vectors = client_vectors(6, seed=3)

        job_runtime = make_runtime(num_clients=6, fault_plan=plan,
                                   min_quorum=4)
        job = SecureAveragingJob(job_runtime, vectors)
        job_result = job.run(min_quorum=4)

        lib_runtime = make_runtime(num_clients=6, fault_plan=plan,
                                   min_quorum=4)
        lib_result = lib_runtime.aggregator.average(vectors)

        assert np.allclose(job_result, lib_result, atol=1e-12)
        step = job_runtime.aggregator.scheme.quantization_step
        assert np.allclose(job_result, sum(vectors[:4]) / 4, atol=4 * step)

    def test_job_raises_quorum_error(self):
        plan = (FaultPlan().crash("client-0", 0).crash("client-1", 0)
                .crash("client-2", 0))
        runtime = make_runtime(num_clients=4, fault_plan=plan)
        job = SecureAveragingJob(runtime, client_vectors(4))
        with pytest.raises(QuorumError):
            job.run(min_quorum=2)

    def test_fate_runtime_also_supports_quorum(self):
        plan = FaultPlan().crash("client-3", 0)
        runtime = FederationRuntime(FATE_SYSTEM, num_clients=4,
                                    key_bits=256, physical_key_bits=256,
                                    fault_plan=plan, min_quorum=3)
        vectors = client_vectors(4, seed=7)
        decoded = runtime.aggregator.aggregate(vectors)
        step = runtime.aggregator.scheme.quantization_step
        assert np.allclose(decoded, sum(vectors[:3]), atol=3 * step)


class TestRuntimeQuorumValidation:
    def test_invalid_runtime_quorum_rejected(self):
        with pytest.raises(ValueError):
            make_runtime(num_clients=4, min_quorum=5)
        with pytest.raises(ValueError):
            make_runtime(num_clients=4, min_quorum=0)

    def test_injector_only_with_plan(self):
        runtime = make_runtime(num_clients=2)
        assert runtime.injector is None
        with_plan = make_runtime(num_clients=2, fault_plan=FaultPlan())
        assert isinstance(with_plan.injector, FaultInjector)
