"""Tests for the concrete wire formats."""

import pytest

from repro.federation.serialization import (
    deserialize_objects,
    deserialize_packed,
    measured_bloat,
    serialize_objects,
    serialize_packed,
)
from repro.gpu.cost_model import DEFAULT_PROFILE


class TestPackedFormat:
    def test_roundtrip(self):
        values = [0, 1, (1 << 2047) - 1, 12345678901234567890]
        blob = serialize_packed(values, ciphertext_bytes=256)
        assert deserialize_packed(blob) == values

    def test_size_is_header_plus_fixed_width(self):
        blob = serialize_packed([1, 2, 3], ciphertext_bytes=256)
        assert len(blob) == 12 + 3 * 256

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            deserialize_packed(b"XXXX" + b"\x00" * 20)

    def test_truncated_raises(self):
        blob = serialize_packed([1, 2], ciphertext_bytes=64)
        with pytest.raises(ValueError):
            deserialize_packed(blob[:-1])

    def test_empty_batch(self):
        assert deserialize_packed(serialize_packed([], 256)) == []


class TestObjectFormat:
    def test_roundtrip_values_and_exponents(self):
        values = [7, 99, (1 << 500) + 3]
        blob = serialize_objects(values, ciphertext_bytes=128, exponent=-12)
        decoded = deserialize_objects(blob, ciphertext_bytes=128)
        assert [value for value, _ in decoded] == values
        assert all(exponent == -12 for _, exponent in decoded)

    def test_exponent_travels_in_plaintext(self):
        # The leak the paper's encoding-quantization closes: the exponent
        # is readable straight off the wire without any key.
        blob = serialize_objects([42], ciphertext_bytes=64, exponent=-7)
        _, exponent = deserialize_objects(blob, ciphertext_bytes=64)[0]
        assert exponent == -7

    def test_bad_fingerprint_length_raises(self):
        with pytest.raises(ValueError):
            serialize_objects([1], 64, key_fingerprint=b"short")

    def test_corrupt_stream_raises(self):
        blob = serialize_objects([1, 2], ciphertext_bytes=64)
        with pytest.raises(ValueError):
            deserialize_objects(blob[:-3], ciphertext_bytes=64)


class TestBloatMatchesCostModel:
    def test_object_bloat_near_model_constant(self):
        values = list(range(100))
        bloat = measured_bloat(values, ciphertext_bytes=256, packed=False)
        model = DEFAULT_PROFILE.serialization_bloat_objects
        assert abs(bloat - model) / model < 0.15

    def test_packed_bloat_near_model_constant(self):
        values = list(range(100))
        bloat = measured_bloat(values, ciphertext_bytes=256, packed=True)
        model = DEFAULT_PROFILE.serialization_bloat_packed
        assert abs(bloat - model) / model < 0.05

    def test_packed_much_tighter_than_objects(self):
        values = list(range(50))
        assert measured_bloat(values, 256, packed=True) * 2 < \
            measured_bloat(values, 256, packed=False)

    def test_empty(self):
        assert measured_bloat([], 256, packed=True) == 0.0
