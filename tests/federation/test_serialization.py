"""Tests for the concrete wire formats."""

import struct

import numpy as np
import pytest

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.federation.serialization import (
    TENSOR_HEADER,
    TENSOR_MAGIC,
    deserialize_objects,
    deserialize_packed,
    deserialize_tensor,
    measured_bloat,
    serialize_objects,
    serialize_packed,
    serialize_tensor,
)
from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.ledger import CostLedger
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker
from repro.tensor.meta import KeyMismatchError
from repro.tensor.plain import PlainTensor


class TestPackedFormat:
    def test_roundtrip(self):
        values = [0, 1, (1 << 2047) - 1, 12345678901234567890]
        blob = serialize_packed(values, ciphertext_bytes=256)
        assert deserialize_packed(blob) == values

    def test_size_is_header_plus_fixed_width(self):
        blob = serialize_packed([1, 2, 3], ciphertext_bytes=256)
        assert len(blob) == 12 + 3 * 256

    def test_bad_magic_raises(self):
        with pytest.raises(ValueError):
            deserialize_packed(b"XXXX" + b"\x00" * 20)

    def test_truncated_raises(self):
        blob = serialize_packed([1, 2], ciphertext_bytes=64)
        with pytest.raises(ValueError, match="truncated"):
            deserialize_packed(blob[:-1])

    def test_truncated_header_raises(self):
        with pytest.raises(ValueError, match="truncated"):
            deserialize_packed(b"FLBP\x00")

    def test_oversized_raises(self):
        blob = serialize_packed([1, 2], ciphertext_bytes=64)
        with pytest.raises(ValueError, match="oversized"):
            deserialize_packed(blob + b"\x00")

    def test_zero_width_with_count_raises(self):
        blob = b"FLBP" + struct.pack(">II", 3, 0)
        with pytest.raises(ValueError, match="zero"):
            deserialize_packed(blob)

    def test_empty_batch(self):
        assert deserialize_packed(serialize_packed([], 256)) == []


class TestObjectFormat:
    def test_roundtrip_values_and_exponents(self):
        values = [7, 99, (1 << 500) + 3]
        blob = serialize_objects(values, ciphertext_bytes=128, exponent=-12)
        decoded = deserialize_objects(blob, ciphertext_bytes=128)
        assert [value for value, _ in decoded] == values
        assert all(exponent == -12 for _, exponent in decoded)

    def test_exponent_travels_in_plaintext(self):
        # The leak the paper's encoding-quantization closes: the exponent
        # is readable straight off the wire without any key.
        blob = serialize_objects([42], ciphertext_bytes=64, exponent=-7)
        _, exponent = deserialize_objects(blob, ciphertext_bytes=64)[0]
        assert exponent == -7

    def test_bad_fingerprint_length_raises(self):
        with pytest.raises(ValueError):
            serialize_objects([1], 64, key_fingerprint=b"short")

    def test_corrupt_stream_raises(self):
        blob = serialize_objects([1, 2], ciphertext_bytes=64)
        with pytest.raises(ValueError):
            deserialize_objects(blob[:-3], ciphertext_bytes=64)


@pytest.fixture()
def tensor_fixture(paillier_128):
    engine = CpuPaillierEngine(paillier_128, ledger=CostLedger(),
                               rng=LimbRandom(seed=11))
    scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=8)
    packer = BatchPacker(scheme, plaintext_bits=127, capacity=4)
    values = np.linspace(-0.8, 0.8, 10).reshape(2, 5)
    tensor = engine.encrypt_tensor(PlainTensor.encode(values, packer))
    return engine, tensor, values


class TestTensorFormat:
    def test_roundtrip_preserves_everything(self, tensor_fixture):
        engine, tensor, values = tensor_fixture
        rebuilt = deserialize_tensor(serialize_tensor(tensor))
        assert list(rebuilt.words) == list(tensor.words)
        assert rebuilt.meta == tensor.meta
        decoded = engine.decrypt_tensor(rebuilt).decode()
        step = tensor.meta.scheme.quantization_step
        assert decoded.shape == (2, 5)
        assert np.allclose(decoded, values, atol=step)

    def test_decode_needs_no_caller_metadata(self, tensor_fixture):
        engine, tensor, _ = tensor_fixture
        # The frame alone (no count / summands / scheme arguments)
        # reconstructs a decryptable tensor.
        rebuilt = deserialize_tensor(serialize_tensor(tensor))
        assert rebuilt.meta.count == 10
        assert rebuilt.meta.summands == 1
        assert rebuilt.meta.scheme_id == tensor.meta.scheme_id

    def test_fingerprint_validated(self, tensor_fixture):
        _, tensor, _ = tensor_fixture
        blob = serialize_tensor(tensor)
        deserialize_tensor(
            blob, expected_fingerprint=tensor.meta.key_fingerprint)
        with pytest.raises(KeyMismatchError):
            deserialize_tensor(blob, expected_fingerprint=b"\xff" * 16)

    def test_summands_travel_in_header(self, tensor_fixture):
        engine, tensor, values = tensor_fixture
        total = (tensor + tensor).materialize()
        rebuilt = deserialize_tensor(serialize_tensor(total))
        assert rebuilt.meta.summands == 2

    def test_magic_and_version_checked(self, tensor_fixture):
        _, tensor, _ = tensor_fixture
        blob = serialize_tensor(tensor)
        with pytest.raises(ValueError, match="not a tensor frame"):
            deserialize_tensor(b"XXXX" + blob[4:])
        with pytest.raises(ValueError, match="version"):
            deserialize_tensor(blob[:4] + b"\x07" + blob[5:])
        # Magic/version cross-lies: v2 magic claiming v3 and vice versa.
        v3 = serialize_tensor(tensor, version=3)
        with pytest.raises(ValueError, match="version"):
            deserialize_tensor(b"FLT2" + v3[4:])
        v2 = serialize_tensor(tensor, version=2)
        with pytest.raises(ValueError, match="version"):
            deserialize_tensor(b"FLT3" + v2[4:])

    def test_truncated_and_oversized_raise(self, tensor_fixture):
        _, tensor, _ = tensor_fixture
        blob = serialize_tensor(tensor)
        with pytest.raises(ValueError, match="truncated"):
            deserialize_tensor(blob[:TENSOR_HEADER.size - 1])
        with pytest.raises(ValueError, match="truncated"):
            deserialize_tensor(blob[:-1])
        with pytest.raises(ValueError, match="oversized"):
            deserialize_tensor(blob + b"\x00")

    def test_word_too_wide_raises(self, tensor_fixture):
        _, tensor, _ = tensor_fixture
        with pytest.raises(ValueError, match="does not fit"):
            serialize_tensor(tensor, ciphertext_bytes=4)

    def test_magic_is_distinct_from_packed(self):
        assert TENSOR_MAGIC != b"FLBP"


class TestBloatMatchesCostModel:
    def test_object_bloat_near_model_constant(self):
        values = list(range(100))
        bloat = measured_bloat(values, ciphertext_bytes=256, packed=False)
        model = DEFAULT_PROFILE.serialization_bloat_objects
        assert abs(bloat - model) / model < 0.15

    def test_packed_bloat_near_model_constant(self):
        values = list(range(100))
        bloat = measured_bloat(values, ciphertext_bytes=256, packed=True)
        model = DEFAULT_PROFILE.serialization_bloat_packed
        assert abs(bloat - model) / model < 0.05

    def test_packed_much_tighter_than_objects(self):
        values = list(range(50))
        assert measured_bloat(values, 256, packed=True) * 2 < \
            measured_bloat(values, 256, packed=False)

    def test_empty(self):
        assert measured_bloat([], 256, packed=True) == 0.0
