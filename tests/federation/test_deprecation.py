"""The raw-list shims: correct delegation, one DeprecationWarning each."""

import warnings

import numpy as np
import pytest

from repro.federation import aggregator as aggregator_module
from repro.federation.runtime import FATE_SYSTEM, FederationRuntime


@pytest.fixture()
def runtime():
    return FederationRuntime(FATE_SYSTEM, num_clients=2, key_bits=256,
                             physical_key_bits=256)


@pytest.fixture(autouse=True)
def rearmed_warnings():
    """Each test sees the warn-once state fresh."""
    aggregator_module.reset_deprecation_warnings()
    yield
    aggregator_module.reset_deprecation_warnings()


def deprecations(caught):
    return [w for w in caught
            if issubclass(w.category, DeprecationWarning)]


class TestWarnExactlyOnce:
    def test_encrypt_vector(self, runtime):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runtime.aggregator.encrypt_vector(np.zeros(4))
            runtime.aggregator.encrypt_vector(np.zeros(4))
        warned = deprecations(caught)
        assert len(warned) == 1
        assert "encrypt_tensor" in str(warned[0].message)

    def test_decrypt_vector(self, runtime):
        ciphertexts = runtime.aggregator.encrypt_tensor(np.zeros(4)).words
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            runtime.aggregator.decrypt_vector(list(ciphertexts), count=4)
            runtime.aggregator.decrypt_vector(list(ciphertexts), count=4)
        warned = deprecations(caught)
        assert len(warned) == 1
        assert "decrypt_tensor" in str(warned[0].message)

    def test_send_encrypted(self, runtime):
        ciphertexts = list(
            runtime.aggregator.encrypt_tensor(np.zeros(2)).words)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                runtime.aggregator.send_encrypted(
                    ciphertexts, sender="a", receiver="b", tag="x",
                    already_packed=False)
        warned = deprecations(caught)
        assert len(warned) == 1
        assert "send_tensor" in str(warned[0].message)

    def test_each_shim_warns_independently(self, runtime):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ciphertexts = runtime.aggregator.encrypt_vector(np.zeros(2))
            runtime.aggregator.decrypt_vector(ciphertexts, count=2)
        assert len(deprecations(caught)) == 2


class TestShimsDelegate:
    def test_vector_roundtrip_matches_tensor_path(self, runtime):
        values = np.linspace(-0.7, 0.7, 9)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            ciphertexts = runtime.aggregator.encrypt_vector(values)
            via_shim = runtime.aggregator.decrypt_vector(
                ciphertexts, count=9)
        via_tensor = runtime.aggregator.decrypt_tensor(
            runtime.aggregator.encrypt_tensor(values))
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(via_shim, values, atol=step)
        assert np.array_equal(via_shim, via_tensor)

    def test_decrypt_vector_honours_summands(self, runtime):
        values = np.full(4, 0.25)
        tensor = runtime.aggregator.encrypt_tensor(values)
        total = (tensor + tensor).materialize(
            engine=runtime.server_engine)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            decoded = runtime.aggregator.decrypt_vector(
                list(total.words), count=4, summands=2)
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(decoded, 0.5, atol=2 * step)
