"""The raw-list shims are gone; the tensor API is the only entry point.

The ``encrypt_vector`` / ``decrypt_vector`` / ``send_encrypted`` shims
were deprecated for one release (warn-once ``DeprecationWarning``) and
have now been removed.  These tests pin the removal -- the attributes
must not quietly come back -- and show the tensor-API equivalents of
what the shims used to do.
"""

import numpy as np
import pytest

from repro.federation import aggregator as aggregator_module
from repro.federation.runtime import FATE_SYSTEM, FederationRuntime


@pytest.fixture()
def runtime():
    return FederationRuntime(FATE_SYSTEM, num_clients=2, key_bits=256,
                             physical_key_bits=256)


class TestShimsAreGone:
    @pytest.mark.parametrize("name", ["encrypt_vector", "decrypt_vector",
                                      "send_encrypted"])
    def test_shim_removed_from_aggregator(self, runtime, name):
        assert not hasattr(runtime.aggregator, name)

    def test_warn_once_machinery_removed(self):
        assert not hasattr(aggregator_module,
                           "reset_deprecation_warnings")
        assert not hasattr(aggregator_module, "_warn_deprecated")


class TestTensorApiReplacements:
    def test_encrypt_decrypt_roundtrip(self, runtime):
        values = np.linspace(-0.7, 0.7, 9)
        decoded = runtime.aggregator.decrypt_tensor(
            runtime.aggregator.encrypt_tensor(values))
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(decoded, values, atol=step)

    def test_decrypt_tensor_honours_summands(self, runtime):
        values = np.full(4, 0.25)
        tensor = runtime.aggregator.encrypt_tensor(values)
        total = (tensor + tensor).materialize(
            engine=runtime.server_engine)
        decoded = runtime.aggregator.decrypt_tensor(total)
        step = runtime.plan.scheme.quantization_step
        assert np.allclose(decoded, 0.5, atol=2 * step)

    def test_send_tensor_ships_the_tensor(self, runtime):
        tensor = runtime.aggregator.encrypt_tensor(np.zeros(2))
        received = runtime.aggregator.send_tensor(
            tensor, sender="a", receiver="b", tag="x")
        assert received.words == tensor.materialize().words
