"""Property tests: capacity algebra and sharded/flat sum identity."""

from types import SimpleNamespace

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import (
    ShardedAggregationService,
    plan_shards,
    segment_partials,
)


@st.composite
def cohorts_and_capacities(draw):
    cohort = draw(st.lists(st.integers(0, 10_000), min_size=1,
                           max_size=64, unique=True))
    capacity = draw(st.integers(min_value=1, max_value=12))
    num_shards = draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=16)))
    return cohort, capacity, num_shards


@settings(max_examples=100)
@given(cohorts_and_capacities())
def test_plan_shards_never_exceeds_capacity(case):
    cohort, capacity, num_shards = case
    groups = plan_shards(cohort, num_shards=num_shards,
                         max_summands=capacity)
    assert all(1 <= len(group) <= capacity for group in groups)
    assert [i for group in groups for i in group] == cohort


@settings(max_examples=100)
@given(st.lists(st.integers(min_value=1, max_value=8), min_size=1,
                max_size=40),
       st.integers(min_value=8, max_value=20))
def test_segment_partials_never_exceeds_capacity(summand_counts, capacity):
    partials = [SimpleNamespace(meta=SimpleNamespace(summands=count))
                for count in summand_counts]
    segments = segment_partials(partials, max_summands=capacity)
    assert all(
        sum(p.meta.summands for p in segment) <= capacity
        for segment in segments)
    flattened = [p.meta.summands for seg in segments for p in seg]
    assert flattened == summand_counts  # order-preserving partition


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=3))
def test_sharded_sum_bit_identical_to_flat(num_clients, length,
                                           num_shards, seed_offset):
    seed = 11 + seed_offset
    rng = np.random.default_rng(seed)
    vectors = [rng.uniform(-0.5, 0.5, size=length)
               for _ in range(num_clients)]

    flat = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             key_bits=256, physical_key_bits=128,
                             seed=seed)
    expected = flat.aggregator.aggregate(vectors, round_index=0)

    sharded = FederationRuntime(FLBOOSTER_SYSTEM,
                                num_clients=num_clients,
                                key_bits=256, physical_key_bits=128,
                                seed=seed)
    service = ShardedAggregationService(
        sharded.aggregator, seed=seed,
        num_shards=min(num_shards, num_clients))
    result = service.run_round(vectors, round_index=0)
    assert np.array_equal(np.asarray(result), np.asarray(expected))
