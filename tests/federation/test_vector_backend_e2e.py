"""End-to-end federation on the vectorized limb-plane HE backend.

The acceptance bar for ``he_backend="vector"``: full federation rounds
-- flat and sharded, under both session codecs -- produce results
**byte-identical** to the scalar CPU backend.  The backend changes how
modular arithmetic executes, never a single bit of what it computes.

Reuses the harness conventions of ``test_codec_e2e.py`` (same system,
key sizes, seeds and update rule) so the two acceptance suites stay
comparable row for row.
"""

import numpy as np
import pytest

from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import ShardedAggregationService
from repro.mpint import limb_plane

pytestmark = pytest.mark.skipif(
    not limb_plane.HAVE_NUMPY, reason="vector backend requires numpy")


def make_runtime(num_clients=6, seed=11, **kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("physical_key_bits", 128)
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             seed=seed, **kwargs)


def client_vectors(num_clients, length=7, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 0.5, size=length)
            for _ in range(num_clients)]


class TestBackendSelection:
    def test_vector_backend_builds_vector_engines(self):
        from repro.crypto.vector_engine import VectorPaillierEngine
        runtime = make_runtime(he_backend="vector")
        assert isinstance(runtime.client_engine, VectorPaillierEngine)
        assert isinstance(runtime.server_engine, VectorPaillierEngine)

    def test_auto_still_follows_system_config(self):
        from repro.crypto.gpu_engine import GpuPaillierEngine
        runtime = make_runtime()  # FLBooster config: gpu_he=True
        assert isinstance(runtime.client_engine, GpuPaillierEngine)


class TestFlatRounds:
    def test_single_round_bit_identical_to_cpu(self):
        vectors = client_vectors(6)
        expected = make_runtime(he_backend="cpu").aggregator.aggregate(
            vectors, round_index=0)
        result = make_runtime(he_backend="vector").aggregator.aggregate(
            vectors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))

    def test_interleave_codec_round_matches_cpu(self):
        vectors = client_vectors(6)
        expected = make_runtime(
            he_backend="cpu",
            packing_codec="interleave").aggregator.aggregate(
                vectors, round_index=0)
        result = make_runtime(
            he_backend="vector",
            packing_codec="interleave").aggregator.aggregate(
                vectors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))


class TestTrainingEquality:
    @pytest.mark.parametrize("codec", ["dense", "interleave"])
    def test_final_weights_byte_identical_across_backends(self, codec):
        """Three sharded training rounds on each backend: the final
        weight vectors must agree to the last byte."""
        finals = {}
        for backend in ("cpu", "vector"):
            runtime = make_runtime(he_backend=backend,
                                   packing_codec=codec)
            service = ShardedAggregationService(runtime.aggregator,
                                                seed=11)
            weights = np.zeros(7)
            for round_index in range(3):
                grads = client_vectors(6, seed=100 + round_index)
                total = service.run_round(grads,
                                          round_index=round_index)
                weights = weights - 0.1 * (np.asarray(total) / 6)
            finals[backend] = weights
        assert finals["cpu"].tobytes() == finals["vector"].tobytes()

    def test_vector_backend_charges_the_same_ledger_costs(self):
        """The modelled cost is a property of the op stream, not of the
        executing backend."""
        vectors = client_vectors(4)
        totals = {}
        for backend in ("cpu", "vector"):
            runtime = make_runtime(num_clients=4, he_backend=backend)
            runtime.aggregator.aggregate(vectors, round_index=0)
            totals[backend] = runtime.ledger.total_seconds
        assert totals["cpu"] == pytest.approx(totals["vector"])
