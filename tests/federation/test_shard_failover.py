"""Hierarchical failover: per-node crash sweeps, races, replayability."""

import numpy as np
import pytest

from repro.federation.faults import FaultPlan
from repro.federation.metrics import FaultReport
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import ShardedAggregationService
from repro.testing.simulator import (
    ShardedFederationSimulator,
    ShardedSimulationResult,
    SimulationFailure,
    SimulationSpec,
    replay,
    shard_crash_consistency_sweep,
)


def make_spec(**overrides):
    base = dict(num_clients=5, rounds=2, vector_size=4, key_bits=256,
                physical_key_bits=128, seed=11)
    base.update(overrides)
    return SimulationSpec(**base)


class TestShardCrashSweep:
    def test_leaf_sweep_recovers_bit_identical_everywhere(self):
        report = shard_crash_consistency_sweep(make_spec(),
                                               node="shard-0")
        assert report.mode == "shard:shard-0"
        assert report.boundaries_tested == report.wal_records > 0

    def test_root_sweep_recovers_bit_identical_everywhere(self):
        report = shard_crash_consistency_sweep(make_spec(), node="root")
        assert report.mode == "shard:root"
        assert report.boundaries_tested == report.wal_records > 0

    def test_root_failover_racing_leaf_failover(self):
        report = shard_crash_consistency_sweep(make_spec(),
                                               node="shard-1",
                                               race_root_failover=True)
        assert report.mode == "shard:shard-1+root-race"
        assert report.boundaries_tested == report.wal_records > 0

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError):
            shard_crash_consistency_sweep(make_spec(), node="shard-99")

    def test_out_of_range_record_rejected(self):
        with pytest.raises(ValueError):
            shard_crash_consistency_sweep(make_spec(), node="shard-0",
                                          record_indices=[10_000])


class TestShardedSimulator:
    def test_scheduled_kill_fires_and_is_reported(self):
        plan = FaultPlan(seed=11).shard_crash("shard-0", 0,
                                              after_record=1)
        spec = make_spec(rounds=1, sharded=True,
                         fault_plan=plan)
        result = ShardedFederationSimulator(spec).run()
        assert isinstance(result, ShardedSimulationResult)
        assert [f.node for f in result.failovers] == ["shard-0"]
        assert result.failovers[0].lsn == 1
        assert result.failovers[0].incarnation == 1

    def test_kill_that_never_fires_is_an_error(self):
        plan = FaultPlan(seed=11).shard_crash("shard-0", 0,
                                              after_record=10_000)
        spec = make_spec(rounds=1, sharded=True, fault_plan=plan)
        with pytest.raises(SimulationFailure):
            ShardedFederationSimulator(spec).run()

    def test_replay_dispatches_sharded_traces(self):
        plan = FaultPlan(seed=11).shard_crash("shard-0", 0,
                                              after_record=2)
        spec = make_spec(rounds=1, sharded=True, fault_plan=plan)
        direct = ShardedFederationSimulator(spec).run()
        replayed = replay(spec.to_json())
        assert isinstance(replayed, ShardedSimulationResult)
        assert replayed.checksum() == direct.checksum()
        assert replayed.final_weights == direct.final_weights

    def test_replay_dispatches_on_shard_plan_without_flag(self):
        # A trace whose spec forgot sharded=True but whose plan holds
        # shard faults still routes to the sharded simulator.
        plan = FaultPlan(seed=11).queue_overload("shard-0", 0)
        spec = make_spec(rounds=1, min_quorum=2, fault_plan=plan)
        replayed = replay(spec.to_json())
        assert isinstance(replayed, ShardedSimulationResult)

    def test_killed_run_matches_uninterrupted_weights(self):
        reference = ShardedFederationSimulator(
            make_spec(sharded=True)).run()
        plan = FaultPlan(seed=11).shard_crash("shard-1", 1,
                                              after_record=7)
        killed = ShardedFederationSimulator(
            make_spec(sharded=True, fault_plan=plan)).run()
        assert killed.final_weights == reference.final_weights
        assert killed.checksum() == reference.checksum()


class TestFailoverAccounting:
    def test_shard_crash_lands_in_fault_report(self):
        runtime = FederationRuntime(
            FLBOOSTER_SYSTEM, num_clients=4, key_bits=256,
            physical_key_bits=128, seed=11,
            fault_plan=FaultPlan(seed=11).shard_crash(
                "shard-0", 0, after_record=1))
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        rng = np.random.default_rng(3)
        vectors = [rng.uniform(-0.5, 0.5, size=4) for _ in range(4)]
        service.run_round(vectors, round_index=0)
        assert service.last_round.leaf_failovers == 1
        report = FaultReport.from_ledger(runtime.ledger)
        assert report.shard_crashes == 1
        assert report.total_events >= 1
        assert any("shard crashes" in line and "1" in line
                   for line in report.summary_lines())

    def test_leaf_failover_bumps_incarnation_and_fences_the_dead(self):
        runtime = FederationRuntime(
            FLBOOSTER_SYSTEM, num_clients=4, key_bits=256,
            physical_key_bits=128, seed=11,
            fault_plan=FaultPlan(seed=11).shard_crash(
                "shard-0", 0, after_record=0))
        service = ShardedAggregationService(runtime.aggregator, seed=11)
        rng = np.random.default_rng(3)
        vectors = [rng.uniform(-0.5, 0.5, size=4) for _ in range(4)]
        service.run_round(vectors, round_index=0)
        record = service.failover_log[0]
        assert record.node == "shard-0"
        assert record.incarnation == 1
        assert service.leaves["shard-0"].incarnation == 1
