"""Tests for the channel privacy auditor."""

import numpy as np
import pytest

from repro.datasets import synthetic_like
from repro.federation.channel import Channel, Message
from repro.federation.privacy_audit import (
    assert_vertical_privacy,
    audit_channel,
)
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.ledger import CostLedger
from repro.models import (
    HeteroLogisticRegression,
    HeteroNeuralNetwork,
    HeteroSecureBoost,
)


def traced_runtime():
    runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                key_bits=256, physical_key_bits=256)
    runtime.channel.trace = True
    return runtime


class TestAuditMechanics:
    def test_untraced_channel_rejected(self):
        with pytest.raises(ValueError):
            audit_channel(Channel(ledger=CostLedger()))

    def test_classifies_by_receiver(self):
        channel = Channel(ledger=CostLedger(), trace=True)
        channel.send(Message(sender="a", receiver="b", tag="enc",
                             payload=None, ciphertext_count=3,
                             ciphertext_bytes=64))
        channel.send(Message(sender="a", receiver="c", tag="plain",
                             payload=None, plaintext_bytes=10))
        report = audit_channel(channel)
        assert report.total_messages == 2
        assert report.exposures["b"].ciphertexts_received == 3
        assert report.exposures["c"].plaintext_tags == {"plain"}
        assert report.received_only_ciphertexts("b", set())
        assert not report.received_only_ciphertexts("c", set())

    def test_summary_lines(self):
        channel = Channel(ledger=CostLedger(), trace=True)
        channel.send(Message(sender="a", receiver="b", tag="t",
                             payload=None, ciphertext_count=1,
                             ciphertext_bytes=8))
        lines = audit_channel(channel).summary_lines()
        assert any("b:" in line for line in lines)


class TestProtocolPrivacy:
    def test_hetero_lr_hosts_see_only_ciphertexts(self):
        dataset = synthetic_like(instances=96, features=16, seed=7)
        model = HeteroLogisticRegression(dataset, batch_size=48, seed=0)
        runtime = traced_runtime()
        model.run_epoch(runtime)
        report = audit_channel(runtime.channel)
        assert_vertical_privacy(report, host_names=["host-0"])
        # The wire never carries raw labels anywhere.
        for receiver in report.exposures:
            assert report.received_only_ciphertexts(
                receiver, allowed_plaintext_tags={"sbt.split_info"})

    def test_hetero_nn_hosts_see_only_ciphertexts(self):
        dataset = synthetic_like(instances=96, features=16, seed=7)
        model = HeteroNeuralNetwork(dataset, batch_size=48, seed=0)
        runtime = traced_runtime()
        model.run_epoch(runtime)
        assert_vertical_privacy(audit_channel(runtime.channel),
                                host_names=["host"])

    def test_sbt_host_plaintext_limited_to_split_info(self):
        dataset = synthetic_like(instances=96, features=16, seed=7)
        model = HeteroSecureBoost(dataset, max_depth=2, seed=0)
        runtime = traced_runtime()
        model.run_epoch(runtime)
        report = audit_channel(runtime.channel)
        assert_vertical_privacy(report, host_names=["host"])
        assert report.plaintext_received_by("host") <= {"sbt.split_info"}

    def test_assert_raises_on_injected_leak(self):
        channel = Channel(ledger=CostLedger(), trace=True)
        channel.send(Message(sender="guest", receiver="host",
                             tag="labels.raw", payload=np.ones(4),
                             plaintext_bytes=32))
        report = audit_channel(channel)
        with pytest.raises(AssertionError):
            assert_vertical_privacy(report, host_names=["host"])
