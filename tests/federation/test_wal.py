"""WAL codec and replay: framing, torn tails, mid-log corruption."""

import zlib

import pytest

from repro.federation.serialization import FrameError
from repro.federation.wal import (
    MAX_PAYLOAD_BYTES,
    RECORD_HEADER,
    RECORD_KINDS,
    ROUND_CLOSE,
    ROUND_OPEN,
    UPLOAD_ACCEPTED,
    WAL_MAGIC,
    WalError,
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    replay_wal,
)


def sample_records():
    return [
        WalRecord(ROUND_OPEN, 0, payload={"tag": "gradients",
                                          "num_clients": 3, "quorum": 3}),
        WalRecord(UPLOAD_ACCEPTED, 0, payload={
            "client": "client-0", "dedupe_key": "r0:client-0",
            "frame": "deadbeef"}),
        WalRecord(ROUND_CLOSE, 0, incarnation=1),
    ]


class TestRecordCodec:
    @pytest.mark.parametrize("kind", RECORD_KINDS)
    def test_roundtrip_every_kind(self, kind):
        record = WalRecord(kind, 3, incarnation=2,
                           payload={"x": [1, 2], "y": "z"})
        assert decode_record(encode_record(record)) == record

    def test_unknown_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown WAL record kind"):
            WalRecord("round_reopen", 0)

    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError, match="round_index"):
            WalRecord(ROUND_OPEN, -1)
        with pytest.raises(ValueError, match="incarnation"):
            WalRecord(ROUND_OPEN, 0, incarnation=-1)

    def test_crc_mismatch_is_typed(self):
        blob = bytearray(encode_record(WalRecord(ROUND_OPEN, 0)))
        blob[-1] ^= 0x01
        with pytest.raises(WalError, match="CRC"):
            decode_record(bytes(blob))

    def test_truncated_header_is_typed(self):
        with pytest.raises(WalError, match="truncated record header"):
            decode_record(b"\x00\x00")

    def test_truncated_payload_is_typed(self):
        blob = encode_record(WalRecord(ROUND_OPEN, 0))
        with pytest.raises(WalError, match="truncated record"):
            decode_record(blob[:-2])

    def test_trailing_bytes_rejected(self):
        blob = encode_record(WalRecord(ROUND_OPEN, 0))
        with pytest.raises(WalError, match="oversized"):
            decode_record(blob + b"\x00")

    def test_implausible_length_rejected_before_allocation(self):
        header = RECORD_HEADER.pack(MAX_PAYLOAD_BYTES + 1, 0)
        with pytest.raises(WalError, match="implausible"):
            decode_record(header)

    def test_non_canonical_json_rejected(self):
        # Same data, non-sorted key order: CRC is valid but the frame is
        # not what the encoder produces.
        record = WalRecord(ROUND_OPEN, 1)
        canonical = encode_record(record)
        payload = canonical[RECORD_HEADER.size:]
        assert payload.startswith(b"{")
        noncanonical = (b'{"round_index":1,"kind":"round_open",'
                        b'"incarnation":0,"payload":{}}')
        framed = RECORD_HEADER.pack(len(noncanonical),
                                    zlib.crc32(noncanonical)) + noncanonical
        with pytest.raises(WalError, match="canonical"):
            decode_record(framed)

    def test_wal_error_is_frame_error(self):
        assert issubclass(WalError, FrameError)
        assert issubclass(WalError, ValueError)


class TestReplay:
    def image(self, records):
        return WAL_MAGIC + b"".join(encode_record(r) for r in records)

    def test_empty_image_is_empty_log(self):
        replayed = replay_wal(b"")
        assert replayed.records == []
        assert not replayed.torn_tail

    def test_full_replay(self):
        records = sample_records()
        replayed = replay_wal(self.image(records))
        assert replayed.records == records
        assert not replayed.torn_tail
        assert replayed.consumed_bytes == len(self.image(records))

    def test_bad_magic_rejected(self):
        with pytest.raises(WalError, match="magic"):
            replay_wal(b"NOPE" + encode_record(sample_records()[0]))

    @pytest.mark.parametrize("cut", [1, 4, 9])
    def test_torn_tail_trimmed(self, cut):
        records = sample_records()
        blob = self.image(records)
        torn = blob[:len(blob) - cut]
        replayed = replay_wal(torn)
        assert replayed.records == records[:-1]
        assert replayed.torn_tail

    def test_corrupt_final_record_is_torn_tail(self):
        blob = bytearray(self.image(sample_records()))
        blob[-1] ^= 0xFF  # damage inside the last record's payload
        replayed = replay_wal(bytes(blob))
        assert replayed.records == sample_records()[:-1]
        assert replayed.torn_tail

    def test_mid_log_corruption_is_typed_error(self):
        records = sample_records()
        frames = [encode_record(r) for r in records]
        # Flip a payload bit in the FIRST record; intact records follow.
        damaged = bytearray(frames[0])
        damaged[-1] ^= 0x01
        blob = WAL_MAGIC + bytes(damaged) + frames[1] + frames[2]
        with pytest.raises(WalError, match="mid-log corruption"):
            replay_wal(blob)

    def test_consumed_prefix_reencodes_byte_exactly(self):
        blob = self.image(sample_records()) + b"\x99"  # torn garbage
        replayed = replay_wal(blob)
        rebuilt = WAL_MAGIC + b"".join(encode_record(r)
                                       for r in replayed.records)
        assert rebuilt == blob[:replayed.consumed_bytes]


class TestWriteAheadLog:
    def test_append_and_read_back(self):
        log = WriteAheadLog()
        lsns = [log.append(r) for r in sample_records()]
        assert lsns == [0, 1, 2]
        assert list(log.records) == sample_records()
        assert len(log) == 3

    def test_image_roundtrips_through_from_bytes(self):
        log = WriteAheadLog()
        for record in sample_records():
            log.append(record)
        clone = WriteAheadLog.from_bytes(log.image())
        assert list(clone.records) == sample_records()
        assert not clone.torn_tail_dropped
        assert clone.image() == log.image()

    def test_from_bytes_trims_torn_tail(self):
        log = WriteAheadLog()
        for record in sample_records():
            log.append(record)
        clone = WriteAheadLog.from_bytes(log.image()[:-3])
        assert list(clone.records) == sample_records()[:-1]
        assert clone.torn_tail_dropped

    def test_records_since(self):
        log = WriteAheadLog()
        for record in sample_records():
            log.append(record)
        assert log.records_since(1) == sample_records()[1:]
        assert log.records_since(3) == []
        with pytest.raises(ValueError):
            log.records_since(-1)

    def test_file_backed_log_survives_reopen(self, tmp_path):
        path = tmp_path / "round.wal"
        log = WriteAheadLog(path=path)
        for record in sample_records():
            log.append(record)
        reopened = WriteAheadLog(path=path)
        assert list(reopened.records) == sample_records()

    def test_file_backed_log_persists_torn_tail_trim(self, tmp_path):
        path = tmp_path / "round.wal"
        log = WriteAheadLog(path=path)
        for record in sample_records():
            log.append(record)
        torn = path.read_bytes()[:-3]
        path.write_bytes(torn)
        reopened = WriteAheadLog(path=path)
        assert reopened.torn_tail_dropped
        assert list(reopened.records) == sample_records()[:-1]
        # The trim was persisted: a third open sees a clean log.
        third = WriteAheadLog(path=path)
        assert not third.torn_tail_dropped
        assert list(third.records) == sample_records()[:-1]

    def test_empty_file_is_valid_empty_log(self, tmp_path):
        path = tmp_path / "empty.wal"
        path.write_bytes(b"")
        log = WriteAheadLog(path=path)
        assert len(log) == 0
