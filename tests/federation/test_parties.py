"""Tests for the role-based orchestration layer."""

import numpy as np
import pytest

from repro.federation.parties import (
    AggregatorParty,
    ClientParty,
    Mailbox,
    SecureAveragingJob,
)
from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)


def make_runtime(config=FLBOOSTER_SYSTEM):
    return FederationRuntime(config, num_clients=4, key_bits=256,
                             physical_key_bits=256)


class TestMailbox:
    def test_fifo_per_tag(self):
        mailbox = Mailbox()
        mailbox.deliver("a", 1)
        mailbox.deliver("a", 2)
        mailbox.deliver("b", 3)
        assert mailbox.collect("a") == 1
        assert mailbox.collect("a") == 2
        assert mailbox.collect("b") == 3

    def test_missing_tag_raises(self):
        with pytest.raises(LookupError):
            Mailbox().collect("nothing")

    def test_pending(self):
        mailbox = Mailbox()
        assert mailbox.pending("x") == 0
        mailbox.deliver("x", None)
        assert mailbox.pending("x") == 1


class TestSecureAveragingJob:
    def test_matches_library_aggregator(self):
        rng = np.random.default_rng(0)
        vectors = [rng.uniform(-0.8, 0.8, 40) for _ in range(4)]

        job_runtime = make_runtime()
        job_mean = SecureAveragingJob(job_runtime, vectors).run()

        lib_runtime = make_runtime()
        lib_mean = lib_runtime.aggregator.average(vectors)
        assert np.allclose(job_mean, lib_mean, atol=1e-12)

    def test_lossless_under_fate(self):
        vectors = [np.full(8, 0.25)] * 4
        mean = SecureAveragingJob(make_runtime(FATE_SYSTEM), vectors).run()
        assert np.allclose(mean, 0.25, atol=1e-10)

    def test_charges_uploads_and_broadcasts(self):
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        SecureAveragingJob(runtime, [np.zeros(16)] * 4).run()
        assert ledger.count("comm.update") == 4
        assert ledger.count("comm.aggregate") == 4
        assert ledger.seconds("he.add") > 0

    def test_empty_clients_raise(self):
        with pytest.raises(ValueError):
            SecureAveragingJob(make_runtime(), [])

    def test_server_requires_all_updates(self):
        runtime = make_runtime()
        server = AggregatorParty("arbiter", runtime)
        client = ClientParty("c0", runtime, np.zeros(4), charged=True)
        client.upload_update(server)
        with pytest.raises(LookupError):
            server.aggregate_updates(num_clients=2)

    def test_plaintext_message_accounting(self):
        runtime = make_runtime()
        ledger = runtime.begin_epoch()
        a = ClientParty("a", runtime, np.zeros(1), charged=True)
        b = ClientParty("b", runtime, np.zeros(1), charged=False)
        a.send(b, tag="hello", payload={"x": 1}, plaintext_bytes=100)
        assert b.mailbox.collect("hello") == {"x": 1}
        assert ledger.payload_bytes("comm.hello") == 100
