"""The PR's headline invariant, end to end: tenant-scoped fault
containment and crash-safe elastic rebalancing.

``tenant_isolation_check`` asserts the byte-identical guarantee -- a
quiet tenant's per-round decoded weights are ``==`` between a run where
its neighbour floods and crashes and a solo run with the same seeds.
``rebalance_crash_sweep`` kills the shard pool at every topology-journal
record and asserts recovery is bit-identical to the uninterrupted run.
"""

import pytest

from repro.federation.faults import FaultPlan
from repro.testing.simulator import (
    MultiTenantSimulator,
    TenancyFailure,
    TenancySpec,
    TenantSpec,
    rebalance_crash_sweep,
    tenant_isolation_check,
)


def noisy_spec(rounds=3, rebalance_targets=None):
    """tenant-a floods then crashes; tenant-b stays quiet."""
    plan = (FaultPlan(seed=3)
            .tenant_flood("tenant-a", 1, intensity=3)
            .tenant_crash("tenant-a", 2))
    return TenancySpec(
        rounds=rounds,
        vector_size=6,
        key_bits=256,
        physical_key_bits=128,
        queue_capacity=32,
        tenants=(
            TenantSpec("tenant-a", num_clients=3, weight=1.0,
                       quota_rate=2.0, quota_burst=8, seed=11,
                       min_quorum=1, fault_plan=plan),
            TenantSpec("tenant-b", num_clients=4, weight=2.0, seed=23),
        ),
        rebalance_targets=rebalance_targets,
    )


class TestFaultContainment:
    def test_faulty_tenant_degrades_only_itself(self):
        result = MultiTenantSimulator(noisy_spec()).run()
        # tenant-a: clean round, flood round (absorbed, still ok under
        # min_quorum), then crashed for the rest of the run.
        assert result.statuses["tenant-a"] == ["ok", "ok", "crashed"]
        assert len(result.final_weights["tenant-a"]) == 2
        # tenant-b never notices.
        assert result.statuses["tenant-b"] == ["ok", "ok", "ok"]
        assert len(result.final_weights["tenant-b"]) == 3
        counts = result.tenant_fault_counts["tenant-a"]
        assert counts["tenant_flood"] == 1
        assert counts["tenant_crash"] >= 1
        assert result.tenant_fault_counts["tenant-b"] == {}

    def test_quiet_tenant_is_byte_identical_to_solo_run(self):
        report = tenant_isolation_check(noisy_spec(), "tenant-b")
        assert report.rounds_compared == 3
        assert report.noisy_checksum == report.solo_checksum

    def test_isolation_holds_under_elastic_rebalancing_too(self):
        report = tenant_isolation_check(
            noisy_spec(rebalance_targets=(2, 3, 1)), "tenant-b")
        assert report.rounds_compared == 3
        assert report.noisy_checksum == report.solo_checksum

    def test_solo_of_unknown_tenant_is_rejected(self):
        with pytest.raises(ValueError):
            noisy_spec().solo("tenant-z")

    def test_spec_round_trips_through_json(self):
        spec = noisy_spec(rebalance_targets=(3, 1, 2))
        assert TenancySpec.from_json(spec.to_json()) == spec


class TestRebalanceCrashSweep:
    def quiet_spec(self):
        """Fault-free two-tenant spec that forces splits and merges."""
        return TenancySpec(
            rounds=3,
            vector_size=6,
            key_bits=256,
            physical_key_bits=128,
            queue_capacity=32,
            tenants=(
                TenantSpec("tenant-a", num_clients=3, seed=11),
                TenantSpec("tenant-b", num_clients=4, seed=23),
            ),
            rebalance_targets=(3, 1, 2),
        )

    def test_kill_at_every_topology_record_recovers_bit_identically(self):
        report = rebalance_crash_sweep(self.quiet_spec())
        assert report.mode == "shard-pool-rebalance"
        # targets (3, 1, 2): two splits, then two merges, then one
        # split -- five journaled topology records, each a boundary.
        assert report.wal_records == 5
        assert report.boundaries_tested == 5

    def test_killed_run_actually_fails_over(self):
        killed = TenancySpec.from_dict(
            {**self.quiet_spec().to_dict(), "pool_kill_after_lsn": 0})
        result = MultiTenantSimulator(killed).run()
        assert result.pool_failovers >= 1
        reference = MultiTenantSimulator(self.quiet_spec()).run()
        assert result.checksum() == reference.checksum()

    def test_sweep_rejects_prearmed_kill(self):
        killed = TenancySpec.from_dict(
            {**self.quiet_spec().to_dict(), "pool_kill_after_lsn": 0})
        with pytest.raises(ValueError):
            rebalance_crash_sweep(killed)

    def test_sweep_rejects_specs_that_never_rebalance(self):
        # Elastic target for 7 combined clients is ceil(sqrt(7)) = 3
        # shards; starting there leaves the topology journal empty.
        static = TenancySpec.from_dict(
            {**self.quiet_spec().to_dict(), "rebalance_targets": None,
             "initial_shards": 3})
        with pytest.raises(ValueError):
            rebalance_crash_sweep(static)

    def test_divergence_raises_replayable_failure(self):
        spec = self.quiet_spec()
        try:
            raise TenancyFailure(spec, "synthetic divergence")
        except TenancyFailure as failure:
            assert "trace=" in str(failure)
            assert spec.to_json() in str(failure)
