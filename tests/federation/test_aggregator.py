"""Tests for secure aggregation (the Fig. 2 / Fig. 4 pipeline)."""

import numpy as np
import pytest

from repro.federation.runtime import (
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    FederationRuntime,
)


@pytest.fixture()
def flbooster_runtime():
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                             key_bits=256, physical_key_bits=256)


@pytest.fixture()
def fate_runtime():
    return FederationRuntime(FATE_SYSTEM, num_clients=4,
                             key_bits=256, physical_key_bits=256)


class TestAggregate:
    def test_sum_correct_lossless_path(self, fate_runtime):
        rng = np.random.default_rng(1)
        vectors = [rng.uniform(-0.9, 0.9, 50) for _ in range(4)]
        total = fate_runtime.aggregator.aggregate(vectors)
        assert np.allclose(total, np.sum(vectors, axis=0), atol=1e-9)

    def test_sum_correct_quantized_path(self, flbooster_runtime):
        rng = np.random.default_rng(2)
        vectors = [rng.uniform(-0.9, 0.9, 50) for _ in range(4)]
        total = flbooster_runtime.aggregator.aggregate(vectors)
        step = flbooster_runtime.plan.scheme.quantization_step
        assert np.allclose(total, np.sum(vectors, axis=0), atol=4 * step)

    def test_average(self, fate_runtime):
        vectors = [np.full(10, 0.1), np.full(10, 0.3),
                   np.full(10, 0.5), np.full(10, 0.7)]
        mean = fate_runtime.aggregator.average(vectors)
        assert np.allclose(mean, 0.4, atol=1e-9)

    def test_empty_raises(self, fate_runtime):
        with pytest.raises(ValueError):
            fate_runtime.aggregator.aggregate([])

    def test_length_mismatch_raises(self, fate_runtime):
        with pytest.raises(ValueError):
            fate_runtime.aggregator.aggregate([np.zeros(3), np.zeros(4)])

    def test_too_many_clients_raises(self, flbooster_runtime):
        too_many = flbooster_runtime.plan.packer.max_safe_summands() + 1
        vectors = [np.zeros(4)] * too_many
        with pytest.raises(OverflowError):
            flbooster_runtime.aggregator.aggregate(vectors)

    def test_charges_all_components(self, flbooster_runtime):
        ledger = flbooster_runtime.begin_epoch()
        vectors = [np.full(64, 0.1)] * 4
        flbooster_runtime.aggregator.aggregate(vectors)
        assert ledger.seconds("he.encrypt") > 0
        assert ledger.seconds("he.add") > 0
        assert ledger.seconds("he.decrypt") > 0
        assert ledger.seconds("comm.upload") > 0
        assert ledger.seconds("comm.download") > 0
        assert ledger.seconds("pipeline") > 0

    def test_compression_reduces_ciphertexts(self, fate_runtime,
                                             flbooster_runtime):
        vectors = [np.full(64, 0.1)] * 4
        fate_runtime.begin_epoch()
        fate_runtime.aggregator.aggregate(vectors)
        flbooster_runtime.begin_epoch()
        flbooster_runtime.aggregator.aggregate(vectors)
        assert flbooster_runtime.channel.stats.ciphertexts * 4 < \
            fate_runtime.channel.stats.ciphertexts

    def test_uploads_charged_per_client(self, fate_runtime):
        ledger = fate_runtime.begin_epoch()
        fate_runtime.aggregator.aggregate([np.zeros(8)] * 4)
        assert ledger.count("comm.upload") == 4
        assert ledger.count("comm.download") == 4


class TestEncryptDecryptTensor:
    def test_roundtrip(self, flbooster_runtime):
        aggregator = flbooster_runtime.aggregator
        values = np.linspace(-0.8, 0.8, 33)
        tensor = aggregator.encrypt_tensor(values)
        # No caller-supplied count: the tensor describes its own layout.
        decoded = aggregator.decrypt_tensor(tensor)
        step = flbooster_runtime.plan.scheme.quantization_step
        assert np.allclose(decoded, values, atol=step)

    def test_roundtrip_preserves_shape(self, flbooster_runtime):
        aggregator = flbooster_runtime.aggregator
        values = np.linspace(-0.8, 0.8, 24).reshape(4, 6)
        decoded = aggregator.decrypt_tensor(aggregator.encrypt_tensor(values))
        assert decoded.shape == (4, 6)
        step = flbooster_runtime.plan.scheme.quantization_step
        assert np.allclose(decoded, values, atol=step)

    def test_silent_path_not_charged(self, flbooster_runtime):
        ledger = flbooster_runtime.begin_epoch()
        aggregator = flbooster_runtime.aggregator
        aggregator.encrypt_tensor(np.zeros(16), charged=False)
        assert ledger.seconds("he.encrypt") == 0.0


class TestCipherPack:
    def test_roundtrip_through_decryption(self, flbooster_runtime):
        aggregator = flbooster_runtime.aggregator
        scheme = aggregator.scheme
        engine = flbooster_runtime.client_engine
        values = [scheme.encode(v) for v in (-0.5, 0.0, 0.25, 0.9)]
        individual = engine.encrypt_batch(values)
        packed = aggregator.cipher_pack(individual)
        assert len(packed) < len(individual) or \
            aggregator.packer.capacity == 1
        words = engine.decrypt_batch(packed)
        recovered = aggregator.packer.unpack(words, len(values))
        assert recovered == values

    def test_capacity_one_is_identity(self, fate_runtime):
        aggregator = fate_runtime.aggregator
        ciphertexts = [11, 22, 33]
        assert aggregator.cipher_pack(ciphertexts) == ciphertexts

    def test_charges_scalar_muls(self, flbooster_runtime):
        ledger = flbooster_runtime.begin_epoch()
        engine = flbooster_runtime.client_engine
        individual = engine.encrypt_batch([1] * 8)
        flbooster_runtime.aggregator.cipher_pack(individual)
        assert ledger.count("he.scalar_mul") > 0
