"""End-to-end rounds under each packing codec.

The acceptance bar for the codec layer: a full sharded aggregation
round -- and multi-round training -- produces **bit-identical** final
weights no matter which codec carried the ciphertexts, and every codec's
tensors survive the FLT3 wire byte-exactly.
"""

import numpy as np
import pytest

from repro.federation.aggregator import SecureAggregator
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.serialization import (
    TENSOR3_VERSION,
    TENSOR_VERSION,
    deserialize_tensor,
    serialize_tensor,
)
from repro.federation.shard import ShardedAggregationService
from repro.quantization.codecs import SparseCodec


def make_runtime(num_clients=6, seed=11, **kwargs):
    kwargs.setdefault("key_bits", 256)
    kwargs.setdefault("physical_key_bits", 128)
    return FederationRuntime(FLBOOSTER_SYSTEM, num_clients=num_clients,
                             seed=seed, **kwargs)


def client_vectors(num_clients, length=7, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.uniform(-0.5, 0.5, size=length)
            for _ in range(num_clients)]


def sparse_vectors(num_clients, length=40, seed=5):
    """Client gradients sharing a small support (CSR-shaped)."""
    rng = np.random.default_rng(seed)
    support = sorted(rng.choice(length, size=5, replace=False).tolist())
    vectors = []
    for _ in range(num_clients):
        vector = np.zeros(length)
        vector[support] = rng.uniform(-0.5, 0.5, size=len(support))
        vectors.append(vector)
    return vectors


def sparse_aggregator(runtime, vectors):
    """A flat aggregator over ``runtime``'s engines with a sparse packer
    pinned to the clients' union support."""
    scheme = runtime.plan.scheme
    e0 = scheme.encode(0.0)
    encoded = [scheme.encode_array(v) for v in vectors]
    union = sorted({i for enc in encoded for i, e in enumerate(enc)
                    if e != e0})
    max_offset = max((abs(enc[i] - e0) for enc in encoded for i in union),
                     default=1)
    codec = SparseCodec(
        scheme,
        plaintext_bits=runtime.client_engine.physical_plaintext_bits,
        indices=union, value_bits=max(2, max_offset.bit_length() + 1))
    return SecureAggregator(
        client_engine=runtime.client_engine,
        silent_engine=runtime.silent_engine,
        server_engine=runtime.server_engine,
        packer=codec, channel=runtime.channel)


class TestRuntimeCodecKnob:
    def test_unknown_session_codec_rejected(self):
        with pytest.raises(ValueError, match="packing_codec"):
            make_runtime(packing_codec="zstd")

    def test_sparse_is_not_a_session_codec(self):
        # The sparse layout needs a per-tensor support pattern; a
        # session-wide default cannot supply one.
        with pytest.raises(ValueError, match="packing_codec"):
            make_runtime(packing_codec="sparse")

    def test_interleave_session_raises_summand_capacity(self):
        dense = make_runtime()
        inter = make_runtime(packing_codec="interleave")
        assert inter.aggregator.packer.codec_id == "interleave"
        assert inter.aggregator.packer.max_safe_summands() \
            > dense.aggregator.packer.max_safe_summands()


class TestFlatRounds:
    def test_interleave_aggregate_bit_identical_to_dense(self):
        vectors = client_vectors(6)
        expected = make_runtime().aggregator.aggregate(vectors,
                                                       round_index=0)
        inter = make_runtime(packing_codec="interleave")
        result = inter.aggregator.aggregate(vectors, round_index=0)
        assert np.array_equal(result, expected)

    def test_sparse_aggregate_bit_identical_to_dense(self):
        vectors = sparse_vectors(4)
        dense = make_runtime(num_clients=4)
        expected = dense.aggregator.aggregate(vectors, round_index=0)
        helper = make_runtime(num_clients=4)
        sparse = sparse_aggregator(helper, vectors)
        result = sparse.aggregate(vectors, round_index=0)
        assert np.array_equal(result, expected)

    def test_sparse_round_ships_fewer_words(self):
        vectors = sparse_vectors(4, length=40)
        helper = make_runtime(num_clients=4)
        sparse = sparse_aggregator(helper, vectors)
        dense_words = helper.aggregator.packer.words_needed(40)
        sparse_words = sparse.packer.words_needed(40)
        assert sparse_words < dense_words


class TestShardedRounds:
    @pytest.mark.parametrize("codec", ["dense", "interleave"])
    def test_sharded_sum_bit_identical_to_flat(self, codec):
        vectors = client_vectors(6)
        flat = make_runtime(packing_codec=codec)
        expected = flat.aggregator.aggregate(vectors, round_index=0)

        sharded = make_runtime(packing_codec=codec)
        service = ShardedAggregationService(sharded.aggregator, seed=11)
        result = service.run_round(vectors, round_index=0)
        assert np.array_equal(np.asarray(result), np.asarray(expected))

    def test_final_weights_bit_identical_across_session_codecs(self):
        """Multi-round training: the codec changes the ciphertext
        layout, never the model."""
        finals = {}
        for codec in ("dense", "interleave"):
            runtime = make_runtime(packing_codec=codec)
            service = ShardedAggregationService(runtime.aggregator,
                                                seed=11)
            weights = np.zeros(7)
            for round_index in range(3):
                grads = client_vectors(6, seed=100 + round_index)
                total = service.run_round(grads,
                                          round_index=round_index)
                weights = weights - 0.1 * (np.asarray(total) / 6)
            finals[codec] = weights
        assert np.array_equal(finals["dense"], finals["interleave"])


class TestWireRoundTrips:
    def _tensors(self):
        vectors = sparse_vectors(4)
        dense = make_runtime(num_clients=4)
        inter = make_runtime(num_clients=4, packing_codec="interleave")
        sparse = sparse_aggregator(make_runtime(num_clients=4), vectors)
        return {
            "dense": dense.aggregator.encrypt_tensor(vectors[0]),
            "interleave": inter.aggregator.encrypt_tensor(vectors[0]),
            "sparse": sparse.encrypt_tensor(vectors[0]),
        }

    def test_flt3_round_trips_byte_exactly_for_every_codec(self):
        for codec_id, tensor in self._tensors().items():
            blob = serialize_tensor(tensor)
            rebuilt = deserialize_tensor(blob)
            assert rebuilt.meta.codec == codec_id
            assert serialize_tensor(rebuilt) == blob, codec_id
            assert list(rebuilt.words) == list(tensor.words)

    def test_flt2_still_serializes_dense_tensors(self):
        tensor = self._tensors()["dense"]
        blob = serialize_tensor(tensor, version=TENSOR_VERSION)
        assert blob[:4] == b"FLT2"
        rebuilt = deserialize_tensor(blob)
        assert rebuilt.meta.codec == "dense"
        assert list(rebuilt.words) == list(tensor.words)

    def test_flt2_cannot_carry_parameterized_codecs(self):
        tensors = self._tensors()
        for codec_id in ("interleave", "sparse"):
            with pytest.raises(ValueError, match="FLT2"):
                serialize_tensor(tensors[codec_id],
                                 version=TENSOR_VERSION)

    def test_decrypt_after_wire_matches_direct_decrypt(self):
        vectors = sparse_vectors(4)
        runtime = make_runtime(num_clients=4,
                               packing_codec="interleave")
        tensor = runtime.aggregator.encrypt_tensor(vectors[0])
        rebuilt = deserialize_tensor(serialize_tensor(tensor))
        direct = runtime.aggregator.decrypt_tensor(tensor)
        wired = runtime.aggregator.decrypt_tensor(rebuilt)
        assert np.array_equal(direct, wired)
        assert TENSOR3_VERSION == 3
