"""Property-based tests for the wire formats."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federation.serialization import (
    deserialize_objects,
    deserialize_packed,
    serialize_objects,
    serialize_packed,
)

widths = st.sampled_from([64, 128, 256, 512, 1024])


@st.composite
def batches(draw):
    width = draw(widths)
    values = draw(st.lists(
        st.integers(min_value=0, max_value=(1 << (8 * width)) - 1),
        max_size=20))
    return width, values


@settings(max_examples=50)
@given(batches())
def test_packed_roundtrip(batch):
    width, values = batch
    assert deserialize_packed(serialize_packed(values, width)) == values


@settings(max_examples=50)
@given(batches(), st.integers(min_value=-1000, max_value=1000))
def test_objects_roundtrip(batch, exponent):
    width, values = batch
    blob = serialize_objects(values, width, exponent=exponent)
    decoded = deserialize_objects(blob, width)
    assert [value for value, _ in decoded] == values
    assert all(e == exponent for _, e in decoded)


@settings(max_examples=50)
@given(batches())
def test_packed_size_is_affine_in_count(batch):
    width, values = batch
    blob = serialize_packed(values, width)
    assert len(blob) == 12 + len(values) * width


@settings(max_examples=30)
@given(batches())
def test_object_format_strictly_larger(batch):
    width, values = batch
    if not values:
        return
    packed = serialize_packed(values, width)
    objects = serialize_objects(values, width)
    assert len(objects) > len(packed)
