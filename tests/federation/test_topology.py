"""Tests for the cluster topology model."""

import pytest

from repro.federation.topology import PAPER_TOPOLOGY, ClusterTopology


class TestConstruction:
    def test_paper_topology(self):
        assert PAPER_TOPOLOGY.servers == 4
        assert PAPER_TOPOLOGY.partitions == 64
        assert PAPER_TOPOLOGY.partitions_per_server == 16

    def test_uneven_partitions_round_up(self):
        topology = ClusterTopology(servers=4, partitions=65)
        assert topology.partitions_per_server == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(servers=0, partitions=4)
        with pytest.raises(ValueError):
            ClusterTopology(servers=8, partitions=4)


class TestTiming:
    def test_compute_parallelizes_across_servers(self):
        topology = ClusterTopology(servers=4, partitions=64)
        assert topology.compute_seconds(1.0) == 16.0

    def test_transfers_serialize_fully(self):
        topology = ClusterTopology(servers=4, partitions=64)
        assert topology.transfer_seconds(1.0) == 64.0

    def test_epoch_combinator(self):
        topology = ClusterTopology(servers=4, partitions=64)
        assert topology.epoch_seconds(1.0, 2.0, 0.5) == \
            16.0 + 128.0 + 8.0

    def test_single_server_degenerate(self):
        topology = ClusterTopology(servers=1, partitions=8)
        assert topology.compute_seconds(1.0) == 8.0
        assert topology.transfer_seconds(1.0) == 8.0

    def test_more_servers_help_compute_not_comm(self):
        small = ClusterTopology(servers=2, partitions=64)
        large = ClusterTopology(servers=8, partitions=64)
        assert large.compute_seconds(1.0) < small.compute_seconds(1.0)
        assert large.transfer_seconds(1.0) == small.transfer_seconds(1.0)

    def test_speedup_over_single_server(self):
        assert ClusterTopology(servers=4, partitions=64) \
            .speedup_over_single_server() == pytest.approx(4.0)

    def test_negative_seconds_raise(self):
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.compute_seconds(-1.0)
        with pytest.raises(ValueError):
            PAPER_TOPOLOGY.transfer_seconds(-1.0)

    def test_comm_dominance_grows_with_servers(self):
        # The mechanism behind the paper's bottleneck: adding servers
        # parallelizes compute but not the shared aggregation link, so
        # the epoch shifts toward communication -- which is why the
        # paper pairs GPU acceleration *with* compression.
        def comm_share(servers):
            topology = ClusterTopology(servers=servers, partitions=64)
            he = topology.compute_seconds(1.0)
            comm = topology.transfer_seconds(1.0)
            return comm / (he + comm)

        assert comm_share(16) > comm_share(2)
