"""Tests for system configurations and runtime wiring."""

import pytest

from repro.baselines import system_by_name
from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.federation.runtime import (
    ABLATION_SYSTEMS,
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    HAFLO_SYSTEM,
    STANDARD_SYSTEMS,
    FederationRuntime,
    WITHOUT_BC,
    WITHOUT_GHE,
    cached_keypair,
)


class TestConfigs:
    def test_standard_systems(self):
        names = [config.name for config in STANDARD_SYSTEMS]
        assert names == ["FATE", "HAFLO", "FLBooster"]

    def test_ablations_include_flbooster(self):
        assert FLBOOSTER_SYSTEM in ABLATION_SYSTEMS
        assert WITHOUT_GHE in ABLATION_SYSTEMS
        assert WITHOUT_BC in ABLATION_SYSTEMS

    def test_fate_is_cpu_no_compression(self):
        assert not FATE_SYSTEM.gpu_he
        assert not FATE_SYSTEM.batch_compression

    def test_haflo_is_unmanaged_gpu(self):
        assert HAFLO_SYSTEM.gpu_he
        assert not HAFLO_SYSTEM.managed_gpu
        assert not HAFLO_SYSTEM.batch_compression

    def test_flbooster_is_everything(self):
        assert FLBOOSTER_SYSTEM.gpu_he
        assert FLBOOSTER_SYSTEM.managed_gpu
        assert FLBOOSTER_SYSTEM.batch_compression
        assert FLBOOSTER_SYSTEM.packed_serialization

    def test_lookup_by_name(self):
        assert system_by_name("FATE") is FATE_SYSTEM
        assert system_by_name("w/o BC") is WITHOUT_BC
        with pytest.raises(KeyError):
            system_by_name("nope")

    def test_with_name(self):
        renamed = FLBOOSTER_SYSTEM.with_name("custom")
        assert renamed.name == "custom"
        assert renamed.batch_compression


class TestRuntimeWiring:
    def test_fate_gets_cpu_engines(self):
        runtime = FederationRuntime(FATE_SYSTEM, num_clients=2,
                                    key_bits=256, physical_key_bits=256)
        assert isinstance(runtime.client_engine, CpuPaillierEngine)
        assert runtime.gpu_device() is None

    def test_flbooster_gets_gpu_engines(self):
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=2,
                                    key_bits=256, physical_key_bits=256)
        assert isinstance(runtime.client_engine, GpuPaillierEngine)
        assert runtime.gpu_device() is not None
        assert runtime.client_engine.kernels.resource_manager.managed

    def test_haflo_unmanaged_resource_manager(self):
        runtime = FederationRuntime(HAFLO_SYSTEM, num_clients=2,
                                    key_bits=256, physical_key_bits=256)
        assert not runtime.client_engine.kernels.resource_manager.managed

    def test_bc_capacity_matches_nominal_key(self):
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=1024, physical_key_bits=256)
        assert runtime.plan.packer.capacity == 32    # 1024 / 32

    def test_no_bc_capacity_one(self):
        runtime = FederationRuntime(FATE_SYSTEM, num_clients=4,
                                    key_bits=1024, physical_key_bits=256)
        assert runtime.plan.packer.capacity == 1

    def test_full_fidelity_keeps_near_nominal_r_bits(self):
        # The Paillier plaintext space is n (1023 usable bits for a
        # 1024-bit key), one bit short of the paper's idealized 32x32
        # layout; the plan keeps the capacity at 32 and gives up one
        # value bit instead, which the paper's own negligible-error
        # argument (Sec. IV-B) still covers.
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=1024, physical_key_bits=1024)
        assert runtime.plan.packer.capacity == 32
        assert runtime.plan.scheme.r_bits >= 29

    def test_scaled_mode_shrinks_r_bits(self):
        runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=4,
                                    key_bits=1024, physical_key_bits=256)
        assert runtime.plan.scheme.r_bits < 30

    def test_invalid_clients_raise(self):
        with pytest.raises(ValueError):
            FederationRuntime(FATE_SYSTEM, num_clients=0, key_bits=256)

    def test_begin_epoch_swaps_ledgers(self):
        runtime = FederationRuntime(FATE_SYSTEM, num_clients=2,
                                    key_bits=256, physical_key_bits=256)
        first = runtime.begin_epoch()
        runtime.client_engine.encrypt_batch([1])
        second = runtime.begin_epoch()
        assert second is not first
        assert second.total_seconds == 0.0
        assert first.total_seconds > 0.0
        assert runtime.client_engine.ledger is second
        assert runtime.channel.ledger is second

    def test_keypair_cache_reuses(self):
        assert cached_keypair(256, seed=9) is cached_keypair(256, seed=9)
        assert cached_keypair(256, seed=9) is not cached_keypair(256, seed=10)

    def test_silent_engine_separate_ledger(self):
        runtime = FederationRuntime(FATE_SYSTEM, num_clients=2,
                                    key_bits=256, physical_key_bits=256)
        ledger = runtime.begin_epoch()
        runtime.silent_engine.encrypt_batch([1, 2])
        assert ledger.total_seconds == 0.0
