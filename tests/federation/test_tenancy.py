"""Multi-tenancy units: registry, quotas, admission, pool, accounting."""

import json

import pytest

from repro.federation.channel import Channel, Message
from repro.federation.coordinator import (
    CoordinatorKilled,
    InvalidTransitionError,
    RoundStateMachine,
)
from repro.federation.eventloop import (
    REJECT_QUOTA,
    AdmissionRejected,
    AsyncChannel,
    QuotaExceeded,
    VirtualClock,
)
from repro.federation.metrics import FaultReport
from repro.federation.shard import ShardPool
from repro.federation.tenancy import (
    Tenant,
    TenantRegistry,
    TokenBucket,
    UnknownTenantError,
    weighted_fair_order,
)
from repro.federation.wal import SHARD_SPLIT, WalRecord
from repro.ledger import CostLedger, admission_category


def upload(sender="client-0", receiver="shard-0"):
    return Message(sender=sender, receiver=receiver, tag="upload.test",
                   payload=f"payload-{sender}", plaintext_bytes=64)


def registry_ab():
    return TenantRegistry([
        Tenant("tenant-a", weight=1.0, quota_rate=1.0, quota_burst=2),
        Tenant("tenant-b", weight=3.0),
    ])


def tenant_loop(queue_capacity=8):
    clock = VirtualClock()
    loop = AsyncChannel(Channel(), clock,
                        queue_capacity=queue_capacity,
                        tenants=registry_ab())
    loop.register_tenant("tenant-a")
    loop.register_tenant("tenant-b")
    return clock, loop


class TestTenantRegistry:
    def test_registration_and_lookup(self):
        registry = registry_ab()
        assert registry.require("tenant-a").quota_burst == 2
        assert "tenant-b" in registry
        assert registry.tenant_ids == ["tenant-a", "tenant-b"]
        with pytest.raises(UnknownTenantError):
            registry.require("tenant-c")

    def test_conflicting_reregistration_rejected(self):
        registry = registry_ab()
        registry.register(Tenant("tenant-b", weight=3.0))  # identical ok
        with pytest.raises(ValueError):
            registry.register(Tenant("tenant-b", weight=9.0))

    def test_weighted_share_floors_at_one_slot(self):
        registry = registry_ab()
        assert registry.share("tenant-a", 64) == 16  # 1/4 of 64
        assert registry.share("tenant-b", 64) == 48  # 3/4 of 64
        assert registry.share("tenant-a", 2) == 1    # never starved out

    def test_json_round_trip(self):
        registry = registry_ab()
        blob = json.dumps(registry.to_dict(), sort_keys=True)
        rebuilt = TenantRegistry.from_dict(json.loads(blob))
        assert rebuilt.to_dict() == registry.to_dict()

    def test_tenant_id_cannot_contain_dot(self):
        with pytest.raises(ValueError):
            Tenant("bad.id")


class TestTokenBucket:
    def test_spend_and_lazy_refill(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=2.0, burst=3)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.retry_after() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = VirtualClock()
        bucket = TokenBucket(clock, rate=100.0, burst=4)
        clock.advance(1_000.0)
        assert bucket.tokens == 4.0


class TestWeightedFairOrder:
    def test_interleaves_by_weight(self):
        order = weighted_fair_order({"a": 3, "b": 3},
                                    {"a": 2.0, "b": 1.0})
        assert order == ["a", "a", "b", "a", "b", "b"]

    def test_requires_weights_for_backlogged_tenants(self):
        with pytest.raises(ValueError):
            weighted_fair_order({"a": 1}, {})


class TestTenantAdmission:
    def test_quota_exceeded_is_typed_and_retryable(self):
        _clock, loop = tenant_loop()
        loop.submit("shard-0", upload(), tenant="tenant-a")
        loop.submit("shard-0", upload("client-1"), tenant="tenant-a")
        with pytest.raises(QuotaExceeded) as excinfo:
            loop.submit("shard-0", upload("client-2"),
                        tenant="tenant-a")
        rejection = excinfo.value
        assert isinstance(rejection, AdmissionRejected)
        assert rejection.reason == REJECT_QUOTA
        assert rejection.retryable
        assert rejection.tenant == "tenant-a"
        assert rejection.retry_after_seconds > 0

    def test_quota_rejections_charge_tenant_prefixed_category(self):
        _clock, loop = tenant_loop()
        loop.submit("shard-0", upload(), tenant="tenant-a")
        loop.submit("shard-0", upload("client-1"), tenant="tenant-a")
        with pytest.raises(QuotaExceeded):
            loop.submit("shard-0", upload("client-2"),
                        tenant="tenant-a")
        ledger = loop.tenant_channel("tenant-a").ledger
        assert ledger.count(
            admission_category("accept", "tenant-a")) == 2
        assert ledger.count(
            admission_category("quota", "tenant-a")) == 1

    def test_slice_bound_protects_other_tenants_slots(self):
        _clock, loop = tenant_loop(queue_capacity=8)
        # tenant-a's slice of 8 is 2 slots (weight 1 of 4)... but its
        # quota burst is also 2, so use tenant-b (unmetered, 6 slots).
        for index in range(6):
            loop.submit("shard-0", upload(f"client-{index}"),
                        tenant="tenant-b")
        with pytest.raises(AdmissionRejected) as excinfo:
            loop.submit("shard-0", upload("client-6"),
                        tenant="tenant-b")
        assert excinfo.value.reason == "queue_full"
        # tenant-a still gets in: the shared queue is not full and its
        # own slice (2 slots) is untouched by b's backlog.
        loop.submit("shard-0", upload("client-a"), tenant="tenant-a")
        assert loop.queue_depth("shard-0", "tenant-a") == 1

    def test_tenant_breaker_is_scoped_per_tenant(self):
        _clock, loop = tenant_loop()
        breaker_a = loop.tenant_breaker("shard-0", "tenant-a",
                                        failure_threshold=1)
        breaker_a.record_failure()
        with pytest.raises(AdmissionRejected) as excinfo:
            loop.submit("shard-0", upload(), tenant="tenant-a")
        assert excinfo.value.reason == "circuit_open"
        # tenant-b is unaffected on the very same shard.
        loop.submit("shard-0", upload("client-b"), tenant="tenant-b")
        assert loop.queue_depth("shard-0", "tenant-b") == 1

    def test_tenant_filtered_drain_leaves_others_queued(self):
        _clock, loop = tenant_loop()
        loop.submit("shard-0", upload("client-a"), tenant="tenant-a")
        loop.submit("shard-0", upload("client-b0"), tenant="tenant-b")
        loop.submit("shard-0", upload("client-b1"), tenant="tenant-b")
        outcome = loop.drain("shard-0", tenant="tenant-b")
        assert [s for s, _ in outcome.delivered] == ["client-b0",
                                                     "client-b1"]
        assert loop.queue_depth("shard-0") == 1
        assert loop.queue_depth("shard-0", "tenant-a") == 1


class TestMigrationAccounting:
    def invariant(self, loop, shard, tenant=None):
        if tenant is None:
            stats = loop.stats[shard]
        else:
            stats = loop.tenant_stats.get((shard, tenant))
            if stats is None:
                return  # never touched
        queued = loop.queue_depth(shard, tenant)
        assert (stats.accepted + stats.migrated_in - stats.migrated_out
                == stats.delivered + stats.shed + stats.failed + queued)

    def test_accepted_equals_delivered_plus_shed_across_migration(self):
        _clock, loop = tenant_loop(queue_capacity=16)
        for index in range(3):
            loop.submit("shard-0", upload(f"client-a{index}"),
                        tenant="tenant-b")
        loop.submit("shard-0", upload("client-x"), tenant="tenant-a")
        moved = loop.migrate(
            "shard-0",
            lambda index, sender: ["shard-1", "shard-2"][index % 2])
        assert sum(moved.values()) == 4
        for shard in ("shard-0", "shard-1", "shard-2"):
            self.invariant(loop, shard)
            self.invariant(loop, shard, "tenant-a")
            self.invariant(loop, shard, "tenant-b")
        # Nothing was dropped or double-counted: every entry delivers.
        delivered = []
        for shard in ("shard-1", "shard-2"):
            outcome = loop.drain(shard)
            delivered.extend(s for s, _ in outcome.delivered)
            self.invariant(loop, shard)
        assert sorted(delivered) == ["client-a0", "client-a1",
                                     "client-a2", "client-x"]


class TestShardPool:
    def test_split_journals_before_migrating(self):
        pool = ShardPool(initial_shards=1)
        _clock, loop = tenant_loop(queue_capacity=16)
        for index in range(4):
            loop.submit("shard-0", upload(f"client-{index}"),
                        tenant="tenant-b")
        children = pool.split("shard-0", round_index=0, channel=loop)
        assert children == ["shard-1", "shard-2"]
        assert pool.active == ["shard-1", "shard-2"]
        assert len(pool.wal) == 1
        # Alternating even/odd assignment.
        assert loop.queue_depth("shard-1") == 2
        assert loop.queue_depth("shard-2") == 2
        assert loop.queue_depth("shard-0") == 0

    def test_merge_routes_everything_to_target(self):
        pool = ShardPool(initial_shards=2)
        _clock, loop = tenant_loop(queue_capacity=16)
        loop.submit("shard-0", upload("client-0"), tenant="tenant-b")
        loop.submit("shard-1", upload("client-1"), tenant="tenant-b")
        target = pool.merge("shard-0", "shard-1", round_index=0,
                            channel=loop)
        assert target == "shard-2"
        assert pool.active == ["shard-2"]
        assert loop.queue_depth("shard-2") == 2

    def test_retired_names_never_reused(self):
        pool = ShardPool(initial_shards=2)
        pool.merge("shard-0", "shard-1", round_index=0)
        pool.split("shard-2", round_index=0)
        assert pool.active == ["shard-3", "shard-4"]
        assert pool.resolve("shard-0") == ["shard-3", "shard-4"]

    def test_kill_fires_after_journal_append_and_recovery_matches(self):
        pool = ShardPool(initial_shards=1)
        pool.kill_after_lsn = 0
        _clock, loop = tenant_loop(queue_capacity=16)
        for index in range(4):
            loop.submit("shard-0", upload(f"client-{index}"),
                        tenant="tenant-b")
        with pytest.raises(CoordinatorKilled):
            pool.split("shard-0", round_index=0, channel=loop)
        # The record is durable but the migration never happened.
        assert len(pool.wal) == 1
        assert loop.queue_depth("shard-0") == 4
        heir = ShardPool.from_bytes(pool.wal.image(), initial_shards=1,
                                    incarnation=1)
        assert heir.active == pool.active
        assert heir.digest() == pool.digest()
        moved = heir.migrate_orphans(loop)
        assert moved == 4
        assert loop.queue_depth("shard-1") == 2
        assert loop.queue_depth("shard-2") == 2

    def test_rebalance_is_idempotent(self):
        pool = ShardPool(initial_shards=1)
        assert pool.rebalance(3, round_index=0) == 2
        assert pool.rebalance(3, round_index=0) == 0
        assert len(pool.active) == 3
        assert pool.rebalance(1, round_index=1) == 2
        assert len(pool.active) == 1

    def test_rebalance_records_rejected_by_round_state_machine(self):
        machine = RoundStateMachine()
        record = WalRecord(kind=SHARD_SPLIT, round_index=0,
                           payload={"parent": "shard-0",
                                    "children": ["shard-1", "shard-2"]})
        with pytest.raises(InvalidTransitionError):
            machine.apply(record)


class TestFaultReportTenantCounters:
    def test_counts_tenant_fault_categories(self):
        ledger = CostLedger()
        ledger.charge("fault.tenant_flood", 0.0, count=1)
        ledger.charge("fault.tenant_crash", 0.0, count=2)
        report = FaultReport.from_ledger(ledger)
        assert report.tenant_floods == 1
        assert report.tenant_crashes == 2
        assert report.total_events == 3

    def test_json_round_trip_is_exact(self):
        report = FaultReport(tenant_floods=2, tenant_crashes=1,
                             shed=4, wasted_bytes=128,
                             fault_seconds=1.25)
        blob = json.dumps(report.to_dict(), sort_keys=True)
        assert FaultReport.from_dict(json.loads(blob)) == report

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            FaultReport.from_dict({"tenant_floodz": 1})

    def test_merge_sums_tenant_counters(self):
        merged = FaultReport(tenant_floods=1).merge(
            FaultReport(tenant_floods=2, tenant_crashes=3))
        assert merged.tenant_floods == 3
        assert merged.tenant_crashes == 3
