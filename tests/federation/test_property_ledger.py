"""Property-based tests (hypothesis) for the cost ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ledger import CostLedger

categories = st.sampled_from(
    ["he.encrypt", "he.decrypt", "he.add", "comm.upload", "comm.download",
     "model.compute", "pipeline.encode_pack"])
charges = st.lists(
    st.tuples(categories,
              st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
              st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=0, max_value=1 << 30)),
    max_size=40)


def apply(ledger: CostLedger, items) -> None:
    for category, seconds, count, payload in items:
        ledger.charge(category, seconds, count=count, payload_bytes=payload)


@given(charges)
def test_total_equals_sum_of_components(items):
    ledger = CostLedger()
    apply(ledger, items)
    assert abs(sum(ledger.by_component().values())
               - ledger.total_seconds) < 1e-6


@given(charges)
def test_percentages_sum_to_100_or_0(items):
    ledger = CostLedger()
    apply(ledger, items)
    total = sum(ledger.component_percentages().values())
    assert abs(total - 100.0) < 1e-6 or total == 0.0


@settings(max_examples=50)
@given(charges, charges)
def test_merge_is_additive(items_a, items_b):
    separate_a, separate_b = CostLedger(), CostLedger()
    apply(separate_a, items_a)
    apply(separate_b, items_b)
    merged = CostLedger()
    apply(merged, items_a)
    apply(merged, items_b)
    separate_a.merge(separate_b)
    assert abs(separate_a.total_seconds - merged.total_seconds) < 1e-6
    assert separate_a.count("") == merged.count("")
    assert separate_a.payload_bytes("") == merged.payload_bytes("")


@settings(max_examples=50)
@given(charges, charges)
def test_merge_commutes_on_totals(items_a, items_b):
    ab, ba = CostLedger(), CostLedger()
    apply(ab, items_a)
    other = CostLedger()
    apply(other, items_b)
    ab.merge(other)

    apply(ba, items_b)
    other2 = CostLedger()
    apply(other2, items_a)
    ba.merge(other2)
    assert abs(ab.total_seconds - ba.total_seconds) < 1e-6
    assert ab.snapshot().keys() == ba.snapshot().keys()


@given(charges)
def test_prefix_totals_partition(items):
    ledger = CostLedger()
    apply(ledger, items)
    he = ledger.seconds("he")
    comm = ledger.seconds("comm")
    rest = ledger.seconds("model") + ledger.seconds("pipeline")
    assert abs((he + comm + rest) - ledger.total_seconds) < 1e-6


@given(charges)
def test_reset_clears_everything(items):
    ledger = CostLedger()
    apply(ledger, items)
    ledger.reset()
    assert ledger.total_seconds == 0.0
    assert ledger.count("") == 0
    assert len(ledger) == 0
