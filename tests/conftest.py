"""Shared fixtures: small deterministic keys so the suite stays fast."""

from __future__ import annotations

import pytest

from repro.crypto.keys import generate_paillier_keypair, generate_rsa_keypair
from repro.mpint.primes import LimbRandom


@pytest.fixture(scope="session")
def paillier_128():
    """A 128-bit Paillier keypair (fast, session-cached)."""
    return generate_paillier_keypair(128, rng=LimbRandom(seed=1001))


@pytest.fixture(scope="session")
def paillier_256():
    """A 256-bit Paillier keypair (session-cached)."""
    return generate_paillier_keypair(256, rng=LimbRandom(seed=1002))


@pytest.fixture(scope="session")
def rsa_128():
    """A 128-bit RSA keypair (session-cached)."""
    return generate_rsa_keypair(128, rng=LimbRandom(seed=1003))


@pytest.fixture()
def rng():
    """A deterministic per-test large-integer random source."""
    return LimbRandom(seed=42)
