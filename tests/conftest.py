"""Shared fixtures: small deterministic keys so the suite stays fast.

All randomness in the suite flows from one master seed, read from the
``REPRO_TEST_SEED`` environment variable (default 0).  Each consumer
gets its own *stream* -- ``master * 1_000_003 + stream`` -- so shifting
the master seed reseeds every fixture at once while the default keeps
the streams equal to the historical hardcoded seeds.  Benchmarks use
the same scheme via :func:`benchmarks.common.bench_seed`.
"""

from __future__ import annotations

import os

import pytest

from repro.crypto.keys import generate_paillier_keypair, generate_rsa_keypair
from repro.mpint.primes import LimbRandom

MASTER_SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))


def seed_for(stream: int) -> int:
    """Combine the suite master seed with a per-fixture stream id."""
    return MASTER_SEED * 1_000_003 + stream


@pytest.fixture(scope="session")
def master_seed() -> int:
    """The suite-wide master seed (``REPRO_TEST_SEED``, default 0)."""
    return MASTER_SEED


@pytest.fixture(scope="session")
def paillier_128():
    """A 128-bit Paillier keypair (fast, session-cached)."""
    return generate_paillier_keypair(128, rng=LimbRandom(seed=seed_for(1001)))


@pytest.fixture(scope="session")
def paillier_256():
    """A 256-bit Paillier keypair (session-cached)."""
    return generate_paillier_keypair(256, rng=LimbRandom(seed=seed_for(1002)))


@pytest.fixture(scope="session")
def rsa_128():
    """A 128-bit RSA keypair (session-cached)."""
    return generate_rsa_keypair(128, rng=LimbRandom(seed=seed_for(1003)))


@pytest.fixture()
def rng():
    """A deterministic per-test large-integer random source."""
    return LimbRandom(seed=seed_for(42))
