"""Scalar vs limb-plane Paillier engine throughput.

Measures encrypt / decrypt / homomorphic-add wall-clock for the scalar
:class:`CpuPaillierEngine` and the vectorized
:class:`VectorPaillierEngine` at a real 1024-bit key, batch sizes 64 and
1024, plus the CRT-vs-textbook decryption speedup.  Results snapshot to
``BENCH_vector.json`` at the repo root so CI can diff the acceptance
bar (>=5x batched encrypt speedup at batch >= 64) without re-running.

Methodology notes, so the numbers read honestly:

- Each engine runs its *default* configuration: the scalar engine
  exponentiates a fresh ``r^n`` per value (full hygiene, the FATE
  baseline behaviour); the vector engine amortizes obfuscators through
  its default :class:`RandomizerPool` and the batched limb-plane
  modexp.  The pool fill cost is measured and reported separately
  (``pool_fill_seconds``), not hidden.
- An ablation row gives the scalar engine the same pool size, isolating
  the pool's contribution from the limb-plane kernels'.
- The textbook-decrypt baseline is timed on a subsample
  (``TEXTBOOK_SAMPLE`` values) and scaled -- full-lambda
  exponentiations at 1024 bits are too slow to sweep whole batches.
"""

import json
import time
from pathlib import Path

from benchmarks.common import bench_random, bench_seed, fast_mode, publish
from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.crypto.paillier import Paillier
from repro.crypto.vector_engine import VectorPaillierEngine
from repro.experiments import format_table
from repro.federation.runtime import cached_keypair
from repro.mpint.primes import LimbRandom

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_vector.json"

KEY_BITS = 1024
BATCH_SIZES = (64,) if fast_mode() else (64, 1024)
TEXTBOOK_SAMPLE = 8
SEED_STREAM = 97
#: The issue's acceptance bar for the batched engine.
MIN_ENCRYPT_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _scalar_engine(keypair, pool_size=0):
    return CpuPaillierEngine(keypair, nominal_bits=KEY_BITS,
                             rng=LimbRandom(seed=bench_seed(SEED_STREAM)),
                             randomizer_pool_size=pool_size)


def _vector_engine(keypair):
    return VectorPaillierEngine(
        keypair, nominal_bits=KEY_BITS,
        rng=LimbRandom(seed=bench_seed(SEED_STREAM)))


def measure_batch(keypair, batch):
    """One row per op: scalar vs vector seconds at this batch size."""
    rnd = bench_random(SEED_STREAM + batch)
    n = keypair.public_key.n
    values = [rnd.randrange(n) for _ in range(batch)]

    scalar = _scalar_engine(keypair)
    vector = _vector_engine(keypair)
    # Warm the vector engine's obfuscator pool outside the encrypt
    # timing, and report what the warmup cost.
    _, pool_fill_seconds = _timed(vector.randomizer_pool_snapshot)

    c_scalar, scalar_encrypt = _timed(lambda: scalar.encrypt_batch(values))
    c_vector, vector_encrypt = _timed(lambda: vector.encrypt_batch(values))

    _, scalar_add = _timed(lambda: scalar.add_batch(c_scalar, c_scalar))
    _, vector_add = _timed(lambda: vector.add_batch(c_vector, c_vector))

    p_scalar, scalar_decrypt = _timed(
        lambda: scalar.decrypt_batch(c_scalar))
    p_vector, vector_decrypt = _timed(
        lambda: vector.decrypt_batch(c_vector))
    assert p_scalar == values
    assert p_vector == values

    # Ablation: scalar engine with the same pool amortization.
    ablation = _scalar_engine(keypair, pool_size=64)
    ablation.randomizer_pool_snapshot()
    _, ablation_encrypt = _timed(lambda: ablation.encrypt_batch(values))

    return {
        "batch": batch,
        "pool_fill_seconds": pool_fill_seconds,
        "encrypt": {"scalar_seconds": scalar_encrypt,
                    "vector_seconds": vector_encrypt,
                    "speedup": scalar_encrypt / vector_encrypt},
        "decrypt": {"scalar_seconds": scalar_decrypt,
                    "vector_seconds": vector_decrypt,
                    "speedup": scalar_decrypt / vector_decrypt},
        "add": {"scalar_seconds": scalar_add,
                "vector_seconds": vector_add,
                "speedup": scalar_add / vector_add},
        "scalar_pooled_encrypt_seconds": ablation_encrypt,
    }


def measure_crt(keypair, batch=64):
    """CRT-split decryption against the textbook lambda formula.

    Both sides of the headline comparison run the *scalar* big-int
    path, so the number isolates the CRT split itself (two half-size
    exponentiations plus Garner, vs one full ``c^lambda mod n^2``).
    The vector engine's batched CRT time rides along for context.
    """
    rnd = bench_random(SEED_STREAM + 7)
    key = keypair.private_key
    n = keypair.public_key.n
    vector = _vector_engine(keypair)
    vector.randomizer_pool_snapshot()
    values = [rnd.randrange(n) for _ in range(batch)]
    ciphertexts = vector.encrypt_batch(values)

    _, crt_vector_seconds = _timed(
        lambda: vector.decrypt_batch(ciphertexts))
    sample = ciphertexts[:TEXTBOOK_SAMPLE]
    plain_crt, crt_sample = _timed(
        lambda: [Paillier.raw_decrypt(key, c) for c in sample])
    plain_textbook, textbook_sample = _timed(
        lambda: [Paillier.raw_decrypt_textbook(key, c) for c in sample])
    assert plain_crt == plain_textbook == values[:TEXTBOOK_SAMPLE]
    scale = batch / len(sample)
    return {
        "batch": batch,
        "sample": len(sample),
        "crt_scalar_scaled_seconds": crt_sample * scale,
        "textbook_scaled_seconds": textbook_sample * scale,
        "crt_vector_seconds": crt_vector_seconds,
        "speedup": textbook_sample / crt_sample,
    }


def test_bench_vector_engine(benchmark):
    keypair = cached_keypair(KEY_BITS, seed=bench_seed(SEED_STREAM))

    def run():
        return ([measure_batch(keypair, batch) for batch in BATCH_SIZES],
                measure_crt(keypair))

    (rows, crt), = [benchmark.pedantic(run, rounds=1, iterations=1)]

    table = format_table(
        ["Batch", "Encrypt x", "Decrypt x", "Add x",
         "Pool fill s", "Scalar pooled s"],
        [[row["batch"],
          f"{row['encrypt']['speedup']:.1f}",
          f"{row['decrypt']['speedup']:.2f}",
          f"{row['add']['speedup']:.2f}",
          f"{row['pool_fill_seconds']:.3f}",
          f"{row['scalar_pooled_encrypt_seconds']:.3f}"]
         for row in rows],
        title=(f"Vector vs scalar Paillier engine, {KEY_BITS}-bit key "
               f"(CRT decrypt vs textbook: {crt['speedup']:.1f}x)"))
    publish("bench_vector", table)

    snapshot = {
        "benchmark": "vector_engine",
        "seed": bench_seed(SEED_STREAM),
        "key_bits": KEY_BITS,
        "batches": rows,
        "crt_vs_textbook": crt,
        "min_encrypt_speedup_required": MIN_ENCRYPT_SPEEDUP,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # Acceptance: >=5x batched encrypt speedup at every batch >= 64.
    for row in rows:
        assert row["encrypt"]["speedup"] >= MIN_ENCRYPT_SPEEDUP, row
    # CRT must beat the textbook formula decisively.
    assert crt["speedup"] > 2, crt
