"""Beyond-the-paper ablation: root-coordinator cost under sharding.

A flat aggregator makes the root touch every one of the ``P`` uploads,
so its per-round cost grows linearly in the federation size.  The
sharded service interposes ``S(P) = ceil(sqrt(P))`` leaf aggregators
that combine ciphertexts homomorphically and forward one partial each,
so the root only touches ``S(P)`` messages per round.

The sweep measures real sharded rounds at small party counts to
calibrate the per-message root cost from the ledger (``comm.partial``
for shard partial uploads, ``he.decrypt`` for the final decode), then
extrapolates both topologies to 1k -> 100k simulated parties.  The
snapshot lands in ``BENCH_shard.json`` at the repo root so CI can diff
the sub-linear claim without re-running the sweep.
"""

import json
import math
from pathlib import Path

from benchmarks.common import bench_rng, bench_seed, fast_mode, publish
from repro.experiments import format_table
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import ShardedAggregationService

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_shard.json"

#: Real runs used to calibrate per-message root cost.
MEASURED_COUNTS = (16, 64) if fast_mode() else (16, 64, 256)
#: Extrapolated federation sizes (the issue's 1k -> 100k sweep).
PARTY_COUNTS = (1_000, 10_000, 100_000)
KEY_BITS = 256
PHYSICAL_KEY_BITS = 128
VECTOR_SIZE = 8
SEED_STREAM = 83


def measure(num_clients):
    """Run one real sharded round and split ledger cost by layer."""
    seed = bench_seed(SEED_STREAM)
    runtime = FederationRuntime(
        FLBOOSTER_SYSTEM, num_clients=num_clients, key_bits=KEY_BITS,
        physical_key_bits=PHYSICAL_KEY_BITS, seed=seed)
    service = ShardedAggregationService(runtime.aggregator, seed=seed)
    rng = bench_rng(SEED_STREAM + num_clients)
    vectors = [rng.uniform(-0.5, 0.5, size=VECTOR_SIZE)
               for _ in range(num_clients)]
    service.run_round(vectors, round_index=0)

    ledger = runtime.ledger
    shards = len(service.leaves)
    return {
        "parties": num_clients,
        "shards": shards,
        "partial_uploads": ledger.count("comm.partial"),
        "root_partial_seconds": ledger.seconds("comm.partial"),
        "root_decrypt_seconds": ledger.seconds("he.decrypt"),
        "leaf_upload_seconds": ledger.seconds("comm.upload"),
    }


def extrapolate(measured):
    """Model root cost per round for sharded and flat topologies.

    Calibration uses the largest measured run: per-partial root comm
    from ``comm.partial`` and per-upload comm from ``comm.upload``
    (what a flat root would pay to receive every client directly).
    The decrypt term is a flat per-round add-on for both topologies.
    """
    widest = measured[-1]
    per_partial = (widest["root_partial_seconds"]
                   / widest["partial_uploads"])
    per_upload = widest["leaf_upload_seconds"] / widest["parties"]
    decrypt = widest["root_decrypt_seconds"]

    rows = []
    for parties in PARTY_COUNTS:
        shards = math.isqrt(parties - 1) + 1  # ceil(sqrt(parties))
        sharded = per_partial * shards + decrypt
        flat = per_upload * parties + decrypt
        rows.append({
            "parties": parties,
            "shards": shards,
            "modelled_root_seconds": sharded,
            "modelled_flat_root_seconds": flat,
        })
    return rows


def test_bench_shard_root_cost_sublinear(benchmark):
    measured = benchmark.pedantic(
        lambda: [measure(p) for p in MEASURED_COUNTS],
        rounds=1, iterations=1)

    for row in measured:
        # The service defaults to ceil(sqrt(P)) leaves, one partial each.
        assert row["shards"] == math.isqrt(row["parties"] - 1) + 1
        assert row["partial_uploads"] == row["shards"]

    rows = extrapolate(measured)
    root = [row["modelled_root_seconds"] for row in rows]
    flat = [row["modelled_flat_root_seconds"] for row in rows]
    growth = PARTY_COUNTS[-1] / PARTY_COUNTS[0]
    root_growth = root[-1] / root[0]
    flat_growth = flat[-1] / flat[0]

    table = format_table(
        ["Parties", "Shards", "Root (s/round)", "Flat root (s/round)",
         "Speedup"],
        [[f"{row['parties']:,}", row["shards"],
          f"{row['modelled_root_seconds']:.4f}",
          f"{row['modelled_flat_root_seconds']:.4f}",
          f"{row['modelled_flat_root_seconds'] / row['modelled_root_seconds']:.1f}x"]
         for row in rows],
        title="Root-coordinator cost, sharded vs flat (modelled)")
    publish("bench_shard", table)

    snapshot = {
        "benchmark": "shard_root_cost",
        "seed": bench_seed(SEED_STREAM),
        "key_bits": KEY_BITS,
        "physical_key_bits": PHYSICAL_KEY_BITS,
        "vector_size": VECTOR_SIZE,
        "measured": measured,
        "extrapolated": rows,
        "root_cost_growth_1k_to_100k": root_growth,
        "flat_cost_growth_1k_to_100k": flat_growth,
        "party_growth_1k_to_100k": growth,
        "sublinear": root_growth < growth,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # Root cost rises with the federation, but sub-linearly: growing
    # parties 100x grows the sharded root ~sqrt(100x) while the flat
    # root tracks the full 100x.
    assert root == sorted(root)
    assert root_growth < growth, (root_growth, growth)
    assert root_growth < flat_growth
    assert flat_growth > growth * 0.5
