"""Design-choice ablation: Montgomery (CIOS) vs Barrett reduction.

The paper builds its GPU multiplier on Montgomery/CIOS; Barrett is the
standard alternative.  This benchmark compares them on both axes:

- *work model*: word multiplications per modular multiplication
  (Montgomery interleaves the reduction, ~2s^2 + s; Barrett needs the
  full product plus two reduction multiplications, ~3s^2);
- *measured*: actual Python wall-clock of a squaring chain under each
  reduction, reported for reference only -- CPython delegates big-int
  multiplication to its own C routines, which flattens the difference
  the word-work model (the GPU-relevant metric) captures.
"""

import time

from benchmarks.common import bench_key_sizes, bench_random, publish
from repro.experiments import format_table
from repro.mpint.advanced import BarrettContext, barrett_mod_mul
from repro.mpint.montgomery import (
    MontgomeryContext,
    cios_work_estimate,
    montgomery_multiply,
)

CHAIN_LENGTH = 300


def barrett_work_estimate(limbs: int) -> int:
    """Word multiplications of one Barrett modular multiplication."""
    return 3 * limbs * limbs


def timed_chain(n: int, seed: int):
    """Run the same square-and-multiply chain under both reductions."""
    rng = bench_random(seed)
    base = rng.randrange(n)

    montgomery = MontgomeryContext(n)
    start = time.perf_counter()
    x = montgomery.to_montgomery(base)
    for _ in range(CHAIN_LENGTH):
        x = montgomery_multiply(x, x, montgomery)
    montgomery_result = montgomery.from_montgomery(x)
    montgomery_seconds = time.perf_counter() - start

    barrett = BarrettContext(n)
    start = time.perf_counter()
    y = base
    for _ in range(CHAIN_LENGTH):
        y = barrett_mod_mul(y, y, barrett)
    barrett_seconds = time.perf_counter() - start

    assert montgomery_result == y    # both must compute the same chain
    return montgomery_seconds, barrett_seconds


def collect():
    rows = []
    for key_bits in bench_key_sizes():
        limbs = 2 * key_bits // 32            # ciphertext-sized operands
        n = bench_random(key_bits).getrandbits(2 * key_bits) \
            | (1 << (2 * key_bits - 1)) | 1
        mont_seconds, barrett_seconds = timed_chain(n, seed=key_bits)
        rows.append((key_bits,
                     cios_work_estimate(limbs),
                     barrett_work_estimate(limbs),
                     mont_seconds, barrett_seconds))
    return rows


def test_ablation_reduction(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["Key", "CIOS words/modmul", "Barrett words/modmul",
         f"Montgomery chain (s, {CHAIN_LENGTH} squarings)",
         "Barrett chain (s)"],
        [[key_bits, f"{cios:,}", f"{barrett:,}",
          f"{mont_s:.4f}", f"{barrett_s:.4f}"]
         for key_bits, cios, barrett, mont_s, barrett_s in rows],
        title="Reduction-strategy ablation: Montgomery vs Barrett")
    publish("ablation_reduction", table)

    for key_bits, cios, barrett, _mont_s, _barrett_s in rows:
        # The paper's choice: Montgomery's interleaved schedule does
        # ~2/3 the word work of Barrett at every size.
        assert cios < barrett, key_bits
        assert barrett / cios < 1.6, key_bits
