"""Beyond-the-paper ablation: scaling the participant count.

The paper fixes p = 4 servers; the participant count enters FLBooster's
design twice, and this sweep makes both visible:

- **overflow bits**: ``b = ceil(log2 p)`` widens every slot, so packing
  capacity (and thus compression) *shrinks* as the federation grows
  (Eq. 11's denominator);
- **aggregation traffic**: uploads/downloads grow linearly in p while
  the representative client's HE time stays flat (parallel clients).
"""

from benchmarks.common import fast_mode, publish
from repro.baselines import FLBOOSTER
from repro.experiments import format_table, run_epoch_experiment
from repro.quantization.packing import packing_capacity

CLIENT_COUNTS = (2, 4, 8) if fast_mode() else (2, 4, 8, 16, 32)
KEY = 1024


def collect():
    rows = []
    for clients in CLIENT_COUNTS:
        report = run_epoch_experiment(FLBOOSTER, "Homo LR", "Synthetic",
                                      KEY, num_clients=clients)
        capacity = packing_capacity(KEY, 30, clients)
        rows.append((clients, capacity, report))
    return rows


def test_scaling_participants(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["Clients", "Packing capacity", "Epoch (s)", "Comm (s)",
         "HE (s)", "Wire bytes"],
        [[clients, capacity, f"{report.epoch_seconds:.3f}",
          f"{report.comm_seconds:.3f}", f"{report.he_seconds:.4f}",
          f"{report.wire_bytes:,}"]
         for clients, capacity, report in rows],
        title="Participant scaling (FLBooster, Homo LR @1024)")
    publish("scaling_participants", table)

    capacities = [capacity for _clients, capacity, _report in rows]
    comm = [report.comm_seconds for _c, _cap, report in rows]
    wire = [report.wire_bytes for _c, _cap, report in rows]
    # Capacity is non-increasing in p (wider overflow bits).
    assert capacities == sorted(capacities, reverse=True)
    # Traffic grows with the federation.
    assert wire == sorted(wire)
    assert comm == sorted(comm)
    # Comm grows roughly linearly: doubling clients less than triples it.
    for (c1, _cap1, r1), (c2, _cap2, r2) in zip(rows, rows[1:]):
        growth = r2.comm_seconds / r1.comm_seconds
        assert 1.0 < growth < 3.0, (c1, c2, growth)
