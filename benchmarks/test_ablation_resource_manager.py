"""Design-choice ablation: which resource-manager mechanism buys what.

Beyond the paper's system-level Table V, this decomposes the GPU-side gap
between HAFLO and FLBooster into its three mechanisms (Sec. IV-A2):

- block-size selection vs a fixed maximal block,
- branch combining vs divergence-inflated registers,
- the memory table vs per-launch device allocation.
"""

from benchmarks.common import bench_key_sizes, publish
from repro.experiments import format_table
from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.gpu.device import RTX_3090
from repro.gpu.resource_manager import (
    BASE_REGISTERS_PER_THREAD,
    COMMON_BLOCK_SIZES,
    LAUNCH_LATENCY_MANAGED,
    LAUNCH_LATENCY_UNMANAGED,
    REGISTERS_PER_LIMB,
    UNMANAGED_BRANCH_REGISTER_FACTOR,
    ResourceManager,
)


def block_size_sweep(key_bits):
    """Occupancy of each candidate block size for ciphertext operands."""
    manager = ResourceManager(managed=True)
    limbs = DEFAULT_PROFILE.ciphertext_limbs(key_bits)
    plan = manager.plan(4096, limbs)
    registers = plan.registers_per_thread
    rows = {}
    for block in COMMON_BLOCK_SIZES:
        if block < plan.threads_per_task:
            continue
        resident = manager._resident_threads(block, registers)
        rows[block] = resident / RTX_3090.max_threads_per_sm
    return plan.block_size, rows


def register_factor_sweep(key_bits):
    """Occupancy as branch divergence inflates register demand."""
    manager = ResourceManager(managed=True)
    limbs = DEFAULT_PROFILE.ciphertext_limbs(key_bits)
    plan = manager.plan(4096, limbs)
    base = BASE_REGISTERS_PER_THREAD + \
        REGISTERS_PER_LIMB * plan.limbs_per_thread
    out = {}
    for factor in (1, 2, UNMANAGED_BRANCH_REGISTER_FACTOR):
        resident = manager._resident_threads(plan.block_size, base * factor)
        out[factor] = resident / RTX_3090.max_threads_per_sm
    return out


def collect():
    results = []
    for key_bits in bench_key_sizes():
        chosen, occupancies = block_size_sweep(key_bits)
        factors = register_factor_sweep(key_bits)
        results.append((key_bits, chosen, occupancies, factors))
    return results


def test_ablation_resource_manager(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for key_bits, chosen, occupancies, factors in results:
        for block, occupancy in sorted(occupancies.items()):
            marker = " <= chosen" if block == chosen else ""
            rows.append([key_bits, f"block={block}{marker}",
                         f"{occupancy:.0%}"])
        for factor, occupancy in sorted(factors.items()):
            rows.append([key_bits, f"register x{factor} (branches)",
                         f"{occupancy:.0%}"])
        rows.append([key_bits, "launch latency managed/unmanaged",
                     f"{LAUNCH_LATENCY_MANAGED * 1e6:.0f}us / "
                     f"{LAUNCH_LATENCY_UNMANAGED * 1e6:.0f}us"])
    table = format_table(
        ["Key", "Mechanism", "SM occupancy / value"],
        rows,
        title="Resource-manager design-choice ablation")
    publish("ablation_resource_manager", table)

    for key_bits, chosen, occupancies, factors in results:
        # The chosen block size is (one of) the occupancy maximizers.
        assert occupancies[chosen] == max(occupancies.values()), key_bits
        # Register inflation strictly degrades occupancy.
        assert factors[1] >= factors[2] >= \
            factors[UNMANAGED_BRANCH_REGISTER_FACTOR], key_bits
        assert factors[UNMANAGED_BRANCH_REGISTER_FACTOR] < \
            0.7 * factors[1], key_bits
