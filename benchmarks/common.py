"""Shared helpers for the table/figure benchmarks.

Every benchmark prints its reproduced table to stdout (visible with
``pytest -s``) and writes it to ``benchmarks/results/<name>.txt`` so the
output survives pytest's capture.  EXPERIMENTS.md summarizes the
paper-versus-measured comparison these files feed.
"""

from __future__ import annotations

import os
import random
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Key sizes swept by the paper.
KEY_SIZES = (1024, 2048, 4096)

#: The evaluation grid.
MODELS = ("Homo LR", "Hetero LR", "Hetero SBT", "Hetero NN")
DATASETS = ("RCV1", "Avazu", "Synthetic")


def master_seed() -> int:
    """The one seed every benchmark RNG derives from.

    Defaults to 0 so the derived streams equal the historical hardcoded
    seeds; set ``REPRO_TEST_SEED`` to shift every stream at once.
    """
    return int(os.environ.get("REPRO_TEST_SEED", "0"))


def bench_seed(stream: int) -> int:
    """Combine the master seed with a per-benchmark stream id."""
    return master_seed() * 1_000_003 + stream


def bench_rng(stream: int):
    """A numpy Generator on the given stream of the master seed."""
    import numpy as np
    return np.random.default_rng(bench_seed(stream))


def bench_random(stream: int) -> random.Random:
    """A stdlib Random on the given stream of the master seed."""
    return random.Random(bench_seed(stream))


def fast_mode() -> bool:
    """True when REPRO_BENCH_FAST=1 trims sweeps to a subset."""
    return os.environ.get("REPRO_BENCH_FAST", "") == "1"


def bench_key_sizes() -> tuple:
    """Key sizes to sweep (trimmed in fast mode)."""
    return (1024,) if fast_mode() else KEY_SIZES


def bench_models() -> tuple:
    """Models to sweep (trimmed in fast mode)."""
    return ("Homo LR", "Hetero LR") if fast_mode() else MODELS


def bench_datasets() -> tuple:
    """Datasets to sweep (trimmed in fast mode)."""
    return ("Synthetic",) if fast_mode() else DATASETS


def publish(name: str, text: str) -> None:
    """Print a reproduced table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
