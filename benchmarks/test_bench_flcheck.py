"""flcheck throughput: full-tree scan versus ``--changed-only``.

The lint gate rides every CI push under a ``--max-seconds 50`` budget,
so its wall time is a tracked artifact like any table: this benchmark
times a full seven-rule run over ``src/repro`` (per-module rules plus
the whole-program call graph and summary fixpoints) and a
``--changed-only`` run scoped to one file, which still builds the full
call graph but re-parses nothing thanks to the mtime unit cache.  The
snapshot lands in ``BENCH_flcheck.json`` at the repo root so CI can
diff scan cost as the rule set and the codebase grow.
"""

import json
import time
from pathlib import Path

from benchmarks.common import publish
from repro.analysis import ALL_RULES, run_lint
from repro.experiments import format_table

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_flcheck.json"
SRC = REPO_ROOT / "src" / "repro"

#: One representative changed file for the scoped run.
CHANGED = SRC / "federation" / "eventloop.py"


def _measure(changed_paths=None):
    started = time.perf_counter()
    report = run_lint([SRC], changed_paths=changed_paths)
    elapsed = time.perf_counter() - started
    return report, elapsed


def test_bench_flcheck():
    full, full_seconds = _measure()
    scoped, scoped_seconds = _measure(
        changed_paths={CHANGED.resolve()})

    assert full.clean, [d.format() for d in full.findings]
    assert scoped.clean
    assert full.files_scanned == scoped.files_scanned

    rows = [
        ["full tree", full.files_scanned, len(full.rules_run),
         f"{full_seconds:.2f}", len(full.findings)],
        ["--changed-only (1 file)", scoped.files_scanned,
         len(scoped.rules_run), f"{scoped_seconds:.2f}",
         len(scoped.findings)],
    ]
    publish("bench_flcheck", format_table(
        ["scan", "files", "rules", "seconds", "findings"], rows))

    SNAPSHOT.write_text(json.dumps({
        "rules": sorted(rule.name for rule in ALL_RULES),
        "files_scanned": full.files_scanned,
        "full": {
            "seconds": round(full_seconds, 3),
            "findings": len(full.findings),
            "suppressed": full.suppressed,
        },
        "changed_only": {
            "seconds": round(scoped_seconds, 3),
            "findings": len(scoped.findings),
        },
    }, indent=2, sort_keys=True) + "\n")

    # The CI gate runs with --max-seconds 50; stay an order under it.
    assert full_seconds < 50.0
