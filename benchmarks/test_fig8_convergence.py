"""Fig. 8: loss-versus-wallclock convergence on Synthetic at 1024 bits.

FLBooster reaches any given loss level far sooner in modelled wall-clock
than HAFLO, which beats FATE; all three converge to equivalent losses
(the quantization runs at the paper's full precision via
``bc_capacity="physical"``).
"""

import numpy as np

from benchmarks.common import bench_models, fast_mode, publish
from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments.plots import ascii_chart
from repro.experiments import format_table, run_training

SYSTEMS = (FATE, HAFLO, FLBOOSTER)
MAX_EPOCHS = 3 if fast_mode() else 6


def collect():
    traces = {}
    for model in bench_models():
        for config in SYSTEMS:
            traces[(model, config.name)] = run_training(
                config, model, "Synthetic", 1024, max_epochs=MAX_EPOCHS,
                physical_key_bits=256, bc_capacity="physical")
    return traces


def test_fig8_convergence(benchmark):
    traces = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for model in bench_models():
        for system in ("FATE", "HAFLO", "FLBooster"):
            trace = traces[(model, system)]
            total = trace.cumulative_seconds[-1]
            rows.append([model, system, len(trace.losses),
                         f"{trace.losses[0]:.4f}",
                         f"{trace.final_loss:.4f}", f"{total:.1f}"])
    table = format_table(
        ["Model", "System", "Epochs", "First loss", "Final loss",
         "Total time (s, modelled)"],
        rows,
        title="Fig. 8 -- convergence on Synthetic @1024")
    publish("fig8_convergence", table)

    # Also persist the raw curves and an ASCII rendering of the figure.
    curve_lines = ["model\tsystem\tepoch\tseconds\tloss"]
    for (model, system), trace in traces.items():
        for epoch, (seconds, loss) in enumerate(
                zip(trace.cumulative_seconds, trace.losses)):
            curve_lines.append(
                f"{model}\t{system}\t{epoch}\t{seconds:.3f}\t{loss:.6f}")
    publish("fig8_convergence_curves", "\n".join(curve_lines))

    charts = []
    for model in bench_models():
        series = {
            system: list(zip(traces[(model, system)].cumulative_seconds,
                             traces[(model, system)].losses))
            for system in ("FATE", "HAFLO", "FLBooster")
        }
        charts.append(ascii_chart(
            series, width=56, height=12, log_x=True,
            title=f"Fig. 8 -- {model}: loss vs modelled seconds "
                  f"(log time axis)",
            x_label="modelled seconds (log)", y_label="training loss"))
    publish("fig8_convergence_chart", "\n\n".join(charts))

    for model in bench_models():
        fate = traces[(model, "FATE")]
        haflo = traces[(model, "HAFLO")]
        flb = traces[(model, "FLBooster")]
        # Same number of epochs reaches an equivalent loss...
        assert np.isfinite(flb.final_loss)
        assert abs(flb.final_loss - fate.final_loss) / fate.final_loss \
            < 0.1, model
        # ...in a fraction of the wall-clock (paper: 28.7x-144.3x vs
        # FATE, 14.3x-75.2x vs HAFLO; conservative bounds here because
        # the physical-capacity packing under-credits compression).
        assert flb.cumulative_seconds[-1] * 8 < \
            fate.cumulative_seconds[-1], model
        assert flb.cumulative_seconds[-1] * 3 < \
            haflo.cumulative_seconds[-1], model
        assert haflo.cumulative_seconds[-1] < \
            fate.cumulative_seconds[-1], model
