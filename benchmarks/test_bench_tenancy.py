"""Beyond-the-paper ablation: multi-tenant isolation and pool sharing.

Two claims, both snapshotted to ``BENCH_tenancy.json`` at the repo root:

1. **Noisy-neighbor latency**: a quiet tenant's per-round modelled
   latency under a co-tenant's sustained retry-storm flood stays within
   a small factor of its dedicated-deployment latency -- tenant-scoped
   admission (weighted queue slices + token-bucket quotas) absorbs the
   storm inside the flooding tenant's own share.
2. **Shared-pool amortization**: one elastic pool sized by the
   *combined* load (``ceil(sqrt(sum P_t))`` leaves) serves every tenant
   with fewer leaf aggregators than the sum of dedicated per-tenant
   pools, while the per-tenant root cost stays in the same regime.
"""

import json
from pathlib import Path

from benchmarks.common import bench_rng, bench_seed, publish
from repro.experiments import format_table
from repro.federation.eventloop import VirtualClock
from repro.federation.faults import FaultPlan
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.federation.shard import MultiTenantAggregationService
from repro.federation.tenancy import Tenant, TenantRegistry

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_tenancy.json"

ROUNDS = 3
VECTOR_SIZE = 8
KEY_BITS = 256
PHYSICAL_KEY_BITS = 128
QUEUE_CAPACITY = 32
FLOOD_INTENSITY = 3
SEED_STREAM = 97

#: (tenant_id, num_clients, weight, noisy?)
TENANT_GRID = (("tenant-noisy", 4, 1.0, True),
               ("tenant-quiet", 4, 2.0, False))


def build_world(tenant_rows):
    """One shared pool serving ``tenant_rows``; returns its pieces."""
    seed = bench_seed(SEED_STREAM)
    clock = VirtualClock()
    runtimes = {}
    tenants = []
    for offset, (tenant_id, clients, weight, noisy) in \
            enumerate(tenant_rows):
        plan = None
        if noisy:
            plan = FaultPlan(seed=seed + 1)
            for round_index in range(ROUNDS):
                plan = plan.tenant_flood(tenant_id, round_index,
                                         intensity=FLOOD_INTENSITY)
        runtime = FederationRuntime(
            FLBOOSTER_SYSTEM, num_clients=clients, key_bits=KEY_BITS,
            physical_key_bits=PHYSICAL_KEY_BITS,
            seed=seed + 10 * offset, fault_plan=plan,
            min_quorum=1 if noisy else None)
        runtimes[tenant_id] = runtime
        tenants.append(Tenant(
            tenant_id=tenant_id, weight=weight, quota_rate=4.0,
            quota_burst=8,
            key_fingerprint=runtime.aggregator.client_engine
            .fingerprint().hex()))
    service = MultiTenantAggregationService(
        TenantRegistry(tenants), clock=clock,
        queue_capacity=QUEUE_CAPACITY)
    for offset, (tenant_id, _clients, _weight, _noisy) in \
            enumerate(tenant_rows):
        service.attach(tenant_id, runtimes[tenant_id].aggregator,
                       seed=seed + 10 * offset)
    return clock, runtimes, service


def run_rounds(tenant_rows):
    """Drive ``ROUNDS`` rounds; returns per-tenant per-round seconds
    and the pool/root cost profile."""
    clock, runtimes, service = build_world(tenant_rows)
    seed = bench_seed(SEED_STREAM)
    round_seconds = {row[0]: [] for row in tenant_rows}
    partial_uploads = {row[0]: 0 for row in tenant_rows}
    for round_index in range(ROUNDS):
        ledgers = {tenant_id: runtime.begin_epoch()
                   for tenant_id, runtime in runtimes.items()}
        vectors = {}
        for tenant_id, clients, _weight, _noisy in tenant_rows:
            rng = bench_rng(SEED_STREAM + hash(tenant_id) % 1_000
                            + round_index)
            vectors[tenant_id] = [
                rng.uniform(-0.5, 0.5, size=VECTOR_SIZE)
                for _ in range(clients)]
        service.run_round(vectors, round_index)
        for tenant_id, ledger in ledgers.items():
            round_seconds[tenant_id].append(ledger.total_seconds)
            partial_uploads[tenant_id] += ledger.count("comm.partial")
        clock.advance(max(ledger.total_seconds
                          for ledger in ledgers.values()))
    return {
        "seed": seed,
        "round_seconds": round_seconds,
        "mean_seconds": {t: sum(s) / len(s)
                         for t, s in round_seconds.items()},
        "partial_uploads": partial_uploads,
        "pool_leaves": len(service.pool.active),
    }


def test_bench_tenancy_noisy_neighbor_and_pool_sharing(benchmark):
    quiet_row = next(row for row in TENANT_GRID if not row[3])
    shared, dedicated = benchmark.pedantic(
        lambda: (run_rounds(TENANT_GRID), run_rounds((quiet_row,))),
        rounds=1, iterations=1)

    quiet = quiet_row[0]
    noisy_latency = shared["mean_seconds"][quiet]
    solo_latency = dedicated["mean_seconds"][quiet]
    latency_ratio = noisy_latency / solo_latency

    # Dedicated deployments: one elastic pool per tenant.
    dedicated_leaves = sum(
        run_rounds((row,))["pool_leaves"] for row in TENANT_GRID)

    table = format_table(
        ["Deployment", "Leaves", f"{quiet} (s/round)", "Ratio"],
        [["shared pool + flood", shared["pool_leaves"],
          f"{noisy_latency:.4f}", f"{latency_ratio:.2f}x"],
         ["dedicated pools", dedicated_leaves,
          f"{solo_latency:.4f}", "1.00x"]],
        title="Quiet-tenant latency under a noisy neighbor")
    publish("bench_tenancy", table)

    snapshot = {
        "benchmark": "tenancy_isolation",
        "seed": shared["seed"],
        "rounds": ROUNDS,
        "key_bits": KEY_BITS,
        "physical_key_bits": PHYSICAL_KEY_BITS,
        "flood_intensity": FLOOD_INTENSITY,
        "tenants": [{"tenant_id": t, "num_clients": c, "weight": w,
                     "noisy": n} for t, c, w, n in TENANT_GRID],
        "shared_pool": {
            "leaves": shared["pool_leaves"],
            "mean_round_seconds": shared["mean_seconds"],
            "partial_uploads": shared["partial_uploads"],
        },
        "dedicated_pools": {
            "leaves": dedicated_leaves,
            "quiet_mean_round_seconds": solo_latency,
            "quiet_partial_uploads": dedicated["partial_uploads"][quiet],
        },
        "quiet_tenant": quiet,
        "quiet_latency_ratio": latency_ratio,
        "pool_amortization": dedicated_leaves / shared["pool_leaves"],
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # The quiet tenant's latency under its neighbour's flood stays in
    # the same regime as a dedicated deployment (the shared pool holds
    # more leaves, so its rounds are not byte-equal in *time* -- only
    # in decoded weights, which the isolation tests pin exactly).
    assert 0.5 < latency_ratio < 2.0, latency_ratio
    # One shared pool needs fewer leaf aggregators than the sum of
    # dedicated per-tenant pools: ceil(sqrt(sum P)) < sum ceil(sqrt(P)).
    assert shared["pool_leaves"] < dedicated_leaves
