"""Codec-layer ablation: ciphertext counts and summand capacity.

The dense Eq. 9 layout charges every logical position a full slot, so a
~0.1%-dense 10k-parameter gradient (RCV1/Avazu-shaped) pays >99% of its
ciphertexts to carry quantized zeros.  The sparse index+value codec
stores only the support; the interleaved codec spends extra guard bits
to raise the safe-summand bound at the same key size.

The sweep packs one synthetic sparse gradient under all three registered
codecs and snapshots ciphertext counts, plaintext-space utilization and
summand capacity into ``BENCH_packing.json`` at the repo root, so CI can
diff the >=50x sparse reduction and the interleave capacity claim
without re-running the sweep.
"""

import json
from pathlib import Path

import numpy as np

from benchmarks.common import bench_rng, bench_seed, publish
from repro.experiments import format_table
from repro.quantization.codecs import InterleavedCodec, SparseCodec
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker

REPO_ROOT = Path(__file__).parent.parent
SNAPSHOT = REPO_ROOT / "BENCH_packing.json"

NUM_PARAMS = 10_000
DENSITY = 0.001          # 0.1% of positions carry gradient mass.
PLAINTEXT_BITS = 2048
R_BITS = 30
NUM_PARTIES = 8
SEED_STREAM = 89


def sparse_gradient():
    """A 10k-parameter gradient with ~0.1% nonzero positions."""
    rng = bench_rng(SEED_STREAM)
    nnz = int(NUM_PARAMS * DENSITY)
    gradient = np.zeros(NUM_PARAMS)
    support = rng.choice(NUM_PARAMS, size=nnz, replace=False)
    gradient[support] = rng.uniform(-0.5, 0.5, size=nnz)
    return gradient


def measure(codec, gradient):
    """Pack one gradient and report the codec's wire economics."""
    words = codec.pack_values(gradient)
    n = len(gradient)
    assert codec.words_needed(n) == len(words)
    decoded = codec.decode_words(words, n)
    assert len(decoded) == n
    return {
        "codec": codec.codec_id,
        "ciphertexts": len(words),
        "capacity_per_word": codec.capacity,
        "slot_bits": codec.slot_bits,
        "max_safe_summands": codec.max_safe_summands(),
        "plaintext_space_utilization": codec.achieved_psu(n),
    }


def test_bench_packing_codecs(benchmark):
    scheme = QuantizationScheme(alpha=1.0, r_bits=R_BITS,
                                num_parties=NUM_PARTIES)
    gradient = sparse_gradient()
    codecs = [
        BatchPacker(scheme, plaintext_bits=PLAINTEXT_BITS),
        InterleavedCodec(scheme, plaintext_bits=PLAINTEXT_BITS),
        SparseCodec.for_values(gradient, scheme,
                               plaintext_bits=PLAINTEXT_BITS),
    ]
    rows = benchmark.pedantic(
        lambda: [measure(codec, gradient) for codec in codecs],
        rounds=1, iterations=1)
    by_codec = {row["codec"]: row for row in rows}

    dense, inter = by_codec["dense"], by_codec["interleave"]
    sparse = by_codec["sparse"]
    reduction = dense["ciphertexts"] / sparse["ciphertexts"]
    capacity_gain = (inter["max_safe_summands"]
                     / dense["max_safe_summands"])

    table = format_table(
        ["Codec", "Ciphertexts", "Slots/word", "Slot bits",
         "Safe summands", "PSU"],
        [[row["codec"], row["ciphertexts"], row["capacity_per_word"],
          row["slot_bits"], row["max_safe_summands"],
          f"{row['plaintext_space_utilization']:.3f}"]
         for row in rows],
        title=(f"Packing codecs, {NUM_PARAMS:,} params at "
               f"{DENSITY:.1%} density, {PLAINTEXT_BITS}-bit plaintext"))
    publish("bench_packing", table)

    snapshot = {
        "benchmark": "packing_codecs",
        "seed": bench_seed(SEED_STREAM),
        "num_params": NUM_PARAMS,
        "density": DENSITY,
        "plaintext_bits": PLAINTEXT_BITS,
        "r_bits": R_BITS,
        "num_parties": NUM_PARTIES,
        "codecs": rows,
        "sparse_ciphertext_reduction": reduction,
        "interleave_summand_capacity_gain": capacity_gain,
    }
    SNAPSHOT.write_text(json.dumps(snapshot, indent=2) + "\n")

    # The issue's acceptance bar: >=50x fewer ciphertexts for the
    # 0.1%-dense gradient, and a strictly higher summand bound from the
    # guard band at equal key size.
    assert reduction >= 50, reduction
    assert inter["max_safe_summands"] > dense["max_safe_summands"]
    # Sanity: the interleaved layout trades capacity, not correctness.
    assert inter["ciphertexts"] >= dense["ciphertexts"]
    assert sparse["ciphertexts"] <= len(gradient[gradient != 0.0])
