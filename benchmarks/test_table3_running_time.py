"""Table III: average running time per epoch, FATE / HAFLO / FLBooster.

The paper's headline table: 4 models x 3 datasets x 3 key sizes.  The
reproduction runs scaled datasets with modelled time (DESIGN.md), so the
comparison targets are the *ratios*: FLBooster beats HAFLO by 1-2 orders
and FATE by 2-3, gains grow with the key size, and the relative gain is
smallest for Hetero SBT.
"""

from benchmarks.common import (
    bench_datasets,
    bench_key_sizes,
    bench_models,
    publish,
)
from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments import (
    format_table,
    run_epoch_experiment,
    scaled_dataset,
)
from repro.experiments.extrapolate import extrapolate_report

SYSTEMS = (FATE, HAFLO, FLBOOSTER)

#: Paper Table III FATE column (seconds) for the extrapolation check.
PAPER_FATE_1024 = {
    ("Homo LR", "RCV1"): 10009.9, ("Homo LR", "Avazu"): 79457.9,
    ("Homo LR", "Synthetic"): 1327.2,
    ("Hetero LR", "RCV1"): 4760.0, ("Hetero LR", "Avazu"): 25109.8,
    ("Hetero LR", "Synthetic"): 706.6,
    ("Hetero SBT", "RCV1"): 36489.2, ("Hetero SBT", "Avazu"): 92526.3,
    ("Hetero SBT", "Synthetic"): 5462.3,
    ("Hetero NN", "RCV1"): 26696.7, ("Hetero NN", "Avazu"): 83324.7,
    ("Hetero NN", "Synthetic"): 3974.2,
}


def collect():
    cells = {}
    for model in bench_models():
        for dataset in bench_datasets():
            for key_bits in bench_key_sizes():
                for config in SYSTEMS:
                    report = run_epoch_experiment(config, model, dataset,
                                                  key_bits)
                    cells[(model, dataset, key_bits, config.name)] = report
    return cells


def test_table3_running_time(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    seen = sorted({key[:3] for key in cells},
                  key=lambda k: (bench_models().index(k[0]), k[1], k[2]))
    for model, dataset, key_bits in seen:
        fate_report = cells[(model, dataset, key_bits, "FATE")]
        fate = fate_report.epoch_seconds
        haflo = cells[(model, dataset, key_bits, "HAFLO")].epoch_seconds
        flb = cells[(model, dataset, key_bits, "FLBooster")].epoch_seconds
        extrapolated = extrapolate_report(fate_report,
                                          scaled_dataset(dataset))
        paper = PAPER_FATE_1024.get((model, dataset)) \
            if key_bits == 1024 else None
        rows.append([model, dataset, key_bits,
                     f"{fate:.2f}", f"{haflo:.2f}", f"{flb:.4f}",
                     f"{fate / flb:.1f}x", f"{haflo / flb:.1f}x",
                     f"{extrapolated:,.0f}",
                     f"{paper:,.0f}" if paper else "-"])
    table = format_table(
        ["Model", "Dataset", "Key", "FATE (s)", "HAFLO (s)",
         "FLBooster (s)", "FATE/FLB", "HAFLO/FLB",
         "FATE paper-scale est.", "FATE paper"],
        rows,
        title="Table III -- epoch time (modelled, scaled datasets)")
    publish("table3_running_time", table)

    for (model, dataset, key_bits), _ in [(key[:3], None)
                                          for key in cells
                                          if key[3] == "FATE"]:
        fate = cells[(model, dataset, key_bits, "FATE")].epoch_seconds
        haflo = cells[(model, dataset, key_bits, "HAFLO")].epoch_seconds
        flb = cells[(model, dataset, key_bits, "FLBooster")].epoch_seconds
        # Ordering: FLBooster < HAFLO < FATE in every cell.
        assert flb < haflo < fate, (model, dataset, key_bits)
        # Magnitude: paper reports 14.3x-138x over HAFLO; allow a wide
        # band around it for the scaled substrate.
        assert 5 < haflo / flb < 400, (model, dataset, key_bits)

    if len(bench_key_sizes()) > 1:
        # Acceleration over FATE grows with the key size (paper Sec. VI-C).
        for model in bench_models():
            for dataset in bench_datasets():
                small = cells[(model, dataset, 1024, "FATE")].epoch_seconds \
                    / cells[(model, dataset, 1024, "FLBooster")].epoch_seconds
                large = cells[(model, dataset, 4096, "FATE")].epoch_seconds \
                    / cells[(model, dataset, 4096, "FLBooster")].epoch_seconds
                assert large > small, (model, dataset)
