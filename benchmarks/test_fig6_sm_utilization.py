"""Fig. 6: GPU SM utilization in HE operations, HAFLO vs FLBooster.

The resource manager (block sizing, register budgeting, branch combining)
is what separates the two curves; both degrade as the key size raises
register pressure.
"""

from benchmarks.common import bench_key_sizes, publish
from repro.baselines import FLBOOSTER, HAFLO
from repro.experiments import format_table, physical_key_for, sm_utilization
from repro.experiments.plots import ascii_chart
from repro.federation.runtime import FederationRuntime


def measured_utilization(config, key_bits):
    """Utilization as actually observed on the device after a workload."""
    runtime = FederationRuntime(config, num_clients=4, key_bits=key_bits,
                                physical_key_bits=physical_key_for(key_bits))
    runtime.begin_epoch()
    engine = runtime.client_engine
    ciphertexts = engine.encrypt_batch(list(range(256)))
    engine.decrypt_batch(ciphertexts)
    return runtime.gpu_device().mean_sm_utilization()


def collect():
    rows = []
    for key_bits in bench_key_sizes():
        rows.append((key_bits,
                     sm_utilization(FLBOOSTER, key_bits),
                     sm_utilization(HAFLO, key_bits),
                     measured_utilization(FLBOOSTER, key_bits),
                     measured_utilization(HAFLO, key_bits)))
    return rows


def test_fig6_sm_utilization(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["Key", "FLBooster (plan)", "HAFLO (plan)",
         "FLBooster (measured)", "HAFLO (measured)"],
        [[key_bits, f"{flb_plan:.1%}", f"{haflo_plan:.1%}",
          f"{flb_run:.1%}", f"{haflo_run:.1%}"]
         for key_bits, flb_plan, haflo_plan, flb_run, haflo_run in rows],
        title="Fig. 6 -- SM utilization in HE operations")
    publish("fig6_sm_utilization", table)

    if len(rows) > 1:
        chart = ascii_chart(
            {"FLBooster": [(row[0], 100 * row[1]) for row in rows],
             "HAFLO": [(row[0], 100 * row[2]) for row in rows]},
            width=50, height=12, log_x=True,
            title="Fig. 6 -- SM utilization vs key size",
            x_label="key size (bits, log)", y_label="SM utilization (%)")
        publish("fig6_sm_utilization_chart", chart)

    for key_bits, flb_plan, haflo_plan, flb_run, haflo_run in rows:
        assert flb_plan > 3 * haflo_plan, key_bits
        assert flb_run > haflo_run, key_bits
        assert 0 < haflo_plan < flb_plan <= 1.0

    if len(rows) > 1:
        flb_curve = [row[1] for row in rows]
        haflo_curve = [row[2] for row in rows]
        assert flb_curve == sorted(flb_curve, reverse=True)
        assert haflo_curve == sorted(haflo_curve, reverse=True)
