"""Related-work comparison: symmetric masking vs Paillier (paper Sec. II).

Quantifies the temptation the paper's related work warns about: a
FLASHE/ASHE-style symmetric masking scheme aggregates orders of magnitude
faster than Paillier -- and falls to a one-known-pair attack the moment a
mask is reused (demonstrated in ``tests/crypto/test_symmetric_he.py``).
FLBooster's answer is to keep asymmetric Paillier and win the time back
with GPU parallelism + batch compression instead.
"""

import time

import numpy as np

from benchmarks.common import bench_rng, publish
from repro.baselines import FLBOOSTER
from repro.crypto.symmetric_he import MaskingScheme
from repro.experiments import format_table
from repro.federation.runtime import FederationRuntime

VECTOR_LENGTH = 1024
NUM_PARTIES = 4


def collect():
    rng = bench_rng(3)
    vectors = [rng.integers(0, 1 << 20, VECTOR_LENGTH).tolist()
               for _ in range(NUM_PARTIES)]

    # Symmetric masking: wall-clock is a fair proxy (pure integer adds).
    masking = MaskingScheme(key=b"bench", num_parties=NUM_PARTIES, bits=64)
    start = time.perf_counter()
    ciphertexts = [masking.encrypt(vector, round_index=0, party=index)
                   for index, vector in enumerate(vectors)]
    totals = masking.aggregate_decrypt(ciphertexts, round_index=0)
    masking_seconds = time.perf_counter() - start
    expected = [sum(column) for column in zip(*vectors)]
    assert totals == expected

    # Paillier under FLBooster: modelled seconds at the 1024-bit key.
    runtime = FederationRuntime(FLBOOSTER, num_clients=NUM_PARTIES,
                                key_bits=1024, physical_key_bits=256)
    ledger = runtime.begin_epoch()
    float_vectors = [np.asarray(vector, dtype=np.float64) / (1 << 21)
                     for vector in vectors]
    runtime.aggregator.aggregate(float_vectors)
    paillier_seconds = ledger.total_seconds

    return masking_seconds, paillier_seconds


def test_related_work_symmetric(benchmark):
    masking_seconds, paillier_seconds = benchmark.pedantic(
        collect, rounds=1, iterations=1)

    table = format_table(
        ["Scheme", "Round time (s)", "Security"],
        [["Symmetric masking (FLASHE-style)", f"{masking_seconds:.4f}",
          "breaks on mask reuse (known-plaintext)"],
         ["Paillier + FLBooster", f"{paillier_seconds:.4f}",
          "semantically secure (DCRA)"]],
        title="Related work -- symmetric HE vs accelerated Paillier "
              f"({NUM_PARTIES} parties x {VECTOR_LENGTH} values)")
    publish("related_work_symmetric", table)

    # The temptation is real: masking is at least 10x faster even than
    # the fully accelerated Paillier pipeline.
    assert masking_seconds < paillier_seconds
    # But FLBooster keeps the asymmetric gap bounded -- the whole point.
    assert paillier_seconds < 1000 * max(masking_seconds, 1e-6)
