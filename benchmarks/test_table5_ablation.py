"""Table V: ablation -- FLBooster vs w/o GHE vs w/o BC.

Removing batch compression hurts far more than removing the GPU
(communication dominates once HE is fast), and both ablations are slower
than the full system in every cell.
"""

from benchmarks.common import (
    bench_datasets,
    bench_key_sizes,
    bench_models,
    publish,
)
from repro.baselines import FLBOOSTER, WITHOUT_BC, WITHOUT_GHE
from repro.experiments import format_table, run_epoch_experiment

SYSTEMS = (FLBOOSTER, WITHOUT_GHE, WITHOUT_BC)


def collect():
    cells = {}
    for model in bench_models():
        for dataset in bench_datasets():
            for key_bits in bench_key_sizes():
                for config in SYSTEMS:
                    report = run_epoch_experiment(config, model, dataset,
                                                  key_bits)
                    cells[(model, dataset, key_bits, config.name)] = \
                        report.epoch_seconds
    return cells


def test_table5_ablation(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    seen = sorted({key[:3] for key in cells},
                  key=lambda k: (bench_models().index(k[0]), k[1], k[2]))
    for model, dataset, key_bits in seen:
        flb = cells[(model, dataset, key_bits, "FLBooster")]
        no_ghe = cells[(model, dataset, key_bits, "w/o GHE")]
        no_bc = cells[(model, dataset, key_bits, "w/o BC")]
        rows.append([model, dataset, key_bits, f"{flb:.3f}",
                     f"{no_ghe:.3f}", f"{no_bc:.3f}",
                     f"{no_ghe / flb:.1f}x", f"{no_bc / flb:.1f}x"])
    table = format_table(
        ["Model", "Dataset", "Key", "FLBooster (s)", "w/o GHE (s)",
         "w/o BC (s)", "GHE gain", "BC gain"],
        rows,
        title="Table V -- ablation (modelled epoch seconds)")
    publish("table5_ablation", table)

    for model, dataset, key_bits in seen:
        flb = cells[(model, dataset, key_bits, "FLBooster")]
        no_ghe = cells[(model, dataset, key_bits, "w/o GHE")]
        no_bc = cells[(model, dataset, key_bits, "w/o BC")]
        # Full system fastest in every cell.
        assert flb < no_ghe, (model, dataset, key_bits)
        assert flb < no_bc, (model, dataset, key_bits)
        # Paper Sec. VI-E: BC gains (14.3x-126.7x) dwarf GHE gains (~2-9x).
        assert no_bc > no_ghe, (model, dataset, key_bits)
        assert 1.2 < no_ghe / flb < 60, (model, dataset, key_bits)
        assert 5 < no_bc / flb < 400, (model, dataset, key_bits)
