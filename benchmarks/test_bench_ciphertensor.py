"""CipherTensor fusion micro-bench: fused vs unfused Homo-LR epoch.

The lazy CipherTensor planner coalesces the per-round aggregation of N
client deltas into ceil(log2 N) level-wise ``add_batch`` launches; the
eager path issues N-1 pair-at-a-time additions.  Both reduce the same
Paillier ciphertexts with commutative modular multiplications, so the
decrypted model must come out bit-identical -- the fusion win is pure
launch count (and the modelled seconds it drags along).

Emits ``benchmarks/results/BENCH_ciphertensor.json`` alongside the
usual text table.
"""

import json

import numpy as np

from benchmarks.common import RESULTS_DIR, publish
from repro.datasets.generators import synthetic_like
from repro.experiments import format_table
from repro.federation.runtime import FLBOOSTER_SYSTEM, FederationRuntime
from repro.models.homo_lr import HomoLogisticRegression

NUM_CLIENTS = 8
KEY_BITS = 1024
PHYSICAL_KEY_BITS = 256


def run_mode(fused: bool) -> dict:
    """One Homo-LR epoch under the given aggregation mode."""
    dataset = synthetic_like(instances=256, features=32, seed=3)
    model = HomoLogisticRegression(dataset, num_clients=NUM_CLIENTS,
                                   batch_size=64, rounds_per_epoch=2,
                                   seed=3)
    runtime = FederationRuntime(FLBOOSTER_SYSTEM, num_clients=NUM_CLIENTS,
                                key_bits=KEY_BITS,
                                physical_key_bits=PHYSICAL_KEY_BITS,
                                seed=0, fused=fused)
    ledger = runtime.begin_epoch()
    loss = model.run_epoch(runtime)
    return {
        "fused": fused,
        "gpu_launches": ledger.count("gpu.launch"),
        "server_device_launches":
            len(runtime.server_engine.kernels.device.launches),
        "he_add_ops": ledger.count("he.add"),
        "modelled_seconds": ledger.total_seconds,
        "loss": loss,
        "weights": model.weights,
    }


def collect():
    return {"fused": run_mode(fused=True),
            "eager": run_mode(fused=False)}


def test_bench_ciphertensor(benchmark):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    fused, eager = results["fused"], results["eager"]

    # The acceptance bar: strictly fewer simulated-GPU launches at
    # identical decrypted outputs.
    assert fused["gpu_launches"] < eager["gpu_launches"]
    assert fused["server_device_launches"] < \
        eager["server_device_launches"]
    assert np.array_equal(fused["weights"], eager["weights"])
    assert fused["loss"] == eager["loss"]

    rows = []
    for label, stats in (("fused", fused), ("eager", eager)):
        rows.append([label, f"{stats['gpu_launches']:,}",
                     f"{stats['server_device_launches']:,}",
                     f"{stats['he_add_ops']:,}",
                     f"{stats['modelled_seconds']:.3f}",
                     f"{stats['loss']:.6f}"])
    table = format_table(
        ["Mode", "gpu.launch count", "Server device launches",
         "he.add ops", "Modelled seconds", "Epoch loss"], rows)
    header = (f"CipherTensor fusion: Homo LR epoch, Synthetic, "
              f"{NUM_CLIENTS} clients, {KEY_BITS}-bit keys\n")
    publish("bench_ciphertensor", header + table)

    def serializable(stats):
        return {key: value for key, value in stats.items()
                if key != "weights"}

    payload = {
        "benchmark": "ciphertensor_fusion",
        "model": "Homo LR",
        "dataset": "Synthetic",
        "num_clients": NUM_CLIENTS,
        "key_bits": KEY_BITS,
        "physical_key_bits": PHYSICAL_KEY_BITS,
        "fused": serializable(fused),
        "eager": serializable(eager),
        "launch_reduction":
            eager["gpu_launches"] / max(fused["gpu_launches"], 1),
        "identical_outputs":
            bool(np.array_equal(fused["weights"], eager["weights"])),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_ciphertensor.json").write_text(
        json.dumps(payload, indent=2) + "\n")
