"""Table VI: component running-time percentages at a 1024-bit key.

Paper values (Homo LR): FATE 0.1 / 52.0 / 47.9 (others / HE / comm),
HAFLO 0.2 / 0.6 / 99.2, FLBooster 22.1 / 5.9 / 72.0.
"""

from benchmarks.common import bench_datasets, publish
from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments import format_table, run_epoch_experiment

SYSTEMS = (FATE, HAFLO, FLBOOSTER)

#: Paper Table VI reference, RCV1 rows: (others, HE, comm).
PAPER_REFERENCE = {
    "FATE": (0.1, 52.0, 47.9),
    "HAFLO": (0.2, 0.6, 99.2),
    "FLBooster": (22.1, 5.9, 72.0),
}


def collect():
    cells = {}
    for dataset in bench_datasets():
        for config in SYSTEMS:
            report = run_epoch_experiment(config, "Homo LR", dataset, 1024)
            cells[(dataset, config.name)] = report.component_percentages()
    return cells


def test_table6_component_time(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for (dataset, system), p in sorted(cells.items()):
        paper = PAPER_REFERENCE[system]
        rows.append([dataset, system,
                     f"{p['Others']:.1f}", f"{p['HE operations']:.1f}",
                     f"{p['Communication']:.1f}",
                     f"{paper[0]}/{paper[1]}/{paper[2]}"])
    table = format_table(
        ["Dataset", "System", "Others %", "HE %", "Comm %",
         "Paper (o/he/c)"],
        rows,
        title="Table VI -- component running time @1024 (Homo LR)")
    publish("table6_component_time", table)

    for dataset in bench_datasets():
        fate = cells[(dataset, "FATE")]
        haflo = cells[(dataset, "HAFLO")]
        flb = cells[(dataset, "FLBooster")]
        # FATE: HE and comm split the epoch roughly evenly, others ~0.
        assert 35 < fate["HE operations"] < 70, dataset
        assert 30 < fate["Communication"] < 60, dataset
        assert fate["Others"] < 3, dataset
        # HAFLO: GPU kills HE share, communication dominates.
        assert haflo["Communication"] > 90, dataset
        assert haflo["HE operations"] < 8, dataset
        # FLBooster: "others" (pipeline conversion) becomes visible,
        # HE stays small, comm still the largest share.
        assert flb["Others"] > fate["Others"] + 3, dataset
        assert flb["HE operations"] < 15, dataset
        assert flb["Communication"] > 40, dataset
