"""Table VII: convergence bias of FLBooster versus FATE (Eq. 15).

The quantized FLBooster pipeline must land within 5% of the lossless
FATE loss on every model and dataset; LR models show smaller bias than
SBT / NN (the paper's observation that tree and network models are more
sensitive).
"""

from benchmarks.common import bench_datasets, bench_models, fast_mode, publish
from repro.baselines import FATE, FLBOOSTER
from repro.experiments import format_table, run_training

MAX_EPOCHS = 3 if fast_mode() else 5

#: Paper Table VII reference (percent).
PAPER_REFERENCE = {
    ("Homo LR", "RCV1"): 0.3, ("Homo LR", "Avazu"): 0.5,
    ("Homo LR", "Synthetic"): 0.3,
    ("Hetero LR", "RCV1"): 0.2, ("Hetero LR", "Avazu"): 0.3,
    ("Hetero LR", "Synthetic"): 0.2,
    ("Hetero SBT", "RCV1"): 2.1, ("Hetero SBT", "Avazu"): 3.3,
    ("Hetero SBT", "Synthetic"): 1.7,
    ("Hetero NN", "RCV1"): 1.3, ("Hetero NN", "Avazu"): 0.8,
    ("Hetero NN", "Synthetic"): 0.8,
}


def collect():
    biases = {}
    for model in bench_models():
        for dataset in bench_datasets():
            fate = run_training(FATE, model, dataset, 1024,
                                max_epochs=MAX_EPOCHS,
                                physical_key_bits=256)
            flb = run_training(FLBOOSTER, model, dataset, 1024,
                               max_epochs=MAX_EPOCHS,
                               physical_key_bits=256,
                               bc_capacity="physical")
            bias = abs(fate.final_loss - flb.final_loss) / fate.final_loss
            biases[(model, dataset)] = (bias, fate.final_loss,
                                        flb.final_loss)
    return biases


def collect_sensitivity():
    """Bias versus quantization width r (Synthetic, all models).

    The paper fixes r ~ 30; sweeping r shows where the <5% bias claim
    starts to hold and that the discrete models (SBT) are the most
    sensitive -- the mechanism behind Table VII's model ordering.
    """
    from dataclasses import replace

    out = {}
    for model in bench_models():
        fate = run_training(FATE, model, "Synthetic", 1024,
                            max_epochs=MAX_EPOCHS, physical_key_bits=256)
        for r_bits in (8, 12, 16, 30):
            config = replace(FLBOOSTER, r_bits=r_bits,
                             name=f"FLBooster(r={r_bits})")
            flb = run_training(config, model, "Synthetic", 1024,
                               max_epochs=MAX_EPOCHS,
                               physical_key_bits=256,
                               bc_capacity="physical")
            bias = abs(fate.final_loss - flb.final_loss) / fate.final_loss
            out[(model, r_bits)] = bias
    return out


def test_table7_convergence_bias(benchmark):
    biases = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for (model, dataset), (bias, fate_loss, flb_loss) in sorted(
            biases.items(),
            key=lambda kv: (bench_models().index(kv[0][0]), kv[0][1])):
        paper = PAPER_REFERENCE.get((model, dataset))
        rows.append([model, dataset, f"{fate_loss:.5f}", f"{flb_loss:.5f}",
                     f"{100 * bias:.2f}%",
                     f"{paper}%" if paper is not None else "-"])
    table = format_table(
        ["Model", "Dataset", "FATE loss", "FLBooster loss",
         "Bias (Eq. 15)", "Paper bias"],
        rows,
        title="Table VII -- convergence bias @1024")
    publish("table7_convergence_bias", table)

    for (model, dataset), (bias, _fate_loss, _flb_loss) in biases.items():
        # The paper's headline: "much less than 5% ... can be ignored".
        assert bias < 0.05, (model, dataset, bias)


def test_table7_bias_sensitivity(benchmark):
    sensitivity = benchmark.pedantic(collect_sensitivity, rounds=1,
                                     iterations=1)

    rows = [[model, r_bits, f"{100 * bias:.3f}%"]
            for (model, r_bits), bias in sorted(
                sensitivity.items(),
                key=lambda kv: (bench_models().index(kv[0][0]), kv[0][1]))]
    table = format_table(
        ["Model", "r bits", "Bias (Eq. 15)"],
        rows,
        title="Table VII sensitivity -- bias vs quantization width "
              "(Synthetic @1024)")
    publish("table7_bias_sensitivity", table)

    for model in bench_models():
        # The paper's operating point (r ~ 30) keeps bias well below 5%.
        assert sensitivity[(model, 30)] < 0.05, model
        # Widest setting is at least as accurate as the narrowest.
        assert sensitivity[(model, 30)] <= sensitivity[(model, 8)] + 1e-9, \
            model
