"""Fig. 1: FATE per-epoch running time broken into HE / comm / other.

The paper's motivating figure: for all four FL models at a 1024-bit key,
HE operations take >50% of a FATE epoch and communication >40%.
"""

from benchmarks.common import bench_models, publish
from repro.baselines import FATE
from repro.experiments import format_table, run_epoch_experiment


def collect():
    rows = []
    for model in bench_models():
        report = run_epoch_experiment(FATE, model, "RCV1", 1024)
        percentages = report.component_percentages()
        rows.append((model, report, percentages))
    return rows


def test_fig1_fate_breakdown(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["Model", "Epoch (s, modelled)", "HE ops %", "Comm %", "Others %"],
        [[model,
          f"{report.epoch_seconds:.1f}",
          f"{p['HE operations']:.1f}",
          f"{p['Communication']:.1f}",
          f"{p['Others']:.1f}"]
         for model, report, p in rows],
        title="Fig. 1 -- FATE epoch breakdown @1024 (RCV1-like, scaled)")
    publish("fig1_fate_breakdown", table)

    for model, report, percentages in rows:
        # The paper's claim: HE > 50%, comm > 40% of a FATE epoch --
        # scaled runs keep both components dominant (>= 90% combined)
        # with "others" negligible.
        assert percentages["HE operations"] + \
            percentages["Communication"] > 90, model
        assert percentages["Others"] < 10, model
        assert percentages["HE operations"] > 30, model
        assert percentages["Communication"] > 10, model
