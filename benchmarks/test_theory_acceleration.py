"""Eqs. 10-14: theoretical acceleration ratios versus measured.

Checks the paper's analytical model against the reproduction's measured
behaviour: the GHE ratio (Eq. 10), the BC ratio = compression ratio
(Eqs. 11/13), and the multiplicative composition AC = AC_ghe * AC_bc
(Eq. 14).
"""

from benchmarks.common import bench_key_sizes, publish
from repro.baselines import FATE, FLBOOSTER, WITHOUT_BC, WITHOUT_GHE
from repro.experiments import (
    format_table,
    he_throughput,
    run_epoch_experiment,
)
from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.gpu.resource_manager import ResourceManager
from repro.quantization.packing import compression_ratio


def collect():
    rows = []
    manager = ResourceManager(managed=True)
    for key_bits in bench_key_sizes():
        plan = manager.plan(4096, DEFAULT_PROFILE.ciphertext_limbs(key_bits))
        eq10 = DEFAULT_PROFILE.eq10_acceleration_ratio(4096, key_bits, plan)
        measured_ghe = (he_throughput(FLBOOSTER, key_bits, batch_size=4096)
                        / he_throughput(FATE, key_bits, batch_size=4096))
        eq13 = compression_ratio(10_000, key_bits, 30, 4)
        fate = run_epoch_experiment(FATE, "Homo LR", "RCV1", key_bits)
        flb = run_epoch_experiment(FLBOOSTER, "Homo LR", "RCV1", key_bits)
        no_bc = run_epoch_experiment(WITHOUT_BC, "Homo LR", "RCV1",
                                     key_bits)
        no_ghe = run_epoch_experiment(WITHOUT_GHE, "Homo LR", "RCV1",
                                      key_bits)
        measured_bc = no_bc.he_operations / max(flb.he_operations, 1)
        ghe_gain = no_ghe.epoch_seconds / flb.epoch_seconds
        bc_gain = no_bc.epoch_seconds / flb.epoch_seconds
        total_gain = fate.epoch_seconds / flb.epoch_seconds
        rows.append((key_bits, eq10, measured_ghe, eq13, measured_bc,
                     ghe_gain, bc_gain, total_gain))
    return rows


def test_theory_acceleration(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    table = format_table(
        ["Key", "AC_ghe (Eq.10)", "GHE throughput x", "AC_bc (Eq.13)",
         "HE-op reduction x", "GHE epoch gain", "BC epoch gain",
         "Total gain"],
        [[key_bits, f"{eq10:.0f}", f"{ghe:.0f}", f"{eq13:.1f}",
          f"{bc:.1f}", f"{ghe_gain:.1f}", f"{bc_gain:.1f}",
          f"{total:.1f}"]
         for key_bits, eq10, ghe, eq13, bc, ghe_gain, bc_gain, total
         in rows],
        title="Eqs. 10-14 -- theory vs measured acceleration")
    publish("theory_acceleration", table)

    for key_bits, eq10, measured_ghe, eq13, measured_bc, \
            ghe_gain, bc_gain, total_gain in rows:
        # Eq. 10's analytic ratio within 3x of the measured throughput gap.
        assert eq10 / 3 < measured_ghe < eq10 * 3, key_bits
        # Eq. 13: the HE-op reduction equals the compression ratio.
        assert abs(measured_bc - eq13) / eq13 < 0.35, key_bits
        # Eq. 14: the total gain is super-additive -- it exceeds each
        # individual module's epoch gain (the modules compose).
        assert total_gain > ghe_gain, key_bits
        assert total_gain > 0.5 * bc_gain, key_bits
