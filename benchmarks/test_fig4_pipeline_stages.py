"""Fig. 4 companion: per-stage timing of the data-processing pipeline.

Fig. 4 is an architecture figure (no measurements in the paper), but the
staged pipeline it draws is implemented in :mod:`repro.pipeline`; this
benchmark prints where one encryption / decryption round's time actually
goes -- GPU compute dominates, the encode/pack stages are the lightweight
plug-in the paper promises (Sec. IV-B: "the time spent on encoding and
quantization is extremely small").
"""

from benchmarks.common import bench_rng, publish
from repro.crypto.gpu_engine import GpuPaillierEngine
from repro.experiments import format_table
from repro.federation.runtime import cached_keypair
from repro.gpu.kernels import GpuKernels
from repro.gpu.resource_manager import ResourceManager
from repro.mpint.primes import LimbRandom
from repro.pipeline import DecryptionPipeline, EncryptionPipeline
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import BatchPacker

VALUES = 2048


def collect():
    keypair = cached_keypair(256)
    engine = GpuPaillierEngine(
        keypair,
        kernels=GpuKernels(resource_manager=ResourceManager(managed=True)),
        nominal_bits=1024, rng=LimbRandom(seed=4),
        randomizer_pool_size=16)
    scheme = QuantizationScheme(alpha=1.0, r_bits=5, num_parties=4)
    packer = BatchPacker(scheme,
                         plaintext_bits=engine.physical_plaintext_bits,
                         capacity=32)
    gradients = bench_rng(2).uniform(-1, 1, VALUES)
    encrypted = EncryptionPipeline(engine, packer).run(gradients)
    decrypted = DecryptionPipeline(engine, packer).run(
        encrypted.values, count=VALUES)
    return encrypted, decrypted


def test_fig4_pipeline_stages(benchmark):
    encrypted, decrypted = benchmark.pedantic(collect, rounds=1,
                                              iterations=1)

    rows = []
    for phase, result in (("encryption", encrypted),
                          ("decryption", decrypted)):
        for stage in result.stages:
            share = 100 * stage.seconds / result.total_seconds
            rows.append([phase, stage.name,
                         f"{stage.seconds * 1e3:.3f}", f"{share:.1f}%"])
        rows.append([phase, "TOTAL",
                     f"{result.total_seconds * 1e3:.3f}", "100%"])
    table = format_table(
        ["Phase", "Stage", "ms (modelled)", "Share"],
        rows,
        title=f"Fig. 4 -- pipeline stage breakdown "
              f"({VALUES} gradients @1024, packed)")
    publish("fig4_pipeline_stages", table)

    # GPU compute dominates both phases; host-side stages are the
    # "extremely small" plug-in the paper claims.
    for result in (encrypted, decrypted):
        compute = result.stage_seconds("gpu_compute")
        host_side = result.total_seconds - compute
        assert compute > 0.5 * result.total_seconds
        assert host_side < result.total_seconds
