"""Table IV: HE-operation throughput (instances per second).

Paper targets at 1024/2048/4096 bits: FATE ~363/69/12, HAFLO
~59k/10k/1.7k, FLBooster ~400k/65k/11k -- the reproduction's cost model
is calibrated to land on these orders, and the ordering/scaling shapes
are asserted.
"""

from benchmarks.common import bench_datasets, bench_key_sizes, publish
from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments import format_table, he_throughput, scaled_dataset

SYSTEMS = (FATE, HAFLO, FLBOOSTER)

#: Paper Table IV reference bands (Homo LR column, rounded):
PAPER_REFERENCE = {
    (  "FATE", 1024): 363, (  "FATE", 2048): 69, (  "FATE", 4096): 12,
    ( "HAFLO", 1024): 58823, ( "HAFLO", 2048): 9783, ( "HAFLO", 4096): 1709,
    ("FLBooster", 1024): 398309, ("FLBooster", 2048): 64782,
    ("FLBooster", 4096): 11316,
}


def collect():
    measurements = {}
    for dataset in bench_datasets():
        # Saturating batches (the paper pipelines full gradient vectors
        # through the device); the dataset's feature dimension nudges the
        # batch size, which is why the paper's per-dataset throughput
        # differs slightly.
        batch = 2048 + 2 * scaled_dataset(dataset).num_features
        for key_bits in bench_key_sizes():
            for config in SYSTEMS:
                measurements[(dataset, key_bits, config.name)] = \
                    he_throughput(config, key_bits, batch_size=batch)
    return measurements


def test_table4_throughput(benchmark):
    measurements = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = []
    for (dataset, key_bits, system), value in sorted(measurements.items()):
        paper = PAPER_REFERENCE.get((system, key_bits))
        rows.append([dataset, key_bits, system, f"{value:,.0f}",
                     f"{paper:,}" if paper else "-"])
    table = format_table(
        ["Dataset", "Key", "System", "Measured (inst/s)", "Paper (inst/s)"],
        rows,
        title="Table IV -- HE-operation throughput")
    publish("table4_throughput", table)

    for dataset in bench_datasets():
        for key_bits in bench_key_sizes():
            fate = measurements[(dataset, key_bits, "FATE")]
            haflo = measurements[(dataset, key_bits, "HAFLO")]
            flb = measurements[(dataset, key_bits, "FLBooster")]
            assert fate < haflo < flb, (dataset, key_bits)
            # Within ~3x of the paper's absolute numbers.
            for system, value in (("FATE", fate), ("HAFLO", haflo),
                                  ("FLBooster", flb)):
                paper = PAPER_REFERENCE[(system, key_bits)]
                assert paper / 4 < value < paper * 4, \
                    (dataset, key_bits, system, value, paper)
