"""Fig. 7: batch-compression ratio of FLBooster versus key size.

Theoretical curve (Eq. 11) and the ratio actually achieved on each
model's real transfer sizes: ~32x at 1024 bits, ~64x at 2048, ~128x at
4096, nearly identical across datasets and models.
"""

from benchmarks.common import (
    bench_datasets,
    bench_key_sizes,
    bench_models,
    publish,
)
from repro.baselines import FLBOOSTER, WITHOUT_BC
from repro.experiments import format_table, run_epoch_experiment
from repro.quantization.packing import compression_ratio


def collect():
    cells = {}
    for model in bench_models():
        for dataset in bench_datasets():
            for key_bits in bench_key_sizes():
                packed = run_epoch_experiment(FLBOOSTER, model, dataset,
                                              key_bits)
                unpacked = run_epoch_experiment(WITHOUT_BC, model, dataset,
                                                key_bits)
                cells[(model, dataset, key_bits)] = (
                    unpacked.wire_bytes / max(packed.wire_bytes, 1),
                    compression_ratio(12_800, key_bits, 30, 4))
    return cells


def test_fig7_compression_ratio(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[model, dataset, key_bits, f"{achieved:.1f}x",
             f"{theory:.1f}x"]
            for (model, dataset, key_bits), (achieved, theory)
            in sorted(cells.items(),
                      key=lambda kv: (bench_models().index(kv[0][0]),
                                      kv[0][1], kv[0][2]))]
    table = format_table(
        ["Model", "Dataset", "Key", "Achieved (wire bytes)",
         "Theory (Eq. 11)"],
        rows,
        title="Fig. 7 -- compression ratio vs key size")
    publish("fig7_compression_ratio", table)

    for (model, dataset, key_bits), (achieved, theory) in cells.items():
        # Theory: ~k/32.
        assert abs(theory - key_bits / 32) < 1.5
        # Achieved wire reduction tracks the packing capacity times the
        # object-vs-packed serialization gap; at least half the capacity.
        assert achieved > theory / 2, (model, dataset, key_bits)

    if len(bench_key_sizes()) > 1:
        for model in bench_models():
            for dataset in bench_datasets():
                curve = [cells[(model, dataset, k)][0]
                         for k in bench_key_sizes()]
                # Ratio increases with key size (Fig. 7's trend).
                assert curve == sorted(curve), (model, dataset)
