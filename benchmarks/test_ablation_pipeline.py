"""Design-choice ablation: pipelined processing (paper Sec. V).

Sweeps the stream depth of the Fig. 4 pipeline and the workload's
transfer/compute ratio, showing where the cost model's managed constants
(depth 8, 90% transfer overlap) come from and when pipelining stops
mattering.
"""

from benchmarks.common import publish
from repro.experiments import format_table
from repro.gpu.cost_model import DEFAULT_PROFILE
from repro.pipeline.scheduler import StreamScheduler, he_shaped_batches

DEPTHS = (1, 2, 4, 8, 16)
TRANSFER_FRACTIONS = (0.05, 0.25, 1.0)
BATCHES = 64


def collect():
    cells = {}
    for fraction in TRANSFER_FRACTIONS:
        batches = he_shaped_batches(BATCHES, transfer_fraction=fraction)
        serial = StreamScheduler(depth=1).serial_makespan(batches)
        for depth in DEPTHS:
            scheduler = StreamScheduler(depth=depth)
            cells[(fraction, depth)] = (
                scheduler.makespan(batches) / serial,
                scheduler.overlap_efficiency(batches))
    return cells


def test_ablation_pipeline_depth(benchmark):
    cells = benchmark.pedantic(collect, rounds=1, iterations=1)

    rows = [[f"{fraction:.0%}", depth, f"{relative:.3f}",
             f"{efficiency:.1%}"]
            for (fraction, depth), (relative, efficiency)
            in sorted(cells.items())]
    table = format_table(
        ["Transfer/compute", "Stream depth", "Makespan vs serial",
         "Transfer hidden"],
        rows,
        title="Pipeline-depth ablation (Sec. V pipelined processing)")
    publish("ablation_pipeline_depth", table)

    for fraction in TRANSFER_FRACTIONS:
        spans = [cells[(fraction, depth)][0] for depth in DEPTHS]
        # Deeper pipelines never hurt; depth 1 is serial by definition.
        assert spans[0] == 1.0 or abs(spans[0] - 1.0) < 1e-9
        assert all(later <= earlier + 1e-9
                   for earlier, later in zip(spans, spans[1:]))
    # HE-shaped workloads (small transfers) reach the cost model's
    # managed overlap at its configured depth.
    managed_depth = DEFAULT_PROFILE.pipeline_depth_managed
    assert cells[(0.05, managed_depth)][1] >= \
        DEFAULT_PROFILE.transfer_overlap_managed
    # Transfer-heavy workloads cannot hide everything: the copy engines
    # saturate, which is why pipelining is not a substitute for BC.
    assert cells[(1.0, max(DEPTHS))][1] < 0.99
