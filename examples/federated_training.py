"""Federated training under all three systems (mini Table III + Fig. 8).

Run:  python examples/federated_training.py [model]

Trains one of the paper's four benchmark models on the scaled Synthetic
dataset under FATE, HAFLO and FLBooster, printing per-epoch losses and
modelled epoch times.  The loss trajectories coincide (same mathematics);
the time axes differ by orders of magnitude -- the paper's Fig. 8.
"""

import sys

from repro.baselines import FATE, FLBOOSTER, HAFLO
from repro.experiments import format_table, run_training

EPOCHS = 4


def main(model_name: str = "Homo LR") -> None:
    print(f"training {model_name} on Synthetic (scaled), "
          f"1024-bit key, {EPOCHS} epochs\n")

    traces = {}
    for config in (FATE, HAFLO, FLBOOSTER):
        traces[config.name] = run_training(
            config, model_name, "Synthetic", key_bits=1024,
            max_epochs=EPOCHS, physical_key_bits=256,
            bc_capacity="physical")

    rows = []
    for system, trace in traces.items():
        for epoch, (loss, seconds) in enumerate(
                zip(trace.losses, trace.cumulative_seconds)):
            rows.append([system, epoch + 1, f"{loss:.4f}",
                         f"{seconds:.2f}"])
    print(format_table(
        ["System", "Epoch", "Loss", "Cumulative time (s, modelled)"],
        rows))

    fate_total = traces["FATE"].cumulative_seconds[-1]
    flb_total = traces["FLBooster"].cumulative_seconds[-1]
    haflo_total = traces["HAFLO"].cumulative_seconds[-1]
    print(f"\nsame losses, different clocks:")
    print(f"  FLBooster vs FATE : {fate_total / flb_total:6.1f}x faster")
    print(f"  FLBooster vs HAFLO: {haflo_total / flb_total:6.1f}x faster")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "Homo LR")
