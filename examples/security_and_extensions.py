"""Security of the encoding and the Damgard-Jurik extension.

Run:  python examples/security_and_extensions.py

Part 1 demonstrates the leak the paper's encoding-quantization closes:
the legacy ``(encrypt(significand), exponent)`` scheme ships the exponent
in plaintext, pinning every gradient's magnitude for a wire observer.

Part 2 runs the Damgard-Jurik generalization (paper ref. [21]): degree
``s`` grows the plaintext space ``s``-fold, packing more gradients per
ciphertext at a better bytes-per-value rate.
"""

import numpy as np

from repro.crypto.damgard_jurik import (
    DamgardJurik,
    generate_damgard_jurik_keypair,
    packing_gain,
)
from repro.experiments import format_table
from repro.federation.serialization import (
    deserialize_objects,
    serialize_objects,
)
from repro.mpint.primes import LimbRandom
from repro.quantization.encoding import (
    LegacyFloatEncoding,
    QuantizationScheme,
)


def demonstrate_leak() -> None:
    print("=" * 64)
    print("Part 1: what the legacy encoding leaks (paper Sec. IV-B)")
    print("=" * 64)
    legacy = LegacyFloatEncoding()
    gradients = [0.00012, 0.47, 3.1, 812.0]

    print("\nan eavesdropper reads plaintext exponents off the wire:")
    for gradient in gradients:
        significand, exponent = legacy.encode(gradient)
        low, high = legacy.magnitude_interval(gradient)
        blob = serialize_objects([significand], ciphertext_bytes=64,
                                 exponent=exponent)
        _, wire_exponent = deserialize_objects(blob, 64)[0]
        print(f"  gradient {gradient:>10.5f}: wire exponent "
              f"{wire_exponent:+3d} -> |g| is in [{low:g}, {high:g})")

    scheme = QuantizationScheme(alpha=1.0, r_bits=16)
    print("\nthe secure encoding maps every magnitude into one flat "
          "integer range:")
    for gradient in gradients:
        encoded = scheme.encode(min(max(gradient, -1.0), 1.0))
        print(f"  gradient {gradient:>10.5f}: encoding {encoded:>6d} "
              f"(indistinguishable without the key)")


def demonstrate_damgard_jurik() -> None:
    print()
    print("=" * 64)
    print("Part 2: Damgard-Jurik -- deeper packing per ciphertext")
    print("=" * 64)
    rng = LimbRandom(seed=21)

    rows = []
    for s in (1, 2, 3):
        keypair = generate_damgard_jurik_keypair(256, s=s, rng=rng)
        pub, pri = keypair.public_key, keypair.private_key
        # Pack as many 32-bit slots as the degree-s plaintext holds.
        capacity = pub.plaintext_bits // 32
        values = list(np.random.default_rng(s).integers(
            0, 2 ** 30, capacity))
        word = 0
        for value in values:
            word = (word << 32) | int(value)
        c = DamgardJurik.raw_encrypt(pub, word, rng=rng)
        recovered = DamgardJurik.raw_decrypt(pri, c)
        assert recovered == word
        rows.append([s, pub.plaintext_bits, capacity,
                     pub.ciphertext_bytes(),
                     f"{pub.ciphertext_bytes() / capacity:.0f}",
                     f"{packing_gain(256, s):.2f}x"])
    print()
    print(format_table(
        ["s", "Plaintext bits", "32-bit slots", "Ciphertext bytes",
         "Bytes/slot", "Gain vs Paillier"],
        rows,
        title="Degree-s packing on a 256-bit key (verified roundtrips)"))
    print("\n(the asymptotic gain is 2x: ciphertext expansion falls from "
          "2x toward 1x as s grows)")


def main() -> None:
    demonstrate_leak()
    demonstrate_damgard_jurik()


if __name__ == "__main__":
    main()
