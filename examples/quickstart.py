"""Quickstart: FLBooster's Table I APIs in two minutes.

Run:  python examples/quickstart.py

Covers the developer surface the paper ships: array arithmetic, modular
operations on the (simulated) GPU, and the Paillier / RSA homomorphic
APIs.
"""

from repro import FlBooster


def main() -> None:
    fl = FlBooster(seed=42)

    # --- Fundamental array operations -------------------------------
    print("add([1,2,3], [10,20,30])    =", fl.add([1, 2, 3], [10, 20, 30]))
    print("mul([2,3], [8,9])           =", fl.mul([2, 3], [8, 9]))
    print("mod([100, 101], 7)          =", fl.mod([100, 101], 7))
    print("mod_inv([3, 5], 7)          =", fl.mod_inv([3, 5], 7))
    print("mod_pow([2, 3], [10, 4], 1009) =",
          fl.mod_pow([2, 3], [10, 4], 1009))

    # --- Paillier: additively homomorphic ---------------------------
    pri, pub = fl.paillier.key_gen(1024)
    print(f"\nPaillier keypair generated ({pub.key_bits} bits)")

    gradients = [17, 25, 42]
    encrypted = fl.paillier.encrypt(pub, gradients)
    print(f"encrypted {gradients} -> {len(encrypted)} ciphertexts of "
          f"{pub.ciphertext_bytes()} bytes each")

    doubled = fl.paillier.add(pub, encrypted, encrypted)
    print("decrypt(c + c) =", fl.paillier.decrypt(pri, doubled))

    # --- RSA: multiplicatively homomorphic --------------------------
    rsa_pri, rsa_pub = fl.rsa.key_gen(1024)
    c1 = fl.rsa.encrypt(rsa_pub, [6, 10])
    c2 = fl.rsa.encrypt(rsa_pub, [7, 10])
    print("\nRSA decrypt(c1 * c2) =",
          fl.rsa.decrypt(rsa_pri, fl.rsa.mul(rsa_pub, c1, c2)))

    # --- What the simulated GPU saw ---------------------------------
    device = fl.kernels.device
    print(f"\nsimulated GPU: {len(device.launches)} kernel launches, "
          f"mean SM utilization {device.mean_sm_utilization():.0%}, "
          f"{device.total_seconds * 1e3:.2f} ms modelled compute")


if __name__ == "__main__":
    main()
