"""One-command compact reproduction of the paper's evaluation.

Run:  python examples/reproduce_paper.py        (~2 minutes)

Runs a trimmed pass over every experiment family -- the full sweeps live
in ``pytest benchmarks/ --benchmark-only`` -- and prints a one-screen
paper-versus-measured summary.
"""

from repro.baselines import FATE, FLBOOSTER, HAFLO, WITHOUT_BC, WITHOUT_GHE
from repro.experiments import (
    format_table,
    he_throughput,
    run_epoch_experiment,
    run_training,
    sm_utilization,
)
from repro.quantization.packing import compression_ratio

KEY = 1024
DATASET = "Synthetic"


def main() -> None:
    print("FLBooster reproduction -- compact evaluation pass "
          f"({DATASET}-like data, {KEY}-bit keys)\n")

    # --- Table III / Fig. 1 / Table VI: one epoch per system ---------
    reports = {config.name: run_epoch_experiment(
        config, "Homo LR", DATASET, KEY)
        for config in (FATE, HAFLO, FLBOOSTER, WITHOUT_GHE, WITHOUT_BC)}
    rows = []
    for name, report in reports.items():
        p = report.component_percentages()
        rows.append([name, f"{report.epoch_seconds:.3f}",
                     f"{p['Others']:.1f}/{p['HE operations']:.1f}/"
                     f"{p['Communication']:.1f}",
                     f"{reports['FATE'].epoch_seconds / report.epoch_seconds:.0f}x"])
    print(format_table(
        ["System", "Epoch (s)", "others/HE/comm %", "vs FATE"],
        rows, title="Homo LR epoch (Tables III, V, VI; Fig. 1)"))

    # --- Table IV: throughput ----------------------------------------
    print()
    rows = [[config.name,
             f"{he_throughput(config, KEY, batch_size=4096):,.0f}",
             paper]
            for config, paper in ((FATE, "363"), (HAFLO, "58,823"),
                                  (FLBOOSTER, "398,309"))]
    print(format_table(["System", "HE ops/s (measured)", "Paper"],
                       rows, title="HE throughput @1024 (Table IV)"))

    # --- Fig. 6 / Fig. 7 ---------------------------------------------
    print()
    rows = [[key,
             f"{sm_utilization(FLBOOSTER, key):.0%} / "
             f"{sm_utilization(HAFLO, key):.0%}",
             f"{compression_ratio(12_800, key, 30, 4):.0f}x"]
            for key in (1024, 2048, 4096)]
    print(format_table(
        ["Key", "SM util FLB / HAFLO (Fig. 6)",
         "Compression (Fig. 7, Eq. 11)"],
        rows, title="GPU utilization and compression vs key size"))

    # --- Fig. 8 / Table VII: convergence ------------------------------
    print()
    fate_trace = run_training(FATE, "Homo LR", DATASET, KEY, max_epochs=4,
                              physical_key_bits=256)
    flb_trace = run_training(FLBOOSTER, "Homo LR", DATASET, KEY,
                             max_epochs=4, physical_key_bits=256,
                             bc_capacity="physical")
    bias = abs(fate_trace.final_loss - flb_trace.final_loss) \
        / fate_trace.final_loss
    speedup = fate_trace.cumulative_seconds[-1] / \
        flb_trace.cumulative_seconds[-1]
    print(format_table(
        ["Metric", "Measured", "Paper"],
        [["final loss FATE", f"{fate_trace.final_loss:.4f}", "-"],
         ["final loss FLBooster", f"{flb_trace.final_loss:.4f}", "-"],
         ["convergence bias (Eq. 15)", f"{100 * bias:.3f}%", "<= 3.3%"],
         ["time-to-converge speedup", f"{speedup:.0f}x", "28.7-144.3x"]],
        title="Convergence (Fig. 8, Table VII)"))

    print("\nfull sweeps: pytest benchmarks/ --benchmark-only "
          "(results land in benchmarks/results/)")


if __name__ == "__main__":
    main()
