"""Guided end-to-end walkthrough: align, train, audit, ship.

Run:  python examples/tutorial_walkthrough.py

A complete vertical-FL engagement on FLBooster, in order:

  1. sample alignment       (blind-RSA PSI)
  2. secure training        (Hetero SBT through the encrypted pipeline)
  3. privacy audit          (what did the host actually see?)
  4. held-out evaluation    (AUC on unseen users)
  5. persistence            (save / reload the trained model)
  6. cost accounting        (where the modelled time went)
"""

import json
import tempfile
from pathlib import Path


from repro.baselines import FLBOOSTER
from repro.datasets import synthetic_like, train_test_split, vertical_split
from repro.federation import RsaIntersection, audit_channel, \
    assert_vertical_privacy
from repro.federation.runtime import FederationRuntime
from repro.gpu.profiler import profile_device
from repro.models import HeteroSecureBoost
from repro.models.evaluation import load_model_state, roc_auc, \
    save_model_state


def main() -> None:
    dataset = synthetic_like(instances=400, features=32, seed=13)
    train, test = train_test_split(dataset, test_fraction=0.25, seed=13)

    # 1 -- sample alignment ------------------------------------------
    guest_users = [f"u{i}" for i in range(train.num_instances)]
    host_users = guest_users + [f"stranger{i}" for i in range(50)]
    alignment = RsaIntersection(key_bits=1024, seed=13).run(
        guest_users, host_users)
    print(f"1. PSI: {alignment.intersection_size} shared users of "
          f"{alignment.host_set_size} "
          f"({alignment.modelled_seconds:.2f} s modelled)")

    # 2 -- secure training -------------------------------------------
    model = HeteroSecureBoost(train, max_depth=3, num_bins=8, seed=13)
    runtime = FederationRuntime(FLBOOSTER, num_clients=2, key_bits=1024,
                                physical_key_bits=256,
                                bc_capacity="physical")
    runtime.channel.trace = True            # keep the log for the audit
    total_ledger_seconds = 0.0
    epochs = 8
    for _ in range(epochs):
        ledger = runtime.begin_epoch()
        model.run_epoch(runtime)
        total_ledger_seconds += ledger.total_seconds
    print(f"2. trained {epochs} boosting rounds, final loss "
          f"{model.loss():.4f} ({total_ledger_seconds:.1f} s modelled)")

    # 3 -- privacy audit ----------------------------------------------
    report = audit_channel(runtime.channel)
    assert_vertical_privacy(report, host_names=["host"])
    print("3. privacy audit:")
    for line in report.summary_lines():
        print(f"   {line}")

    # 4 -- held-out evaluation ---------------------------------------
    guest_block, host_block = (part.features for part in vertical_split(
        test, num_parties=2, seed=model.seed))
    scores = model.predict_scores(guest_block, host_block)
    print(f"4. held-out AUC on {test.num_instances} unseen users: "
          f"{roc_auc(scores, test.labels):.3f}")

    # 5 -- persistence -------------------------------------------------
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "sbt_state.json"
        save_model_state(model, path)
        fresh = HeteroSecureBoost(train, max_depth=3, num_bins=8, seed=13)
        load_model_state(fresh, path)
        size = len(json.loads(path.read_text()))
        print(f"5. state saved/reloaded ({path.stat().st_size:,} bytes, "
              f"{size} fields); losses match: "
              f"{abs(fresh.loss() - model.loss()) < 1e-12}")

    # 6 -- cost accounting ---------------------------------------------
    device = runtime.gpu_device()
    profile = profile_device(device)
    print(f"6. GPU profile: {profile.total_launches} launches, busiest "
          f"kernel {profile.busiest_kernel()!r} "
          f"({profile.time_share(profile.busiest_kernel()):.0%} of device "
          f"time, mean utilization "
          f"{device.mean_sm_utilization():.0%})")


if __name__ == "__main__":
    main()
