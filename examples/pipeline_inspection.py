"""Inside the FLBooster pipeline (paper Fig. 4) and the BC theory.

Run:  python examples/pipeline_inspection.py

Walks one gradient batch through the staged encryption pipeline, shows
the per-stage time breakdown, then sweeps the batch-compression theory
(Eqs. 11-12) across key sizes and slot layouts.
"""

import numpy as np

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.experiments import format_table
from repro.federation.runtime import cached_keypair
from repro.mpint.primes import LimbRandom
from repro.pipeline import DecryptionPipeline, EncryptionPipeline
from repro.quantization.encoding import QuantizationScheme
from repro.quantization.packing import (
    BatchPacker,
    compression_ratio,
    packing_capacity,
    plaintext_space_utilization,
)


def main() -> None:
    keypair = cached_keypair(1024)
    engine = CpuPaillierEngine(keypair, rng=LimbRandom(seed=3),
                               randomizer_pool_size=16)
    scheme = QuantizationScheme(alpha=1.0, r_bits=29, num_parties=4)
    packer = BatchPacker(scheme,
                         plaintext_bits=engine.physical_plaintext_bits)
    print(f"1024-bit Paillier, r = {scheme.r_bits} value bits + "
          f"{scheme.overflow_bits} overflow bits, "
          f"capacity = {packer.capacity} gradients per ciphertext\n")

    gradients = np.random.default_rng(1).uniform(-1, 1, 256)
    encrypted = EncryptionPipeline(engine, packer).run(gradients)
    print("encryption pipeline (Fig. 4, steps 1-4):")
    for stage in encrypted.stages:
        share = 100 * stage.seconds / encrypted.total_seconds
        print(f"  {stage.name:<18s} {stage.seconds * 1e3:9.3f} ms  "
              f"({share:5.1f}%)  [{stage.items} items]")
    print(f"  {'TOTAL':<18s} {encrypted.total_seconds * 1e3:9.3f} ms  "
          f"-> {len(encrypted.values)} ciphertexts\n")

    decrypted = DecryptionPipeline(engine, packer).run(
        encrypted.values, count=len(gradients))
    print("decryption pipeline (Fig. 4, steps 5-9):")
    for stage in decrypted.stages:
        share = 100 * stage.seconds / decrypted.total_seconds
        print(f"  {stage.name:<18s} {stage.seconds * 1e3:9.3f} ms  "
              f"({share:5.1f}%)")
    error = float(np.max(np.abs(np.array(decrypted.values) - gradients)))
    print(f"  max roundtrip error: {error:.2e} "
          f"(quantization step {scheme.quantization_step:.2e})\n")

    rows = []
    for key_bits in (1024, 2048, 4096):
        for r_bits in (14, 30, 62):
            capacity = packing_capacity(key_bits, r_bits, 4)
            rows.append([key_bits, r_bits + 2, capacity,
                         f"{compression_ratio(100_000, key_bits, r_bits, 4):.1f}x",
                         f"{plaintext_space_utilization(100_000, key_bits, r_bits, 4):.1%}"])
    print(format_table(
        ["Key bits", "Slot bits", "Capacity", "Compression (Eq. 11)",
         "PSU (Eq. 12)"],
        rows,
        title="Batch-compression theory sweep"))


if __name__ == "__main__":
    main()
