"""Vertical FL scenario: a bank and an ad platform score jointly.

Run:  python examples/vertical_credit_scoring.py

The paper's motivating industrial setting: two organizations share the
same users but hold disjoint features (the bank holds labels + financial
features, the platform holds behavioural features).  They train a
Hetero LR and a Hetero SBT over the encrypted-exchange protocols and
compare against each party modelling alone -- the joint model should win,
which is the whole point of federating.
"""

import numpy as np

from repro.baselines import FLBOOSTER
from repro.federation.intersection import RsaIntersection
from repro.datasets import synthetic_like, vertical_split
from repro.federation.runtime import FederationRuntime
from repro.models import HeteroLogisticRegression, HeteroSecureBoost
from repro.models.losses import logistic_gradient
from repro.models.optim import AdamOptimizer


def train_solo(features, labels, epochs=40):
    """A party training alone on its own feature block."""
    weights = np.zeros(features.shape[1])
    optimizer = AdamOptimizer(learning_rate=0.1)
    for _ in range(epochs):
        gradient = logistic_gradient(features, features @ weights, labels,
                                     weights=weights, l2=0.01)
        weights = optimizer.step(weights, gradient)
    logits = features @ weights
    return float(np.mean((logits > 0) == labels))


def main() -> None:
    # Continuous feature aggregates (spend ratios, activity scores) --
    # the typical cross-silo credit-scoring feature shape.
    dataset = synthetic_like(instances=512, features=64, seed=11)
    bank, platform = vertical_split(dataset, num_parties=2, seed=11)

    # Step 0: sample alignment.  The parties privately intersect their
    # user lists (RSA blind-signature PSI, FATE's ``intersect`` step)
    # before any vertical training can start.
    bank_users = [f"user-{i:05d}" for i in range(dataset.num_instances)]
    platform_users = [f"user-{i:05d}"
                      for i in range(dataset.num_instances + 128)]
    psi = RsaIntersection(key_bits=1024, seed=11)
    alignment = psi.run(bank_users, platform_users)
    print(f"sample alignment (blind-RSA PSI): bank holds "
          f"{alignment.guest_set_size} users, platform "
          f"{alignment.host_set_size}; intersection "
          f"{alignment.intersection_size} "
          f"({alignment.modelled_seconds:.2f} s modelled)")

    print(f"shared users: {dataset.num_instances}, "
          f"bank features: {bank.num_features}, "
          f"platform features: {platform.num_features}\n")

    bank_solo = train_solo(bank.features, dataset.labels)
    platform_solo = train_solo(platform.features, dataset.labels)
    print(f"bank alone      : {bank_solo:.1%} accuracy")
    print(f"platform alone  : {platform_solo:.1%} accuracy "
          f"(it never sees labels in the federation -- this is the\n"
          f"                   hypothetical centralized upper bound "
          f"for its features)\n")

    for model_cls, kwargs in ((HeteroLogisticRegression,
                               dict(batch_size=128)),
                              (HeteroSecureBoost,
                               dict(max_depth=3, num_bins=8))):
        model = model_cls(dataset, seed=11, **kwargs)
        runtime = FederationRuntime(FLBOOSTER, num_clients=2,
                                    key_bits=1024, physical_key_bits=256,
                                    bc_capacity="physical")
        total_seconds = 0.0
        epochs = 10
        for _ in range(epochs):
            ledger = runtime.begin_epoch()
            model.run_epoch(runtime)
            total_seconds += ledger.total_seconds
        print(f"{model.name} (federated, encrypted exchanges):")
        print(f"  accuracy            : {model.accuracy():.1%}")
        print(f"  loss                : {model.loss():.4f}")
        print(f"  modelled train time : {total_seconds:.1f} s "
              f"({epochs} epochs under FLBooster)")
        best_solo = max(bank_solo, platform_solo)
        gain = model.accuracy() - best_solo
        print(f"  vs best solo party  : {gain:+.1%}\n")


if __name__ == "__main__":
    main()
