"""Secure gradient aggregation: one FLBooster round, end to end.

Run:  python examples/secure_aggregation.py

Four hospitals jointly average a gradient vector without revealing their
individual updates (the paper's Fig. 2 loop).  The same round is executed
under the FATE baseline and under FLBooster, and the modelled cost
breakdown shows where the 2-orders-of-magnitude gap comes from.
"""

import numpy as np

from repro.baselines import FATE, FLBOOSTER
from repro.federation.runtime import FederationRuntime

NUM_HOSPITALS = 4
GRADIENT_DIM = 2048


def run_round(config, gradients):
    runtime = FederationRuntime(config, num_clients=NUM_HOSPITALS,
                                key_bits=1024, physical_key_bits=256)
    ledger = runtime.begin_epoch()
    averaged = runtime.aggregator.average(gradients, tag="hospital_round")
    return runtime, ledger, averaged


def main() -> None:
    rng = np.random.default_rng(7)
    gradients = [rng.uniform(-0.5, 0.5, GRADIENT_DIM)
                 for _ in range(NUM_HOSPITALS)]
    expected = np.mean(gradients, axis=0)

    print(f"{NUM_HOSPITALS} hospitals, {GRADIENT_DIM}-dim gradients, "
          f"1024-bit Paillier\n")

    results = {}
    for config in (FATE, FLBOOSTER):
        runtime, ledger, averaged = run_round(config, gradients)
        error = float(np.max(np.abs(averaged - expected)))
        results[config.name] = ledger
        print(f"--- {config.name} ---")
        print(f"  max aggregation error : {error:.2e}")
        print(f"  ciphertexts on wire   : {runtime.channel.stats.ciphertexts}")
        print(f"  wire bytes            : {runtime.channel.stats.wire_bytes:,}")
        print(f"  HE operations         : {ledger.count('he')}")
        print(f"  modelled round time   : {ledger.total_seconds:.3f} s")
        for component, seconds in ledger.by_component().items():
            print(f"    {component:<15s} {seconds:9.3f} s")
        if config.batch_compression:
            packer = runtime.plan.packer
            print(f"  packing: {packer.capacity} gradients/ciphertext, "
                  f"compression {packer.achieved_compression_ratio(GRADIENT_DIM):.1f}x, "
                  f"PSU {packer.achieved_psu(GRADIENT_DIM):.1%}")
        print()

    speedup = results["FATE"].total_seconds / \
        results["FLBooster"].total_seconds
    print(f"FLBooster speedup over FATE for this round: {speedup:.0f}x")


if __name__ == "__main__":
    main()
