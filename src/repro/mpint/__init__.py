"""Multi-precision integer substrate (paper Sec. IV-A1, IV-A3).

FLBooster represents large integers (keys, ciphertexts) as arrays of
fixed-width *limbs* so that arithmetic can be split across GPU threads.
This package implements that FRNS-style radix representation together with
the arithmetic the paper builds on it:

- :mod:`repro.mpint.limbs` -- the word-array representation and conversions.
- :mod:`repro.mpint.arith` -- schoolbook add/sub/mul/divmod/compare on limbs.
- :mod:`repro.mpint.montgomery` -- Algorithm 1 (basic Montgomery) and
  Algorithm 2 (CIOS parallel Montgomery multiplication).
- :mod:`repro.mpint.modexp` -- sliding-window modular exponentiation.
- :mod:`repro.mpint.primes` -- Miller-Rabin testing and prime generation.
- :mod:`repro.mpint.limb_plane` -- batched limb-matrix (numpy) CIOS
  multiplication, shared/varying modexp, and fixed-base window tables;
  optional, degrades to :data:`~repro.mpint.limb_plane.HAVE_NUMPY` =
  ``False`` without numpy.
"""

from repro.mpint.limbs import (
    LimbVector,
    from_int,
    to_int,
    limbs_for_bits,
    normalize,
)
from repro.mpint.arith import (
    limb_add,
    limb_sub,
    limb_mul,
    limb_divmod,
    limb_mod,
    limb_compare,
)
from repro.mpint.montgomery import (
    MontgomeryContext,
    montgomery_multiply,
    cios_montgomery_multiply,
)
from repro.mpint.modexp import mod_pow, sliding_window_pow
from repro.mpint.primes import is_probable_prime, generate_prime, LimbRandom
from repro.mpint.limb_plane import (
    HAVE_NUMPY,
    FixedBaseTable,
    PlaneContext,
    batched_cios_multiply,
    batched_pow,
    ints_to_plane,
    plane_to_ints,
)

__all__ = [
    "LimbVector",
    "from_int",
    "to_int",
    "limbs_for_bits",
    "normalize",
    "limb_add",
    "limb_sub",
    "limb_mul",
    "limb_divmod",
    "limb_mod",
    "limb_compare",
    "MontgomeryContext",
    "montgomery_multiply",
    "cios_montgomery_multiply",
    "mod_pow",
    "sliding_window_pow",
    "is_probable_prime",
    "generate_prime",
    "LimbRandom",
    "HAVE_NUMPY",
    "PlaneContext",
    "FixedBaseTable",
    "batched_cios_multiply",
    "batched_pow",
    "ints_to_plane",
    "plane_to_ints",
]
