"""Random large-integer generation and primality testing (paper Sec. IV-A3).

FLBooster "develop[s] a random number generator for large integers
(including Miller-Rabin large prime number generator), assigning a random
number generator for each thread in a warp".  This module reproduces that
machinery:

- :class:`LimbRandom` -- a deterministic per-thread generator producing
  uniformly random limb arrays; one instance per simulated GPU thread.
- :func:`is_probable_prime` -- the Miller-Rabin test used in key generation.
- :func:`generate_prime` -- rejection sampling of probable primes with the
  paper's constraint that ``p`` and ``q`` match the working limb length.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.mpint.limbs import WORD_BITS, from_int

#: Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

#: Miller-Rabin round count: 2^-128 error bound for random candidates.
DEFAULT_ROUNDS = 64


class LimbRandom:
    """A per-thread random generator for multi-precision integers.

    Each simulated GPU thread owns one instance seeded from the warp seed and
    its thread index, so parallel key generation is reproducible.

    Two modes, split explicitly:

    - :meth:`entropy` -- backed by ``random.SystemRandom`` (the OS CSPRNG).
      This is the *only* sanctioned non-deterministic random source in the
      library: production key generation must not be replayable, or a
      recorded simulation transcript would leak the keypair.  flcheck's
      determinism rule whitelists this module for exactly that reason.
    - :meth:`reproducible` -- a ``random.Random`` stream derived from
      ``(seed << 16) ^ thread_index``, used by tests and the simulated GPU
      keygen so parallel prime search replays bit-for-bit.

    The constructor keeps its historical signature (``seed=None`` selects
    entropy mode) so existing call sites behave identically, but new code
    should name the mode it wants via the classmethods.
    """

    def __init__(self, seed: Optional[int] = None, thread_index: int = 0):
        if seed is None:
            self._rng: random.Random = random.SystemRandom()
            self.entropy_backed = True
        else:
            self._rng = random.Random((seed << 16) ^ thread_index)
            self.entropy_backed = False
        self.thread_index = thread_index

    @classmethod
    def entropy(cls, thread_index: int = 0) -> "LimbRandom":
        """An OS-entropy generator for production key generation."""
        return cls(seed=None, thread_index=thread_index)

    @classmethod
    def reproducible(cls, seed: int, thread_index: int = 0) -> "LimbRandom":
        """A seeded, replayable generator for tests and simulation."""
        if seed is None:
            raise ValueError("reproducible mode requires an explicit seed; "
                             "use LimbRandom.entropy() for OS entropy")
        return cls(seed=seed, thread_index=thread_index)

    def randbits(self, bits: int) -> int:
        """Uniform random integer with at most ``bits`` bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        return self._rng.getrandbits(bits)

    def randint_below(self, bound: int) -> int:
        """Uniform random integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self._rng.randrange(bound)

    def random_limbs(self, bits: int,
                     word_bits: int = WORD_BITS) -> List[int]:
        """Random limb array of exactly ``bits`` significant bits."""
        value = self.randbits(bits) | (1 << (bits - 1))
        return from_int(value, word_bits=word_bits)

    def random_unit(self, modulus: int) -> int:
        """Random element of ``Z_modulus^*`` (coprime with the modulus)."""
        import math
        while True:
            candidate = self.randint_below(modulus - 1) + 1
            if math.gcd(candidate, modulus) == 1:
                return candidate


def is_probable_prime(candidate: int, rounds: int = DEFAULT_ROUNDS,
                      rng: Optional[LimbRandom] = None) -> bool:
    """Miller-Rabin primality test (paper's key-generation primitive).

    Args:
        candidate: Integer to test.
        rounds: Number of random witnesses; each round quarters the error
            probability.
        rng: Random source for witnesses; a fresh system-seeded
            :class:`LimbRandom` when omitted.

    Returns:
        False when ``candidate`` is definitely composite; True when it passed
        every witness (probable prime).
    """
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate == prime:
            return True
        if candidate % prime == 0:
            return False

    if rng is None:
        rng = LimbRandom()

    # Write candidate - 1 = d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for _ in range(rounds):
        witness = rng.randint_below(candidate - 3) + 2
        x = pow(witness, d, candidate)
        if x == 1 or x == candidate - 1:
            continue
        for _ in range(r - 1):
            x = (x * x) % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[LimbRandom] = None,
                   rounds: int = DEFAULT_ROUNDS) -> int:
    """Generate a probable prime of exactly ``bits`` bits.

    The top bit is forced so the prime has full length (the paper keeps
    ``p`` and ``q`` the same length as the other large integers so limb
    partitioning stays consistent), and the bottom bit is forced so the
    candidate is odd.
    """
    if bits < 2:
        raise ValueError("a prime needs at least 2 bits")
    if rng is None:
        rng = LimbRandom()
    while True:
        candidate = rng.randbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rounds=rounds, rng=rng):
            return candidate


def generate_distinct_primes(bits: int, count: int = 2,
                             rng: Optional[LimbRandom] = None) -> List[int]:
    """Generate ``count`` distinct probable primes of the same bit length."""
    primes: List[int] = []
    while len(primes) < count:
        prime = generate_prime(bits, rng=rng)
        if prime not in primes:
            primes.append(prime)
    return primes
