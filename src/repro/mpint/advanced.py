"""Advanced multi-precision algorithms: Karatsuba, Knuth D, Barrett.

The core substrate (:mod:`repro.mpint.arith`) uses schoolbook algorithms
-- what a GPU thread block actually runs.  This module adds the classic
asymptotically-better or structurally-different alternatives a
production big-integer library would also carry, each validated against
the core path by the property tests:

- :func:`karatsuba_mul` -- O(n^1.585) multiplication by three half-size
  products.
- :func:`knuth_divmod` -- Algorithm D (Knuth TAOCP vol. 2, 4.3.1):
  normalized long division with the two-digit quotient estimate, the
  textbook replacement for the paper's subtract-and-recover scheme.
- :class:`BarrettContext` / :func:`barrett_reduce` -- Barrett modular
  reduction, the division-free alternative to Montgomery for one-shot
  reductions (no domain conversion needed); the
  ``test_ablation_reduction`` benchmark compares the two cost profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.mpint.limbs import WORD_BITS, from_int, to_int

#: Below this limb count Karatsuba recursion falls back to schoolbook.
KARATSUBA_CUTOFF = 8


def _school_mul(a: Sequence[int], b: Sequence[int], word_bits: int) -> List[int]:
    mask = (1 << word_bits) - 1
    out = [0] * (len(a) + len(b))
    for i, x in enumerate(a):
        if not x:
            continue
        carry = 0
        for j, y in enumerate(b):
            total = out[i + j] + x * y + carry
            out[i + j] = total & mask
            carry = total >> word_bits
        k = i + len(b)
        while carry:
            total = out[k] + carry
            out[k] = total & mask
            carry = total >> word_bits
            k += 1
    return out


def _add_into(target: List[int], source: Sequence[int], offset: int,
              word_bits: int) -> None:
    """target[offset:] += source, with carry propagation."""
    mask = (1 << word_bits) - 1
    carry = 0
    index = 0
    while index < len(source) or carry:
        position = offset + index
        if position >= len(target):
            target.extend([0] * (position - len(target) + 1))
        total = target[position] + carry + \
            (source[index] if index < len(source) else 0)
        target[position] = total & mask
        carry = total >> word_bits
        index += 1


def _sub_from(target: List[int], source: Sequence[int], offset: int,
              word_bits: int) -> None:
    """target[offset:] -= source (assumes no final borrow)."""
    borrow = 0
    for index in range(len(source)):
        position = offset + index
        total = target[position] - source[index] - borrow
        if total < 0:
            total += 1 << word_bits
            borrow = 1
        else:
            borrow = 0
        target[position] = total
    index = offset + len(source)
    while borrow:
        total = target[index] - borrow
        if total < 0:
            total += 1 << word_bits
            borrow = 1
        else:
            borrow = 0
        target[index] = total
        index += 1


def karatsuba_mul(a: Sequence[int], b: Sequence[int],
                  word_bits: int = WORD_BITS) -> List[int]:
    """Karatsuba multiplication over limb arrays.

    Splits each operand at half the longer length and combines three
    recursive products; falls back to schoolbook below the cutoff.
    Result has ``len(a) + len(b)`` limbs, like the schoolbook path.
    """
    a = list(a)
    b = list(b)
    if min(len(a), len(b)) <= KARATSUBA_CUTOFF:
        return _school_mul(a, b, word_bits)
    half = max(len(a), len(b)) // 2
    a_low, a_high = a[:half], a[half:]
    b_low, b_high = b[:half], b[half:]
    if not a_high or not b_high:
        return _school_mul(a, b, word_bits)

    low = karatsuba_mul(a_low, b_low, word_bits)
    high = karatsuba_mul(a_high, b_high, word_bits)
    a_sum, _carry_a = _limb_add_simple(a_low, a_high, word_bits)
    b_sum, _carry_b = _limb_add_simple(b_low, b_high, word_bits)
    middle = karatsuba_mul(a_sum, b_sum, word_bits)

    result = [0] * (len(a) + len(b))
    _add_into(result, low, 0, word_bits)
    _add_into(result, high, 2 * half, word_bits)
    _add_into(result, middle, half, word_bits)
    _sub_from(result, low, half, word_bits)
    _sub_from(result, high, half, word_bits)
    return result[:len(a) + len(b)]


def _limb_add_simple(a: Sequence[int], b: Sequence[int],
                     word_bits: int) -> Tuple[List[int], int]:
    mask = (1 << word_bits) - 1
    size = max(len(a), len(b))
    out: List[int] = []
    carry = 0
    for index in range(size):
        total = carry + (a[index] if index < len(a) else 0) + \
            (b[index] if index < len(b) else 0)
        out.append(total & mask)
        carry = total >> word_bits
    if carry:
        out.append(carry)
    return out, carry


def knuth_divmod(numerator: Sequence[int], denominator: Sequence[int],
                 word_bits: int = WORD_BITS) -> Tuple[List[int], List[int]]:
    """Knuth Algorithm D long division over limb arrays.

    Returns ``(quotient, remainder)`` in canonical limb form.  Handles
    the single-limb divisor fast path, normalization (D1), the two-digit
    quotient estimate with correction (D3), multiply-subtract with
    add-back (D4-D6), and denormalization (D8).
    """
    base = 1 << word_bits
    mask = base - 1
    u = [limb & mask for limb in numerator]
    v = [limb & mask for limb in denominator]
    while len(v) > 1 and v[-1] == 0:
        v.pop()
    if v == [0]:
        raise ZeroDivisionError("Knuth division by zero")
    while len(u) > 1 and u[-1] == 0:
        u.pop()

    # Fast path: single-limb divisor.
    if len(v) == 1:
        divisor = v[0]
        quotient = [0] * len(u)
        remainder = 0
        for index in range(len(u) - 1, -1, -1):
            accumulator = (remainder << word_bits) | u[index]
            quotient[index] = accumulator // divisor
            remainder = accumulator % divisor
        return _trim(quotient), [remainder]

    if _compare(u, v) < 0:
        return [0], _trim(u)

    # D1: normalize so the divisor's top limb has its high bit set.
    shift = word_bits - v[-1].bit_length()
    u_norm = from_int(to_int(u, word_bits) << shift, word_bits=word_bits)
    v_norm = from_int(to_int(v, word_bits) << shift, word_bits=word_bits)
    n = len(v_norm)
    m = len(u_norm) - n
    if m < 0:
        return [0], _trim(u)
    u_norm.append(0)
    quotient = [0] * (m + 1)

    for j in range(m, -1, -1):
        # D3: estimate q_hat from the top two numerator limbs.
        top = (u_norm[j + n] << word_bits) | u_norm[j + n - 1]
        q_hat = top // v_norm[n - 1]
        r_hat = top % v_norm[n - 1]
        while q_hat >= base or (
                q_hat * v_norm[n - 2] >
                ((r_hat << word_bits) | u_norm[j + n - 2])):
            q_hat -= 1
            r_hat += v_norm[n - 1]
            if r_hat >= base:
                break
        # D4: multiply and subtract.
        borrow = 0
        carry = 0
        for i in range(n):
            product = q_hat * v_norm[i] + carry
            carry = product >> word_bits
            subtrahend = (product & mask) + borrow
            diff = u_norm[j + i] - subtrahend
            if diff < 0:
                diff += base
                borrow = 1
            else:
                borrow = 0
            u_norm[j + i] = diff
        diff = u_norm[j + n] - carry - borrow
        if diff < 0:
            # D6: add back.
            diff += base
            u_norm[j + n] = diff & mask
            q_hat -= 1
            carry = 0
            for i in range(n):
                total = u_norm[j + i] + v_norm[i] + carry
                u_norm[j + i] = total & mask
                carry = total >> word_bits
            u_norm[j + n] = (u_norm[j + n] + carry) & mask
        else:
            u_norm[j + n] = diff
        quotient[j] = q_hat

    # D8: denormalize the remainder.
    remainder_value = to_int(u_norm[:n], word_bits) >> shift
    return _trim(quotient), from_int(remainder_value, word_bits=word_bits)


def _trim(limbs: List[int]) -> List[int]:
    while len(limbs) > 1 and limbs[-1] == 0:
        limbs.pop()
    return limbs


def _compare(a: Sequence[int], b: Sequence[int]) -> int:
    size = max(len(a), len(b))
    for index in range(size - 1, -1, -1):
        x = a[index] if index < len(a) else 0
        y = b[index] if index < len(b) else 0
        if x != y:
            return -1 if x < y else 1
    return 0


@dataclass(frozen=True)
class BarrettContext:
    """Precomputed constants for Barrett reduction modulo ``modulus``.

    ``mu = floor(4^k / modulus)`` with ``k = bit length of modulus``;
    one reduction costs two multiplications and at most two conditional
    subtractions -- no domain conversion, unlike Montgomery, but the
    multiplications are full-width rather than interleaved.
    """

    modulus: int
    k: int = field(init=False)
    mu: int = field(init=False)

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ValueError("modulus must be positive")
        k = self.modulus.bit_length()
        object.__setattr__(self, "k", k)
        object.__setattr__(self, "mu", (1 << (2 * k)) // self.modulus)


def barrett_reduce(value: int, ctx: BarrettContext) -> int:
    """Reduce ``value`` modulo the context's modulus (Barrett).

    Requires ``0 <= value < modulus^2`` (a fresh product), the standard
    Barrett precondition.
    """
    if value < 0:
        raise ValueError("Barrett reduction needs a non-negative value")
    if value >= ctx.modulus * ctx.modulus:
        raise ValueError("Barrett precondition: value < modulus^2")
    q = ((value >> (ctx.k - 1)) * ctx.mu) >> (ctx.k + 1)
    remainder = value - q * ctx.modulus
    while remainder >= ctx.modulus:
        remainder -= ctx.modulus
    return remainder


def barrett_mod_mul(a: int, b: int, ctx: BarrettContext) -> int:
    """``a * b mod n`` via one Barrett reduction."""
    return barrett_reduce((a % ctx.modulus) * (b % ctx.modulus), ctx)
