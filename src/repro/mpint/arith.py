"""Limb-level arithmetic (paper Sec. IV-A1).

These functions implement the word-by-word algorithms FLBooster runs on GPU
threads: carry-propagating addition and subtraction, schoolbook
multiplication that accumulates partial products across threads, and the
paper's subtract-and-recover division scheme.  Each function operates on raw
little-endian limb lists so the simulated GPU kernels can account for
per-word work faithfully.

Every routine returns canonical limbs (all words < 2**word_bits) and, where
meaningful, an explicit carry/borrow flag -- the "overflow result stored in
the thread locally and then propagated" of Sec. IV-A1.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.mpint.limbs import WORD_BITS, from_int, to_int


def _pad(a: Sequence[int], b: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Zero-extend the shorter operand so both have equal limb counts."""
    size = max(len(a), len(b))
    return (
        list(a) + [0] * (size - len(a)),
        list(b) + [0] * (size - len(b)),
    )


def limb_add(a: Sequence[int], b: Sequence[int],
             word_bits: int = WORD_BITS) -> Tuple[List[int], int]:
    """Add two limb arrays with carry propagation.

    Returns ``(sum_limbs, carry_out)`` where ``sum_limbs`` has the length of
    the longer operand and ``carry_out`` is 0 or 1.

    >>> limb_add([WORD_MASK], [1])  # doctest: +SKIP
    ([0], 1)
    """
    mask = (1 << word_bits) - 1
    xs, ys = _pad(a, b)
    out: List[int] = []
    carry = 0
    for x, y in zip(xs, ys):
        total = x + y + carry
        out.append(total & mask)
        carry = total >> word_bits
    return out, carry


def limb_sub(a: Sequence[int], b: Sequence[int],
             word_bits: int = WORD_BITS) -> Tuple[List[int], int]:
    """Subtract ``b`` from ``a`` with borrow propagation.

    Returns ``(diff_limbs, borrow_out)``.  When ``borrow_out`` is 1 the
    result wrapped modulo ``2**(word_bits * size)`` -- the caller recovers by
    addition, exactly the overflow-recovery step of Sec. IV-A1.
    """
    mask = (1 << word_bits) - 1
    xs, ys = _pad(a, b)
    out: List[int] = []
    borrow = 0
    for x, y in zip(xs, ys):
        total = x - y - borrow
        if total < 0:
            total += 1 << word_bits
            borrow = 1
        else:
            borrow = 0
        out.append(total & mask)
    return out, borrow


def limb_mul(a: Sequence[int], b: Sequence[int],
             word_bits: int = WORD_BITS) -> List[int]:
    """Schoolbook multiplication of two limb arrays.

    The result has ``len(a) + len(b)`` limbs: the paper's "two
    multi-precision integers of the same size ... to represent the more
    significant words and less significant words of the final result".
    """
    mask = (1 << word_bits) - 1
    out = [0] * (len(a) + len(b))
    for i, x in enumerate(a):
        if not x:
            continue
        carry = 0
        for j, y in enumerate(b):
            total = out[i + j] + x * y + carry
            out[i + j] = total & mask
            carry = total >> word_bits
        k = i + len(b)
        while carry:
            total = out[k] + carry
            out[k] = total & mask
            carry = total >> word_bits
            k += 1
    return out


def limb_compare(a: Sequence[int], b: Sequence[int]) -> int:
    """Three-way comparison of two limb arrays.

    Returns -1, 0, or 1 as ``a`` is less than, equal to, or greater than
    ``b``.  Scans from the most significant limb down, as a GPU reduction
    over per-thread comparisons would.
    """
    xs, ys = _pad(a, b)
    for x, y in zip(reversed(xs), reversed(ys)):
        if x != y:
            return -1 if x < y else 1
    return 0


def _bit_length(limbs: Sequence[int], word_bits: int = WORD_BITS) -> int:
    """Number of significant bits in a limb array."""
    for index in range(len(limbs) - 1, -1, -1):
        if limbs[index]:
            return index * word_bits + limbs[index].bit_length()
    return 0


def limb_divmod(a: Sequence[int], b: Sequence[int],
                word_bits: int = WORD_BITS) -> Tuple[List[int], List[int]]:
    """Divide ``a`` by ``b`` returning ``(quotient, remainder)`` limbs.

    Implements the paper's division scheme: estimate a quotient from the
    more-significant words, subtract ``quotient * divisor`` from the
    numerator, recover by addition if the subtraction overflowed, and repeat
    until the numerator is smaller than the denominator (Sec. IV-A1).

    Raises ``ZeroDivisionError`` when ``b`` is zero.
    """
    divisor = to_int(b, word_bits)
    if divisor == 0:
        raise ZeroDivisionError("limb division by zero")
    remainder = list(a)
    quotient_value = 0
    while limb_compare(remainder, b) >= 0:
        # Estimate the quotient from the most significant words by aligning
        # bit lengths; shifting by the length gap gives a power-of-two
        # estimate that is within a factor of two of the true partial
        # quotient, so the loop converges in O(bits) rounds.
        shift = _bit_length(remainder, word_bits) - _bit_length(b, word_bits)
        estimate = 1 << max(shift, 0)
        product = limb_mul(from_int(estimate, word_bits=word_bits), list(b),
                           word_bits)
        if limb_compare(product, remainder) > 0:
            # Overflowed: recover by halving the estimate (the additive
            # recovery of Sec. IV-A1 folded into the estimate).
            estimate >>= 1
            product = limb_mul(from_int(estimate, word_bits=word_bits),
                               list(b), word_bits)
        padded = remainder + [0] * (len(product) - len(remainder))
        diff, borrow = limb_sub(padded, product, word_bits)
        if borrow:
            raise AssertionError("quotient estimate exceeded remainder")
        remainder = diff
        quotient_value += estimate
    rem_value = to_int(remainder, word_bits)
    return (
        from_int(quotient_value, word_bits=word_bits),
        from_int(rem_value, word_bits=word_bits),
    )


def limb_mod(a: Sequence[int], b: Sequence[int],
             word_bits: int = WORD_BITS) -> List[int]:
    """Return ``a mod b`` as limbs (see :func:`limb_divmod`)."""
    _quotient, remainder = limb_divmod(a, b, word_bits)
    return remainder
