"""Vectorized limb-plane Montgomery arithmetic (the numpy backend).

The scalar kernels in :mod:`repro.mpint.montgomery` process one big
integer at a time, limb by limb, in Python loops.  This module stores a
whole *batch* of big integers as a ``(num_limbs, batch)`` uint64 matrix
of 32-bit limbs -- one row per limb position, one column per value --
and runs the CIOS Montgomery schedule of
:func:`repro.mpint.montgomery.cios_montgomery_multiply` across every
column per step as numpy array operations (the HAFLO batched-operator
layout: contiguous limb planes, not per-value objects).

Carry handling is *lazy*: products are accumulated into a double-width
offset accumulator without normalizing between outer iterations.  With
32-bit limbs in 64-bit lanes, each accumulator word stays bounded by
``s * 4 * 2^32`` (< 2^43 for every modulus size this repository uses),
so a single sequential carry sweep after the outer loop recovers the
canonical representation exactly.  All arithmetic is exact modular
integer math, which is why any correct schedule -- scalar or batched --
yields bit-identical results; the conformance and property suites
enforce that.

Two operating modes:

- ``headroom=0`` -- the limb geometry (and Montgomery radix ``R``) match
  :class:`~repro.mpint.montgomery.MontgomeryContext` exactly and every
  product is fully reduced into ``[0, N)``, making
  :meth:`PlaneContext.mont_mul` bit-identical to the scalar CIOS kernel.
- ``headroom=1`` (default) -- one extra limb gives a radix ``R' >= 4N``,
  so intermediates may stay in the redundant range ``[0, 2N)`` without a
  per-multiply conditional subtraction; values are fully reduced only at
  domain exit.  The exit value equals the exact modular result, so the
  speedup is observationally invisible.

numpy is an optional dependency: the module imports without it
(``HAVE_NUMPY`` is ``False``) and every array entry point raises a
clear error via :func:`require_numpy`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.mpint.limbs import WORD_BITS, from_int
from repro.mpint.montgomery import MontgomeryContext

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Default sliding-window width for batched exponentiation (matches
#: :data:`repro.mpint.modexp.DEFAULT_WINDOW_BITS`).
DEFAULT_WINDOW_BITS = 5

#: Default window width for fixed-base tables; wider than the sliding
#: window because table build cost is amortized across every batch.
FIXED_BASE_WINDOW_BITS = 6


def require_numpy():
    """Return numpy, or raise with an actionable message when absent."""
    if not HAVE_NUMPY:
        raise RuntimeError(
            "the limb-plane backend requires numpy; install numpy or use "
            "the scalar engines (cpu-paillier / gpu-paillier)")
    return _np


# ----------------------------------------------------------------------
# Plane <-> integer conversions.
# ----------------------------------------------------------------------

def ints_to_plane(values: Sequence[int], num_limbs: int):
    """Pack integers into a ``(num_limbs, batch)`` uint64 limb matrix.

    Each column holds one value as little-endian 32-bit limbs widened to
    uint64 lanes.  Values must fit in ``num_limbs`` limbs.
    """
    np = require_numpy()
    count = len(values)
    nbytes = num_limbs * 4
    buffer = bytearray(nbytes * count)
    for column, value in enumerate(values):
        buffer[column * nbytes:(column + 1) * nbytes] = \
            int(value).to_bytes(nbytes, "little")
    flat = np.frombuffer(bytes(buffer), dtype="<u4")
    return np.ascontiguousarray(
        flat.reshape(count, num_limbs).T).astype(np.uint64)


def plane_to_ints(plane) -> List[int]:
    """Unpack a canonical limb plane back into Python integers."""
    np = require_numpy()
    num_limbs, count = plane.shape
    blob = np.ascontiguousarray(plane.T).astype("<u4").tobytes()
    nbytes = num_limbs * 4
    return [int.from_bytes(blob[i * nbytes:(i + 1) * nbytes], "little")
            for i in range(count)]


class PlaneContext:
    """Batched Montgomery arithmetic over uint64 limb planes.

    Args:
        modulus: The odd modulus ``N``.
        headroom: Extra limbs beyond the scalar context's count.  ``0``
            reproduces the scalar CIOS geometry bit-for-bit (fully
            reduced outputs); ``1`` (default) enables the redundant
            ``[0, 2N)`` representation that skips per-multiply
            conditional subtraction.
    """

    def __init__(self, modulus: int, headroom: int = 1):
        np = require_numpy()
        if headroom < 0:
            raise ValueError("headroom must be non-negative")
        self.ctx = MontgomeryContext(modulus)
        self.modulus = modulus
        self.headroom = headroom
        self.num_limbs = self.ctx.num_limbs + headroom
        #: The plane radix ``R' = 2^(w * (s + headroom))``.
        self.r = 1 << (WORD_BITS * self.num_limbs)
        self.r_mod = self.r % modulus
        self.r_squared = (self.r * self.r) % modulus
        self._mask = np.uint64((1 << WORD_BITS) - 1)
        self._shift = np.uint64(WORD_BITS)
        self._n0_prime = np.uint64(self.ctx.n0_prime)
        n_limbs = from_int(modulus, size=self.num_limbs)
        self.n_col = np.array(n_limbs, dtype=np.uint64).reshape(
            self.num_limbs, 1)
        self._n_flat = self.n_col.reshape(self.num_limbs)
        # Constant single-column planes used by the domain helpers.
        self.one_col = ints_to_plane([1], self.num_limbs)
        self.r2_col = ints_to_plane([self.r_squared], self.num_limbs)
        self.r_mod_col = ints_to_plane([self.r_mod], self.num_limbs)

    # ------------------------------------------------------------------
    # The batched CIOS kernel.
    # ------------------------------------------------------------------

    def mont_mul(self, a, b):
        """Batched CIOS Montgomery product ``a * b * R'^-1 mod N``.

        ``a`` is a ``(num_limbs, B)`` plane; ``b`` may be a plane of the
        same batch width or a broadcastable ``(num_limbs, 1)`` constant.

        With ``headroom == 0`` inputs must be canonical (``< N``) and
        the output is fully reduced into ``[0, N)`` -- bit-identical to
        :func:`repro.mpint.montgomery.cios_montgomery_multiply`.  With
        headroom, inputs may be redundant (``< 2N``) and the output
        stays in ``[0, 2N)`` (``R' >= 4N`` guarantees closure).
        """
        np = _np
        s = self.num_limbs
        batch = max(a.shape[1], b.shape[1])
        mask, shift = self._mask, self._shift
        n0p = self._n0_prime
        n_col = self.n_col
        # Offset accumulator: row i of the logical result lives at
        # acc[i + outer_iteration], so the per-iteration one-word shift
        # of Algorithm 2 is an index offset, not a data move.
        acc = np.zeros((2 * s + 2, batch), dtype=np.uint64)
        for i in range(s):
            prod = a * b[i]
            acc[i:i + s] += prod & mask
            acc[i + 1:i + s + 1] += prod >> shift
            m = (acc[i] * n0p) & mask
            prod = n_col * m
            acc[i:i + s] += prod & mask
            acc[i + 1:i + s + 1] += prod >> shift
            # Retire the (now zero mod 2^w) lowest word's carry so the
            # next iteration's m sees the exact low word.
            acc[i + 1] += acc[i] >> shift
        result = acc[s:]
        carry = np.zeros(batch, dtype=np.uint64)
        for k in range(result.shape[0]):
            total = result[k] + carry
            result[k] = total & mask
            carry = total >> shift
        if self.headroom:
            # Value < 2N < R': fits in num_limbs limbs, stays redundant.
            return np.ascontiguousarray(result[:s])
        return self._subtract_if_ge(result)

    def _subtract_if_ge(self, limbs):
        """Conditionally subtract ``N`` once from normalized limb rows.

        ``limbs`` may carry extra rows beyond ``num_limbs`` (the CIOS
        overflow words); the value must be ``< 2N``.  Returns the
        canonical ``(num_limbs, B)`` plane in ``[0, N)``.
        """
        np = _np
        s = self.num_limbs
        batch = limbs.shape[1]
        n_flat = self._n_flat
        overflow = np.zeros(batch, dtype=bool)
        for k in range(s, limbs.shape[0]):
            overflow |= limbs[k] != 0
        # Lexicographic >= against N, scanning from the top limb.
        ge = np.ones(batch, dtype=bool)
        decided = np.zeros(batch, dtype=bool)
        for k in range(s - 1, -1, -1):
            row = limbs[k]
            word = n_flat[k]
            gt = row > word
            lt = row < word
            ge = np.where(~decided & gt, True, ge)
            ge = np.where(~decided & lt, False, ge)
            decided |= gt | lt
        subtract = overflow | ge
        out = np.ascontiguousarray(limbs[:s])
        borrow = np.zeros(batch, dtype=np.uint64)
        one = np.uint64(1)
        zero = np.uint64(0)
        mask = self._mask
        for k in range(s):
            current = out[k]
            needed = n_flat[k] + borrow
            short = current < needed
            out[k] = np.where(subtract, (current - needed) & mask, current)
            borrow = np.where(subtract & short, one,
                              np.where(subtract, zero, borrow))
        return out

    # ------------------------------------------------------------------
    # Domain helpers.
    # ------------------------------------------------------------------

    def to_montgomery(self, plane):
        """Map canonical values into the (possibly redundant) domain."""
        return self.mont_mul(plane, self.r2_col)

    def exit_montgomery(self, plane):
        """Leave the Montgomery domain with a fully reduced result."""
        out = self.mont_mul(plane, self.one_col)
        if self.headroom:
            out = self._subtract_if_ge(out)
        return out

    def reduce(self, plane):
        """Fully reduce a redundant plane into canonical ``[0, N)``."""
        if self.headroom:
            return self._subtract_if_ge(plane)
        return plane

    def mod_mul(self, a, b):
        """Exact batched modular product ``a * b mod N`` (canonical)."""
        product = self.mont_mul(self.to_montgomery(a), b)
        return self.reduce(product)

    def one_plane(self, batch: int):
        """A canonical plane of ones (``1 mod N`` per column)."""
        np = _np
        return np.tile(self.one_col, (1, batch))

    # ------------------------------------------------------------------
    # Batched exponentiation.
    # ------------------------------------------------------------------

    def pow_shared(self, base_plane, exponent: int,
                   window_bits: int = DEFAULT_WINDOW_BITS):
        """``base ** exponent mod N`` for every column, shared exponent.

        Runs the exact sliding-window schedule of
        :func:`repro.mpint.modexp.sliding_window_pow` with every
        Montgomery multiplication batched across the plane.  The output
        is canonical and bit-identical to ``pow(base, exponent, N)``.
        """
        np = _np
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        batch = base_plane.shape[1]
        if exponent == 0:
            return self.one_plane(batch)
        mont_base = self.to_montgomery(base_plane)
        table_size = 1 << (window_bits - 1)
        base_squared = self.mont_mul(mont_base, mont_base)
        table = [mont_base]
        for _ in range(table_size - 1):
            table.append(self.mont_mul(table[-1], base_squared))
        bits = bin(exponent)[2:]
        result = None
        index = 0
        length = len(bits)
        while index < length:
            if bits[index] == "0":
                if result is not None:
                    result = self.mont_mul(result, result)
                index += 1
                continue
            window_end = min(index + window_bits, length)
            while bits[window_end - 1] == "0":
                window_end -= 1
            window_value = int(bits[index:window_end], 2)
            if result is not None:
                for _ in range(window_end - index):
                    result = self.mont_mul(result, result)
                result = self.mont_mul(result, table[window_value >> 1])
            else:
                result = table[window_value >> 1]
            index = window_end
        return self.exit_montgomery(result)

    def pow_vary(self, base_plane, exponents: Sequence[int]):
        """``base[j] ** exponents[j] mod N`` with per-column exponents.

        Left-to-right square-and-multiply over the longest exponent;
        columns whose bit is clear keep the squared value via a masked
        select.  Exact, hence bit-identical to per-element ``pow``.
        """
        np = _np
        exps = [int(e) for e in exponents]
        if any(e < 0 for e in exps):
            raise ValueError("exponents must be non-negative")
        batch = base_plane.shape[1]
        if len(exps) != batch:
            raise ValueError("one exponent per plane column required")
        max_bits = max((e.bit_length() for e in exps), default=0)
        if max_bits == 0:
            return self.one_plane(batch)
        mont_base = self.to_montgomery(base_plane)
        result = np.tile(self.r_mod_col, (1, batch))  # Montgomery 1.
        for bit in range(max_bits - 1, -1, -1):
            result = self.mont_mul(result, result)
            select = np.array([bool((e >> bit) & 1) for e in exps])
            if select.any():
                multiplied = self.mont_mul(result, mont_base)
                result = np.where(select, multiplied, result)
        return self.exit_montgomery(result)


# ----------------------------------------------------------------------
# Fixed-base windowed exponentiation.
# ----------------------------------------------------------------------

class FixedBaseTable:
    """Precomputed windowed powers of one base for batched modexp.

    For a fixed base ``g`` and window width ``w``, stores
    ``g^(d * 2^(w*j)) mod N`` for every window ``j`` and digit ``d`` in
    Montgomery form.  :meth:`pow` then needs one gathered Montgomery
    multiplication per nonzero window digit -- no squarings at all --
    which is the classic fixed-base trade for Paillier ``g^m``
    encryption under an arbitrary generator.
    """

    def __init__(self, plane: PlaneContext, base: int,
                 max_exponent_bits: int,
                 window_bits: int = FIXED_BASE_WINDOW_BITS):
        require_numpy()
        if max_exponent_bits <= 0:
            raise ValueError("max_exponent_bits must be positive")
        if window_bits <= 0:
            raise ValueError("window_bits must be positive")
        self.plane = plane
        self.base = base % plane.modulus
        self.window_bits = window_bits
        self.num_windows = -(-max_exponent_bits // window_bits)
        self.radix = 1 << window_bits
        modulus = plane.modulus
        r_mod = plane.r_mod
        #: Plain-integer table entries, ``_plain[j][d] = g^(d << (w j))``;
        #: kept for golden-vector replay and debugging.
        self._plain: List[List[int]] = []
        self._mont_rows = []
        window_base = self.base
        for _ in range(self.num_windows):
            plain_row: List[int] = []
            mont_row: List[int] = []
            value = 1
            for _digit in range(self.radix):
                plain_row.append(value)
                mont_row.append((value * r_mod) % modulus)
                value = (value * window_base) % modulus
            self._plain.append(plain_row)
            self._mont_rows.append(
                ints_to_plane(mont_row, plane.num_limbs))
            window_base = pow(window_base, self.radix, modulus)

    @property
    def max_exponent_bits(self) -> int:
        """Largest exponent bit-length this table covers."""
        return self.num_windows * self.window_bits

    def table_entry(self, window: int, digit: int) -> int:
        """The plain value ``base^(digit << (window_bits * window))``."""
        return self._plain[window][digit]

    def pow(self, exponents: Sequence[int]):
        """``base ** exponents[j] mod N`` per column, canonical output."""
        np = _np
        exps = [int(e) for e in exponents]
        digit_mask = self.radix - 1
        limit = 1 << self.max_exponent_bits
        for e in exps:
            if not 0 <= e < limit:
                raise ValueError(
                    f"exponent {e} outside this table's "
                    f"{self.max_exponent_bits}-bit range")
        result = None
        for window in range(self.num_windows):
            digits = np.array(
                [(e >> (window * self.window_bits)) & digit_mask
                 for e in exps], dtype=np.intp)
            if result is not None and not digits.any():
                continue
            gathered = self._mont_rows[window][:, digits]
            if result is None:
                result = gathered
            else:
                result = self.plane.mont_mul(result, gathered)
        return self.plane.exit_montgomery(result)

    def pow_ints(self, exponents: Sequence[int]) -> List[int]:
        """Convenience: :meth:`pow` returned as Python integers."""
        return plane_to_ints(self.pow(exponents))


# ----------------------------------------------------------------------
# Convenience wrappers over int lists (used by the property suites).
# ----------------------------------------------------------------------

_CONTEXT_CACHE: Dict[tuple, PlaneContext] = {}


def plane_context(modulus: int, headroom: int = 1) -> PlaneContext:
    """A cached :class:`PlaneContext` (constants are reusable)."""
    key = (modulus, headroom)
    if key not in _CONTEXT_CACHE:
        if len(_CONTEXT_CACHE) > 64:
            _CONTEXT_CACHE.clear()
        _CONTEXT_CACHE[key] = PlaneContext(modulus, headroom=headroom)
    return _CONTEXT_CACHE[key]


def batched_cios_multiply(a_values: Sequence[int], b_values: Sequence[int],
                          ctx: MontgomeryContext) -> List[int]:
    """Batched twin of :func:`~repro.mpint.montgomery.cios_montgomery_multiply`.

    Uses the exact-match geometry (``headroom=0``) so the results are
    bit-identical to running the scalar kernel per element.
    """
    plane = plane_context(ctx.modulus, headroom=0)
    a = ints_to_plane(a_values, plane.num_limbs)
    b = ints_to_plane(b_values, plane.num_limbs)
    return plane_to_ints(plane.mont_mul(a, b))


def batched_pow(values: Sequence[int], exponent: int, modulus: int,
                window_bits: int = DEFAULT_WINDOW_BITS) -> List[int]:
    """Shared-exponent batched modexp over Python integers."""
    plane = plane_context(modulus)
    base = ints_to_plane([v % modulus for v in values], plane.num_limbs)
    return plane_to_ints(
        plane.pow_shared(base, exponent, window_bits=window_bits))
