"""Montgomery modular multiplication (paper Algorithms 1 and 2).

Two implementations are provided:

- :func:`montgomery_multiply` -- the basic word-free Algorithm 1, operating
  on Python integers.  Used for reference and for the CPU (FATE) engine.
- :func:`cios_montgomery_multiply` -- the CIOS (Coarsely Integrated Operand
  Scanning) variant of Algorithm 2, operating word by word over limb arrays
  exactly as the paper's GPU threads do.  The simulated GPU executes this
  routine and charges its per-word work to the cost model.

:class:`MontgomeryContext` packages the precomputed constants (``R``,
``R^-1``, ``N'``) that the paper notes "can be reused for all Montgomery
multiplications".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.mpint.limbs import WORD_BITS, from_int, limbs_for_bits


def _modular_inverse(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(value, -1, modulus)


@dataclass(frozen=True)
class MontgomeryContext:
    """Precomputed constants for Montgomery arithmetic modulo ``modulus``.

    Attributes:
        modulus: The odd modulus ``N``.
        word_bits: Limb width ``w``.
        num_limbs: ``s``, the limb count of the modulus.
        r: ``R = 2**(w * s)``, the Montgomery radix (``N < R``).
        r_inverse: ``R^-1 mod N``.
        n_prime: ``N' = -N^-1 mod R`` (Algorithm 1 input).
        n0_prime: ``n0' = -N[0]^-1 mod 2**w`` (Algorithm 2 input).
    """

    modulus: int
    word_bits: int = WORD_BITS
    num_limbs: int = field(init=False)
    r: int = field(init=False)
    r_inverse: int = field(init=False)
    n_prime: int = field(init=False)
    n0_prime: int = field(init=False)

    def __post_init__(self) -> None:
        if self.modulus <= 0:
            raise ValueError("modulus must be positive")
        if self.modulus % 2 == 0:
            raise ValueError("Montgomery arithmetic requires an odd modulus")
        num_limbs = limbs_for_bits(self.modulus.bit_length(), self.word_bits)
        r = 1 << (self.word_bits * num_limbs)
        object.__setattr__(self, "num_limbs", num_limbs)
        object.__setattr__(self, "r", r)
        object.__setattr__(self, "r_inverse", _modular_inverse(r, self.modulus))
        object.__setattr__(self, "n_prime", (-_modular_inverse(self.modulus, r)) % r)
        word_radix = 1 << self.word_bits
        n0 = self.modulus & (word_radix - 1)
        object.__setattr__(
            self, "n0_prime", (-_modular_inverse(n0, word_radix)) % word_radix)

    def to_montgomery(self, value: int) -> int:
        """Map ``value`` into the Montgomery domain: ``value * R mod N``."""
        return (value * self.r) % self.modulus

    def from_montgomery(self, value: int) -> int:
        """Map a Montgomery-domain value back: ``value * R^-1 mod N``."""
        return (value * self.r_inverse) % self.modulus

    def one(self) -> int:
        """The multiplicative identity in the Montgomery domain."""
        return self.r % self.modulus


def montgomery_multiply(a: int, b: int, ctx: MontgomeryContext) -> int:
    """Basic Montgomery multiplication (paper Algorithm 1).

    Computes ``a * b * R^-1 mod N`` using only masking (mod R) and shifting
    (div R), the cheap replacements the paper highlights for division and
    modulo when ``R`` is a power of two.
    """
    r_mask = ctx.r - 1
    r_bits = ctx.word_bits * ctx.num_limbs
    t = (a * b) & r_mask                       # T <- AB mod R
    m = (t * ctx.n_prime) & r_mask             # M <- T N' mod R
    u = (a * b + m * ctx.modulus) >> r_bits    # U <- (AB + MN) / R
    if u >= ctx.modulus:
        return u - ctx.modulus
    return u


def cios_montgomery_multiply(a_limbs: Sequence[int], b_limbs: Sequence[int],
                             ctx: MontgomeryContext) -> List[int]:
    """CIOS Montgomery multiplication over limb arrays (paper Algorithm 2).

    Follows the Coarsely Integrated Operand Scanning schedule the paper
    selects as the fastest of the five Koc-Acar-Kaliski variants: for each
    word ``b[i]`` it (1) multiply-accumulates ``a * b[i]`` into the running
    result ``t``, (2) derives ``m = t[0] * n0' mod 2^w`` so that adding
    ``m * n`` zeroes the lowest word, and (3) shifts ``t`` down one word.
    A final conditional subtraction reduces into ``[0, N)``.

    The outer loop in the paper iterates threads; here each "thread slice"
    is processed in sequence, producing bit-identical results to the
    parallel schedule.

    Returns the product ``a * b * R^-1 mod N`` as ``s`` limbs.
    """
    s = ctx.num_limbs
    word_bits = ctx.word_bits
    mask = (1 << word_bits) - 1
    n_limbs = from_int(ctx.modulus, size=s, word_bits=word_bits)
    a = list(a_limbs) + [0] * (s - len(a_limbs))
    b = list(b_limbs) + [0] * (s - len(b_limbs))
    # t has s + 2 words: s result words plus the (t[x], t[x+1]) carry pair
    # of Algorithm 2 lines 8-9.
    t = [0] * (s + 2)

    for i in range(s):
        # Lines 3-9: t <- t + a * b[i] with carry chain.
        carry = 0
        b_i = b[i]
        for k in range(s):
            total = t[k] + a[k] * b_i + carry
            t[k] = total & mask
            carry = total >> word_bits
        total = t[s] + carry
        t[s] = total & mask
        t[s + 1] += total >> word_bits

        # Line 10: m <- t[0] * n0' mod 2^w.
        m = (t[0] * ctx.n0_prime) & mask

        # Lines 11-15: t <- t + m * n; lowest word becomes zero.
        carry = 0
        for k in range(s):
            total = t[k] + m * n_limbs[k] + carry
            t[k] = total & mask
            carry = total >> word_bits
        total = t[s] + carry
        t[s] = total & mask
        t[s + 1] += total >> word_bits

        # Lines 16-17: shift t down one word (divide by 2^w).
        for k in range(s + 1):
            t[k] = t[k + 1]
        t[s + 1] = 0

    # Lines 18-22: conditional subtraction when the result overflows N.
    result = t[:s]
    overflow = t[s] > 0
    if overflow or _limb_ge(result, n_limbs):
        borrow = 0
        for k in range(s):
            total = result[k] - n_limbs[k] - borrow
            if total < 0:
                total += 1 << word_bits
                borrow = 1
            else:
                borrow = 0
            result[k] = total
    return result


def _limb_ge(a: Sequence[int], b: Sequence[int]) -> bool:
    """True when limb array ``a`` >= ``b`` (equal lengths assumed)."""
    for x, y in zip(reversed(a), reversed(b)):
        if x != y:
            return x > y
    return True


def cios_work_estimate(num_limbs: int) -> int:
    """Word-multiplication count of one CIOS multiplication.

    CIOS performs ``2 s^2 + s`` single-word multiplications for an
    ``s``-limb modulus; the simulated GPU charges kernel time from this
    count.
    """
    return 2 * num_limbs * num_limbs + num_limbs
