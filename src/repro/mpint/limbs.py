"""Limb (word-array) representation of multi-precision integers.

The paper (Sec. IV-A1) represents an integer ``m`` as ``s = ceil(k / w)``
words of ``w`` bits each, where ``k = ceil(log2 m)``.  A GPU program with
``d`` threads assigns ``s / d`` limbs to each thread.  This module provides
the canonical little-endian word-array representation used throughout the
repository, plus conversions to and from Python integers.

Limbs are stored least-significant first (index 0 is the lowest word), the
same orientation Algorithm 2 in the paper indexes them.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

#: Default word size in bits.  The paper uses ``w = 32`` on 32-bit systems
#: and ``w = 64`` on 64-bit systems; 32 keeps intermediate products within
#: a machine double-word which mirrors CUDA's ``__umulhi`` usage.
WORD_BITS = 32

#: Mask for a single word at the default width.
WORD_MASK = (1 << WORD_BITS) - 1


def limbs_for_bits(bits: int, word_bits: int = WORD_BITS) -> int:
    """Return the number of limbs needed to hold a ``bits``-bit integer.

    >>> limbs_for_bits(1024)
    32
    >>> limbs_for_bits(1, word_bits=32)
    1
    """
    if bits <= 0:
        return 1
    return -(-bits // word_bits)


def from_int(value: int, size: int | None = None,
             word_bits: int = WORD_BITS) -> List[int]:
    """Split a non-negative integer into little-endian limbs.

    Args:
        value: The integer to convert.  Must be non-negative.
        size: Optional fixed number of limbs.  The result is zero-padded to
            this length; a value too large for ``size`` limbs raises
            ``OverflowError``.
        word_bits: Width of each limb in bits.

    Returns:
        A list of limb values, least significant first.

    >>> from_int(0x1_0000_0001)
    [1, 1]
    >>> from_int(5, size=4)
    [5, 0, 0, 0]
    """
    if value < 0:
        raise ValueError(f"limb representation requires value >= 0, got {value}")
    mask = (1 << word_bits) - 1
    limbs: List[int] = []
    remaining = value
    while remaining:
        limbs.append(remaining & mask)
        remaining >>= word_bits
    if not limbs:
        limbs.append(0)
    if size is not None:
        if len(limbs) > size:
            raise OverflowError(
                f"value needs {len(limbs)} limbs but only {size} were allowed")
        limbs.extend([0] * (size - len(limbs)))
    return limbs


def to_int(limbs: Sequence[int], word_bits: int = WORD_BITS) -> int:
    """Reassemble little-endian limbs into a Python integer.

    >>> to_int([1, 1])
    4294967297
    """
    value = 0
    for limb in reversed(limbs):
        value = (value << word_bits) | (limb & ((1 << word_bits) - 1))
    return value


def normalize(limbs: Sequence[int], word_bits: int = WORD_BITS) -> List[int]:
    """Propagate carries so every limb fits in ``word_bits`` bits.

    Accepts limbs that have accumulated overflow (e.g. after a vectorized
    addition) and returns the canonical representation.  The result may be
    longer than the input if the top limb carried out.

    >>> normalize([WORD_MASK + 3, 0])
    [2, 1]
    """
    mask = (1 << word_bits) - 1
    out: List[int] = []
    carry = 0
    for limb in limbs:
        total = limb + carry
        out.append(total & mask)
        carry = total >> word_bits
    while carry:
        out.append(carry & mask)
        carry >>= word_bits
    return out


class LimbVector:
    """A fixed-width multi-precision integer stored as limbs.

    This is the unit of data the simulated GPU kernels operate on: a value
    plus an explicit limb count, so that thread partitioning (``s / d`` limbs
    per thread) is well defined even for small values.

    The class intentionally keeps a tiny surface: arithmetic lives in
    :mod:`repro.mpint.arith` as free functions over raw limb lists, matching
    the kernel-style code in the paper's Algorithm 2.
    """

    __slots__ = ("limbs", "word_bits")

    def __init__(self, limbs: Iterable[int], word_bits: int = WORD_BITS):
        self.limbs: List[int] = list(limbs)
        self.word_bits = word_bits
        if not self.limbs:
            self.limbs = [0]

    @classmethod
    def from_int(cls, value: int, size: int | None = None,
                 word_bits: int = WORD_BITS) -> "LimbVector":
        """Build a vector from a Python integer (see :func:`from_int`)."""
        return cls(from_int(value, size=size, word_bits=word_bits), word_bits)

    def to_int(self) -> int:
        """Return the integer value of this vector."""
        return to_int(self.limbs, self.word_bits)

    def resized(self, size: int) -> "LimbVector":
        """Return a copy padded or validated to exactly ``size`` limbs."""
        return LimbVector(
            from_int(self.to_int(), size=size, word_bits=self.word_bits),
            self.word_bits,
        )

    def split(self, threads: int) -> List[List[int]]:
        """Partition the limbs across ``threads`` GPU threads.

        Mirrors the paper's assignment of ``x = s / T`` words per thread
        (Algorithm 2 input).  The limb count must divide evenly; callers
        resize first with :meth:`resized`.
        """
        count = len(self.limbs)
        if count % threads != 0:
            raise ValueError(
                f"{count} limbs cannot be split evenly across {threads} threads")
        per_thread = count // threads
        return [
            self.limbs[i * per_thread:(i + 1) * per_thread]
            for i in range(threads)
        ]

    def __len__(self) -> int:
        return len(self.limbs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LimbVector):
            return self.to_int() == other.to_int()
        if isinstance(other, int):
            return self.to_int() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.to_int())

    def __repr__(self) -> str:
        return f"LimbVector({self.to_int():#x}, limbs={len(self.limbs)})"
