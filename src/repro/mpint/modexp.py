"""Sliding-window modular exponentiation (paper Sec. IV-A3).

FLBooster combines its GPU Montgomery multiplier with "an extension of the
sliding window exponential method", reducing the multiplication count of
``x^e mod n`` from ``O(e)`` to ``O(log_{2^b} e)`` where ``b`` is the window
width.  This module implements that schedule on top of
:class:`repro.mpint.montgomery.MontgomeryContext` and exposes an operation
counter so the simulated GPU can charge exactly the multiplications the
schedule performs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpint.montgomery import MontgomeryContext, montgomery_multiply

#: Default sliding-window width.  Width 5 is the classic sweet spot for
#: 1024-4096-bit exponents: 16 precomputed odd powers, ~bits/5 + bits
#: multiplications total.
DEFAULT_WINDOW_BITS = 5


@dataclass
class ModExpStats:
    """Multiplication counts of one exponentiation, for the cost model."""

    squarings: int = 0
    multiplications: int = 0
    precompute: int = 0

    @property
    def total(self) -> int:
        """All Montgomery multiplications performed."""
        return self.squarings + self.multiplications + self.precompute


def sliding_window_pow(base: int, exponent: int, ctx: MontgomeryContext,
                       window_bits: int = DEFAULT_WINDOW_BITS,
                       stats: ModExpStats | None = None) -> int:
    """Compute ``base ** exponent mod ctx.modulus`` with sliding windows.

    Args:
        base: The base, any non-negative integer.
        exponent: The non-negative exponent.
        ctx: Montgomery context for the modulus.
        window_bits: Window width ``b``; odd powers up to ``2^b - 1`` are
            precomputed.
        stats: Optional counter accumulating the multiplication schedule,
            consumed by the GPU cost model.

    Returns:
        The modular power as a Python integer.
    """
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if ctx.modulus == 1:
        return 0
    if stats is None:
        stats = ModExpStats()
    if exponent == 0:
        return 1 % ctx.modulus

    mont_base = ctx.to_montgomery(base % ctx.modulus)

    # Precompute odd powers base^1, base^3, ..., base^(2^b - 1) in the
    # Montgomery domain.
    table_size = 1 << (window_bits - 1)
    base_squared = montgomery_multiply(mont_base, mont_base, ctx)
    stats.precompute += 1
    table = [mont_base]
    for _ in range(table_size - 1):
        table.append(montgomery_multiply(table[-1], base_squared, ctx))
        stats.precompute += 1

    result = ctx.one()
    bits = bin(exponent)[2:]
    index = 0
    length = len(bits)
    started = False
    while index < length:
        if bits[index] == "0":
            if started:
                result = montgomery_multiply(result, result, ctx)
                stats.squarings += 1
            index += 1
            continue
        # Take the longest window ending in a 1 bit, at most window_bits wide.
        window_end = min(index + window_bits, length)
        while bits[window_end - 1] == "0":
            window_end -= 1
        window_value = int(bits[index:window_end], 2)
        width = window_end - index
        if started:
            for _ in range(width):
                result = montgomery_multiply(result, result, ctx)
                stats.squarings += 1
            result = montgomery_multiply(result, table[window_value >> 1], ctx)
            stats.multiplications += 1
        else:
            result = table[window_value >> 1]
            started = True
        index = window_end

    return ctx.from_montgomery(result)


def mod_pow(base: int, exponent: int, modulus: int,
            window_bits: int = DEFAULT_WINDOW_BITS) -> int:
    """Convenience wrapper: sliding-window power for an arbitrary modulus.

    Falls back to Python's built-in ``pow`` for even moduli, which the
    Montgomery representation cannot host.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    if modulus % 2 == 0:
        return pow(base, exponent, modulus)
    ctx = MontgomeryContext(modulus)
    return sliding_window_pow(base, exponent, ctx, window_bits=window_bits)


def modexp_multiplication_count(exponent_bits: int,
                                window_bits: int = DEFAULT_WINDOW_BITS) -> int:
    """Expected Montgomery multiplications for an exponent of given size.

    One squaring per exponent bit, one table multiplication per window
    (``bits / b`` on average), plus ``2^(b-1)`` precomputations.  Used by the
    GPU cost model to charge modular exponentiations without rerunning them.
    """
    if exponent_bits <= 0:
        return 0
    squarings = exponent_bits
    window_mults = -(-exponent_bits // window_bits)
    precompute = 1 << (window_bits - 1)
    return squarings + window_mults + precompute
