"""The compared systems as configurations (paper Sec. VI-A "Competitors").

- **FATE** [4]: the industrial baseline -- CPU Paillier, per-element
  serialized ciphertext objects, no compression.
- **HAFLO** [18]: the state-of-the-art acceleration baseline -- GPU
  Paillier *without* FLBooster's resource manager, no compression.
- **FLBooster**: GPU Paillier with the resource manager, encoding-
  quantization + batch compression, packed binary serialization.
- **w/o GHE** (Table V): FLBooster with the GPU path disabled.
- **w/o BC** (Table V): FLBooster with batch compression disabled.
"""

from __future__ import annotations

from typing import Tuple

from repro.federation.runtime import (
    ABLATION_SYSTEMS,
    FATE_SYSTEM,
    FLBOOSTER_SYSTEM,
    HAFLO_SYSTEM,
    STANDARD_SYSTEMS,
    SystemConfig,
    WITHOUT_BC,
    WITHOUT_GHE,
)

FATE = FATE_SYSTEM
HAFLO = HAFLO_SYSTEM
FLBOOSTER = FLBOOSTER_SYSTEM

_ALL: Tuple[SystemConfig, ...] = (
    FATE, HAFLO, FLBOOSTER, WITHOUT_GHE, WITHOUT_BC)


def system_by_name(name: str) -> SystemConfig:
    """Look up a configuration by its display name.

    Raises ``KeyError`` with the available names when unknown.
    """
    for config in _ALL:
        if config.name == name:
            return config
    raise KeyError(
        f"unknown system {name!r}; available: "
        f"{[config.name for config in _ALL]}")


__all__ = [
    "FATE",
    "HAFLO",
    "FLBOOSTER",
    "WITHOUT_GHE",
    "WITHOUT_BC",
    "STANDARD_SYSTEMS",
    "ABLATION_SYSTEMS",
    "SystemConfig",
    "system_by_name",
]
