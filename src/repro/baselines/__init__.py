"""Baseline and ablation system configurations (paper Sec. VI-A, VI-E).

Thin façade over :mod:`repro.federation.runtime`: the compared systems are
*configurations* of the same components, exactly as the paper's ablation
treats them.
"""

from repro.baselines.systems import (
    FATE,
    HAFLO,
    FLBOOSTER,
    WITHOUT_GHE,
    WITHOUT_BC,
    STANDARD_SYSTEMS,
    ABLATION_SYSTEMS,
    system_by_name,
)

__all__ = [
    "FATE",
    "HAFLO",
    "FLBOOSTER",
    "WITHOUT_GHE",
    "WITHOUT_BC",
    "STANDARD_SYSTEMS",
    "ABLATION_SYSTEMS",
    "system_by_name",
]
