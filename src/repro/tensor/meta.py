"""Self-describing layout metadata for encrypted tensors.

A raw Paillier ciphertext batch is just a list of huge integers; nothing
about it says which key it was encrypted under, how many logical values
are packed per word, which quantization scheme produced the encodings, or
how many vectors were slot-wise summed.  Historically that metadata was
threaded by hand through every producer/consumer (`encrypt_vector` /
`decrypt_vector` callers supplying ``count`` / ``summands`` / scheme) --
a standing source of mismatched-decode bugs.  :class:`TensorMeta` pins
all of it to the payload itself, so a decode can never be asked to guess.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from typing import Tuple

from repro.quantization.codecs import build_codec
from repro.quantization.encoding import QuantizationScheme


class KeyMismatchError(ValueError):
    """Two encrypted tensors under different keys were combined.

    Homomorphic operations across keys decrypt to silent garbage
    (Paillier is malleable); the key fingerprint carried by every
    :class:`TensorMeta` turns that into a loud error instead.
    """


def key_fingerprint(public_key) -> bytes:
    """16-byte fingerprint of a Paillier public key ``(n, g)``."""
    digest = hashlib.sha256()
    digest.update(public_key.n.to_bytes(
        (public_key.n.bit_length() + 7) // 8, "big"))
    digest.update(public_key.g.to_bytes(
        (public_key.g.bit_length() + 7) // 8, "big"))
    return digest.digest()[:16]


@dataclass(frozen=True)
class TensorMeta:
    """Layout of one encrypted (or encoded) tensor.

    Attributes:
        key_fingerprint: 16-byte fingerprint of the encrypting public key
            (:func:`key_fingerprint`); all-zeros for plaintext tensors.
        nominal_bits: Key size the cost model charges.
        physical_bits: Key size the mathematics actually runs at.
        scheme: The encoding-quantization scheme (Eqs. 6-8) that produced
            the slot values.
        capacity: Logical values packed per ciphertext word (Eq. 9).
        shape: Logical array shape of the values.
        count: Number of logical values (``prod(shape)``).
        summands: How many encodings each slot currently carries -- the
            Eq. 6 translation-offset multiplier the decode must subtract.
        packed: Whether the words use the Eq. 9 multi-slot layout (true
            exactly when ``capacity > 1``).
        codec: Registry id of the packing codec that laid out the words
            (``"dense"`` / ``"interleave"`` / ``"sparse"``; see
            :mod:`repro.quantization.codecs`).
        codec_params: The codec's wire parameters -- together with the
            scheme and capacity they reconstruct the exact layout on the
            receiving side (guard width for interleave; value width and
            support pattern for sparse).
    """

    key_fingerprint: bytes
    nominal_bits: int
    physical_bits: int
    scheme: QuantizationScheme
    capacity: int
    shape: Tuple[int, ...]
    count: int
    summands: int = 1
    packed: bool = False
    codec: str = "dense"
    codec_params: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.key_fingerprint) != 16:
            raise ValueError("key fingerprint must be 16 bytes")
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.summands < 1:
            raise ValueError("summands must be at least 1")
        expected = 1
        for dim in self.shape:
            expected *= dim
        if expected != self.count:
            raise ValueError(
                f"shape {self.shape} holds {expected} values, not "
                f"{self.count}")
        object.__setattr__(self, "codec_params",
                           tuple(int(p) for p in self.codec_params))
        # Reject unknown codec ids and implausible parameters up front:
        # a meta that cannot rebuild its codec cannot be decoded either.
        build_codec(self)

    @property
    def scheme_id(self) -> str:
        """Compact identity of the quantization scheme."""
        return (f"eq9:a{self.scheme.alpha:g}:r{self.scheme.r_bits}"
                f":p{self.scheme.num_parties}")

    @property
    def num_words(self) -> int:
        """Ciphertext words the payload occupies (codec-dependent)."""
        if self.count == 0:
            return 0
        if self.codec == "dense":
            return math.ceil(self.count / self.capacity)
        return build_codec(self).words_needed(self.count)

    def summand_capacity(self) -> int:
        """How many same-layout tensors may be slot-wise summed.

        Per-codec: the Eq. 8 guard bits for dense and sparse, the
        widened guard band for the interleaved layout.  Shard capacity
        planning and the segmented decrypt consult this instead of
        assuming ``2**overflow_bits``.
        """
        return build_codec(self).max_safe_summands()

    # ------------------------------------------------------------------
    # Derived metadata for the homomorphic operations.
    # ------------------------------------------------------------------

    def combine_add(self, other: "TensorMeta") -> "TensorMeta":
        """Metadata of a slot-wise sum of two tensors.

        Raises:
            KeyMismatchError: The operands were encrypted under
                different keys.
            ValueError: The operands' layouts are incompatible.
        """
        if self.key_fingerprint != other.key_fingerprint:
            raise KeyMismatchError(
                "cannot add ciphertexts under different keys "
                f"({self.key_fingerprint.hex()[:8]} vs "
                f"{other.key_fingerprint.hex()[:8]})")
        if self.scheme != other.scheme or self.capacity != other.capacity:
            raise ValueError(
                f"layout mismatch: {self.scheme_id}/cap{self.capacity} vs "
                f"{other.scheme_id}/cap{other.capacity}")
        if self.codec != other.codec:
            raise ValueError(
                f"codec mismatch: {self.codec} vs {other.codec}")
        if self.codec_params != other.codec_params:
            # For the sparse layout this is the support-pattern check:
            # adding different patterns would sum unrelated positions.
            raise ValueError(
                f"codec parameter mismatch for {self.codec!r} "
                f"(patterns/widths differ)")
        if self.count != other.count or self.shape != other.shape:
            raise ValueError(
                f"shape mismatch: {self.shape} vs {other.shape}")
        return replace(self, summands=self.summands + other.summands)

    def scaled(self, scalar: int) -> "TensorMeta":
        """Metadata after multiplying every slot by a positive integer.

        Scaling an Eq. 6 encoding by ``k`` scales its ``+alpha``
        translation too, so the summand count multiplies.
        """
        if scalar < 1:
            raise ValueError(
                f"scalar must be a positive integer, got {scalar}")
        return replace(self, summands=self.summands * scalar)

    def sliced(self, start: int, stop: int) -> "TensorMeta":
        """Metadata of a word-aligned logical slice ``[start:stop]``."""
        if not build_codec(self).describe().sliceable:
            raise ValueError(
                f"the {self.codec!r} codec is not sliceable: word "
                f"boundaries have no aligned meaning in index space")
        if not 0 <= start <= stop <= self.count:
            raise IndexError(
                f"slice [{start}:{stop}] outside 0..{self.count}")
        if start % self.capacity != 0:
            raise IndexError(
                f"slice start {start} not aligned to the packing "
                f"capacity {self.capacity}")
        if stop % self.capacity != 0 and stop != self.count:
            raise IndexError(
                f"slice stop {stop} not aligned to the packing "
                f"capacity {self.capacity}")
        new_count = stop - start
        return replace(self, shape=(new_count,), count=new_count)

    def summed(self, num_words: int) -> "TensorMeta":
        """Metadata after homomorphically summing all words into one."""
        if self.capacity != 1:
            raise ValueError(
                "sum() needs capacity 1: summing packed words mixes "
                "unrelated slots")
        if self.codec == "sparse":
            raise ValueError(
                "sum() over the sparse layout mixes distinct pattern "
                "positions; decode and re-encode densely instead")
        if num_words < 1:
            raise ValueError("cannot sum an empty tensor")
        return replace(self, shape=(1,), count=1,
                       summands=self.summands * num_words)
