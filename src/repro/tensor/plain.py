"""PlainTensor: the encode -> quantize -> pack codec (Eqs. 6-9).

One object owns the full plaintext half of the FLBooster pipeline that
used to be duplicated between ``federation/aggregator.py`` and
``models/base.py``: a real-valued array goes in, Eq. 9-packed plaintext
words (plus the metadata to invert them) come out, and ``decode`` gets
everything it needs from the attached :class:`~repro.tensor.meta.TensorMeta`
-- no caller-supplied counts or schemes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.quantization.codecs import build_codec
from repro.quantization.packing import BatchPacker
from repro.tensor.meta import TensorMeta

#: Fingerprint of "not encrypted yet / no key".
PLAINTEXT_FINGERPRINT = b"\x00" * 16


def packer_for(meta: TensorMeta):
    """Reconstruct the packing codec a tensor's metadata describes.

    Historically this always rebuilt the dense Eq. 9
    :class:`~repro.quantization.packing.BatchPacker`; it now consults
    the codec registry, so metas carrying ``codec="interleave"`` or
    ``codec="sparse"`` come back as their own layouts.
    """
    return build_codec(meta)


class PlainTensor:
    """An encoded-and-packed plaintext tensor.

    Immutable: ``words`` is a tuple of Eq. 9-packed plaintext integers and
    ``meta`` describes their layout.  Build one with :meth:`encode`
    (gradients in) and read it back with :meth:`decode` (gradients out);
    engines turn it into a :class:`~repro.tensor.cipher.CipherTensor` via
    ``encrypt_tensor`` and back via ``decrypt_tensor``.
    """

    __slots__ = ("words", "meta")

    def __init__(self, words: Sequence[int], meta: TensorMeta):
        if len(words) != meta.num_words:
            raise ValueError(
                f"{meta.count} values at capacity {meta.capacity} need "
                f"{meta.num_words} words, got {len(words)}")
        object.__setattr__(self, "words", tuple(words))
        object.__setattr__(self, "meta", meta)

    def __setattr__(self, name, value):
        raise AttributeError("PlainTensor is immutable")

    def __len__(self) -> int:
        return self.meta.count

    def __repr__(self) -> str:
        return (f"PlainTensor(shape={self.meta.shape}, "
                f"scheme={self.meta.scheme_id}, "
                f"capacity={self.meta.capacity}, "
                f"summands={self.meta.summands})")

    # ------------------------------------------------------------------
    # Codec.
    # ------------------------------------------------------------------

    @classmethod
    def encode(cls, values: np.ndarray, packer: BatchPacker,
               nominal_bits: int = 0,
               physical_bits: int = 0) -> "PlainTensor":
        """Encode, quantize and pack a real-valued array (Eqs. 6-9).

        Args:
            values: Real-valued array of any shape.
            packer: Any registered packing codec (the dense Eq. 9
                :class:`BatchPacker`, the interleaved layout, or a
                pattern-pinned sparse codec); its identity and wire
                parameters are recorded in the metadata.
            nominal_bits / physical_bits: Key geometry recorded in the
                metadata; an engine overwrites them at encryption time.
        """
        array = np.asarray(values, dtype=np.float64)
        flat = array.ravel()
        words = packer.pack_values(flat)
        meta = TensorMeta(
            key_fingerprint=PLAINTEXT_FINGERPRINT,
            nominal_bits=nominal_bits,
            physical_bits=physical_bits,
            scheme=packer.scheme,
            capacity=packer.capacity,
            shape=tuple(array.shape),
            count=flat.size,
            summands=1,
            packed=packer.capacity > 1,
            codec=packer.codec_id,
            codec_params=packer.codec_params(),
        )
        return cls(words, meta)

    def decode(self) -> np.ndarray:
        """Unpack and decode back to a real-valued array.

        The Eq. 6 translation offset is corrected with the metadata's own
        ``summands`` count, so partial aggregates and scaled tensors
        decode exactly without the caller supplying anything.  The codec
        recorded in the metadata drives the unpacking, so dense,
        interleaved and sparse payloads all come back through the same
        call.
        """
        codec = packer_for(self.meta)
        decoded = codec.decode_words(
            list(self.words), self.meta.count, summands=self.meta.summands)
        return np.asarray(decoded).reshape(self.meta.shape)

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------

    def word_list(self) -> List[int]:
        """The packed plaintext words as a fresh list."""
        return list(self.words)

    def slot_values(self) -> Tuple[int, ...]:
        """The raw (still encoded) slot values."""
        packer = packer_for(self.meta)
        return tuple(packer.unpack(list(self.words), self.meta.count))
