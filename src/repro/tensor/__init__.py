"""Typed encrypted-tensor layer (HAFLO / FedBit-style unified container).

- :class:`~repro.tensor.meta.TensorMeta` -- self-describing layout
  (key fingerprint, key geometry, scheme, capacity, shape, summands).
- :class:`~repro.tensor.plain.PlainTensor` -- the encode -> quantize ->
  pack codec (Eqs. 6-9) and its inverse.
- :class:`~repro.tensor.cipher.CipherTensor` -- immutable ciphertext
  container with lazy ``+`` / scalar ``*`` / slicing / ``sum()`` that the
  fusion planner (:mod:`repro.tensor.planner`) flushes into minimal
  batched engine calls.
"""

from repro.tensor.cipher import CipherTensor
from repro.tensor.meta import KeyMismatchError, TensorMeta, key_fingerprint
from repro.tensor.plain import PLAINTEXT_FINGERPRINT, PlainTensor, packer_for

__all__ = [
    "CipherTensor",
    "KeyMismatchError",
    "TensorMeta",
    "key_fingerprint",
    "PLAINTEXT_FINGERPRINT",
    "PlainTensor",
    "packer_for",
]
