"""Lazy-expression planner: fuse tensor ops into few, large launches.

:class:`~repro.tensor.cipher.CipherTensor` arithmetic builds a small
expression tree instead of calling the engine per operation.  This module
owns the tree and the flush that turns it into a *minimal* sequence of
``add_batch`` / ``scalar_mul_batch`` / ``sum_ciphertexts`` engine calls:

- **scalar folding** -- ``(t * k1) * k2`` collapses to one multiplication
  by ``k1 * k2`` at construction time;
- **scalar coalescing** -- every pending scalar multiplication under an
  n-ary add is concatenated into ONE ``scalar_mul_batch`` launch
  (the kernel takes per-element scalars, so different factors ride the
  same launch);
- **add-tree batching** -- an n-ary add of ``k`` tensors of ``m`` words
  reduces level-wise with all pairs of a level concatenated into one
  ``add_batch`` launch: ``ceil(log2 k)`` launches instead of the eager
  path's ``k - 1``;
- **slice pushdown** -- slicing commutes with add and scale, so it is
  pushed to the leaves and costs nothing.

On the simulated GPU, fewer engine calls means fewer recorded kernel
launches (the paper's launch-overhead argument, Sec. IV-A); on the CPU
engine the per-op accounting is unchanged -- fusion is free but not
charged differently, exactly like the real systems.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


class Node:
    """One lazy-expression node over ciphertext words."""

    #: Ciphertext words this node evaluates to.
    num_words: int

    def sliced(self, start: int, stop: int) -> "Node":
        """The node computing words ``[start:stop]`` of this node."""
        raise NotImplementedError

    def flush(self, engine) -> List[int]:
        """Evaluate into raw ciphertext words through ``engine``."""
        raise NotImplementedError


class Leaf(Node):
    """Materialized ciphertext words."""

    __slots__ = ("words", "num_words")

    def __init__(self, words: Sequence[int]):
        self.words = tuple(words)
        self.num_words = len(self.words)

    def sliced(self, start: int, stop: int) -> "Leaf":
        return Leaf(self.words[start:stop])

    def flush(self, engine) -> List[int]:
        return list(self.words)


class Scale(Node):
    """A node times a positive integer scalar (folded on nesting)."""

    __slots__ = ("child", "scalar", "num_words")

    def __init__(self, child: Node, scalar: int):
        if scalar < 1:
            raise ValueError(f"scalar must be positive, got {scalar}")
        # (t * k1) * k2 == t * (k1 * k2): fold at construction.
        if isinstance(child, Scale):
            scalar *= child.scalar
            child = child.child
        self.child = child
        self.scalar = scalar
        self.num_words = child.num_words

    def sliced(self, start: int, stop: int) -> "Scale":
        return Scale(self.child.sliced(start, stop), self.scalar)

    def flush(self, engine) -> List[int]:
        words = self.child.flush(engine)
        if not words or self.scalar == 1:
            return words
        return engine.scalar_mul_batch(words, [self.scalar] * len(words))


class Add(Node):
    """An n-ary slot-wise sum (nested adds are flattened)."""

    __slots__ = ("children", "num_words")

    def __init__(self, children: Sequence[Node]):
        flat: List[Node] = []
        for child in children:
            if isinstance(child, Add):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise ValueError("Add needs at least one operand")
        width = flat[0].num_words
        for child in flat[1:]:
            if child.num_words != width:
                raise ValueError(
                    f"operand word counts differ: {width} vs "
                    f"{child.num_words}")
        self.children = tuple(flat)
        self.num_words = width

    def sliced(self, start: int, stop: int) -> "Add":
        return Add([child.sliced(start, stop) for child in self.children])

    def flush(self, engine) -> List[int]:
        width = self.num_words
        if width == 0:
            return []
        # Pending (words, scalar) rows: Scale children hold their factor
        # back so all factors fuse into one scalar_mul_batch launch.
        rows: List[List[int]] = []
        scalars: List[int] = []
        for child in self.children:
            if isinstance(child, Scale):
                rows.append(child.child.flush(engine))
                scalars.append(child.scalar)
            else:
                rows.append(child.flush(engine))
                scalars.append(1)
        rows = _fused_scalar_mul(engine, rows, scalars)
        return _fused_add_reduce(engine, rows)


class Sum(Node):
    """Homomorphic sum of all words into one ciphertext."""

    __slots__ = ("child", "num_words")

    def __init__(self, child: Node):
        if child.num_words < 1:
            raise ValueError("cannot sum an empty tensor")
        self.child = child
        self.num_words = 1

    def sliced(self, start: int, stop: int) -> Node:
        if (start, stop) == (0, 1):
            return self
        raise IndexError("a summed tensor has exactly one word")

    def flush(self, engine) -> List[int]:
        words = self.child.flush(engine)
        # sum_ciphertexts reduces pairwise with one add_batch per level:
        # ceil(log2 n) launches for n words.
        return [engine.sum_ciphertexts(words)]


# ----------------------------------------------------------------------
# Fusion helpers.
# ----------------------------------------------------------------------

def _fused_scalar_mul(engine, rows: List[List[int]],
                      scalars: List[int]) -> List[List[int]]:
    """Apply per-row scalars with a single coalesced kernel launch."""
    pending = [index for index, scalar in enumerate(scalars)
               if scalar != 1 and rows[index]]
    if not pending:
        return rows
    flat_words: List[int] = []
    flat_scalars: List[int] = []
    for index in pending:
        flat_words.extend(rows[index])
        flat_scalars.extend([scalars[index]] * len(rows[index]))
    scaled = engine.scalar_mul_batch(flat_words, flat_scalars)
    cursor = 0
    for index in pending:
        width = len(rows[index])
        rows[index] = scaled[cursor:cursor + width]
        cursor += width
    return rows


def _fused_add_reduce(engine, rows: List[List[int]]) -> List[int]:
    """Level-wise pairwise reduction, one launch per level.

    All pairs of a level are concatenated into a single ``add_batch``
    call, so ``k`` equal-width rows cost ``ceil(log2 k)`` launches.
    """
    while len(rows) > 1:
        half = len(rows) // 2
        left: List[int] = []
        right: List[int] = []
        for pair in range(half):
            left.extend(rows[pair])
            right.extend(rows[half + pair])
        combined = engine.add_batch(left, right)
        width = len(rows[0])
        reduced = [combined[pair * width:(pair + 1) * width]
                   for pair in range(half)]
        rows = reduced + rows[2 * half:]
    return list(rows[0]) if rows else []


def eager_flush(node: Node, engine) -> List[int]:
    """Evaluate ``node`` one engine call per op -- no fusion at all.

    The un-optimized semantics the planner must preserve: every Scale is
    its own ``scalar_mul_batch`` launch, an n-ary Add reduces strictly
    left-to-right with one ``add_batch`` per operand, and Sum folds its
    words sequentially.  The conformance oracle flushes every expression
    through both this and :meth:`Node.flush` and requires bit-identical
    words -- homomorphic addition is commutative and associative on
    residues, so any divergence is a planner bug, not reordering noise.
    """
    if isinstance(node, Leaf):
        return list(node.words)
    if isinstance(node, Scale):
        words = eager_flush(node.child, engine)
        if not words or node.scalar == 1:
            return words
        return engine.scalar_mul_batch(words, [node.scalar] * len(words))
    if isinstance(node, Add):
        total = eager_flush(node.children[0], engine)
        for child in node.children[1:]:
            total = engine.add_batch(total, eager_flush(child, engine))
        return total
    if isinstance(node, Sum):
        words = eager_flush(node.child, engine)
        total = words[0]
        for word in words[1:]:
            total = engine.add_batch([total], [word])[0]
        return [total]
    raise TypeError(f"unknown node type {type(node).__name__}")


def plan_summary(node: Node) -> Tuple[int, int]:
    """(engine calls, leaf count) the planner will spend on ``node``.

    Purely informational -- used by tests and the benchmark to report
    fusion wins without executing anything.
    """
    if isinstance(node, Leaf):
        return 0, 1
    if isinstance(node, Scale):
        calls, leaves = plan_summary(node.child)
        return calls + 1, leaves
    if isinstance(node, Sum):
        calls, leaves = plan_summary(node.child)
        levels = (node.child.num_words - 1).bit_length()
        return calls + levels, leaves
    if isinstance(node, Add):
        calls = 0
        leaves = 0
        any_scaled = False
        for child in node.children:
            if isinstance(child, Scale):
                inner_calls, inner_leaves = plan_summary(child.child)
                any_scaled = True
            else:
                inner_calls, inner_leaves = plan_summary(child)
            calls += inner_calls
            leaves += inner_leaves
        if any_scaled:
            calls += 1
        levels = max(0, (len(node.children) - 1).bit_length())
        return calls + levels, leaves
    raise TypeError(f"unknown node type {type(node).__name__}")
