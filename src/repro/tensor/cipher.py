"""CipherTensor: a typed, self-describing encrypted tensor.

The unified ciphertext container the FLBooster data path moves between
layers: raw Paillier words plus the :class:`~repro.tensor.meta.TensorMeta`
needed to interpret them (key fingerprint, key geometry, quantization
scheme, packing capacity, logical shape, summand count).  Arithmetic --
``+``, scalar ``*``, slicing, ``sum()`` -- is *lazy*: each op returns a
new tensor holding an expression node, and the first materialization
flushes the whole tree through the fusion planner
(:mod:`repro.tensor.planner`) into a minimal number of engine calls.

Cross-key mixing raises :class:`~repro.tensor.meta.KeyMismatchError`;
decryption (:meth:`HeEngine.decrypt_tensor
<repro.crypto.engine.HeEngine.decrypt_tensor>`) needs no caller-supplied
count / summands / scheme -- the metadata travels with the payload.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.tensor import planner
from repro.tensor.meta import TensorMeta


class CipherTensor:
    """An immutable encrypted tensor, possibly an unevaluated expression.

    Args:
        meta: The layout metadata (shared-key fingerprint included).
        words: Raw ciphertext words (mutually exclusive with ``node``).
        node: A lazy expression node from the planner.
        engine: The HE engine lazy expressions flush through; optional
            for materialized tensors (e.g. just deserialized).
    """

    __slots__ = ("meta", "engine", "_node", "_words")

    def __init__(self, meta: TensorMeta,
                 words: Optional[Sequence[int]] = None,
                 node: Optional[planner.Node] = None,
                 engine=None):
        if (words is None) == (node is None):
            raise ValueError("provide exactly one of words / node")
        if words is not None:
            node = planner.Leaf(words)
        if node.num_words != meta.num_words:
            raise ValueError(
                f"{meta.count} values at capacity {meta.capacity} need "
                f"{meta.num_words} words, expression has {node.num_words}")
        object.__setattr__(self, "meta", meta)
        object.__setattr__(self, "engine", engine)
        object.__setattr__(self, "_node", node)
        object.__setattr__(
            self, "_words",
            node.words if isinstance(node, planner.Leaf) else None)

    def __setattr__(self, name, value):
        raise AttributeError("CipherTensor is immutable")

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def is_lazy(self) -> bool:
        """Whether materializing would issue engine calls."""
        return self._words is None

    @property
    def num_words(self) -> int:
        """Ciphertext words the tensor occupies on the wire."""
        return self.meta.num_words

    @property
    def words(self) -> Tuple[int, ...]:
        """The raw ciphertext words, flushing the expression if needed."""
        if self._words is None:
            flushed = self.materialize()
            # The planner result is cached on *this* object so repeated
            # reads never re-launch; the tensor stays logically immutable.
            object.__setattr__(self, "_node", flushed._node)
            object.__setattr__(self, "_words", flushed._words)
        return self._words

    def __len__(self) -> int:
        return self.meta.count

    def __repr__(self) -> str:
        state = "lazy" if self.is_lazy else "materialized"
        return (f"CipherTensor(shape={self.meta.shape}, "
                f"scheme={self.meta.scheme_id}, "
                f"capacity={self.meta.capacity}, "
                f"summands={self.meta.summands}, "
                f"key={self.meta.key_fingerprint.hex()[:8]}, {state})")

    # ------------------------------------------------------------------
    # Materialization.
    # ------------------------------------------------------------------

    def materialize(self, engine=None) -> "CipherTensor":
        """Flush the expression into a materialized tensor.

        Args:
            engine: Engine to execute on; defaults to the engine attached
                at construction (the encrypting engine).
        """
        if self._words is not None and engine is None:
            return self
        executor = engine if engine is not None else self.engine
        if self._words is not None:
            return CipherTensor(self.meta, words=self._words,
                                engine=executor)
        if executor is None:
            raise RuntimeError(
                "lazy CipherTensor has no engine to flush through; pass "
                "one to materialize(engine=...)")
        words = self._node.flush(executor)
        return CipherTensor(self.meta, words=words, engine=executor)

    def with_words(self, words: Sequence[int]) -> "CipherTensor":
        """A copy carrying different raw words (same metadata)."""
        return CipherTensor(self.meta, words=words, engine=self.engine)

    def planned_engine_calls(self) -> int:
        """Engine calls the fusion planner would spend materializing."""
        if self._words is not None:
            return 0
        return planner.plan_summary(self._node)[0]

    # ------------------------------------------------------------------
    # Lazy arithmetic.
    # ------------------------------------------------------------------

    def __add__(self, other: "CipherTensor") -> "CipherTensor":
        if not isinstance(other, CipherTensor):
            return NotImplemented
        meta = self.meta.combine_add(other.meta)
        return CipherTensor(meta,
                            node=planner.Add([self._node, other._node]),
                            engine=self.engine or other.engine)

    def __mul__(self, scalar: int) -> "CipherTensor":
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            return NotImplemented
        meta = self.meta.scaled(scalar)
        return CipherTensor(meta, node=planner.Scale(self._node, scalar),
                            engine=self.engine)

    __rmul__ = __mul__

    def __getitem__(self, index) -> "CipherTensor":
        """Word-aligned logical slice (zero engine calls).

        Slices must fall on packing-capacity boundaries; with
        ``capacity == 1`` (the uncompressed path) any slice works.
        Single-integer indexing returns a one-value tensor.
        """
        if isinstance(index, int):
            if index < 0:
                index += self.meta.count
            index = slice(index, index + 1)
        if not isinstance(index, slice):
            raise TypeError("CipherTensor supports int/slice indexing")
        start, stop, step = index.indices(self.meta.count)
        if step != 1:
            raise IndexError("CipherTensor slices must be contiguous")
        meta = self.meta.sliced(start, stop)
        capacity = self.meta.capacity
        word_start = start // capacity
        word_stop = word_start + meta.num_words
        return CipherTensor(meta,
                            node=self._node.sliced(word_start, word_stop),
                            engine=self.engine)

    def sum(self) -> "CipherTensor":
        """Homomorphic sum of all values into a one-element tensor.

        Requires ``capacity == 1`` (summing packed words would mix
        unrelated slots); the summand count multiplies so the result
        still decodes exactly.
        """
        meta = self.meta.summed(self.num_words)
        return CipherTensor(meta, node=planner.Sum(self._node),
                            engine=self.engine)
