"""Master-seed RNG routing: the ``REPRO_TEST_SEED`` stream scheme.

Every deterministic random stream in the library derives from one master
seed, read from the ``REPRO_TEST_SEED`` environment variable (default 0).
A consumer asks for a *stream* -- typically its caller-supplied seed --
and receives ``master * 1_000_003 + stream``, the same derivation
``tests/conftest.py`` and ``benchmarks.common`` use.  Two properties
follow:

- shifting the one environment variable reseeds every stream in the
  repo at once (the simulator's replayability sweep), and
- the default master of 0 keeps every derived seed equal to the
  historical hardcoded one, so existing golden values stay valid.

This module is the whitelisted home of RNG construction for flcheck's
determinism rule: library code must not draw from the global
``random`` / ``numpy.random`` state or construct unseeded generators --
it asks here for a routed stream instead.  The only sanctioned sources
of *real* entropy are ``random.SystemRandom`` in
:mod:`repro.mpint.primes` (production key generation) and nothing else.
"""

from __future__ import annotations

import os
import random

import numpy as np

#: Stream combinator; primes the master seed so distinct masters never
#: produce overlapping stream families.
STREAM_MULTIPLIER = 1_000_003

#: Offset reserving a stream family for channel retry jitter, so jitter
#: streams never collide with loss streams derived from the same seed.
JITTER_STREAM_OFFSET = 7919


def master_test_seed() -> int:
    """The suite-wide master seed (``REPRO_TEST_SEED``, default 0)."""
    return int(os.environ.get("REPRO_TEST_SEED", "0"))


def derive_seed(stream: int) -> int:
    """Combine the master seed with a per-consumer stream id.

    With the default master of 0 this is the identity, so callers that
    pass their historical hardcoded seeds keep their historical draws.
    """
    return master_test_seed() * STREAM_MULTIPLIER + stream


def jitter_seed(channel_seed: int) -> int:
    """Derive the retry-jitter stream for one channel.

    Jitter used to share the channel's loss RNG, so enabling jitter
    perturbed which attempts were dropped.  Giving jitter its own
    stream -- derived from the master seed plus the channel seed --
    keeps loss draws identical whether or not a policy jitters, and
    routes all backoff randomness through ``REPRO_TEST_SEED``.
    """
    return derive_seed(JITTER_STREAM_OFFSET + channel_seed)


def np_rng(stream: int) -> np.random.Generator:
    """A numpy generator on the routed stream ``stream``."""
    return np.random.default_rng(derive_seed(stream))


def py_rng(stream: int) -> random.Random:
    """A stdlib ``random.Random`` on the routed stream ``stream``."""
    return random.Random(derive_seed(stream))
