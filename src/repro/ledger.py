"""Cost ledger: the work-counting backbone of the reproduction.

Every HE operation, GPU kernel launch, channel transfer, and model-compute
step records ``(category, modelled seconds, count, bytes)`` here.  The
benchmark harness then reads epoch times (Table III), component splits
(Fig. 1, Table VI), throughput (Table IV), and communication volumes
(Fig. 7) out of one ledger instead of instrumenting each experiment
separately.

Categories are dotted paths; the first segment selects the paper's
component grouping:

- ``he.*``    -> "HE operations" (encrypt / decrypt / homomorphic compute)
- ``comm.*``  -> "Communication"
- everything else -> "Others" (model computing, encoding, packing, ...)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

#: Paper component names (Table VI rows).
COMPONENT_HE = "HE operations"
COMPONENT_COMM = "Communication"
COMPONENT_OTHERS = "Others"

# ---------------------------------------------------------------------------
# Category registry.
#
# Every modelled cost lands in a dotted category; a typo'd or invented
# category silently mis-buckets the Table VI component splits, so the
# legal names live here -- one source of truth that call sites import
# and that flcheck's ledger rule validates charge sites against
# (``python -m repro lint --rule ledger-category``).
#
# Closed families enumerate their suffixes; open families (``comm.*``,
# ``model.*``) accept any non-empty suffix because their tails come
# from protocol message tags and per-model step names.
# ---------------------------------------------------------------------------

#: HE primitive costs (the paper's "HE operations" component).
CAT_HE_ENCRYPT = "he.encrypt"
CAT_HE_DECRYPT = "he.decrypt"
CAT_HE_ADD = "he.add"
CAT_HE_SCALAR_MUL = "he.scalar_mul"
CAT_HE_PSI_SIGN = "he.psi_sign"

#: GPU kernel-launch bookkeeping (zero-cost counter category).
CAT_GPU_LAUNCH = "gpu.launch"

#: Plaintext model computation (the "Others" component).
CAT_MODEL_COMPUTE = "model.compute"

#: Encode/pack (and mirror) pipeline stages (Fig. 4).
CAT_PIPELINE_ENCODE_PACK = "pipeline.encode_pack"
CAT_PIPELINE_UNPACK_DECODE = "pipeline.unpack_decode"

#: Fault events (see :mod:`repro.federation.faults` for semantics).
CAT_FAULT_CORRUPT = "fault.corrupt"
CAT_FAULT_RETRANSMIT = "fault.retransmit"
CAT_FAULT_GIVEUP = "fault.giveup"
CAT_FAULT_SHED = "fault.shed"
CAT_FAULT_CIRCUIT_OPEN = "fault.circuit_open"

#: Admission-control plane of the sharded aggregation service
#: (:mod:`repro.federation.eventloop`).  ``comm`` is an open family, so
#: these are ordinary ``comm.*`` tags; the constants pin the exact
#: spellings reports read back.
CAT_COMM_ADMISSION_ACCEPT = "comm.admission.accept"
CAT_COMM_ADMISSION_REJECT = "comm.admission.reject"
CAT_COMM_ADMISSION_QUOTA = "comm.admission.quota"

#: Admission verdicts the multi-tenant ingress may charge.  Tenant-aware
#: charge sites append the tenant id as a final segment
#: (``comm.admission.accept.tenant-a``) via :func:`admission_category`,
#: so one ledger scan with prefix ``comm.admission.accept.`` splits the
#: control plane per tenant.
ADMISSION_VERDICTS = frozenset({"accept", "reject", "quota"})

#: Family -> allowed suffixes; ``None`` marks an open family whose
#: suffix is dynamic (message tags, per-model step names).
CATEGORY_FAMILIES: Dict[str, Optional[frozenset]] = {
    "he": frozenset({"encrypt", "decrypt", "add", "scalar_mul",
                     "psi_sign"}),
    "gpu": frozenset({"launch"}),
    "pipeline": frozenset({"encode_pack", "unpack_decode"}),
    "fault": frozenset({"crash", "dropout", "straggler", "deadline",
                        "lost_update", "retransmit", "corrupt", "giveup",
                        "coordinator_crash", "failover",
                        "shard_crash", "queue_overload",
                        "shed", "circuit_open",
                        "tenant_flood", "tenant_crash"}),
    "comm": None,
    "model": None,
}

#: Families whose suffix may be built dynamically (f-strings, helpers).
OPEN_FAMILIES = frozenset(
    family for family, suffixes in CATEGORY_FAMILIES.items()
    if suffixes is None)

# ---------------------------------------------------------------------------
# Admission conservation law.
#
# The sharded ingress (:mod:`repro.federation.eventloop`) maintains, per
# shard and per tenant::
#
#     accepted + migrated_in - migrated_out
#         == delivered + shed + failed + queued
#
# at every point in modelled time.  The ledger sees the same events
# through charges (``comm.admission.accept`` / ``.reject`` / ``.quota``,
# ``fault.shed``), so the two views stay reconcilable only when every
# admission charge moves a matching flow counter and vice versa.  The
# tables below name that correspondence once; flcheck's
# ``ledger-conservation`` rule holds charge sites and counter
# increments to it statically.
# ---------------------------------------------------------------------------

#: Admission verdict -> flow counters a charge of that verdict must
#: move in the same control-flow neighbourhood (function, callees, or
#: callers).  ``reject`` covers every rejection counter because the
#: flat single-tenant spelling does not split by reason; the dedicated
#: ``quota`` verdict pins the token-bucket counter.
CONSERVATION_COUNTERS: Dict[str, frozenset] = {
    "accept": frozenset({"accepted"}),
    "reject": frozenset({"rejected_full", "rejected_fenced",
                         "rejected_overload", "rejected_quota"}),
    "quota": frozenset({"rejected_quota"}),
    "shed": frozenset({"shed"}),
}

#: Counters on the inflow side of the conservation equation.
CONSERVATION_SOURCES = frozenset({"accepted", "migrated_in"})

#: Counters on the outflow side.  ``delivered`` / ``failed`` /
#: ``migrated_*`` have no dedicated admission category (delivery cost
#: is charged by the transfer itself), so only ``shed`` appears in
#: :data:`CONSERVATION_COUNTERS` as well.
CONSERVATION_SINKS = frozenset({"delivered", "shed", "failed",
                                "migrated_out"})


def is_known_category(category: str) -> bool:
    """Whether a dotted category is legal under the registry."""
    if not category or "." not in category:
        return False
    family, suffix = category.split(".", 1)
    allowed = CATEGORY_FAMILIES.get(family)
    if allowed is None:
        return family in CATEGORY_FAMILIES and bool(suffix)
    return suffix in allowed


def validate_category(category: str) -> str:
    """Return ``category``, raising ``ValueError`` when unregistered."""
    if not is_known_category(category):
        raise ValueError(
            f"unregistered ledger category {category!r}; declare it in "
            f"repro.ledger.CATEGORY_FAMILIES or use a registered family "
            f"({', '.join(sorted(CATEGORY_FAMILIES))})")
    return category


def fault_category(kind: str) -> str:
    """The ``fault.*`` category for one fault kind (validated)."""
    return validate_category(f"fault.{kind}")


def comm_category(tag: str) -> str:
    """The ``comm.*`` category for one message tag (validated)."""
    return validate_category(f"comm.{tag}")


def admission_category(verdict: str, tenant: Optional[str] = None) -> str:
    """The ``comm.admission.*`` category for one admission verdict.

    With a ``tenant``, the category is tenant-prefixed
    (``comm.admission.<verdict>.<tenant>``) so per-tenant control-plane
    charges stay separable in one shared ledger; without one it is the
    flat single-tenant spelling the event loop has always charged.
    """
    if verdict not in ADMISSION_VERDICTS:
        raise ValueError(
            f"unknown admission verdict {verdict!r}; choose from "
            f"{sorted(ADMISSION_VERDICTS)}")
    if tenant is not None:
        if not tenant or "." in tenant:
            raise ValueError(
                f"tenant id {tenant!r} cannot segment a dotted category")
        return validate_category(f"comm.admission.{verdict}.{tenant}")
    return validate_category(f"comm.admission.{verdict}")


@dataclass
class LedgerEntry:
    """Accumulated totals for one category."""

    seconds: float = 0.0
    count: int = 0
    payload_bytes: int = 0


@dataclass
class CostLedger:
    """Accumulates modelled cost by category.

    The ledger is deliberately passive: it never measures wall-clock time
    itself; callers charge the seconds their cost model derived, keeping
    scaled execution and paper-scale accounting cleanly separated.

    With ``strict=True`` every charged category must be registered in
    :data:`CATEGORY_FAMILIES`; the default stays permissive so ad-hoc
    ledgers in tests and notebooks keep working -- repo code is held to
    the registry statically by flcheck instead.
    """

    _entries: Dict[str, LedgerEntry] = field(
        default_factory=lambda: defaultdict(LedgerEntry))
    strict: bool = False

    def charge(self, category: str, seconds: float, count: int = 1,
               payload_bytes: int = 0) -> None:
        """Add ``seconds`` of modelled time to ``category``.

        Args:
            category: Dotted category path, e.g. ``"he.encrypt"``.
            seconds: Modelled duration; must be non-negative.
            count: Number of logical operations covered.
            payload_bytes: Bytes moved, for communication categories.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        if self.strict:
            validate_category(category)
        entry = self._entries[category]
        entry.seconds += seconds
        entry.count += count
        entry.payload_bytes += payload_bytes

    def seconds(self, prefix: str = "") -> float:
        """Total modelled seconds for categories under ``prefix``."""
        return sum(entry.seconds for category, entry in self._entries.items()
                   if category.startswith(prefix))

    def count(self, prefix: str = "") -> int:
        """Total operation count for categories under ``prefix``."""
        return sum(entry.count for category, entry in self._entries.items()
                   if category.startswith(prefix))

    def payload_bytes(self, prefix: str = "") -> int:
        """Total bytes for categories under ``prefix``."""
        return sum(entry.payload_bytes
                   for category, entry in self._entries.items()
                   if category.startswith(prefix))

    def by_component(self) -> Dict[str, float]:
        """Seconds grouped into the paper's three components (Table VI)."""
        groups = {COMPONENT_HE: 0.0, COMPONENT_COMM: 0.0, COMPONENT_OTHERS: 0.0}
        for category, entry in self._entries.items():
            root = category.split(".", 1)[0]
            if root == "he":
                groups[COMPONENT_HE] += entry.seconds
            elif root == "comm":
                groups[COMPONENT_COMM] += entry.seconds
            else:
                groups[COMPONENT_OTHERS] += entry.seconds
        return groups

    def component_percentages(self) -> Dict[str, float]:
        """Component split as percentages of the total (Table VI cells)."""
        groups = self.by_component()
        total = sum(groups.values())
        if total == 0:
            return {name: 0.0 for name in groups}
        return {name: 100.0 * seconds / total
                for name, seconds in groups.items()}

    @property
    def total_seconds(self) -> float:
        """All modelled time in the ledger."""
        return self.seconds("")

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger's totals into this one."""
        for category, entry in other._entries.items():
            target = self._entries[category]
            target.seconds += entry.seconds
            target.count += entry.count
            target.payload_bytes += entry.payload_bytes

    def snapshot(self) -> Dict[str, Tuple[float, int, int]]:
        """Immutable view: category -> (seconds, count, bytes)."""
        return {category: (entry.seconds, entry.count, entry.payload_bytes)
                for category, entry in self._entries.items()}

    def reset(self) -> None:
        """Clear all accumulated totals."""
        self._entries.clear()

    def __iter__(self) -> Iterator[Tuple[str, LedgerEntry]]:
        return iter(sorted(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)
