"""Declarative op traces for the differential conformance oracle.

A :class:`ConformanceTrace` is a tiny register-machine program over
homomorphic ciphertext batches: ``keygen`` happens implicitly from the
trace's ``(seed, key_bits)``, then a sequence of ops builds named
registers::

    encrypt   r0 <- [3, 14, 159]
    scalar_mul r1 <- r0 * [2, 2, 2]
    add       r2 <- r0 + r1
    pack      r3 <- pack(r2, slot_bits=16)
    decrypt   out <- r2           # compared against the shadow model

The same trace replays against every registered engine *and* a pure
``pow()``-based reference implementation; the oracle asserts the raw
ciphertext words are bit-identical after every op and that decrypted
plaintexts match a plain-integer shadow model.  Traces are JSON-round-
trippable so a failing ``(seed, trace)`` pair printed by the oracle is
enough to reproduce the failure in a fresh process.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

#: Op kinds a trace may contain.
ENCRYPT = "encrypt"
ADD = "add"
SCALAR_MUL = "scalar_mul"
SUM = "sum"
PACK = "pack"
DECRYPT = "decrypt"

_OP_KINDS = (ENCRYPT, ADD, SCALAR_MUL, SUM, PACK, DECRYPT)

#: Capability each op kind demands from a party.  ``pack`` is the
#: shift-and-add cipher compression, built from scalar_mul + add.
OP_CAPABILITIES = {
    ENCRYPT: frozenset({"encrypt"}),
    ADD: frozenset({"add"}),
    SCALAR_MUL: frozenset({"scalar_mul"}),
    SUM: frozenset({"add"}),
    PACK: frozenset({"scalar_mul", "add"}),
    DECRYPT: frozenset({"decrypt"}),
}


@dataclass(frozen=True)
class TraceOp:
    """One instruction: ``dst <- op(args)``.

    Attributes:
        op: One of the module-level op kinds.
        dst: Destination register name.
        args: Operands -- register names for ciphertext inputs, literal
            integer lists for plaintexts/scalars, ints for parameters.
    """

    op: str
    dst: str
    args: Tuple = ()

    def __post_init__(self) -> None:
        if self.op not in _OP_KINDS:
            raise ValueError(f"unknown trace op {self.op!r}; "
                             f"choose from {_OP_KINDS}")

    def to_dict(self) -> dict:
        return {"op": self.op, "dst": self.dst,
                "args": _jsonable(self.args)}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceOp":
        return cls(op=data["op"], dst=data["dst"],
                   args=_tupled(data.get("args", [])))


@dataclass(frozen=True)
class ConformanceTrace:
    """A named, seeded op sequence replayable against any engine.

    Attributes:
        name: Stable identifier (shows up in pytest parametrize ids).
        seed: Drives key generation and every randomizer draw -- both
            the engine under test and the reference share it, which is
            what makes ciphertexts bit-comparable.
        key_bits: Physical key size the trace's keygen uses.
        ops: The instruction sequence.
        requires: Extra capability tags beyond what the ops imply (e.g.
            ``ring_decrypt`` for the symmetric masking path whose
            decryption is only defined on a full ring sum).
    """

    name: str
    seed: int
    key_bits: int
    ops: Tuple[TraceOp, ...] = ()
    requires: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(self, "requires", frozenset(self.requires))

    def required_capabilities(self) -> FrozenSet[str]:
        """Capabilities a party needs to replay this trace."""
        needed = set(self.requires)
        for op in self.ops:
            needed |= OP_CAPABILITIES[op.op]
        # A ring trace replaces ordinary decryption semantics.
        if "ring_decrypt" in needed:
            needed.discard("decrypt")
        return frozenset(needed)

    def runnable_on(self, capabilities: Sequence[str]) -> bool:
        """Whether a party advertising ``capabilities`` can replay this."""
        return self.required_capabilities() <= frozenset(capabilities)

    # ------------------------------------------------------------------
    # Wire form: the repro currency printed on failure.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "key_bits": self.key_bits,
            "requires": sorted(self.requires),
            "ops": [op.to_dict() for op in self.ops],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "ConformanceTrace":
        return cls(name=data["name"], seed=data["seed"],
                   key_bits=data["key_bits"],
                   requires=frozenset(data.get("requires", [])),
                   ops=tuple(TraceOp.from_dict(op)
                             for op in data.get("ops", [])))

    @classmethod
    def from_json(cls, blob: str) -> "ConformanceTrace":
        return cls.from_dict(json.loads(blob))


class TraceBuilder:
    """Fluent construction of a :class:`ConformanceTrace`."""

    def __init__(self, name: str, seed: int, key_bits: int = 128,
                 requires: Sequence[str] = ()):
        self.name = name
        self.seed = seed
        self.key_bits = key_bits
        self.requires = frozenset(requires)
        self._ops: List[TraceOp] = []

    def encrypt(self, dst: str, values: Sequence[int]) -> "TraceBuilder":
        self._ops.append(TraceOp(ENCRYPT, dst, (tuple(values),)))
        return self

    def add(self, dst: str, a: str, b: str) -> "TraceBuilder":
        self._ops.append(TraceOp(ADD, dst, (a, b)))
        return self

    def scalar_mul(self, dst: str, src: str,
                   scalars: Sequence[int]) -> "TraceBuilder":
        self._ops.append(TraceOp(SCALAR_MUL, dst, (src, tuple(scalars))))
        return self

    def sum(self, dst: str, src: str) -> "TraceBuilder":
        self._ops.append(TraceOp(SUM, dst, (src,)))
        return self

    def pack(self, dst: str, src: str, slot_bits: int) -> "TraceBuilder":
        self._ops.append(TraceOp(PACK, dst, (src, slot_bits)))
        return self

    def decrypt(self, dst: str, src: str) -> "TraceBuilder":
        self._ops.append(TraceOp(DECRYPT, dst, (src,)))
        return self

    def build(self) -> ConformanceTrace:
        return ConformanceTrace(name=self.name, seed=self.seed,
                                key_bits=self.key_bits, ops=self._ops,
                                requires=self.requires)


def standard_traces(key_bits: int = 128) -> List[ConformanceTrace]:
    """The shared trace suite every registered engine replays.

    Covers the full op surface: encrypt/decrypt round trips, batched
    homomorphic addition, per-element scalar multiplication, the
    shift-and-add cipher packing, whole-batch summation, and a deeper
    mixed program exercising op interleaving.
    """
    traces = [
        (TraceBuilder("roundtrip", seed=101, key_bits=key_bits)
         .encrypt("r0", [0, 1, 2, 3, 255])
         .decrypt("out", "r0")
         .build()),
        (TraceBuilder("add_chain", seed=102, key_bits=key_bits)
         .encrypt("r0", [3, 14, 159, 26])
         .encrypt("r1", [2, 71, 82, 8])
         .add("r2", "r0", "r1")
         .add("r3", "r2", "r2")
         .decrypt("out", "r3")
         .build()),
        (TraceBuilder("scalar_mix", seed=103, key_bits=key_bits)
         .encrypt("r0", [1, 2, 3, 4, 5])
         .scalar_mul("r1", "r0", [7, 1, 13, 2, 1])
         .encrypt("r2", [10, 20, 30, 40, 50])
         .add("r3", "r1", "r2")
         .decrypt("out", "r3")
         .build()),
        (TraceBuilder("batch_sum", seed=104, key_bits=key_bits)
         .encrypt("r0", [5, 6, 7, 8, 9, 10, 11])
         .sum("r1", "r0")
         .decrypt("out", "r1")
         .build()),
        (TraceBuilder("cipher_pack", seed=105, key_bits=key_bits)
         .encrypt("r0", [9, 4, 11, 2])
         .pack("r1", "r0", 16)
         .decrypt("out", "r1")
         .build()),
        (TraceBuilder("deep_mix", seed=106, key_bits=key_bits)
         .encrypt("a", [2, 4, 6])
         .encrypt("b", [1, 3, 5])
         .scalar_mul("a2", "a", [3, 3, 3])
         .add("c", "a2", "b")
         .scalar_mul("c2", "c", [2, 5, 1])
         .add("d", "c2", "c2")
         .sum("e", "d")
         .decrypt("out", "d")
         .decrypt("total", "e")
         .build()),
        # Additive-only trace: runnable by every path including the
        # symmetric masking scheme (ciphertext comparison only -- no
        # decrypt, so mask cancellation is not required).
        (TraceBuilder("add_only", seed=107, key_bits=key_bits)
         .encrypt("r0", [12, 34, 56])
         .encrypt("r1", [78, 90, 11])
         .add("r2", "r0", "r1")
         .build()),
    ]
    return traces


def codec_trace_suite(key_bits: int = 128) -> List[ConformanceTrace]:
    """Per-codec traces: packed words through real homomorphic adds.

    For every registered packing codec, the same three fixed gradients
    are quantized and packed into plaintext words *by that codec*, then
    replayed as ciphertexts through an add chain that stays within the
    codec's ``max_safe_summands()``.  The oracle's bit-identical word
    comparison plus the integer shadow model then prove, per codec x
    engine cell, that homomorphic addition of that codec's layout
    equals plain integer addition of its words -- the property every
    layout's guard-bit algebra rests on.

    Words are packed into a 96-bit plaintext budget so they stay far
    below any >= 128-bit plaintext modulus.  Each codec contributes a
    decrypting trace (engines with ``decrypt``) and an add-only trace
    (runnable by the symmetric masking path too).
    """
    from repro.quantization.codecs import registered_codecs
    from repro.quantization.encoding import QuantizationScheme

    scheme = QuantizationScheme(alpha=1.0, r_bits=16, num_parties=8)
    plaintext_bits = 96
    # Shared support {1, 4, 6}: the sparse codec pins one pattern that
    # fits all three gradients, mirroring a pruned layer's fixed mask.
    grads = [
        [0.0, 0.25, 0.0, 0.0, -0.5, 0.0, 0.125, 0.0],
        [0.0, -0.125, 0.0, 0.0, 0.375, 0.0, 0.25, 0.0],
        [0.0, 0.5, 0.0, 0.0, -0.25, 0.0, -0.125, 0.0],
    ]
    envelope = [max(abs(g[i]) for g in grads) for i in range(len(grads[0]))]

    traces: List[ConformanceTrace] = []
    for seed_base, (codec_id, cls) in enumerate(
            sorted(registered_codecs().items())):
        if codec_id == "sparse":
            codec = cls.for_values(envelope, scheme, plaintext_bits)
        else:
            codec = cls(scheme, plaintext_bits)
        assert codec.max_safe_summands() >= len(grads)
        word_lists = [codec.pack_values(grad) for grad in grads]

        builder = TraceBuilder(f"codec_{codec_id}", seed=110 + 2 * seed_base,
                               key_bits=key_bits)
        for index, words in enumerate(word_lists):
            builder.encrypt(f"r{index}", words)
        builder.add("a1", "r0", "r1")
        builder.add("a2", "a1", "r2")
        builder.decrypt("out", "a2")
        traces.append(builder.build())

        add_only = TraceBuilder(f"codec_{codec_id}_addonly",
                                seed=111 + 2 * seed_base,
                                key_bits=key_bits)
        for index, words in enumerate(word_lists):
            add_only.encrypt(f"r{index}", words)
        add_only.add("a1", "r0", "r1")
        add_only.add("a2", "a1", "r2")
        traces.append(add_only.build())
    return traces


def ring_trace(num_parties: int, key_bits: int = 128,
               seed: int = 108) -> ConformanceTrace:
    """A full-ring masking trace: every party encrypts, all sum, decrypt.

    Only parties advertising ``ring_decrypt`` run it (the symmetric
    masking scheme, whose decryption is defined exactly on the sum of all
    ``num_parties`` ciphertexts -- that is when the ring masks cancel).
    """
    builder = TraceBuilder(f"ring_sum_{num_parties}", seed=seed,
                           key_bits=key_bits,
                           requires=("ring_decrypt",))
    values = [[(17 * p + 3 * i + 1) % 1000 for i in range(4)]
              for p in range(num_parties)]
    builder.encrypt("r0", values[0])
    acc = "r0"
    for party in range(1, num_parties):
        reg = f"r{party}"
        builder.encrypt(reg, values[party])
        dst = f"acc{party}"
        builder.add(dst, acc, reg)
        acc = dst
    builder.decrypt("out", acc)
    return builder.build()


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


def _tupled(value):
    if isinstance(value, list):
        return tuple(_tupled(item) for item in value)
    return value


#: Registers shadow-model arithmetic is tracked in plain integers; kept
#: here so the harness and docs agree on the op semantics.
SHADOW_SEMANTICS: Dict[str, str] = {
    ENCRYPT: "register holds the literal plaintext list",
    ADD: "element-wise plaintext addition (mod plaintext space)",
    SCALAR_MUL: "element-wise plaintext * scalar (mod plaintext space)",
    SUM: "all elements summed into a single-element register",
    PACK: "pairs folded as v0 * 2^slot_bits + v1 (mod plaintext space)",
    DECRYPT: "engine decryption must equal the shadow register",
}
