"""The differential conformance oracle (cross-engine bit-identity).

Replays a :class:`~repro.testing.trace.ConformanceTrace` against a party
under test and its plain-``pow()`` reference simultaneously, asserting

- **bit-identical ciphertexts** after every op (the two sides share the
  trace seed, so randomizer streams line up), and
- **exact plaintexts** at every decrypt, checked against both the
  reference's decryption and a plain-integer *shadow model* of the trace.

Any divergence raises :class:`ConformanceFailure` whose message embeds
the ``(seed, trace)`` JSON needed to reproduce the failure in a fresh
process -- the same discipline HAFLO and the FPGA accelerator papers use
to validate kernels against a software reference.

Engines join the oracle through
:meth:`repro.crypto.engine.HeEngine.register_conformance`; importing
:func:`discovered_factories` pulls in the five built-in execution paths
(CPU Paillier, simulated-GPU Paillier, vectorized limb-plane Paillier,
Damgard-Jurik, symmetric masking).  The limb-plane path only registers
when numpy is importable; without it the matrix simply shrinks.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.crypto.engine import HeEngine
from repro.tensor import planner
from repro.testing.trace import (
    ADD,
    DECRYPT,
    ENCRYPT,
    PACK,
    SCALAR_MUL,
    SUM,
    ConformanceTrace,
    codec_trace_suite,
    ring_trace,
    standard_traces,
)

#: Modules whose import registers the built-in conformance factories.
_BUILTIN_ENGINE_MODULES = (
    "repro.crypto.cpu_engine",
    "repro.crypto.gpu_engine",
    "repro.crypto.damgard_jurik",
    "repro.crypto.symmetric_he",
    "repro.crypto.vector_engine",
)


class ConformanceFailure(AssertionError):
    """An engine diverged from its reference (or the shadow model).

    The rendered message carries everything needed for one-command
    reproduction: engine name, op index, the mismatching values, and the
    trace JSON (``seed`` included).
    """

    def __init__(self, engine: str, trace: ConformanceTrace,
                 op_index: int, detail: str):
        self.engine = engine
        self.trace = trace
        self.op_index = op_index
        self.detail = detail
        op = trace.ops[op_index] if op_index < len(trace.ops) else None
        op_text = f"{op.op} -> {op.dst}" if op is not None else "<setup>"
        super().__init__(
            f"conformance failure: engine {engine!r} diverged at op "
            f"#{op_index} ({op_text}) of trace {trace.name!r}\n"
            f"  {detail}\n"
            f"  repro: seed={trace.seed} trace={trace.to_json()}")


@dataclass
class ConformancePair:
    """One engine's entry in the oracle: the party and its reference."""

    party: object
    reference: object

    @property
    def capabilities(self) -> FrozenSet[str]:
        return frozenset(self.party.capabilities)


@dataclass
class ConformanceResult:
    """Outcome of replaying one trace against one engine."""

    engine: str
    trace: str
    status: str  # "ok" | "skipped"
    ops_checked: int = 0
    decrypted: Dict[str, List[int]] = field(default_factory=dict)


def discovered_factories() -> Dict[str, Callable]:
    """All registered conformance factories, importing the built-ins."""
    for module in _BUILTIN_ENGINE_MODULES:
        importlib.import_module(module)
    return HeEngine.conformance_factories()


def full_trace_suite(key_bits: int = 128) -> List[ConformanceTrace]:
    """Standard traces, per-codec packing traces, and the ring trace.

    The codec traces replay every registered packing codec's words
    through real homomorphic adds, so codec x engine combinations are
    diff-tested bit-identically for free whenever either registry
    grows.
    """
    return (standard_traces(key_bits=key_bits)
            + codec_trace_suite(key_bits=key_bits)
            + [ring_trace(3, key_bits=key_bits)])


def conformance_matrix(
        key_bits: int = 128
) -> List[Tuple[str, ConformanceTrace]]:
    """Every (engine, trace) combination the engine can replay.

    The pytest conformance suite parametrizes over exactly this list, so
    registering a new engine automatically adds its rows.
    """
    factories = discovered_factories()
    matrix: List[Tuple[str, ConformanceTrace]] = []
    for name, factory in sorted(factories.items()):
        caps = getattr(factory, "capabilities", None)
        for trace in full_trace_suite(key_bits=key_bits):
            if caps is None or trace.runnable_on(caps):
                matrix.append((name, trace))
    return matrix


def replay(trace: ConformanceTrace, pair: ConformancePair,
           engine_name: str = "engine") -> ConformanceResult:
    """Replay one trace against one pair, raising on any divergence."""
    if not trace.runnable_on(pair.capabilities):
        return ConformanceResult(engine=engine_name, trace=trace.name,
                                 status="skipped")
    party, reference = pair.party, pair.reference
    modulus = party.plaintext_modulus
    ref_modulus = reference.plaintext_modulus
    if modulus != ref_modulus:
        raise ConformanceFailure(
            engine_name, trace, 0,
            f"plaintext spaces differ: party {modulus} vs reference "
            f"{ref_modulus}")

    registers: Dict[str, List[int]] = {}
    ref_registers: Dict[str, List[int]] = {}
    shadow: Dict[str, List[int]] = {}
    decrypted: Dict[str, List[int]] = {}
    checked = 0

    for index, op in enumerate(trace.ops):
        try:
            if op.op == ENCRYPT:
                values = [int(v) % modulus for v in op.args[0]]
                registers[op.dst] = party.encrypt(values)
                ref_registers[op.dst] = reference.encrypt(values)
                shadow[op.dst] = values
            elif op.op == ADD:
                a, b = op.args
                registers[op.dst] = party.add(registers[a], registers[b])
                ref_registers[op.dst] = reference.add(ref_registers[a],
                                                      ref_registers[b])
                shadow[op.dst] = [(x + y) % modulus for x, y
                                  in zip(shadow[a], shadow[b])]
            elif op.op == SCALAR_MUL:
                src, scalars = op.args[0], list(op.args[1])
                registers[op.dst] = party.scalar_mul(registers[src],
                                                     scalars)
                ref_registers[op.dst] = reference.scalar_mul(
                    ref_registers[src], scalars)
                shadow[op.dst] = [(x * k) % modulus for x, k
                                  in zip(shadow[src], scalars)]
            elif op.op == SUM:
                src = op.args[0]
                registers[op.dst] = _sum_register(party, registers[src])
                ref_registers[op.dst] = _sum_register(reference,
                                                     ref_registers[src])
                shadow[op.dst] = [sum(shadow[src]) % modulus]
            elif op.op == PACK:
                src, slot_bits = op.args[0], int(op.args[1])
                registers[op.dst] = _pack_register(party, registers[src],
                                                   slot_bits)
                ref_registers[op.dst] = _pack_register(
                    reference, ref_registers[src], slot_bits)
                shadow[op.dst] = [
                    (shadow[src][i] * (1 << slot_bits)
                     + shadow[src][i + 1]) % modulus
                    for i in range(0, len(shadow[src]) - 1, 2)]
            elif op.op == DECRYPT:
                src = op.args[0]
                plain = party.decrypt(registers[src])
                ref_plain = reference.decrypt(ref_registers[src])
                if list(plain) != list(ref_plain):
                    raise ConformanceFailure(
                        engine_name, trace, index,
                        f"decryptions differ: engine {plain} vs "
                        f"reference {ref_plain}")
                if list(plain) != shadow[src]:
                    raise ConformanceFailure(
                        engine_name, trace, index,
                        f"decryption {plain} != shadow model "
                        f"{shadow[src]}")
                decrypted[op.dst] = list(plain)
                checked += 1
                continue
        except ConformanceFailure:
            raise
        except Exception as error:
            raise ConformanceFailure(
                engine_name, trace, index,
                f"{type(error).__name__}: {error}") from error

        if list(registers[op.dst]) != list(ref_registers[op.dst]):
            raise ConformanceFailure(
                engine_name, trace, index,
                _diff_detail(registers[op.dst], ref_registers[op.dst]))
        checked += 1

    return ConformanceResult(engine=engine_name, trace=trace.name,
                             status="ok", ops_checked=checked,
                             decrypted=decrypted)


def run_trace(engine_name: str,
              trace: ConformanceTrace) -> ConformanceResult:
    """Build the named engine's pair and replay one trace."""
    factories = discovered_factories()
    if engine_name not in factories:
        raise KeyError(
            f"no conformance factory registered under {engine_name!r}; "
            f"known: {sorted(factories)}")
    pair = factories[engine_name](trace)
    return replay(trace, pair, engine_name=engine_name)


def run_all(key_bits: int = 128) -> List[ConformanceResult]:
    """Replay the full suite against every registered engine."""
    results = []
    for engine_name, trace in conformance_matrix(key_bits=key_bits):
        results.append(run_trace(engine_name, trace))
    return results


# ----------------------------------------------------------------------
# Fused-vs-eager planner conformance.
# ----------------------------------------------------------------------

def check_fused_vs_eager(pair: ConformancePair,
                         trace: Optional[ConformanceTrace] = None,
                         engine_name: str = "engine") -> int:
    """Assert the fusion planner and the eager path agree bit-for-bit.

    Encrypts three batches through the party, builds a mixed
    add/scale/sum expression, and flushes it twice: once through the
    fusion planner (coalesced scalar launches, level-wise add
    reduction) and once through :func:`repro.tensor.planner.eager_flush`
    (one engine call per op).  Returns the number of words compared.

    Scalar nodes are included only when the party supports
    ``scalar_mul`` (the symmetric masking path is add-only).
    """
    if trace is None:
        trace = ConformanceTrace(name="fused_vs_eager", seed=109,
                                 key_bits=128)
    party = pair.party
    width = 4
    batches = [
        party.encrypt([(7 * b + i + 1) % 251 for i in range(width)])
        for b in range(3)
    ]
    with_scalars = "scalar_mul" in pair.capabilities
    if with_scalars:
        node = planner.Add([
            planner.Scale(planner.Leaf(batches[0]), 3),
            planner.Leaf(batches[1]),
            planner.Scale(planner.Leaf(batches[2]), 2),
        ])
    else:
        node = planner.Add([planner.Leaf(batch) for batch in batches])
    fused = node.flush(party)
    eager = planner.eager_flush(node, party)
    if fused != eager:
        raise ConformanceFailure(
            engine_name, trace, 0,
            f"fused flush diverged from eager flush: "
            f"{_diff_detail(fused, eager)}")
    total_node = planner.Sum(planner.Leaf(fused))
    fused_total = total_node.flush(party)
    eager_total = planner.eager_flush(total_node, party)
    if fused_total != eager_total:
        raise ConformanceFailure(
            engine_name, trace, 0,
            f"fused sum diverged from eager sum: "
            f"{_diff_detail(fused_total, eager_total)}")
    return len(fused) + len(fused_total)


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------

def _sum_register(ops, batch: Sequence[int]) -> List[int]:
    """Fold a register into one ciphertext using the party's adds."""
    if hasattr(ops, "sum_ciphertexts"):
        return [ops.sum_ciphertexts(list(batch))]
    values = list(batch)
    if not values:
        raise ValueError("cannot sum an empty register")
    total = [values[0]]
    for value in values[1:]:
        total = ops.add(total, [value])
    return total


def _pack_register(ops, batch: Sequence[int],
                   slot_bits: int) -> List[int]:
    """Shift-and-add cipher packing: fold adjacent ciphertext pairs."""
    if len(batch) % 2 != 0:
        raise ValueError("pack needs an even-length register")
    out: List[int] = []
    for i in range(0, len(batch), 2):
        shifted = ops.scalar_mul([batch[i]], [1 << slot_bits])
        out.extend(ops.add(shifted, [batch[i + 1]]))
    return out


def _diff_detail(got: Sequence[int], want: Sequence[int]) -> str:
    if len(got) != len(want):
        return (f"lengths differ: engine {len(got)} words vs reference "
                f"{len(want)}")
    for index, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return (f"word {index} differs: engine ...{str(g)[-24:]} vs "
                    f"reference ...{str(w)[-24:]} "
                    f"(xor popcount {bin(g ^ w).count('1')})")
    return "identical (no diff?)"
