"""Correctness subsystem: differential oracle, simulator, fuzzer.

Three pillars (PR 3's tentpole):

- :mod:`repro.testing.trace` / :mod:`repro.testing.conformance` -- the
  declarative op-trace format and the cross-engine differential oracle
  that replays each trace against every registered engine *and* a pure
  ``pow()`` reference, asserting bit-identical ciphertexts;
- :mod:`repro.testing.simulator` -- the deterministic federation
  simulator (seeded virtual clock + event queue, zero wall-clock
  dependence) whose failures replay from ``(seed, trace)`` alone;
- :mod:`repro.testing.fuzz` -- the structured FLT2 wire-format fuzzer
  (seeded header/payload mutations that must always produce *typed*
  rejections, never crashes or silent mis-decodes).
"""

from repro.testing.conformance import (
    ConformanceFailure,
    ConformancePair,
    ConformanceResult,
    check_fused_vs_eager,
    conformance_matrix,
    discovered_factories,
    full_trace_suite,
    replay,
    run_all,
    run_trace,
)
from repro.testing.trace import (
    ConformanceTrace,
    TraceBuilder,
    TraceOp,
    ring_trace,
    standard_traces,
)

__all__ = [
    "ConformanceFailure",
    "ConformancePair",
    "ConformanceResult",
    "ConformanceTrace",
    "TraceBuilder",
    "TraceOp",
    "check_fused_vs_eager",
    "conformance_matrix",
    "discovered_factories",
    "full_trace_suite",
    "replay",
    "ring_trace",
    "run_all",
    "run_trace",
    "standard_traces",
]
