"""Deterministic federation simulator: virtual time, replayable traces.

Drives :class:`~repro.federation.runtime.FederationRuntime` rounds from a
seeded virtual clock and event queue with **zero wall-clock dependence**:
client gradient draws, fault injection, channel retries and straggler
delays all advance modelled time only, so the same
:class:`SimulationSpec` produces the same per-round survivors, modelled
seconds, and aggregate checksums on every machine, every run.

The spec is the *trace*: a JSON-round-trippable record of everything the
run depends on (system name, client count, seed, fault plan, quorum,
deadline).  When a simulation raises -- a quorum failure, an engine bug,
anything -- the :class:`SimulationFailure` message embeds
``(seed, trace)`` and :func:`replay` rebuilds the identical run in a
fresh process from that JSON alone::

    python -c "from repro.testing.simulator import replay; \\
               replay('<trace json>')"
"""

from __future__ import annotations

import heapq
import json
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.federation.channel import ChannelError
from repro.federation.coordinator import (
    CoordinatorKilled,
    DurableCoordinator,
    LeaseManager,
    StandbyCoordinator,
)
# VirtualClock now lives with the event loop (the federation layer owns
# its own time source); re-exported here for backward compatibility.
from repro.federation.eventloop import VirtualClock  # noqa: F401 -- re-exported
from repro.federation.faults import (
    COORDINATOR_KINDS,
    FAILOVER,
    SHARD_CRASH,
    FaultEvent,
    FaultPlan,
    QuorumError,
)
from repro.federation.runtime import FederationRuntime, system_by_name
from repro.federation.shard import (
    FailoverRecord,
    MultiTenantAggregationService,
    ShardedAggregationService,
)
from repro.federation.tenancy import Tenant, TenantRegistry
from repro.federation.wal import WriteAheadLog


@dataclass(order=True)
class _Event:
    """One scheduled event; ordering is (time, sequence) -- fully
    deterministic even for simultaneous events."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A seeded-deterministic priority queue of simulation events."""

    def __init__(self):
        self._heap: List[_Event] = []
        self._sequence = 0

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(self._heap,
                       _Event(time, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self) -> _Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class SimulationSpec:
    """The complete, JSON-round-trippable input of one simulation.

    This *is* the replay trace: everything a fresh process needs to
    reproduce the run bit-for-bit.  ``physical_key_bits`` defaults to
    ``key_bits`` (full fidelity); specs used in tests pass a small
    physical key so replays stay fast.
    """

    system: str = "FLBooster"
    num_clients: int = 4
    rounds: int = 3
    vector_size: int = 8
    key_bits: int = 256
    physical_key_bits: Optional[int] = 128
    seed: int = 7
    min_quorum: Optional[int] = None
    round_deadline_seconds: Optional[float] = None
    incarnation: int = 0
    fault_plan: Optional[FaultPlan] = None
    durable: bool = False
    #: Route rounds through the two-level sharded service
    #: (:mod:`repro.federation.shard`) instead of one coordinator.
    sharded: bool = False
    num_shards: Optional[int] = None
    queue_capacity: int = 64
    cohort_size: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "num_clients": self.num_clients,
            "rounds": self.rounds,
            "vector_size": self.vector_size,
            "key_bits": self.key_bits,
            "physical_key_bits": self.physical_key_bits,
            "seed": self.seed,
            "min_quorum": self.min_quorum,
            "round_deadline_seconds": self.round_deadline_seconds,
            "incarnation": self.incarnation,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
            "durable": self.durable,
            "sharded": self.sharded,
            "num_shards": self.num_shards,
            "queue_capacity": self.queue_capacity,
            "cohort_size": self.cohort_size,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationSpec":
        plan = data.get("fault_plan")
        return cls(
            system=data.get("system", "FLBooster"),
            num_clients=data.get("num_clients", 4),
            rounds=data.get("rounds", 3),
            vector_size=data.get("vector_size", 8),
            key_bits=data.get("key_bits", 256),
            physical_key_bits=data.get("physical_key_bits"),
            seed=data.get("seed", 7),
            min_quorum=data.get("min_quorum"),
            round_deadline_seconds=data.get("round_deadline_seconds"),
            incarnation=data.get("incarnation", 0),
            fault_plan=(FaultPlan.from_dict(plan)
                        if plan is not None else None),
            durable=data.get("durable", False),
            sharded=data.get("sharded", False),
            num_shards=data.get("num_shards"),
            queue_capacity=data.get("queue_capacity", 64),
            cohort_size=data.get("cohort_size"),
        )

    @classmethod
    def from_json(cls, blob: str) -> "SimulationSpec":
        return cls.from_dict(json.loads(blob))


class SimulationFailure(AssertionError):
    """A simulation diverged or crashed; message embeds the replay trace.

    ``(seed, trace)`` in the message is sufficient for a fresh process:
    ``replay(trace_json)`` reconstructs the identical run.
    """

    def __init__(self, spec: SimulationSpec, round_index: int,
                 detail: str):
        self.spec = spec
        self.round_index = round_index
        self.detail = detail
        super().__init__(
            f"simulation failure at round {round_index}: {detail}\n"
            f"  repro: seed={spec.seed} trace={spec.to_json()}")


@dataclass
class RoundRecord:
    """What one aggregation round did, in modelled time."""

    round_index: int
    start_time: float
    end_time: float
    summands: int
    survivors: Tuple[str, ...]
    dropped: Tuple[str, ...]
    checksum: int  # crc32 of the aggregated vector bytes


@dataclass
class SimulationResult:
    """Deterministic outcome of one simulation run."""

    spec: SimulationSpec
    rounds: List[RoundRecord]
    final_time: float
    events_processed: int

    def checksum(self) -> int:
        """One integer summarizing every round's aggregate -- the value
        replay equality is asserted on."""
        digest = 0
        for record in self.rounds:
            digest = zlib.crc32(
                f"{record.round_index}:{record.summands}:"
                f"{record.checksum}".encode(), digest)
        return digest

    def to_dict(self) -> dict:
        return {
            "trace": self.spec.to_dict(),
            "final_time": self.final_time,
            "events_processed": self.events_processed,
            "checksum": self.checksum(),
            "rounds": [
                {"round": r.round_index, "summands": r.summands,
                 "survivors": list(r.survivors),
                 "dropped": list(r.dropped),
                 "modelled_seconds": r.end_time - r.start_time,
                 "checksum": r.checksum}
                for r in self.rounds
            ],
        }


class FederationSimulator:
    """Event-driven, wall-clock-free driver of federation rounds.

    Each round schedules one ``submit`` event per client (offset by any
    straggler delay the fault plan holds for that round -- stragglers
    genuinely arrive later on the virtual clock) and one ``aggregate``
    event; the queue drains in deterministic ``(time, sequence)`` order,
    the aggregation runs through the real
    :class:`~repro.federation.aggregator.SecureAggregator` (faults,
    quorum, retries and all), and the clock advances by the round's
    modelled ledger seconds.
    """

    def __init__(self, spec: SimulationSpec):
        self.spec = spec
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.runtime = FederationRuntime(
            config=system_by_name(spec.system),
            num_clients=spec.num_clients,
            key_bits=spec.key_bits,
            physical_key_bits=spec.physical_key_bits,
            seed=spec.seed,
            fault_plan=spec.fault_plan,
            min_quorum=spec.min_quorum,
            round_deadline_seconds=spec.round_deadline_seconds,
            incarnation=spec.incarnation,
        )
        self._gradient_rng = np.random.default_rng(spec.seed)
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Deterministic inputs.
    # ------------------------------------------------------------------

    def _client_vectors(self, round_index: int) -> List[np.ndarray]:
        """Seeded gradient draws; depend only on (seed, round, client)."""
        rng = np.random.default_rng(
            self.spec.seed * 1_000_003 + round_index)
        return [
            rng.uniform(-1.0, 1.0, size=self.spec.vector_size)
            for _ in range(self.spec.num_clients)
        ]

    # ------------------------------------------------------------------
    # The aggregation step (overridden by the durable simulator).
    # ------------------------------------------------------------------

    def _aggregate_round(self, vectors: List[np.ndarray],
                         round_index: int) -> np.ndarray:
        """Run one round through the plain (non-durable) aggregator."""
        return self.runtime.aggregator.aggregate(
            vectors, round_index=round_index)

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute every round; raises :class:`SimulationFailure` with a
        replayable ``(seed, trace)`` on any error."""
        records: List[RoundRecord] = []
        injector = self.runtime.injector
        for round_index in range(self.spec.rounds):
            start = self.clock.now
            # Schedule this round's events: client submissions (offset
            # by scheduled straggler delay) then the aggregation barrier.
            for client in range(self.spec.num_clients):
                delay = 0.0
                if injector is not None:
                    delay = injector.straggler_delay(
                        f"client-{client}", round_index)
                self.queue.push(start + delay, "submit",
                                (round_index, client))
            self.queue.push(start + 1e9, "aggregate", round_index)

            submitted: List[int] = []
            while len(self.queue):
                event = self.queue.pop()
                self._events_processed += 1
                if event.kind == "submit":
                    if event.time > start:
                        self.clock.advance(event.time - self.clock.now)
                    submitted.append(event.payload[1])
                elif event.kind == "aggregate":
                    break

            vectors = self._client_vectors(round_index)
            ledger = self.runtime.begin_epoch()
            try:
                total = self._aggregate_round(vectors, round_index)
            except QuorumError as error:
                raise SimulationFailure(
                    self.spec, round_index,
                    f"quorum not met: {error}") from error
            except SimulationFailure:
                raise
            except Exception as error:
                raise SimulationFailure(
                    self.spec, round_index,
                    f"{type(error).__name__}: {error}") from error

            self.clock.advance(ledger.total_seconds)
            last = self.runtime.aggregator.last_round
            records.append(RoundRecord(
                round_index=round_index,
                start_time=start,
                end_time=self.clock.now,
                summands=(last.summands if last is not None
                          else len(vectors)),
                survivors=tuple(last.survivors) if last is not None else (),
                dropped=tuple(last.dropped) if last is not None else (),
                checksum=zlib.crc32(
                    np.ascontiguousarray(total).tobytes()),
            ))
        return SimulationResult(spec=self.spec, rounds=records,
                                final_time=self.clock.now,
                                events_processed=self._events_processed)


#: Lease duration on the simulator's virtual clock; failover scenarios
#: advance past it to let the standby acquire legally.
LEASE_TIMEOUT_SECONDS = 30.0
#: Extra virtual seconds past lease expiry before a takeover.
LEASE_GRACE_SECONDS = 1.0


@dataclass
class CoordinatorKillRecord:
    """One coordinator death the durable simulator processed.

    Attributes:
        kind: ``coordinator_crash`` (same coordinator restarted) or
            ``failover`` (standby took over).
        round_index: Round in flight when the kill fired.
        lsn: Last WAL record durably appended before death.
        incarnation: The successor's fencing incarnation.
        recovered_digest: The successor's state digest right after
            replaying the log -- compared against the uninterrupted
            run's digest at the same ``lsn`` by the sweep.
    """

    kind: str
    round_index: int
    lsn: int
    incarnation: int
    recovered_digest: int

    def to_dict(self) -> dict:
        return {"kind": self.kind, "round": self.round_index,
                "lsn": self.lsn, "incarnation": self.incarnation,
                "recovered_digest": self.recovered_digest}


@dataclass
class DurableSimulationResult(SimulationResult):
    """A :class:`SimulationResult` plus the durable coordinator's story."""

    wal_records: int = 0
    kills: List[CoordinatorKillRecord] = field(default_factory=list)
    digest_trail: List[int] = field(default_factory=list)
    final_weights: List[List[float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["wal_records"] = self.wal_records
        data["kills"] = [kill.to_dict() for kill in self.kills]
        return data


class DurableFederationSimulator(FederationSimulator):
    """The simulator with a write-ahead-logged coordinator in the loop.

    Rounds run through :class:`~repro.federation.coordinator.
    DurableCoordinator` instead of the bare aggregator; the spec's fault
    plan may schedule ``coordinator_crash`` / ``failover`` events, each
    killing the coordinator right after it appends the WAL record named
    by ``after_record``.  A crash restarts the same coordinator from its
    own log; a failover advances the virtual clock past the lease, lets
    the hot standby take over, and promotes a fresh standby.  Either
    way the round *continues* -- uploads accepted before the death are
    reused verbatim from the log, never re-requested.
    """

    def __init__(self, spec: SimulationSpec):
        super().__init__(spec)
        self.lease_manager = LeaseManager(
            timeout_seconds=LEASE_TIMEOUT_SECONDS,
            clock=lambda: self.clock.now)
        lease = self.lease_manager.acquire("coordinator")
        self.coordinator = DurableCoordinator(
            self.runtime.aggregator, name="coordinator",
            incarnation=lease.incarnation,
            lease_manager=self.lease_manager)
        self.standby = StandbyCoordinator(
            self.runtime.aggregator, self.lease_manager, name="standby")
        plan = spec.fault_plan
        self._pending_kills = deque(plan.coordinator_events()
                                    if plan is not None else [])
        self.kills: List[CoordinatorKillRecord] = []
        self.final_weights: List[List[float]] = []
        self._promotions = 0
        self._arm_next_kill()

    def _arm_next_kill(self) -> None:
        self.coordinator.kill_after_lsn = (
            self._pending_kills[0].after_record
            if self._pending_kills else None)

    def _handle_kill(self, event: FaultEvent,
                     killed: CoordinatorKilled) -> None:
        """Process one coordinator death: recover or fail over."""
        injector = self.runtime.injector
        image = self.coordinator.wal.image()
        self.standby.tail(image)
        if event.kind == FAILOVER:
            if injector is not None:
                injector.charge_failover(event.round_index)
            # Let the dead primary's lease lapse on the virtual clock,
            # then the hot standby acquires a bumped incarnation.
            lease = self.lease_manager.lease
            if lease is not None and lease.expires_at > self.clock.now:
                self.clock.advance(lease.expires_at - self.clock.now)
            self.clock.advance(LEASE_GRACE_SECONDS)
            self.coordinator = self.standby.take_over(image)
            self._promotions += 1
            self.standby = StandbyCoordinator(
                self.runtime.aggregator, self.lease_manager,
                name=f"standby-{self._promotions}")
        else:
            if injector is not None:
                injector.charge_coordinator_crash(event.round_index)
            lease = self.lease_manager.acquire(self.coordinator.name)
            self.coordinator = DurableCoordinator(
                self.runtime.aggregator,
                wal=WriteAheadLog.from_bytes(image),
                name=self.coordinator.name,
                incarnation=lease.incarnation,
                lease_manager=self.lease_manager)
        self.kills.append(CoordinatorKillRecord(
            kind=event.kind, round_index=event.round_index,
            lsn=killed.lsn, incarnation=self.coordinator.incarnation,
            recovered_digest=self.coordinator.machine.digest()))
        self._arm_next_kill()

    def _aggregate_round(self, vectors: List[np.ndarray],
                         round_index: int) -> np.ndarray:
        try:
            self.coordinator.heartbeat(channel=self.runtime.channel)
        except ChannelError:
            pass  # a lost heartbeat just leaves the lease unrenewed
        while True:
            try:
                total = self.coordinator.run_round(
                    vectors, round_index=round_index)
            except CoordinatorKilled as killed:
                # run_round on the successor resumes the round (or, if
                # death landed on the round_close record, returns the
                # already-decided result / re-raises the quorum abort).
                self._handle_kill(self._pending_kills.popleft(), killed)
                continue
            break
        self.standby.tail(self.coordinator.wal.image())
        self.final_weights.append(
            [float(v) for v in np.asarray(total).ravel()])
        return np.asarray(total)

    def run(self) -> DurableSimulationResult:
        base = super().run()
        if self._pending_kills:
            leftover = [e.after_record for e in self._pending_kills]
            raise SimulationFailure(
                self.spec, self.spec.rounds - 1,
                f"scheduled coordinator kills at records {leftover} "
                f"never fired (log only grew to "
                f"{len(self.coordinator.wal)} records)")
        return DurableSimulationResult(
            spec=base.spec, rounds=base.rounds,
            final_time=base.final_time,
            events_processed=base.events_processed,
            wal_records=len(self.coordinator.wal),
            kills=list(self.kills),
            digest_trail=list(self.coordinator.digest_trail),
            final_weights=list(self.final_weights))


class FailoverFailure(SimulationFailure):
    """Crash-consistency divergence; carries the replayable kill spec.

    The embedded trace *includes* the coordinator-kill event, so
    ``replay`` on the printed JSON reconstructs the exact kill-at-
    record-``record_index`` run that diverged.
    """

    def __init__(self, spec: SimulationSpec, round_index: int,
                 record_index: int, detail: str):
        self.record_index = record_index
        super().__init__(
            spec, round_index,
            f"kill after WAL record {record_index}: {detail}")


@dataclass
class CrashSweepReport:
    """Outcome of a kill-at-every-record-boundary sweep."""

    spec: SimulationSpec
    mode: str
    wal_records: int
    boundaries_tested: int
    reference_checksum: int

    def summary_lines(self) -> List[str]:
        return [
            f"mode                 {self.mode}",
            f"wal records          {self.wal_records}",
            f"boundaries tested    {self.boundaries_tested}",
            f"reference checksum   {self.reference_checksum}",
            "verdict              recovered bit-identical at every "
            "boundary",
        ]


def _spec_with_kill(spec: SimulationSpec, mode: str, round_index: int,
                    record_index: int) -> SimulationSpec:
    plan = spec.fault_plan if spec.fault_plan is not None \
        else FaultPlan(seed=spec.seed)
    if mode == FAILOVER:
        plan = plan.failover(round_index, after_record=record_index)
    else:
        plan = plan.coordinator_crash(round_index,
                                      after_record=record_index)
    return SimulationSpec.from_dict(
        {**spec.to_dict(), "fault_plan": plan.to_dict(), "durable": True})


def crash_consistency_sweep(spec: SimulationSpec,
                            mode: str = "coordinator_crash",
                            record_indices: Optional[List[int]] = None
                            ) -> CrashSweepReport:
    """Kill the coordinator after *each* WAL record boundary and verify.

    First runs the spec uninterrupted through the durable coordinator,
    capturing the per-LSN state digest trail and every round's final
    decrypted weights.  Then, for each record boundary ``k`` (or only
    ``record_indices`` when given), re-runs from scratch with a
    scheduled kill after record ``k``, recovers, and asserts:

    - the successor's replayed state digest equals the uninterrupted
      run's digest at record ``k`` (bit-identical recovered state), and
    - every round's final decrypted weights equal the uninterrupted
      run's exactly (``==``, not approximately).

    Any divergence raises :class:`FailoverFailure` whose message embeds
    the replayable ``(seed, record-index)`` spec.
    """
    reference_spec = SimulationSpec.from_dict(
        {**spec.to_dict(), "durable": True})
    reference_sim = DurableFederationSimulator(reference_spec)
    reference = reference_sim.run()
    if record_indices is None:
        record_indices = list(range(reference.wal_records))
    record_to_round = [record.round_index for record
                       in reference_sim.coordinator.wal.records]
    for index in record_indices:
        if not 0 <= index < reference.wal_records:
            raise ValueError(
                f"record index {index} outside the log "
                f"(0..{reference.wal_records - 1})")
        round_index = record_to_round[index]
        killed_spec = _spec_with_kill(spec, mode, round_index, index)
        try:
            result = DurableFederationSimulator(killed_spec).run()
        except SimulationFailure as failure:
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"killed run failed outright: {failure.detail}"
            ) from failure
        kill = result.kills[0]
        if kill.recovered_digest != reference.digest_trail[index]:
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"recovered state digest {kill.recovered_digest} != "
                f"uninterrupted digest "
                f"{reference.digest_trail[index]} at the same record")
        if result.final_weights != reference.final_weights:
            raise FailoverFailure(
                killed_spec, round_index, index,
                "final decrypted weights diverged from the "
                "uninterrupted run")
        if result.checksum() != reference.checksum():
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"round checksum {result.checksum()} != reference "
                f"{reference.checksum()}")
    return CrashSweepReport(
        spec=reference_spec, mode=mode,
        wal_records=reference.wal_records,
        boundaries_tested=len(record_indices),
        reference_checksum=reference.checksum())


@dataclass
class ShardedSimulationResult(SimulationResult):
    """A :class:`SimulationResult` plus the sharded service's story.

    One WAL and one digest trail *per node* of the reduction tree
    (``shard-<i>`` leaves plus ``root``) -- the sharded crash sweep
    compares a killed node's recovered digest against its own trail.
    """

    node_wal_records: Dict[str, int] = field(default_factory=dict)
    failovers: List[FailoverRecord] = field(default_factory=list)
    node_digest_trails: Dict[str, List[int]] = field(default_factory=dict)
    final_weights: List[List[float]] = field(default_factory=list)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data["node_wal_records"] = dict(self.node_wal_records)
        data["failovers"] = [
            {"node": f.node, "round": f.round_index, "lsn": f.lsn,
             "incarnation": f.incarnation,
             "recovered_digest": f.recovered_digest}
            for f in self.failovers
        ]
        return data


class ShardedFederationSimulator(FederationSimulator):
    """The simulator with the two-level sharded service in the loop.

    Rounds run through :class:`~repro.federation.shard.
    ShardedAggregationService` -- cohort sampling, admission control,
    leaf combination, root reduction -- sharing the simulator's virtual
    clock, so admission deadlines, lease expiry and round time all live
    on one timeline.  The spec's fault plan may schedule ``shard_crash``
    kills against leaves, ``failover`` kills against the ``root`` party,
    and ``queue_overload`` drills against shard admission; every
    scheduled kill must actually fire or :meth:`run` raises.
    """

    def __init__(self, spec: SimulationSpec):
        super().__init__(spec)
        self.service = ShardedAggregationService(
            self.runtime.aggregator, clock=self.clock,
            num_shards=spec.num_shards,
            queue_capacity=spec.queue_capacity, seed=spec.seed,
            lease_timeout_seconds=LEASE_TIMEOUT_SECONDS)
        self.final_weights: List[List[float]] = []

    def _aggregate_round(self, vectors: List[np.ndarray],
                         round_index: int) -> np.ndarray:
        total = self.service.run_round(
            vectors, round_index=round_index,
            cohort_size=self.spec.cohort_size)
        self.final_weights.append(
            [float(v) for v in np.asarray(total).ravel()])
        return np.asarray(total)

    def _scheduled_kill_count(self) -> int:
        plan = self.spec.fault_plan
        if plan is None:
            return 0
        return sum(
            1 for e in plan.events
            if e.kind == SHARD_CRASH
            or (e.kind in COORDINATOR_KINDS
                and e.party == self.service.root_name))

    def run(self) -> ShardedSimulationResult:
        base = super().run()
        expected = self._scheduled_kill_count()
        fired = len(self.service.failover_log)
        if fired < expected:
            raise SimulationFailure(
                self.spec, self.spec.rounds - 1,
                f"only {fired} of {expected} scheduled node kills fired")
        trails = {name: list(leaf.digest_trail)
                  for name, leaf in self.service.leaves.items()}
        trails[self.service.root_name] = list(
            self.service.root.digest_trail)
        wal_records = {name: len(leaf.wal)
                       for name, leaf in self.service.leaves.items()}
        wal_records[self.service.root_name] = len(self.service.root.wal)
        return ShardedSimulationResult(
            spec=base.spec, rounds=base.rounds,
            final_time=base.final_time,
            events_processed=base.events_processed,
            node_wal_records=wal_records,
            failovers=list(self.service.failover_log),
            node_digest_trails=trails,
            final_weights=list(self.final_weights))


def _sharded_spec_with_kill(spec: SimulationSpec, node: str,
                            round_index: int, record_index: int,
                            root_record_index: Optional[int] = None
                            ) -> SimulationSpec:
    plan = spec.fault_plan if spec.fault_plan is not None \
        else FaultPlan(seed=spec.seed)
    if node == "root":
        plan = plan.failover(round_index, after_record=record_index,
                             party="root")
    else:
        plan = plan.shard_crash(node, round_index,
                                after_record=record_index)
    if root_record_index is not None:
        plan = plan.failover(round_index, after_record=root_record_index,
                             party="root")
    return SimulationSpec.from_dict(
        {**spec.to_dict(), "fault_plan": plan.to_dict(), "sharded": True})


def shard_crash_consistency_sweep(spec: SimulationSpec,
                                  node: str = "shard-0",
                                  record_indices: Optional[List[int]]
                                  = None,
                                  race_root_failover: bool = False
                                  ) -> CrashSweepReport:
    """Kill one tree node after *each* of its WAL records and verify.

    The hierarchical twin of :func:`crash_consistency_sweep`: first runs
    the spec uninterrupted through the sharded service, capturing every
    node's per-LSN digest trail and each round's final decrypted
    weights.  Then, for each boundary ``k`` of ``node``'s own log (or
    only ``record_indices`` when given), re-runs with a scheduled kill
    after that node's record ``k`` -- ``shard_crash`` for a leaf,
    ``failover`` against the ``root`` party for the root -- and asserts:

    - the successor's replayed digest equals the uninterrupted run's
      digest for that node at record ``k``, and
    - every round's final decrypted weights equal the uninterrupted
      run's exactly.

    With ``race_root_failover`` (leaf sweeps only) every killed run
    *also* schedules a root failover in the same round, so a root
    takeover races a leaf takeover and both must still converge to the
    reference weights.
    """
    reference_spec = SimulationSpec.from_dict(
        {**spec.to_dict(), "sharded": True})
    reference_sim = ShardedFederationSimulator(reference_spec)
    reference = reference_sim.run()
    root_name = reference_sim.service.root_name
    if node == root_name:
        log = reference_sim.service.root.wal
    elif node in reference_sim.service.leaves:
        log = reference_sim.service.leaves[node].wal
    else:
        known = sorted(reference_sim.service.leaves)
        raise ValueError(
            f"unknown node {node!r}; the reference run has "
            f"{known + [root_name]}")
    trail = reference.node_digest_trails[node]
    total_records = len(log)
    if record_indices is None:
        record_indices = list(range(total_records))
    record_to_round = [record.round_index for record in log.records]
    root_records = reference_sim.service.root.wal.records
    racing = race_root_failover and node != root_name
    for index in record_indices:
        if not 0 <= index < total_records:
            raise ValueError(
                f"record index {index} outside {node}'s log "
                f"(0..{total_records - 1})")
        round_index = record_to_round[index]
        root_kill = None
        if racing:
            root_kill = next(
                (i for i, record in enumerate(root_records)
                 if record.round_index == round_index), None)
        killed_spec = _sharded_spec_with_kill(
            spec, node, round_index, index, root_record_index=root_kill)
        try:
            result = ShardedFederationSimulator(killed_spec).run()
        except SimulationFailure as failure:
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"killed run failed outright: {failure.detail}"
            ) from failure
        kill = next((f for f in result.failovers if f.node == node),
                    None)
        if kill is None:
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"the scheduled kill of {node} never failed over")
        if kill.recovered_digest != trail[index]:
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"{node}: recovered state digest {kill.recovered_digest}"
                f" != uninterrupted digest {trail[index]} at the same "
                f"record")
        if root_kill is not None and not any(
                f.node == root_name for f in result.failovers):
            raise FailoverFailure(
                killed_spec, round_index, index,
                "the racing root failover never fired")
        if result.final_weights != reference.final_weights:
            raise FailoverFailure(
                killed_spec, round_index, index,
                "final decrypted weights diverged from the "
                "uninterrupted run")
        if result.checksum() != reference.checksum():
            raise FailoverFailure(
                killed_spec, round_index, index,
                f"round checksum {result.checksum()} != reference "
                f"{reference.checksum()}")
    mode = f"shard:{node}" + ("+root-race" if racing else "")
    return CrashSweepReport(
        spec=reference_spec, mode=mode,
        wal_records=total_records,
        boundaries_tested=len(record_indices),
        reference_checksum=reference.checksum())


def replay(trace_json: str) -> SimulationResult:
    """Rebuild and run a simulation from a failure's printed trace.

    ``(seed, trace)`` is the full state: this constructs a fresh
    simulator from the JSON and runs it -- the repro path named in every
    :class:`SimulationFailure` message.  Traces whose spec is sharded
    (or whose fault plan schedules shard faults or kills against the
    ``root`` party) replay through the
    :class:`ShardedFederationSimulator`; durable traces (or plans with
    coordinator kills) through the :class:`DurableFederationSimulator`.
    """
    spec = SimulationSpec.from_json(trace_json)
    plan = spec.fault_plan
    sharded = spec.sharded or (plan is not None and (
        bool(plan.shard_events())
        or any(e.kind in COORDINATOR_KINDS and e.party == "root"
               for e in plan.events)))
    if sharded:
        return ShardedFederationSimulator(spec).run()
    durable = spec.durable or (
        plan is not None and bool(plan.coordinator_events()))
    if durable:
        return DurableFederationSimulator(spec).run()
    return FederationSimulator(spec).run()


def expect_quorum_failure(spec: SimulationSpec) -> SimulationFailure:
    """Run a spec that must fail quorum; returns the failure.

    Test helper: asserts the failure actually carries a replayable
    trace (the JSON parses back into an equal spec).
    """
    try:
        FederationSimulator(spec).run()
    except SimulationFailure as failure:
        rebuilt = SimulationSpec.from_json(failure.spec.to_json())
        if rebuilt != spec:
            raise AssertionError(
                "failure trace does not round-trip to the original spec")
        return failure
    raise AssertionError("simulation unexpectedly succeeded")


# ----------------------------------------------------------------------
# Multi-tenant simulation (tenant isolation + elastic rebalancing).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's slice of a multi-tenant simulation.

    Each tenant is a *whole federation*: its own seed (hence its own
    Paillier keypair and gradient draws), its own client count, and its
    own fault plan -- the only things tenants share are the clock, the
    shard pool, and the admission-controlled ingress.
    """

    tenant_id: str
    num_clients: int = 4
    weight: float = 1.0
    quota_rate: Optional[float] = None
    quota_burst: int = 16
    seed: int = 7
    min_quorum: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None

    def to_dict(self) -> dict:
        return {
            "tenant_id": self.tenant_id,
            "num_clients": self.num_clients,
            "weight": self.weight,
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
            "seed": self.seed,
            "min_quorum": self.min_quorum,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        plan = data.get("fault_plan")
        return cls(
            tenant_id=data["tenant_id"],
            num_clients=data.get("num_clients", 4),
            weight=data.get("weight", 1.0),
            quota_rate=data.get("quota_rate"),
            quota_burst=data.get("quota_burst", 16),
            seed=data.get("seed", 7),
            min_quorum=data.get("min_quorum"),
            fault_plan=(FaultPlan.from_dict(plan)
                        if plan is not None else None),
        )


@dataclass(frozen=True)
class TenancySpec:
    """The JSON-round-trippable input of one multi-tenant simulation.

    ``rebalance_targets`` (when given) overrides the elastic policy:
    round ``r`` drives the pool toward target ``targets[min(r, last)]``
    -- the knob the rebalance crash sweep uses to force both splits
    *and* merges into the topology journal.  ``pool_kill_after_lsn``
    arms the pool's crash knife: the first topology record appended at
    or past that LSN kills the pool mid-handoff.
    """

    system: str = "FLBooster"
    rounds: int = 3
    vector_size: int = 8
    key_bits: int = 256
    physical_key_bits: Optional[int] = 128
    queue_capacity: int = 64
    initial_shards: int = 1
    tenants: Tuple[TenantSpec, ...] = ()
    rebalance_targets: Optional[Tuple[int, ...]] = None
    pool_kill_after_lsn: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "rounds": self.rounds,
            "vector_size": self.vector_size,
            "key_bits": self.key_bits,
            "physical_key_bits": self.physical_key_bits,
            "queue_capacity": self.queue_capacity,
            "initial_shards": self.initial_shards,
            "tenants": [t.to_dict() for t in self.tenants],
            "rebalance_targets": (list(self.rebalance_targets)
                                  if self.rebalance_targets is not None
                                  else None),
            "pool_kill_after_lsn": self.pool_kill_after_lsn,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "TenancySpec":
        targets = data.get("rebalance_targets")
        return cls(
            system=data.get("system", "FLBooster"),
            rounds=data.get("rounds", 3),
            vector_size=data.get("vector_size", 8),
            key_bits=data.get("key_bits", 256),
            physical_key_bits=data.get("physical_key_bits"),
            queue_capacity=data.get("queue_capacity", 64),
            initial_shards=data.get("initial_shards", 1),
            tenants=tuple(TenantSpec.from_dict(t)
                          for t in data.get("tenants", [])),
            rebalance_targets=(tuple(targets)
                               if targets is not None else None),
            pool_kill_after_lsn=data.get("pool_kill_after_lsn"),
        )

    @classmethod
    def from_json(cls, blob: str) -> "TenancySpec":
        return cls.from_dict(json.loads(blob))

    def solo(self, tenant_id: str) -> "TenancySpec":
        """The same world with only ``tenant_id`` in it -- the baseline
        the isolation invariant compares against."""
        keep = tuple(t for t in self.tenants
                     if t.tenant_id == tenant_id)
        if not keep:
            raise ValueError(f"no tenant {tenant_id!r} in the spec")
        return TenancySpec.from_dict(
            {**self.to_dict(), "tenants": [t.to_dict() for t in keep]})


class TenancyFailure(AssertionError):
    """A multi-tenant simulation diverged; message embeds the trace."""

    def __init__(self, spec: TenancySpec, detail: str):
        self.spec = spec
        self.detail = detail
        super().__init__(
            f"tenancy failure: {detail}\n"
            f"  repro: trace={spec.to_json()}")


@dataclass
class TenancySimulationResult:
    """Deterministic outcome of one multi-tenant simulation.

    ``final_weights[tenant]`` lists the decoded aggregate of every
    round the tenant completed (crashed / quorum-failed rounds record a
    status but no weights) -- the byte-exact series the isolation
    invariant compares between a noisy multi-tenant run and a solo run.
    """

    spec: TenancySpec
    statuses: Dict[str, List[str]] = field(default_factory=dict)
    final_weights: Dict[str, List[List[float]]] = field(
        default_factory=dict)
    active_history: List[List[str]] = field(default_factory=list)
    rebalance_ops: int = 0
    pool_failovers: int = 0
    pool_records: int = 0
    pool_digest: int = 0
    tenant_fault_counts: Dict[str, Dict[str, int]] = field(
        default_factory=dict)

    def checksum(self) -> int:
        """One integer over every tenant's every-round aggregate."""
        digest = zlib.crc32(
            json.dumps(self.active_history,
                       sort_keys=True).encode())
        for tenant_id in sorted(self.final_weights):
            for weights in self.final_weights[tenant_id]:
                digest = zlib.crc32(
                    np.asarray(weights, dtype=np.float64).tobytes(),
                    digest)
        return digest


class MultiTenantSimulator:
    """Drives several federations over one shared shard pool.

    Builds one :class:`~repro.federation.runtime.FederationRuntime` per
    tenant (own keys, own fault injector, own ledgers), registers every
    tenant -- with its engine's key fingerprint pinned -- in a shared
    :class:`~repro.federation.tenancy.TenantRegistry`, and runs all
    rounds through the
    :class:`~repro.federation.shard.MultiTenantAggregationService`.
    Per-round gradient draws depend only on ``(tenant seed, round)``,
    never on co-tenants -- the precondition of the isolation invariant.
    """

    def __init__(self, spec: TenancySpec):
        if not spec.tenants:
            raise ValueError("a TenancySpec needs at least one tenant")
        self.spec = spec
        self.clock = VirtualClock()
        self.runtimes: Dict[str, FederationRuntime] = {}
        tenants = []
        for tenant_spec in spec.tenants:
            runtime = FederationRuntime(
                config=system_by_name(spec.system),
                num_clients=tenant_spec.num_clients,
                key_bits=spec.key_bits,
                physical_key_bits=spec.physical_key_bits,
                seed=tenant_spec.seed,
                fault_plan=tenant_spec.fault_plan,
                min_quorum=tenant_spec.min_quorum,
            )
            self.runtimes[tenant_spec.tenant_id] = runtime
            tenants.append(Tenant(
                tenant_id=tenant_spec.tenant_id,
                weight=tenant_spec.weight,
                quota_rate=tenant_spec.quota_rate,
                quota_burst=tenant_spec.quota_burst,
                key_fingerprint=runtime.aggregator.client_engine
                .fingerprint().hex()))
        self.registry = TenantRegistry(tenants)
        self.service = MultiTenantAggregationService(
            self.registry, clock=self.clock,
            queue_capacity=spec.queue_capacity,
            initial_shards=spec.initial_shards,
            elastic=spec.rebalance_targets is None,
            lease_timeout_seconds=LEASE_TIMEOUT_SECONDS)
        for tenant_spec in spec.tenants:
            self.service.attach(
                tenant_spec.tenant_id,
                self.runtimes[tenant_spec.tenant_id].aggregator,
                seed=tenant_spec.seed)
        if spec.pool_kill_after_lsn is not None:
            self.service.pool.kill_after_lsn = spec.pool_kill_after_lsn

    def _tenant_vectors(self, tenant_spec: TenantSpec,
                        round_index: int) -> List[np.ndarray]:
        """Seeded draws; depend only on (tenant seed, round, client)."""
        rng = np.random.default_rng(
            tenant_spec.seed * 1_000_003 + round_index)
        return [rng.uniform(-1.0, 1.0, size=self.spec.vector_size)
                for _ in range(tenant_spec.num_clients)]

    def run(self) -> TenancySimulationResult:
        result = TenancySimulationResult(
            spec=self.spec,
            statuses={t.tenant_id: [] for t in self.spec.tenants},
            final_weights={t.tenant_id: [] for t in self.spec.tenants})
        targets = self.spec.rebalance_targets
        for round_index in range(self.spec.rounds):
            ledgers = {
                tenant_spec.tenant_id:
                self.runtimes[tenant_spec.tenant_id].begin_epoch()
                for tenant_spec in self.spec.tenants}
            if targets is not None:
                target = targets[min(round_index, len(targets) - 1)]
                result.rebalance_ops += self.service.rebalance(
                    target, round_index)
            vectors = {
                tenant_spec.tenant_id:
                self._tenant_vectors(tenant_spec, round_index)
                for tenant_spec in self.spec.tenants}
            try:
                report = self.service.run_round(vectors, round_index)
            except Exception as error:
                raise TenancyFailure(
                    self.spec,
                    f"round {round_index}: "
                    f"{type(error).__name__}: {error}") from error
            result.rebalance_ops += report.rebalance_ops
            result.active_history.append(list(report.active_shards))
            for tenant_id, outcome in report.outcomes.items():
                result.statuses[tenant_id].append(outcome.status)
                if outcome.status == "ok":
                    result.final_weights[tenant_id].append(
                        [float(v) for v in
                         np.asarray(outcome.result).ravel()])
            self.clock.advance(max(
                (ledger.total_seconds for ledger in ledgers.values()),
                default=0.0))
        result.pool_failovers = self.service.pool_failovers
        result.pool_records = len(self.service.pool.wal)
        result.pool_digest = self.service.pool.digest()
        for tenant_spec in self.spec.tenants:
            injector = self.runtimes[tenant_spec.tenant_id].injector
            result.tenant_fault_counts[tenant_spec.tenant_id] = (
                dict(injector.triggered_counts())
                if injector is not None else {})
        return result


@dataclass
class TenantIsolationReport:
    """Verdict of one tenant-isolation check (CLI table body)."""

    spec: TenancySpec
    quiet_tenant: str
    rounds_compared: int
    noisy_checksum: int
    solo_checksum: int

    def summary_lines(self) -> List[str]:
        return [
            f"quiet tenant          {self.quiet_tenant}",
            f"rounds compared       {self.rounds_compared}",
            f"noisy-run checksum    {self.noisy_checksum}",
            f"solo-run checksum     {self.solo_checksum}",
            "verdict               quiet tenant byte-identical to its "
            "solo run",
        ]


def tenant_isolation_check(spec: TenancySpec,
                           quiet_tenant: str) -> TenantIsolationReport:
    """Assert the headline invariant: faults degrade their tenant only.

    Runs the full multi-tenant spec (noisy neighbours, floods, crashes
    and all), then runs ``quiet_tenant`` *alone* with the same seeds,
    and asserts the quiet tenant's per-round decoded weights are
    **byte-identical** across the two runs -- ``==`` on the float lists,
    not approximate.  Raises :class:`TenancyFailure` with a replayable
    trace on any divergence.
    """
    noisy = MultiTenantSimulator(spec).run()
    solo_spec = spec.solo(quiet_tenant)
    solo = MultiTenantSimulator(solo_spec).run()
    noisy_weights = noisy.final_weights[quiet_tenant]
    solo_weights = solo.final_weights[quiet_tenant]
    if noisy.statuses[quiet_tenant] != solo.statuses[quiet_tenant]:
        raise TenancyFailure(
            spec,
            f"quiet tenant {quiet_tenant!r} status series diverged: "
            f"{noisy.statuses[quiet_tenant]} (noisy) != "
            f"{solo.statuses[quiet_tenant]} (solo)")
    if noisy_weights != solo_weights:
        first = next(
            (i for i, (a, b) in enumerate(zip(noisy_weights,
                                              solo_weights))
             if a != b),
            min(len(noisy_weights), len(solo_weights)))
        raise TenancyFailure(
            spec,
            f"quiet tenant {quiet_tenant!r} weights diverged from its "
            f"solo run at round {first} -- isolation is broken")
    def weights_checksum(weights: List[List[float]]) -> int:
        digest = 0
        for row in weights:
            digest = zlib.crc32(
                np.asarray(row, dtype=np.float64).tobytes(), digest)
        return digest
    return TenantIsolationReport(
        spec=spec, quiet_tenant=quiet_tenant,
        rounds_compared=len(solo_weights),
        noisy_checksum=weights_checksum(noisy_weights),
        solo_checksum=weights_checksum(solo_weights))


def rebalance_crash_sweep(spec: TenancySpec) -> CrashSweepReport:
    """Kill the shard pool at *every* topology record and verify.

    The elastic twin of the coordinator sweeps: first runs the spec
    uninterrupted, capturing the pool's topology journal, final
    topology digest, per-round active-shard history, and every tenant's
    per-round weights.  Then, for each record boundary ``k`` of the
    topology journal, re-runs with the pool's crash knife armed at
    ``k`` and asserts the recovered run is **bit-identical**: same
    final topology digest, same active-shard history, same per-tenant
    weights, and the pool really did fail over.
    """
    if spec.pool_kill_after_lsn is not None:
        raise ValueError("the sweep arms the kill itself; pass a spec "
                         "without pool_kill_after_lsn")
    reference = MultiTenantSimulator(spec).run()
    if reference.pool_records == 0:
        raise ValueError(
            "the reference run journaled no topology records; give the "
            "spec rebalance_targets (or more clients) so the pool "
            "actually splits or merges")
    for index in range(reference.pool_records):
        killed_spec = TenancySpec.from_dict(
            {**spec.to_dict(), "pool_kill_after_lsn": index})
        result = MultiTenantSimulator(killed_spec).run()
        if result.pool_failovers < 1:
            raise TenancyFailure(
                killed_spec,
                f"the pool kill armed at record {index} never fired")
        if result.pool_digest != reference.pool_digest:
            raise TenancyFailure(
                killed_spec,
                f"kill at record {index}: recovered topology digest "
                f"{result.pool_digest} != reference "
                f"{reference.pool_digest}")
        if result.active_history != reference.active_history:
            raise TenancyFailure(
                killed_spec,
                f"kill at record {index}: active-shard history "
                f"diverged from the uninterrupted run")
        if result.final_weights != reference.final_weights:
            raise TenancyFailure(
                killed_spec,
                f"kill at record {index}: tenant weights diverged "
                f"from the uninterrupted run")
    return CrashSweepReport(
        spec=SimulationSpec(),  # tenancy sweeps carry their own spec
        mode="shard-pool-rebalance",
        wal_records=reference.pool_records,
        boundaries_tested=reference.pool_records,
        reference_checksum=reference.checksum())
