"""Deterministic federation simulator: virtual time, replayable traces.

Drives :class:`~repro.federation.runtime.FederationRuntime` rounds from a
seeded virtual clock and event queue with **zero wall-clock dependence**:
client gradient draws, fault injection, channel retries and straggler
delays all advance modelled time only, so the same
:class:`SimulationSpec` produces the same per-round survivors, modelled
seconds, and aggregate checksums on every machine, every run.

The spec is the *trace*: a JSON-round-trippable record of everything the
run depends on (system name, client count, seed, fault plan, quorum,
deadline).  When a simulation raises -- a quorum failure, an engine bug,
anything -- the :class:`SimulationFailure` message embeds
``(seed, trace)`` and :func:`replay` rebuilds the identical run in a
fresh process from that JSON alone::

    python -c "from repro.testing.simulator import replay; \\
               replay('<trace json>')"
"""

from __future__ import annotations

import heapq
import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.federation.faults import FaultPlan, QuorumError
from repro.federation.runtime import FederationRuntime, system_by_name


class VirtualClock:
    """Monotonic modelled time; the only clock the simulator knows."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rejects negative steps."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}")
        self._now += seconds
        return self._now


@dataclass(order=True)
class _Event:
    """One scheduled event; ordering is (time, sequence) -- fully
    deterministic even for simultaneous events."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """A seeded-deterministic priority queue of simulation events."""

    def __init__(self):
        self._heap: List[_Event] = []
        self._sequence = 0

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        heapq.heappush(self._heap,
                       _Event(time, self._sequence, kind, payload))
        self._sequence += 1

    def pop(self) -> _Event:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class SimulationSpec:
    """The complete, JSON-round-trippable input of one simulation.

    This *is* the replay trace: everything a fresh process needs to
    reproduce the run bit-for-bit.  ``physical_key_bits`` defaults to
    ``key_bits`` (full fidelity); specs used in tests pass a small
    physical key so replays stay fast.
    """

    system: str = "FLBooster"
    num_clients: int = 4
    rounds: int = 3
    vector_size: int = 8
    key_bits: int = 256
    physical_key_bits: Optional[int] = 128
    seed: int = 7
    min_quorum: Optional[int] = None
    round_deadline_seconds: Optional[float] = None
    incarnation: int = 0
    fault_plan: Optional[FaultPlan] = None

    def to_dict(self) -> dict:
        return {
            "system": self.system,
            "num_clients": self.num_clients,
            "rounds": self.rounds,
            "vector_size": self.vector_size,
            "key_bits": self.key_bits,
            "physical_key_bits": self.physical_key_bits,
            "seed": self.seed,
            "min_quorum": self.min_quorum,
            "round_deadline_seconds": self.round_deadline_seconds,
            "incarnation": self.incarnation,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationSpec":
        plan = data.get("fault_plan")
        return cls(
            system=data.get("system", "FLBooster"),
            num_clients=data.get("num_clients", 4),
            rounds=data.get("rounds", 3),
            vector_size=data.get("vector_size", 8),
            key_bits=data.get("key_bits", 256),
            physical_key_bits=data.get("physical_key_bits"),
            seed=data.get("seed", 7),
            min_quorum=data.get("min_quorum"),
            round_deadline_seconds=data.get("round_deadline_seconds"),
            incarnation=data.get("incarnation", 0),
            fault_plan=(FaultPlan.from_dict(plan)
                        if plan is not None else None),
        )

    @classmethod
    def from_json(cls, blob: str) -> "SimulationSpec":
        return cls.from_dict(json.loads(blob))


class SimulationFailure(AssertionError):
    """A simulation diverged or crashed; message embeds the replay trace.

    ``(seed, trace)`` in the message is sufficient for a fresh process:
    ``replay(trace_json)`` reconstructs the identical run.
    """

    def __init__(self, spec: SimulationSpec, round_index: int,
                 detail: str):
        self.spec = spec
        self.round_index = round_index
        self.detail = detail
        super().__init__(
            f"simulation failure at round {round_index}: {detail}\n"
            f"  repro: seed={spec.seed} trace={spec.to_json()}")


@dataclass
class RoundRecord:
    """What one aggregation round did, in modelled time."""

    round_index: int
    start_time: float
    end_time: float
    summands: int
    survivors: Tuple[str, ...]
    dropped: Tuple[str, ...]
    checksum: int  # crc32 of the aggregated vector bytes


@dataclass
class SimulationResult:
    """Deterministic outcome of one simulation run."""

    spec: SimulationSpec
    rounds: List[RoundRecord]
    final_time: float
    events_processed: int

    def checksum(self) -> int:
        """One integer summarizing every round's aggregate -- the value
        replay equality is asserted on."""
        digest = 0
        for record in self.rounds:
            digest = zlib.crc32(
                f"{record.round_index}:{record.summands}:"
                f"{record.checksum}".encode(), digest)
        return digest

    def to_dict(self) -> dict:
        return {
            "trace": self.spec.to_dict(),
            "final_time": self.final_time,
            "events_processed": self.events_processed,
            "checksum": self.checksum(),
            "rounds": [
                {"round": r.round_index, "summands": r.summands,
                 "survivors": list(r.survivors),
                 "dropped": list(r.dropped),
                 "modelled_seconds": r.end_time - r.start_time,
                 "checksum": r.checksum}
                for r in self.rounds
            ],
        }


class FederationSimulator:
    """Event-driven, wall-clock-free driver of federation rounds.

    Each round schedules one ``submit`` event per client (offset by any
    straggler delay the fault plan holds for that round -- stragglers
    genuinely arrive later on the virtual clock) and one ``aggregate``
    event; the queue drains in deterministic ``(time, sequence)`` order,
    the aggregation runs through the real
    :class:`~repro.federation.aggregator.SecureAggregator` (faults,
    quorum, retries and all), and the clock advances by the round's
    modelled ledger seconds.
    """

    def __init__(self, spec: SimulationSpec):
        self.spec = spec
        self.clock = VirtualClock()
        self.queue = EventQueue()
        self.runtime = FederationRuntime(
            config=system_by_name(spec.system),
            num_clients=spec.num_clients,
            key_bits=spec.key_bits,
            physical_key_bits=spec.physical_key_bits,
            seed=spec.seed,
            fault_plan=spec.fault_plan,
            min_quorum=spec.min_quorum,
            round_deadline_seconds=spec.round_deadline_seconds,
            incarnation=spec.incarnation,
        )
        self._gradient_rng = np.random.default_rng(spec.seed)
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Deterministic inputs.
    # ------------------------------------------------------------------

    def _client_vectors(self, round_index: int) -> List[np.ndarray]:
        """Seeded gradient draws; depend only on (seed, round, client)."""
        rng = np.random.default_rng(
            self.spec.seed * 1_000_003 + round_index)
        return [
            rng.uniform(-1.0, 1.0, size=self.spec.vector_size)
            for _ in range(self.spec.num_clients)
        ]

    # ------------------------------------------------------------------
    # The run loop.
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute every round; raises :class:`SimulationFailure` with a
        replayable ``(seed, trace)`` on any error."""
        records: List[RoundRecord] = []
        injector = self.runtime.injector
        for round_index in range(self.spec.rounds):
            start = self.clock.now
            # Schedule this round's events: client submissions (offset
            # by scheduled straggler delay) then the aggregation barrier.
            for client in range(self.spec.num_clients):
                delay = 0.0
                if injector is not None:
                    delay = injector.straggler_delay(
                        f"client-{client}", round_index)
                self.queue.push(start + delay, "submit",
                                (round_index, client))
            self.queue.push(start + 1e9, "aggregate", round_index)

            submitted: List[int] = []
            while len(self.queue):
                event = self.queue.pop()
                self._events_processed += 1
                if event.kind == "submit":
                    if event.time > start:
                        self.clock.advance(event.time - self.clock.now)
                    submitted.append(event.payload[1])
                elif event.kind == "aggregate":
                    break

            vectors = self._client_vectors(round_index)
            ledger = self.runtime.begin_epoch()
            try:
                total = self.runtime.aggregator.aggregate(
                    vectors, round_index=round_index)
            except QuorumError as error:
                raise SimulationFailure(
                    self.spec, round_index,
                    f"quorum not met: {error}") from error
            except Exception as error:
                raise SimulationFailure(
                    self.spec, round_index,
                    f"{type(error).__name__}: {error}") from error

            self.clock.advance(ledger.total_seconds)
            last = self.runtime.aggregator.last_round
            records.append(RoundRecord(
                round_index=round_index,
                start_time=start,
                end_time=self.clock.now,
                summands=(last.summands if last is not None
                          else len(vectors)),
                survivors=tuple(last.survivors) if last is not None else (),
                dropped=tuple(last.dropped) if last is not None else (),
                checksum=zlib.crc32(
                    np.ascontiguousarray(total).tobytes()),
            ))
        return SimulationResult(spec=self.spec, rounds=records,
                                final_time=self.clock.now,
                                events_processed=self._events_processed)


def replay(trace_json: str) -> SimulationResult:
    """Rebuild and run a simulation from a failure's printed trace.

    ``(seed, trace)`` is the full state: this constructs a fresh
    :class:`FederationSimulator` from the JSON and runs it -- the repro
    path named in every :class:`SimulationFailure` message.
    """
    spec = SimulationSpec.from_json(trace_json)
    return FederationSimulator(spec).run()


def expect_quorum_failure(spec: SimulationSpec) -> SimulationFailure:
    """Run a spec that must fail quorum; returns the failure.

    Test helper: asserts the failure actually carries a replayable
    trace (the JSON parses back into an equal spec).
    """
    try:
        FederationSimulator(spec).run()
    except SimulationFailure as failure:
        rebuilt = SimulationSpec.from_json(failure.spec.to_json())
        if rebuilt != spec:
            raise AssertionError(
                "failure trace does not round-trip to the original spec")
        return failure
    raise AssertionError("simulation unexpectedly succeeded")
