"""Adapters presenting each execution path to the conformance oracle.

A *party* is the minimal op surface the oracle replays traces against::

    plaintext_modulus
    encrypt(values)            -> ciphertext list
    add(c1, c2)                -> ciphertext list
    scalar_mul(c, scalars)     -> ciphertext list      (optional)
    decrypt(c)                 -> plaintext list       (optional)
    capabilities               -> frozenset of op tags

:class:`HeEngineParty` adapts any :class:`~repro.crypto.engine.HeEngine`
(CPU and simulated-GPU Paillier); :class:`DamgardJurikParty` wraps the
:class:`~repro.crypto.damgard_jurik.DamgardJurik` primitives (including
their binomial/discrete-log shortcuts -- the code actually under test);
:class:`MaskingParty` wraps the FLASHE-style
:class:`~repro.crypto.symmetric_he.MaskingScheme`.

The adapters also expose the ``*_batch`` method names of the engine
protocol, so the lazy fusion planner can flush expressions through them
-- which is how the fused-vs-eager conformance check runs on every
registered path, not just the Paillier engines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.crypto.damgard_jurik import DamgardJurik, DamgardJurikKeypair
from repro.crypto.engine import HeEngine
from repro.crypto.symmetric_he import MaskingScheme
from repro.mpint.primes import LimbRandom


class HeEngineParty:
    """Any :class:`HeEngine` (CPU / GPU Paillier) as a conformance party."""

    capabilities = frozenset({"encrypt", "decrypt", "add", "scalar_mul"})

    def __init__(self, engine: HeEngine):
        self.engine = engine

    @property
    def plaintext_modulus(self) -> int:
        return self.engine.public_key.n

    def encrypt(self, values: Sequence[int]) -> List[int]:
        return self.engine.encrypt_batch(list(values))

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        return self.engine.decrypt_batch(list(ciphertexts))

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return self.engine.add_batch(list(c1), list(c2))

    def scalar_mul(self, ciphertexts: Sequence[int],
                   scalars: Sequence[int]) -> List[int]:
        return self.engine.scalar_mul_batch(list(ciphertexts),
                                            list(scalars))

    # Engine-protocol aliases for the fusion planner.
    def add_batch(self, c1, c2):
        return self.add(c1, c2)

    def scalar_mul_batch(self, ciphertexts, scalars):
        return self.scalar_mul(ciphertexts, scalars)

    def sum_ciphertexts(self, ciphertexts):
        return self.engine.sum_ciphertexts(list(ciphertexts))


class DamgardJurikParty:
    """The Damgard-Jurik primitives (binomial + discrete-log paths)."""

    capabilities = frozenset({"encrypt", "decrypt", "add", "scalar_mul"})

    def __init__(self, keypair: DamgardJurikKeypair, seed: int,
                 rng: Optional[LimbRandom] = None):
        self.keypair = keypair
        self.public_key = keypair.public_key
        self.private_key = keypair.private_key
        self.rng = rng if rng is not None else LimbRandom(seed=seed)

    @property
    def plaintext_modulus(self) -> int:
        return self.public_key.plaintext_modulus

    def encrypt(self, values: Sequence[int]) -> List[int]:
        out = []
        for value in values:
            r = self.rng.random_unit(self.public_key.n)
            out.append(DamgardJurik.raw_encrypt(self.public_key, value,
                                                r=r))
        return out

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        return [DamgardJurik.raw_decrypt(self.private_key, c)
                for c in ciphertexts]

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return [DamgardJurik.raw_add(self.public_key, x, y)
                for x, y in zip(c1, c2)]

    def scalar_mul(self, ciphertexts: Sequence[int],
                   scalars: Sequence[int]) -> List[int]:
        return [DamgardJurik.raw_scalar_mul(self.public_key, c, k)
                for c, k in zip(ciphertexts, scalars)]

    # Engine-protocol aliases for the fusion planner.
    def add_batch(self, c1, c2):
        if len(c1) != len(c2):
            raise ValueError("ciphertext batches differ in length")
        return self.add(c1, c2)

    def scalar_mul_batch(self, ciphertexts, scalars):
        if len(ciphertexts) != len(scalars):
            raise ValueError("ciphertext and scalar batches differ in length")
        return self.scalar_mul(ciphertexts, scalars)

    def sum_ciphertexts(self, ciphertexts):
        values = list(ciphertexts)
        if not values:
            raise ValueError("cannot sum an empty ciphertext batch")
        total = values[0]
        for value in values[1:]:
            total = DamgardJurik.raw_add(self.public_key, total, value)
        return total


class MaskingParty:
    """The FLASHE-style symmetric masking scheme as a conformance party.

    Each ``encrypt`` call takes the next ring slot, mirroring one more
    participant joining the round; decryption is only meaningful on the
    sum of all ``num_parties`` ciphertexts, hence ``ring_decrypt``
    *instead of* the ordinary ``decrypt`` capability (round-trip traces
    would otherwise run here and see masked residues).
    """

    capabilities = frozenset({"encrypt", "add", "ring_decrypt"})

    def __init__(self, scheme: MaskingScheme):
        self.scheme = scheme
        self._next_party = 0
        self._modulus = 1 << scheme.bits

    @property
    def plaintext_modulus(self) -> int:
        return self._modulus

    def encrypt(self, values: Sequence[int]) -> List[int]:
        party = self._next_party
        self._next_party += 1
        return self.scheme.encrypt(list(values), round_index=0,
                                   party=party)

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return [(x + y) % self._modulus for x, y in zip(c1, c2)]

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        return [c % self._modulus for c in ciphertexts]

    # Engine-protocol aliases (adds only; no scalar_mul capability).
    def add_batch(self, c1, c2):
        if len(c1) != len(c2):
            raise ValueError("ciphertext batches differ in length")
        return self.add(c1, c2)

    def sum_ciphertexts(self, ciphertexts):
        values = list(ciphertexts)
        if not values:
            raise ValueError("cannot sum an empty ciphertext batch")
        total = values[0]
        for value in values[1:]:
            total = (total + value) % self._modulus
        return total
