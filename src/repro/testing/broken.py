"""A deliberately broken engine: the oracle's canary.

:class:`BrokenMontgomeryEngine` is a CPU Paillier engine whose scalar
multiplications run through the real sliding-window/Montgomery kernel --
but with the precomputed constant ``N' = -N^-1 mod R`` flipped in its
lowest bit.  The corrupted reductions stay *inside* the ring (values
remain < n^2 and decrypt without error), which is precisely the class of
bug plain round-trip tests miss and the bit-identity oracle catches on
the first scalar_mul op.

This is a demonstration fixture, not production code: the conformance
suite asserts that :func:`repro.testing.conformance.replay` raises
:class:`~repro.testing.conformance.ConformanceFailure` for it while all
healthy engines pass the same traces.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.cpu_engine import CpuPaillierEngine
from repro.mpint.montgomery import MontgomeryContext
from repro.mpint.modexp import sliding_window_pow


def corrupt_context(modulus: int) -> MontgomeryContext:
    """A :class:`MontgomeryContext` with a single-bit-flipped ``N'``.

    ``N'`` feeds Algorithm 1's quotient estimate ``q = (t mod R) * N'
    mod R``; one wrong bit silently produces a value congruent to the
    wrong residue class -- no exception, just wrong ciphertexts.
    """
    ctx = MontgomeryContext(modulus)
    object.__setattr__(ctx, "n_prime", ctx.n_prime ^ 1)
    return ctx


class BrokenMontgomeryEngine(CpuPaillierEngine):
    """CPU Paillier with a corrupted Montgomery constant in scalar_mul."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._broken_ctx = corrupt_context(self.public_key.n_squared)

    def scalar_mul_batch(self, ciphertexts: Sequence[int],
                         scalars: Sequence[int]) -> List[int]:
        if len(ciphertexts) != len(scalars):
            raise ValueError(
                "ciphertext and scalar batches differ in length")
        results = [
            sliding_window_pow(c, k, self._broken_ctx) % \
            self.public_key.n_squared
            for c, k in zip(ciphertexts, scalars)
        ]
        self.report.scalar_muls += len(ciphertexts)
        return results


def broken_conformance_factory(trace):
    """Factory mirroring the healthy CPU path but with the broken engine.

    Registered under no name on purpose -- the suite builds it directly
    so the broken engine never pollutes :func:`conformance_matrix`.
    """
    from repro.crypto.keys import generate_paillier_keypair
    from repro.mpint.primes import LimbRandom
    from repro.testing.conformance import ConformancePair
    from repro.testing.parties import HeEngineParty
    from repro.testing.reference import PaillierReference
    keypair = generate_paillier_keypair(
        trace.key_bits, rng=LimbRandom(seed=trace.seed))
    engine = BrokenMontgomeryEngine(keypair,
                                    rng=LimbRandom(seed=trace.seed + 1))
    reference = PaillierReference(keypair, seed=trace.seed + 1)
    return ConformancePair(party=HeEngineParty(engine),
                           reference=reference)
