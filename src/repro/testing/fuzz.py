"""Structured fuzzer for the FLT2 / FLT3 / FLBP wire formats and the WAL.

Seeded mutation of valid frames -- bit flips, truncation, extension,
length-field lies, fingerprint swaps, magic/version tampering,
FLT3-specific codec-block attacks (codec-id lies, codec-parameter
corruption, sparse-pattern lies: out-of-range / duplicate / unsorted
indices), and WAL-specific CRC lies and record splices -- with a strict
two-sided oracle on every case:

- a decoder may **reject** the mutant, but only with a *typed* error
  (:class:`~repro.federation.serialization.FrameError` or its
  ``ValueError`` family, including
  :class:`~repro.tensor.meta.KeyMismatchError`); any other exception is
  a **crash** finding;
- a decoder may **accept** the mutant, but then canonical
  re-serialization must reproduce the mutated bytes exactly -- the
  mutant was a genuinely valid frame.  An accepted frame that does not
  round-trip is a **silent mis-decode** finding: the decoder invented an
  interpretation the encoder would never produce.  For WAL images the
  accept side covers torn-tail trimming: replay may drop an incomplete
  final record, but the records it keeps must re-encode byte-exactly
  into the consumed prefix.

Determinism: the whole campaign derives from one seed (ints directly;
strings such as ``"ci"`` are hashed), so a finding's ``(seed, case)``
pair reproduces the exact mutant bytes in a fresh process.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.federation.serialization import (
    FrameError,
    TENSOR_HEADER,
    TENSOR_MAGIC,
    deserialize_packed,
    deserialize_tensor,
    serialize_packed,
    serialize_tensor,
)
from repro.federation.wal import (
    RECORD_HEADER,
    RECORD_KINDS,
    WAL_MAGIC,
    WalRecord,
    encode_record,
    replay_wal,
)
from repro.quantization.encoding import QuantizationScheme
from repro.tensor.cipher import CipherTensor
from repro.tensor.meta import TensorMeta

#: Mutation strategy names, weighted uniformly per case.
MUTATIONS = (
    "bit_flip",          # one random bit anywhere in the frame
    "header_bit_flip",   # one random bit inside the header
    "truncate",          # cut the frame at a random offset
    "extend",            # append random bytes
    "length_lie",        # overwrite a count/width field with a lie
    "fingerprint_swap",  # swap in a different (valid-shape) fingerprint
    "magic_swap",        # replace the magic with another format's/garbage
    "version_bump",      # change the version byte
    "slice_scramble",    # overwrite a random slice with random bytes
    "crc_lie",           # WAL: overwrite one record's CRC field
    "record_splice",     # WAL: duplicate or delete one record frame
    "codec_id_lie",      # FLT3: rewrite the codec id / its length byte
    "codec_param_corrupt",  # FLT3: corrupt one codec parameter or count
    "sparse_index_lie",  # FLT3: out-of-range/duplicate/unsorted pattern
)


def resolve_seed(seed: Union[int, str]) -> int:
    """Ints pass through; strings (e.g. ``"ci"``) hash deterministically."""
    if isinstance(seed, int):
        return seed
    digest = hashlib.sha256(seed.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class FuzzFinding:
    """One oracle violation; carries everything needed to reproduce."""

    kind: str  # "crash" | "silent_misdecode"
    case_index: int
    mutation: str
    format: str
    detail: str
    blob_hex: str

    def __str__(self) -> str:
        return (f"[{self.kind}] case {self.case_index} "
                f"({self.format}, {self.mutation}): {self.detail}\n"
                f"  blob: {self.blob_hex}")


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    seed: int
    cases: int = 0
    rejected: int = 0
    accepted: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    by_mutation: Dict[str, int] = field(default_factory=dict)
    by_format: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        lines = [
            f"fuzz: {self.cases} cases, seed {self.seed}: "
            f"{self.rejected} typed rejections, {self.accepted} valid "
            f"round-trips, {len(self.findings)} findings",
        ]
        for name in sorted(self.by_mutation):
            lines.append(f"  {name:16s} {self.by_mutation[name]}")
        for finding in self.findings:
            lines.append(str(finding))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Corpus: valid frames the mutations start from.
# ----------------------------------------------------------------------

def _tensor_frame(rng: random.Random) -> Tuple[str, bytes, int]:
    """A valid legacy FLT2 frame with random (but consistent) geometry."""
    capacity = rng.choice([1, 1, 3, 4])
    count = rng.randrange(0, 9)
    num_words = 0 if count == 0 else -(-count // capacity)
    width = rng.choice([8, 16, 32])
    words = [rng.getrandbits(8 * width - 3) for _ in range(num_words)]
    fingerprint = bytes(rng.getrandbits(8) for _ in range(16))
    meta = TensorMeta(
        key_fingerprint=fingerprint,
        nominal_bits=rng.choice([1024, 2048]),
        physical_bits=8 * width // 2,
        scheme=QuantizationScheme(alpha=1.0,
                                  r_bits=rng.choice([16, 30]),
                                  num_parties=rng.randrange(1, 9)),
        capacity=capacity,
        shape=(count,),
        count=count,
        summands=rng.randrange(1, 5),
        packed=capacity > 1,
    )
    tensor = CipherTensor(meta, words=words)
    frame = serialize_tensor(tensor, ciphertext_bytes=width, version=2)
    return "tensor", frame, width


def _tensor3_frame(rng: random.Random) -> Tuple[str, bytes, int]:
    """A valid FLT3 frame under a random registered codec."""
    scheme = QuantizationScheme(alpha=1.0,
                                r_bits=rng.choice([16, 30]),
                                num_parties=rng.randrange(1, 9))
    capacity = rng.choice([1, 2, 3, 4])
    codec = rng.choice(["dense", "interleave", "sparse"])
    if codec == "dense":
        count = rng.randrange(0, 9)
        params: Tuple[int, ...] = ()
    elif codec == "interleave":
        count = rng.randrange(0, 9)
        params = (scheme.overflow_bits + rng.choice([0, 4, 8]),)
    else:
        count = rng.randrange(1, 9)
        nnz = rng.randrange(0, count + 1)
        indices = sorted(rng.sample(range(count), nnz))
        params = (rng.choice([4, 8, 12]), *indices)
    width = rng.choice([8, 16, 32])
    fingerprint = bytes(rng.getrandbits(8) for _ in range(16))
    meta = TensorMeta(
        key_fingerprint=fingerprint,
        nominal_bits=rng.choice([1024, 2048]),
        physical_bits=8 * width // 2,
        scheme=scheme,
        capacity=capacity,
        shape=(count,),
        count=count,
        summands=rng.randrange(1, 5),
        packed=capacity > 1,
        codec=codec,
        codec_params=params,
    )
    words = [rng.getrandbits(8 * width - 3)
             for _ in range(meta.num_words)]
    tensor = CipherTensor(meta, words=words)
    frame = serialize_tensor(tensor, ciphertext_bytes=width, version=3)
    return "tensor3", frame, width


def _packed_frame(rng: random.Random) -> Tuple[str, bytes, int]:
    """A valid FLBP frame with random count and width."""
    width = rng.choice([4, 8, 16, 32])
    count = rng.randrange(0, 17)
    words = [rng.getrandbits(8 * width - 1) for _ in range(count)]
    return "packed", serialize_packed(words, width), width


def _wal_frame(rng: random.Random) -> Tuple[str, bytes, int]:
    """A valid WAL image: magic plus 1-4 framed records."""
    frames = []
    for _ in range(rng.randrange(1, 5)):
        kind = rng.choice(RECORD_KINDS)
        payload = {}
        if rng.random() < 0.5:
            payload = {"client": f"client-{rng.randrange(8)}",
                       "frame": bytes(rng.getrandbits(8) for _ in
                                      range(rng.randrange(0, 24))).hex()}
        frames.append(encode_record(WalRecord(
            kind=kind, round_index=rng.randrange(4),
            incarnation=rng.randrange(3), payload=payload)))
    return "wal", WAL_MAGIC + b"".join(frames), 0


def _wal_extents(blob: bytes) -> List[Tuple[int, int]]:
    """(start, end) byte extents of each record in a *valid* image."""
    extents = []
    offset = len(WAL_MAGIC)
    while offset < len(blob):
        length, _crc = RECORD_HEADER.unpack(
            blob[offset:offset + RECORD_HEADER.size])
        end = offset + RECORD_HEADER.size + length
        extents.append((offset, end))
        offset = end
    return extents


def _corpus_frame(rng: random.Random,
                  corpus: str = "all") -> Tuple[str, bytes, int]:
    draw = rng.random()
    if corpus == "packing":
        # The packing-focused campaign: only tensor frames, weighted
        # toward the codec-aware v3 format.
        return _tensor_frame(rng) if draw < 0.35 else _tensor3_frame(rng)
    if draw < 0.25:
        return _tensor_frame(rng)
    if draw < 0.50:
        return _tensor3_frame(rng)
    if draw < 0.78:
        return _packed_frame(rng)
    return _wal_frame(rng)


# ----------------------------------------------------------------------
# Mutations.
# ----------------------------------------------------------------------

def _flip_bit(blob: bytes, index: int, bit: int) -> bytes:
    out = bytearray(blob)
    out[index] ^= 1 << bit
    return bytes(out)


def _codec_block_extent(blob: bytes) -> Tuple[int, int, int, int]:
    """Locate the codec block in a *valid* FLT3 frame.

    Returns ``(block_offset, id_len, params_offset, param_count)`` where
    ``params_offset`` points at the first 8-byte parameter.
    """
    offset = TENSOR_HEADER.size + 4 * blob[6]  # blob[6] is ndim
    id_len = blob[offset]
    params_at = offset + 1 + id_len
    param_count = int.from_bytes(blob[params_at:params_at + 4], "big")
    return offset, id_len, params_at + 4, param_count


def _mutate(rng: random.Random, fmt: str, blob: bytes,
            mutation: str) -> bytes:
    if fmt in ("tensor", "tensor3"):
        header_size = TENSOR_HEADER.size
    elif fmt == "wal":
        header_size = len(WAL_MAGIC) + RECORD_HEADER.size
    else:
        header_size = 12
    if mutation == "bit_flip" and blob:
        return _flip_bit(blob, rng.randrange(len(blob)), rng.randrange(8))
    if mutation == "header_bit_flip":
        limit = min(header_size, len(blob))
        return _flip_bit(blob, rng.randrange(limit), rng.randrange(8))
    if mutation == "truncate":
        return blob[:rng.randrange(len(blob))] if blob else blob
    if mutation == "extend":
        extra = bytes(rng.getrandbits(8)
                      for _ in range(rng.randrange(1, 40)))
        return blob + extra
    if mutation == "length_lie":
        # Overwrite one of the count / width fields with a lying value.
        if fmt in ("tensor", "tensor3"):
            offset = rng.choice([8, 20, 24])  # count / num_words / width
        elif fmt == "wal":
            extents = _wal_extents(blob)
            offset = rng.choice(extents)[0]   # a record's length field
        else:
            offset = rng.choice([4, 8])       # count / width
        lie = rng.choice([0, 1, 0xFF, 0xFFFF, 0x7FFFFFFF,
                          rng.getrandbits(31)])
        out = bytearray(blob)
        out[offset:offset + 4] = lie.to_bytes(4, "big")
        return bytes(out)
    if mutation == "fingerprint_swap" and fmt in ("tensor", "tensor3"):
        out = bytearray(blob)
        out[48:64] = bytes(rng.getrandbits(8) for _ in range(16))
        return bytes(out)
    if mutation == "magic_swap":
        other = rng.choice([b"FLBP", b"FLT2", b"FLT3", b"FLT1",
                            b"\x00\x00\x00\x00",
                            bytes(rng.getrandbits(8) for _ in range(4))])
        return other + blob[4:]
    if mutation == "version_bump" and fmt in ("tensor", "tensor3"):
        out = bytearray(blob)
        out[4] = rng.choice([0, 1, 2, 3, 0xFF])
        return bytes(out)
    if mutation == "codec_id_lie" and fmt == "tensor3":
        offset, id_len, _params_at, _count = _codec_block_extent(blob)
        out = bytearray(blob)
        if rng.random() < 0.5:
            # Rewrite the id in place (same length, so the block still
            # parses): random lowercase ascii, occasionally a *real*
            # codec name that contradicts the parameters.
            real = [c for c in (b"dense", b"sparse") if len(c) == id_len]
            if real and rng.random() < 0.5:
                lie = rng.choice(real)
            else:
                lie = bytes(rng.randrange(97, 123) for _ in range(id_len))
            out[offset + 1:offset + 1 + id_len] = lie
        else:
            # Lie about the id length itself.
            out[offset] = rng.choice([0, id_len + 1, 0xFF])
        return bytes(out)
    if mutation == "codec_param_corrupt" and fmt == "tensor3":
        offset, _id_len, params_at, count = _codec_block_extent(blob)
        out = bytearray(blob)
        if count and rng.random() < 0.7:
            slot = rng.randrange(count)
            lie = rng.choice([0, 0xFF, 0xFFFFFFFF,
                              rng.getrandbits(63)])
            out[params_at + 8 * slot:params_at + 8 * (slot + 1)] = \
                lie.to_bytes(8, "big")
        else:
            # Lie about the parameter count.
            out[params_at - 4:params_at] = rng.choice(
                [0, 1, count + 1, 0x7FFFFFFF]).to_bytes(4, "big")
        return bytes(out)
    if mutation == "sparse_index_lie" and fmt == "tensor3":
        offset, id_len, params_at, count = _codec_block_extent(blob)
        is_sparse = blob[offset + 1:offset + 1 + id_len] == b"sparse"
        if is_sparse and count >= 2:  # params[0] is the width
            out = bytearray(blob)
            indices = count - 1
            attack = rng.choice(["out_of_range", "duplicate", "unsorted"])
            first = params_at + 8  # first pattern index
            if attack == "out_of_range":
                slot = rng.randrange(indices)
                lie = int.from_bytes(blob[8:12], "big") + rng.randrange(
                    1, 1 << 16)  # header count field + offset
                out[first + 8 * slot:first + 8 * (slot + 1)] = \
                    lie.to_bytes(8, "big")
            elif attack == "duplicate" and indices >= 2:
                slot = rng.randrange(indices - 1)
                out[first + 8 * (slot + 1):first + 8 * (slot + 2)] = \
                    blob[first + 8 * slot:first + 8 * (slot + 1)]
            elif indices >= 2:  # unsorted: swap two adjacent indices
                slot = rng.randrange(indices - 1)
                a = blob[first + 8 * slot:first + 8 * (slot + 1)]
                b = blob[first + 8 * (slot + 1):first + 8 * (slot + 2)]
                out[first + 8 * slot:first + 8 * (slot + 1)] = b
                out[first + 8 * (slot + 1):first + 8 * (slot + 2)] = a
            return bytes(out)
    if mutation == "crc_lie" and fmt == "wal":
        start, _end = rng.choice(_wal_extents(blob))
        out = bytearray(blob)
        out[start + 4:start + 8] = rng.getrandbits(32).to_bytes(4, "big")
        return bytes(out)
    if mutation == "record_splice" and fmt == "wal":
        extents = _wal_extents(blob)
        start, end = rng.choice(extents)
        if rng.random() < 0.5:
            return blob + blob[start:end]     # duplicate a record frame
        return blob[:start] + blob[end:]      # delete a record frame
    if mutation == "slice_scramble" and blob:
        start = rng.randrange(len(blob))
        length = rng.randrange(1, min(16, len(blob) - start) + 1)
        out = bytearray(blob)
        out[start:start + length] = bytes(rng.getrandbits(8)
                                          for _ in range(length))
        return bytes(out)
    # Mutation not applicable to this format: fall back to a bit flip.
    if blob:
        return _flip_bit(blob, rng.randrange(len(blob)), rng.randrange(8))
    return blob


# ----------------------------------------------------------------------
# The oracle.
# ----------------------------------------------------------------------

def _classify(fmt: str, mutant: bytes, original: bytes,
              case_index: int, mutation: str) -> Optional[FuzzFinding]:
    """Apply the two-sided oracle to one mutant; None means clean."""
    try:
        if fmt in ("tensor", "tensor3"):
            tensor = deserialize_tensor(mutant)
            width = int.from_bytes(mutant[24:28], "big")
            # Canonical re-serialization must target the version the
            # accepted mutant actually carries (a mutation may have
            # rewritten the magic), so sniff it rather than trusting
            # the corpus label.
            version = 2 if mutant[:4] == TENSOR_MAGIC else 3
            canonical = serialize_tensor(tensor, ciphertext_bytes=width,
                                         version=version)
        elif fmt == "wal":
            replayed = replay_wal(mutant)
            # Accepted: the consumed prefix must re-encode byte-exactly
            # (torn-tail trimming drops *only* the unconsumed suffix).
            canonical = b"" if replayed.consumed_bytes == 0 else (
                WAL_MAGIC + b"".join(encode_record(r)
                                     for r in replayed.records))
            mutant = mutant[:replayed.consumed_bytes] \
                if replayed.torn_tail else mutant
        else:
            words = deserialize_packed(mutant)
            width = int.from_bytes(mutant[8:12], "big")
            canonical = serialize_packed(words, width)
    except ValueError:
        # FrameError / KeyMismatchError / plain ValueError: the typed
        # rejection family.  Clean.
        return None
    except Exception as error:  # noqa: BLE001 -- the point of the fuzzer
        return FuzzFinding(
            kind="crash", case_index=case_index, mutation=mutation,
            format=fmt,
            detail=f"{type(error).__name__}: {error}",
            blob_hex=mutant.hex())
    if canonical != mutant:
        return FuzzFinding(
            kind="silent_misdecode", case_index=case_index,
            mutation=mutation, format=fmt,
            detail=(f"decode accepted a non-canonical frame "
                    f"(re-serializes to {len(canonical)} bytes, mutant "
                    f"is {len(mutant)})"),
            blob_hex=mutant.hex())
    return None


def run_fuzz(cases: int = 500, seed: Union[int, str] = 0,
             on_case: Optional[Callable[[int], None]] = None,
             corpus: str = "all") -> FuzzReport:
    """Run a fuzz campaign; deterministic in ``(cases, seed, corpus)``.

    Args:
        cases: Mutants to generate and classify.
        seed: Campaign seed; strings are hashed (``--seed ci``).
        on_case: Optional per-case progress hook.
        corpus: ``"all"`` draws every format; ``"packing"`` restricts
            to FLT2/FLT3 tensor frames (the codec-focused campaign).
    """
    if corpus not in ("all", "packing"):
        raise ValueError(f"unknown fuzz corpus {corpus!r}")
    resolved = resolve_seed(seed)
    rng = random.Random(resolved)
    report = FuzzReport(seed=resolved)
    for case_index in range(cases):
        fmt, blob, _width = _corpus_frame(rng, corpus)
        mutation = rng.choice(MUTATIONS)
        mutant = _mutate(rng, fmt, blob, mutation)
        report.cases += 1
        report.by_mutation[mutation] = \
            report.by_mutation.get(mutation, 0) + 1
        report.by_format[fmt] = report.by_format.get(fmt, 0) + 1
        finding = _classify(fmt, mutant, blob, case_index, mutation)
        if finding is not None:
            report.findings.append(finding)
        else:
            # Re-run the cheap accept/reject split for the tally.
            try:
                if fmt in ("tensor", "tensor3"):
                    deserialize_tensor(mutant)
                elif fmt == "wal":
                    replay_wal(mutant)
                else:
                    deserialize_packed(mutant)
                report.accepted += 1
            except ValueError:
                report.rejected += 1
        if on_case is not None:
            on_case(case_index)
    return report
