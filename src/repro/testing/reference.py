"""Plain-``pow()`` reference parties for the differential oracle.

Each reference implements one scheme's mathematics with nothing but
Python built-ins (``pow``, ``%``, ``hashlib``) -- deliberately *not*
importing the optimized code paths under test (CRT decryption, binomial
``(1+n)^m`` shortcuts, Montgomery/sliding-window kernels, batched GPU
launches).  Agreement between an engine and its reference is therefore
evidence about the optimized arithmetic, not a tautology.

Randomizer discipline: every reference draws its encryption randomizers
from a :class:`~repro.mpint.primes.LimbRandom` seeded identically to the
engine under test, one draw per plaintext in batch order.  That is the
contract that makes ciphertexts bit-comparable across implementations.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Sequence

from repro.mpint.primes import LimbRandom


class PaillierReference:
    """Textbook Paillier over raw integers, ``pow()`` only.

    Encryption is Eq. 3 with ``g = n + 1`` expanded literally as
    ``pow(g, m, n^2)`` (no ``1 + mn`` shortcut), decryption is the
    literal Eq. 4 ``L(c^lambda) * mu`` formula (no CRT).
    """

    capabilities = frozenset({"encrypt", "decrypt", "add", "scalar_mul"})

    def __init__(self, keypair, seed: int):
        self.public_key = keypair.public_key
        self.private_key = keypair.private_key
        self._rng = LimbRandom(seed=seed)
        n = self.public_key.n
        self._n = n
        self._n_squared = n * n
        lam = math.lcm(self.private_key.p - 1, self.private_key.q - 1)
        g_lambda = pow(self.public_key.g, lam, self._n_squared)
        self._lam = lam
        self._mu = pow((g_lambda - 1) // n, -1, n)

    @property
    def plaintext_modulus(self) -> int:
        return self._n

    def encrypt(self, values: Sequence[int]) -> List[int]:
        out = []
        for m in values:
            if not 0 <= m < self._n:
                raise ValueError(f"plaintext {m} outside [0, n)")
            r = self._rng.random_unit(self._n)
            g_m = pow(self.public_key.g, m, self._n_squared)
            out.append((g_m * pow(r, self._n, self._n_squared))
                       % self._n_squared)
        return out

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        out = []
        for c in ciphertexts:
            c_lambda = pow(c, self._lam, self._n_squared)
            out.append(((c_lambda - 1) // self._n * self._mu) % self._n)
        return out

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return [(x * y) % self._n_squared for x, y in zip(c1, c2)]

    def scalar_mul(self, ciphertexts: Sequence[int],
                   scalars: Sequence[int]) -> List[int]:
        return [pow(c, k, self._n_squared)
                for c, k in zip(ciphertexts, scalars)]


class DamgardJurikReference:
    """Textbook Damgard-Jurik, generic ``pow()`` arithmetic only.

    ``(1+n)^m`` is computed as a full modular exponentiation (not the
    binomial truncation) and the discrete-log extraction is re-derived
    independently from the Damgard-Jurik-Nielsen recurrence.
    """

    capabilities = frozenset({"encrypt", "decrypt", "add", "scalar_mul"})

    def __init__(self, keypair, seed: int):
        self.public_key = keypair.public_key
        self.private_key = keypair.private_key
        self._rng = LimbRandom(seed=seed)
        self._n = self.public_key.n
        self._s = self.public_key.s
        self._n_s = self._n ** self._s
        self._modulus = self._n ** (self._s + 1)

    @property
    def plaintext_modulus(self) -> int:
        return self._n_s

    def encrypt(self, values: Sequence[int]) -> List[int]:
        out = []
        for m in values:
            if not 0 <= m < self._n_s:
                raise ValueError(f"plaintext {m} outside [0, n^s)")
            r = self._rng.random_unit(self._n)
            g_m = pow(1 + self._n, m, self._modulus)
            out.append((g_m * pow(r, self._n_s, self._modulus))
                       % self._modulus)
        return out

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        return [self._extract(pow(c, self.private_key.d, self._modulus))
                for c in ciphertexts]

    def _extract(self, a: int) -> int:
        """Recover ``m`` from ``(1+n)^m`` via the iterative recurrence."""
        n, s = self._n, self._s
        i = 0
        for j in range(1, s + 1):
            n_j = n ** j
            t1 = ((a % n ** (j + 1)) - 1) // n
            t2 = i
            k_factorial = 1
            for k in range(2, j + 1):
                i -= 1
                k_factorial *= k
                t2 = (t2 * i) % n_j
                t1 = (t1 - t2 * pow(n, k - 1, n_j)
                      * pow(k_factorial, -1, n_j)) % n_j
            i = t1 % n_j
        return i

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return [(x * y) % self._modulus for x, y in zip(c1, c2)]

    def scalar_mul(self, ciphertexts: Sequence[int],
                   scalars: Sequence[int]) -> List[int]:
        return [pow(c, k, self._modulus)
                for c, k in zip(ciphertexts, scalars)]


class MaskingReference:
    """Independent re-derivation of the FLASHE-style ring masking.

    Re-computes the per-(round, party, index) keystream directly from
    ``hashlib.sha256`` (mirroring the published construction, not the
    module under test) and applies plain modular arithmetic.  Decryption
    is only defined on a full ring sum, where the masks cancel --
    advertised as the ``ring_decrypt`` capability.
    """

    capabilities = frozenset({"encrypt", "add", "ring_decrypt"})

    def __init__(self, key: bytes, num_parties: int, bits: int,
                 seed: int = 0):
        self.key = key
        self.num_parties = num_parties
        self.bits = bits
        self._modulus = 1 << bits
        self._next_party = 0

    @property
    def plaintext_modulus(self) -> int:
        return self._modulus

    def _stream(self, round_index: int, index: int) -> int:
        material = hashlib.sha256(
            self.key + round_index.to_bytes(8, "big")
            + index.to_bytes(8, "big")).digest()
        return int.from_bytes(material, "big") % self._modulus

    def _mask(self, party: int, index: int) -> int:
        forward = self._stream(0, party * 1_000_003 + index)
        successor = (party + 1) % self.num_parties
        backward = self._stream(0, successor * 1_000_003 + index)
        return (forward - backward) % self._modulus

    def encrypt(self, values: Sequence[int]) -> List[int]:
        party = self._next_party
        self._next_party += 1
        return [(value + self._mask(party, index)) % self._modulus
                for index, value in enumerate(values)]

    def add(self, c1: Sequence[int], c2: Sequence[int]) -> List[int]:
        return [(x + y) % self._modulus for x, y in zip(c1, c2)]

    def decrypt(self, ciphertexts: Sequence[int]) -> List[int]:
        # On a full ring sum the masks have cancelled; decryption is the
        # identity on the residues.
        return [c % self._modulus for c in ciphertexts]
