"""Typed diagnostics and the lint report they aggregate into."""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Fingerprint identifying a finding across line-number churn: the line is
#: deliberately excluded so an unrelated edit above a grandfathered finding
#: does not resurrect it from the baseline.
Fingerprint = Tuple[str, str, str]

#: Quoted identifiers inside messages (``'plain'``, ``"tenant-a"``).
_QUOTED = re.compile(r"'[^']*'|\"[^\"]*\"")

#: Rendered call paths (``(path: forward -> relay -> send())``): the
#: hop list reshuffles whenever a helper is renamed or inlined.  The
#: hops themselves contain ``()``, so the match runs greedily to the
#: last closing paren -- the path is always the message's tail.
_CALL_PATH = re.compile(r"\(path: .*\)")


def normalize_message(message: str) -> str:
    """A message with volatile identifiers stripped, for fingerprints.

    Baseline fingerprints must survive renames that do not change what
    the finding *is*: renaming a local variable rewrites the quoted
    identifier a taint message embeds, and renaming a helper rewrites
    the rendered call path, but either way it is the same grandfathered
    finding.  Both spans collapse to fixed placeholders, so only the
    rule, file, and the message's structural text identify a finding.
    """
    message = _QUOTED.sub("'<id>'", message)
    return _CALL_PATH.sub("(path: <path>)", message)


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a file:line.

    Attributes:
        rule: Rule name, e.g. ``plaintext-wire``.
        path: Posix-style display path of the offending file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: Human-readable description of the violation.
        symbol: Enclosing function/class, when known (``""`` at module
            scope).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> Fingerprint:
        """Line- and identifier-independent identity for the baseline."""
        return (self.rule, self.path, normalize_message(self.message))

    def format(self) -> str:
        """The one-line human rendering: ``path:line:col: rule: message``."""
        where = f" (in {self.symbol})" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}{where}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` are the live diagnostics (not suppressed by pragma, not
    in the baseline); ``baselined`` counts matches grandfathered by the
    baseline file; ``suppressed`` counts pragma-silenced hits.
    """

    findings: List[Diagnostic] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "findings": [d.to_json() for d in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def to_sarif(self,
                 rule_descriptions: Optional[Dict[str, str]] = None) -> str:
        """The report as a SARIF 2.1.0 log (one run, tool ``flcheck``).

        ``rule_descriptions`` supplies each rule's one-line description
        for the tool metadata; missing entries fall back to the rule id
        so the log stays schema-valid regardless.
        """
        descriptions = rule_descriptions or {}
        rule_ids = sorted(self.rules_run) or \
            sorted({d.rule for d in self.findings})
        rule_index = {rule: i for i, rule in enumerate(rule_ids)}
        rules = [{
            "id": rule,
            "name": rule,
            "shortDescription": {"text": descriptions.get(rule, rule)},
        } for rule in rule_ids]
        results = []
        for diag in self.findings:
            result = {
                "ruleId": diag.rule,
                "level": "error",
                "message": {"text": diag.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.path},
                        "region": {
                            "startLine": diag.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": diag.col + 1,
                        },
                    },
                }],
                "partialFingerprints": {
                    "flcheck/v1": "|".join(diag.fingerprint),
                },
            }
            if diag.rule in rule_index:
                result["ruleIndex"] = rule_index[diag.rule]
            if diag.symbol:
                result["locations"][0]["logicalLocations"] = [{
                    "name": diag.symbol,
                    "kind": "function",
                }]
            results.append(result)
        payload = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "flcheck",
                    "informationUri":
                        "https://example.invalid/flbooster-repro/docs/"
                        "analysis.md",
                    "rules": rules,
                }},
                "columnKind": "utf16CodeUnits",
                "results": results,
            }],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format(self) -> str:
        """Multi-line human rendering."""
        lines = [d.format() for d in self.findings]
        summary = (f"flcheck: {len(self.findings)} finding(s) in "
                   f"{self.files_scanned} file(s)")
        extras = []
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.suppressed:
            extras.append(f"{self.suppressed} pragma-suppressed")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)
