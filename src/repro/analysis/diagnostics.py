"""Typed diagnostics and the lint report they aggregate into."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Fingerprint identifying a finding across line-number churn: the line is
#: deliberately excluded so an unrelated edit above a grandfathered finding
#: does not resurrect it from the baseline.
Fingerprint = Tuple[str, str, str]


@dataclass(frozen=True)
class Diagnostic:
    """One finding, anchored to a file:line.

    Attributes:
        rule: Rule name, e.g. ``plaintext-wire``.
        path: Posix-style display path of the offending file.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        message: Human-readable description of the violation.
        symbol: Enclosing function/class, when known (``""`` at module
            scope).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> Fingerprint:
        """Line-independent identity used by the baseline file."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """The one-line human rendering: ``path:line:col: rule: message``."""
        where = f" (in {self.symbol})" if self.symbol else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}{where}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` are the live diagnostics (not suppressed by pragma, not
    in the baseline); ``baselined`` counts matches grandfathered by the
    baseline file; ``suppressed`` counts pragma-silenced hits.
    """

    findings: List[Diagnostic] = field(default_factory=list)
    baselined: int = 0
    suppressed: int = 0
    files_scanned: int = 0
    rules_run: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        payload = {
            "version": 1,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "rules_run": list(self.rules_run),
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "findings": [d.to_json() for d in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format(self) -> str:
        """Multi-line human rendering."""
        lines = [d.format() for d in self.findings]
        summary = (f"flcheck: {len(self.findings)} finding(s) in "
                   f"{self.files_scanned} file(s)")
        extras = []
        if self.baselined:
            extras.append(f"{self.baselined} baselined")
        if self.suppressed:
            extras.append(f"{self.suppressed} pragma-suppressed")
        if extras:
            summary += f" ({', '.join(extras)})"
        lines.append(summary)
        return "\n".join(lines)
