"""The flcheck engine: file discovery, pragmas, baseline, rule driving.

Suppression workflow, in precedence order:

1. **Pragma** -- ``# flcheck: allow[rule-name]`` on the *anchor line* of a
   finding silences that rule there forever; use it for deliberate,
   commented exceptions (e.g. the WAL's decrypt-commit record).  Several
   rules may be listed comma-separated.
2. **Baseline** -- ``flcheck-baseline.json`` grandfathers existing
   findings by (rule, path, message) fingerprint so a new rule can land
   before the codebase is clean.  ``--update-baseline`` rewrites it; the
   repo's committed baseline is empty and should stay that way.

This module reads the wall clock (``time.monotonic``) only to enforce the
CI ``--max-seconds`` bound; it is whitelisted in the determinism rule
because lint never runs inside a simulation.
"""

from __future__ import annotations

import ast
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.base import RULE_REGISTRY, Rule
from repro.analysis.diagnostics import Diagnostic, Fingerprint, LintReport

#: ``# flcheck: allow[rule-a, rule-b]``
_PRAGMA_RE = re.compile(r"#\s*flcheck:\s*allow\[([^\]]+)\]")

#: Directories never scanned (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}


class TimeBudgetExceeded(RuntimeError):
    """Raised when a run overruns its ``--max-seconds`` bound."""


@dataclass
class ModuleUnit:
    """One parsed module handed to every rule.

    Attributes:
        path: Filesystem path of the module.
        display_path: Posix-style path used in diagnostics (relative to
            the scan root's parent when possible).
        source: Raw text.
        tree: Parsed AST.
        pragmas: line -> set of rule names allowed on that line.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    def allows(self, rule: str, line: int) -> bool:
        allowed = self.pragmas.get(line)
        return bool(allowed) and (rule in allowed or "all" in allowed)


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            names = {part.strip() for part in match.group(1).split(",")}
            pragmas[lineno] = {name for name in names if name}
    return pragmas


def load_module(path: Path, display_path: str) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleUnit(path=path, display_path=display_path, source=source,
                      tree=tree, pragmas=_parse_pragmas(source))


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through), sorted."""
    found: List[Path] = []
    for path in paths:
        if path.is_file():
            found.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in _SKIP_DIRS for part in candidate.parts):
                found.append(candidate)
    return found


def _display_path(path: Path, roots: Sequence[Path]) -> str:
    """Diagnostic path: relative to the innermost root's parent."""
    resolved = path.resolve()
    best: Optional[str] = None
    for root in roots:
        anchor = (root if root.is_dir() else root.parent).resolve().parent
        try:
            relative = resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
        if best is None or len(relative) < len(best):
            best = relative
    return best if best is not None else path.as_posix()


# ---------------------------------------------------------------------------
# Baseline file.
# ---------------------------------------------------------------------------

def load_baseline(path: Path) -> Set[Fingerprint]:
    """Fingerprints grandfathered by ``path`` (missing file -> empty)."""
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return {(entry["rule"], entry["path"], entry["message"])
            for entry in payload.get("findings", [])}


def write_baseline(path: Path, findings: Iterable[Diagnostic]) -> None:
    """Rewrite ``path`` to grandfather exactly ``findings``."""
    entries = sorted({d.fingerprint for d in findings})
    payload = {
        "version": 1,
        "findings": [{"rule": rule, "path": file_path, "message": message}
                     for rule, file_path, message in entries],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------

def _resolve_rules(rule_filter: Optional[Sequence[str]]) -> List[Rule]:
    if rule_filter:
        unknown = sorted(set(rule_filter) - set(RULE_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(RULE_REGISTRY))}")
        names = list(dict.fromkeys(rule_filter))
    else:
        names = sorted(RULE_REGISTRY)
    return [RULE_REGISTRY[name]() for name in names]


def run_lint(paths: Sequence[Path],
             rule_filter: Optional[Sequence[str]] = None,
             baseline: Optional[Set[Fingerprint]] = None,
             max_seconds: Optional[float] = None) -> LintReport:
    """Run the selected rules over every module under ``paths``.

    Args:
        paths: Files or directories to scan.
        rule_filter: Rule names to run; all registered rules when omitted.
        baseline: Grandfathered fingerprints (see :func:`load_baseline`).
        max_seconds: Abort with :class:`TimeBudgetExceeded` when the scan
            runs longer than this.

    Returns:
        A :class:`LintReport`; ``report.findings`` holds only live (not
        suppressed, not baselined) diagnostics, sorted by location.
    """
    rules = _resolve_rules(rule_filter)
    baseline = baseline or set()
    started = time.monotonic()
    report = LintReport(rules_run=[rule.name for rule in rules])

    for path in discover_files(paths):
        if max_seconds is not None and \
                time.monotonic() - started > max_seconds:
            raise TimeBudgetExceeded(
                f"flcheck exceeded its {max_seconds:.0f}s budget after "
                f"{report.files_scanned} files")
        display = _display_path(path, paths)
        try:
            unit = load_module(path, display)
        except SyntaxError as exc:
            report.findings.append(Diagnostic(
                rule="parse-error", path=display,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
            report.files_scanned += 1
            continue
        report.files_scanned += 1
        for rule in rules:
            for diag in rule.check(unit):
                if unit.allows(diag.rule, diag.line):
                    report.suppressed += 1
                elif diag.fingerprint in baseline:
                    report.baselined += 1
                else:
                    report.findings.append(diag)

    report.findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    report.elapsed_seconds = time.monotonic() - started
    return report
