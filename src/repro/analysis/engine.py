"""The flcheck engine: file discovery, pragmas, baseline, rule driving.

Suppression workflow, in precedence order:

1. **Pragma** -- ``# flcheck: allow[rule-name]`` on the *anchor line* of a
   finding silences that rule there forever; use it for deliberate,
   commented exceptions (e.g. the WAL's decrypt-commit record).  Several
   rules may be listed comma-separated.
2. **Baseline** -- ``flcheck-baseline.json`` grandfathers existing
   findings by (rule, path, message) fingerprint so a new rule can land
   before the codebase is clean.  ``--update-baseline`` rewrites it; the
   repo's committed baseline is empty and should stay that way.

This module reads the wall clock (``time.monotonic``) only to enforce the
CI ``--max-seconds`` bound; it is whitelisted in the determinism rule
because lint never runs inside a simulation.
"""

from __future__ import annotations

import ast
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.base import RULE_REGISTRY, Rule
from repro.analysis.diagnostics import (
    Diagnostic,
    Fingerprint,
    LintReport,
    normalize_message,
)

#: ``# flcheck: allow[rule-a, rule-b]``
_PRAGMA_RE = re.compile(r"#\s*flcheck:\s*allow\[([^\]]+)\]")

#: Directories never scanned (caches, VCS internals).
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache"}


class TimeBudgetExceeded(RuntimeError):
    """Raised when a run overruns its ``--max-seconds`` bound."""


@dataclass
class ModuleUnit:
    """One parsed module handed to every rule.

    Attributes:
        path: Filesystem path of the module.
        display_path: Posix-style path used in diagnostics (relative to
            the scan root's parent when possible).
        source: Raw text.
        tree: Parsed AST.
        pragmas: line -> set of rule names allowed on that line.
    """

    path: Path
    display_path: str
    source: str
    tree: ast.Module
    pragmas: Dict[int, Set[str]] = field(default_factory=dict)

    def allows(self, rule: str, line: int) -> bool:
        allowed = self.pragmas.get(line)
        return bool(allowed) and (rule in allowed or "all" in allowed)


def _parse_pragmas(source: str) -> Dict[int, Set[str]]:
    pragmas: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            names = {part.strip() for part in match.group(1).split(",")}
            pragmas[lineno] = {name for name in names if name}
    return pragmas


def load_module(path: Path, display_path: str) -> ModuleUnit:
    """Parse one file into a :class:`ModuleUnit` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleUnit(path=path, display_path=display_path, source=source,
                      tree=tree, pragmas=_parse_pragmas(source))


#: resolved path -> (mtime_ns, display_path, unit); lets ``--changed-only``
#: (and any repeated in-process run) rebuild the whole-program call graph
#: without re-parsing unchanged modules.
_UNIT_CACHE: Dict[Path, Tuple[int, str, ModuleUnit]] = {}


def load_module_cached(path: Path, display_path: str) -> ModuleUnit:
    """:func:`load_module` behind an mtime-keyed cache."""
    resolved = path.resolve()
    mtime = resolved.stat().st_mtime_ns
    cached = _UNIT_CACHE.get(resolved)
    if cached is not None and cached[0] == mtime and \
            cached[1] == display_path:
        return cached[2]
    unit = load_module(path, display_path)
    _UNIT_CACHE[resolved] = (mtime, display_path, unit)
    return unit


def discover_files(paths: Sequence[Path],
                   excludes: Sequence[str] = ()) -> List[Path]:
    """All ``.py`` files under ``paths`` (files pass through), sorted.

    ``excludes`` names directories (path components) to skip, on top of
    the always-skipped cache/VCS directories -- e.g. ``fixtures`` keeps
    the deliberately violating test corpora out of a self-lint.
    """
    skip = _SKIP_DIRS | set(excludes)
    found: List[Path] = []
    for path in paths:
        if path.is_file():
            found.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            if not any(part in skip for part in candidate.parts):
                found.append(candidate)
    return found


def _display_path(path: Path, roots: Sequence[Path]) -> str:
    """Diagnostic path: relative to the innermost root's parent."""
    resolved = path.resolve()
    best: Optional[str] = None
    for root in roots:
        anchor = (root if root.is_dir() else root.parent).resolve().parent
        try:
            relative = resolved.relative_to(anchor).as_posix()
        except ValueError:
            continue
        if best is None or len(relative) < len(best):
            best = relative
    return best if best is not None else path.as_posix()


# ---------------------------------------------------------------------------
# Baseline file.
# ---------------------------------------------------------------------------

def load_baseline(path: Path) -> Set[Fingerprint]:
    """Fingerprints grandfathered by ``path`` (missing file -> empty).

    Messages are re-normalized on load so baselines written before the
    identifier-stripping fingerprint landed keep matching.
    """
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return {(entry["rule"], entry["path"],
             normalize_message(entry["message"]))
            for entry in payload.get("findings", [])}


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss."""
    try:
        handle = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover -- platform without dir fds
        return
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


def write_baseline(path: Path, findings: Iterable[Diagnostic]) -> None:
    """Rewrite ``path`` to grandfather exactly ``findings``.

    Written atomically (tmp file + fsync + rename + directory fsync,
    the same discipline as ``TrainingCheckpoint.save``) so an
    interrupted ``--update-baseline`` can never leave a truncated
    baseline that silently un-grandfathers the whole tree.
    """
    entries = sorted({d.fingerprint for d in findings})
    payload = {
        "version": 1,
        "findings": [{"rule": rule, "path": file_path, "message": message}
                     for rule, file_path, message in entries],
    }
    temporary = path.with_suffix(path.suffix + ".tmp")
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    temporary.replace(path)
    _fsync_directory(path.parent)


# ---------------------------------------------------------------------------
# The runner.
# ---------------------------------------------------------------------------

def _resolve_rules(rule_filter: Optional[Sequence[str]]) -> List[Rule]:
    if rule_filter:
        unknown = sorted(set(rule_filter) - set(RULE_REGISTRY))
        if unknown:
            raise ValueError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(RULE_REGISTRY))}")
        names = list(dict.fromkeys(rule_filter))
    else:
        names = sorted(RULE_REGISTRY)
    return [RULE_REGISTRY[name]() for name in names]


def run_lint(paths: Sequence[Path],
             rule_filter: Optional[Sequence[str]] = None,
             baseline: Optional[Set[Fingerprint]] = None,
             max_seconds: Optional[float] = None,
             excludes: Sequence[str] = (),
             changed_paths: Optional[Set[Path]] = None) -> LintReport:
    """Run the selected rules over every module under ``paths``.

    Args:
        paths: Files or directories to scan.
        rule_filter: Rule names to run; all registered rules when omitted.
        baseline: Grandfathered fingerprints (see :func:`load_baseline`).
        max_seconds: Abort with :class:`TimeBudgetExceeded` when the scan
            runs longer than this.
        excludes: Directory names skipped during discovery.
        changed_paths: When given (``--changed-only``), findings are
            restricted to these resolved files -- but every discovered
            module is still parsed (through the mtime cache) so the
            whole-program call graph behind the interprocedural rules
            spans the full tree.

    Returns:
        A :class:`LintReport`; ``report.findings`` holds only live (not
        suppressed, not baselined) diagnostics, sorted by location.
    """
    rules = _resolve_rules(rule_filter)
    baseline = baseline or set()
    started = time.monotonic()
    report = LintReport(rules_run=[rule.name for rule in rules])

    def check_budget() -> None:
        if max_seconds is not None and \
                time.monotonic() - started > max_seconds:
            raise TimeBudgetExceeded(
                f"flcheck exceeded its {max_seconds:.0f}s budget after "
                f"{report.files_scanned} files")

    # Parse everything up front: per-module rules stream over the units,
    # project rules need all of them at once.
    units: Dict[str, ModuleUnit] = {}
    selected: Set[str] = set()
    for path in discover_files(paths, excludes):
        check_budget()
        display = _display_path(path, paths)
        try:
            unit = load_module_cached(path, display)
        except SyntaxError as exc:
            report.findings.append(Diagnostic(
                rule="parse-error", path=display,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}"))
            report.files_scanned += 1
            continue
        report.files_scanned += 1
        units[display] = unit
        if changed_paths is None or path.resolve() in changed_paths:
            selected.add(display)

    def admit(unit: ModuleUnit, diag: Diagnostic) -> None:
        if unit.allows(diag.rule, diag.line):
            report.suppressed += 1
        elif diag.fingerprint in baseline:
            report.baselined += 1
        else:
            report.findings.append(diag)

    for display, unit in units.items():
        check_budget()
        if display not in selected:
            continue
        for rule in rules:
            for diag in rule.check(unit):
                admit(unit, diag)

    project_rules = [rule for rule in rules if rule.needs_project]
    if project_rules:
        from repro.analysis.ipa.project import Project
        project = Project(units.values())
        for rule in project_rules:
            check_budget()
            for diag in rule.check_project(project):
                if diag.path not in selected:
                    continue
                unit = units.get(diag.path)
                if unit is None:  # pragma: no cover -- defensive
                    report.findings.append(diag)
                    continue
                admit(unit, diag)

    report.findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    report.elapsed_seconds = time.monotonic() - started
    return report
