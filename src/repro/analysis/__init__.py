"""flcheck: AST-based invariant checking for the reproduction codebase.

Three PRs of infrastructure established repo-wide invariants -- plaintext
never crosses a channel unencrypted, nondeterminism routes through
``REPRO_TEST_SEED`` streams, every modelled cost lands in a registered
ledger category -- but tests only guard the call sites they happen to
exercise.  flcheck enforces the invariants *statically*: it parses every
module under ``src/repro`` with :mod:`ast` and reports typed diagnostics
with file:line anchors, so a violating diff fails lint instead of a fuzz
run.

Rules (each in its own module, all registered in :data:`ALL_RULES`):

- ``plaintext-wire``   -- taint analysis from ``decrypt*`` / ``PlainTensor``
  to ``send`` / ``serialize_*`` / WAL sinks (:mod:`repro.analysis.taint`);
- ``determinism``      -- global RNG / wall-clock / OS-entropy use outside
  the whitelisted modules (:mod:`repro.analysis.determinism`);
- ``ledger-category``  -- charge-site categories validated against
  :data:`repro.ledger.CATEGORY_FAMILIES`
  (:mod:`repro.analysis.ledger_rule`);
- ``deprecated-api``   -- resurrection of removed raw-list shims and
  gmpy-style bigint imports (:mod:`repro.analysis.deprecation`);
- ``kernel-budget``    -- declared kernel resource envelopes evaluated
  against device limits (:mod:`repro.analysis.kernel_budget`);
- ``wal-discipline``   -- journal-then-act ordering on write-ahead-log
  records, checked interprocedurally
  (:mod:`repro.analysis.ipa.wal_rule`);
- ``ledger-conservation`` -- admission verdicts must move the flow
  counters the conservation law expects
  (:mod:`repro.analysis.ipa.ledger_flow`).

The last two need a whole-program view -- symbol table, class
hierarchy, call graph, and summary fixpoints live under
:mod:`repro.analysis.ipa`; ``plaintext-wire`` also runs an
interprocedural pass on top of its per-module one.

Run it as ``python -m repro lint``; see ``docs/analysis.md`` for the
pragma and baseline workflow.
"""

from repro.analysis.base import Rule, rule_names
from repro.analysis.deprecation import DeprecatedApiRule
from repro.analysis.determinism import DeterminismRule
from repro.analysis.diagnostics import Diagnostic, LintReport
from repro.analysis.engine import (
    ModuleUnit,
    TimeBudgetExceeded,
    load_baseline,
    run_lint,
    write_baseline,
)
from repro.analysis.ipa.ledger_flow import LedgerConservationRule
from repro.analysis.ipa.wal_rule import WalDisciplineRule
from repro.analysis.kernel_budget import KernelBudgetRule
from repro.analysis.ledger_rule import LedgerCategoryRule
from repro.analysis.taint import PlaintextWireRule

#: Every shipped rule, in reporting order.
ALL_RULES = (
    PlaintextWireRule,
    DeterminismRule,
    LedgerCategoryRule,
    DeprecatedApiRule,
    KernelBudgetRule,
    WalDisciplineRule,
    LedgerConservationRule,
)

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "DeprecatedApiRule",
    "DeterminismRule",
    "KernelBudgetRule",
    "LedgerCategoryRule",
    "LedgerConservationRule",
    "LintReport",
    "ModuleUnit",
    "PlaintextWireRule",
    "Rule",
    "WalDisciplineRule",
    "TimeBudgetExceeded",
    "load_baseline",
    "rule_names",
    "run_lint",
    "write_baseline",
]
